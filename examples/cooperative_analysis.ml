(* Cooperative symbolic execution (paper §4): the hive harnesses a pool
   of worker machines to analyze an execution tree no single node could
   explore quickly.

   A coordinator seeds a tree with two natural executions of a
   loop-heavy generated program, then dynamically partitions the
   frontier across worker nodes connected over a lossy network.
   Workers run directed symbolic exploration and return either concrete
   inputs covering a gap or a proof that it is infeasible; the
   coordinator validates every claimed model by re-executing it
   (workers are untrusted end-user machines).

   Run with: dune exec examples/cooperative_analysis.exe *)

module Rng = Softborg_util.Rng
module Tabular = Softborg_util.Tabular
module Ir = Softborg_prog.Ir
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Exec_tree = Softborg_tree.Exec_tree
module Coop = Softborg_hive.Coop_symexec
module Sim = Softborg_net.Sim
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport

let () =
  print_endline "Cooperative symbolic execution: many machines, one tree";
  let program, _ =
    Generator.generate (Rng.create 5)
      { Generator.default_params with Generator.block_depth = 3; stmts_per_block = 5; bugs = [] }
  in
  Printf.printf "program: %s (%d instructions, %d branch sites)\n" program.Ir.name
    (Ir.instr_count program)
    (List.length (Ir.branch_sites program));
  let sim = Sim.create () in
  let rng = Rng.create 19 in
  (* Seed the collective tree with two natural executions. *)
  let tree = Exec_tree.create () in
  for i = 1 to 2 do
    let inputs = Array.init program.Ir.n_inputs (fun _ -> Rng.int_in rng 0 40) in
    let env = Env.make ~seed:i ~inputs () in
    let r = Interp.run ~program ~env ~sched:Sched.Round_robin () in
    ignore (Exec_tree.add_path tree r.Interp.full_path r.Interp.outcome)
  done;
  Printf.printf "seeded with 2 executions: %d paths, %d open gaps\n"
    (Exec_tree.n_distinct_paths tree)
    (Exec_tree.frontier_size tree);
  (* Six worker machines behind a 5%-loss WAN. *)
  let link = { Link.drop_probability = 0.05; mean_latency = 0.05; min_latency = 0.005 } in
  let config = { Transport.default_config with Transport.link } in
  let workers_and_endpoints =
    List.init 6 (fun _ ->
        let coord_end, worker_end =
          Transport.endpoint_pair ~config ~sim ~rng:(Rng.split rng) ()
        in
        (Coop.Worker.create ~program ~endpoint:worker_end (), coord_end))
  in
  let workers = List.map fst workers_and_endpoints in
  let endpoints = List.map snd workers_and_endpoints in
  let coordinator = Coop.Coordinator.create ~sim ~program ~tree ~workers:endpoints () in
  Coop.Coordinator.start coordinator;
  (* Drive the simulation, reporting every 60 simulated seconds. *)
  let rows = ref [] in
  let horizon = 300.0 in
  let rec drive at =
    if at <= horizon then begin
      Sim.run ~until:at sim;
      let p = Coop.Coordinator.progress coordinator in
      rows :=
        [
          Printf.sprintf "%.0f" at;
          string_of_int (Exec_tree.n_distinct_paths tree);
          string_of_int p.Coop.Coordinator.gaps_resolved;
          string_of_int p.Coop.Coordinator.jobs_sent;
          (if Coop.Coordinator.done_ coordinator then "yes" else "no");
        ]
        :: !rows;
      drive (at +. 60.0)
    end
  in
  drive 60.0;
  Tabular.print ~title:"collective exploration over time (6 untrusted workers, 5% packet loss)"
    [
      Tabular.column "time";
      Tabular.column ~align:Tabular.Right "tree paths";
      Tabular.column ~align:Tabular.Right "directions decided";
      Tabular.column ~align:Tabular.Right "jobs";
      Tabular.column ~align:Tabular.Right "all decided";
    ]
    (List.rev !rows);
  print_newline ();
  List.iteri
    (fun i worker ->
      Printf.printf "worker %d: %d jobs served, %d analysis steps contributed\n" i
        (Coop.Worker.jobs_served worker)
        (Coop.Worker.steps_spent worker))
    workers;
  let p = Coop.Coordinator.progress coordinator in
  Printf.printf
    "\nthe collective decided %d branch directions; %d concrete tests were synthesized for \
     feasible gaps\n"
    p.Coop.Coordinator.gaps_resolved
    (List.length p.Coop.Coordinator.tests_found)
