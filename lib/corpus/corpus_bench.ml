(* Seeded, versioned bug-benchmark families with reproduction checked
   at construction.  See the .mli for the corpus philosophy; the key
   invariant maintained here is that [certify] runs on every instance
   before it escapes this module, under both execution engines. *)

module Rng = Softborg_util.Rng
module Ir = Softborg_prog.Ir
module Build = Softborg_prog.Build
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Engine = Softborg_exec.Engine
module Outcome = Softborg_exec.Outcome
module Schedule_explore = Softborg_conc.Schedule_explore

type instance = {
  name : string;
  family : string;
  version : int;
  seed : int;
  buggy : Ir.t;
  fixed : Ir.t;
  trigger : int array -> bool;
  trigger_inputs : int array;
  benign_inputs : int array;
  fault_plan : Env.fault_plan;
  schedule_hint : int list option;
  bug_sites : Ir.site list;
  trigger_path : (Ir.site * bool) list;
  bug_locks : int list;
}

type family = {
  family_name : string;
  version : int;
  threaded : bool;
  describe : string;
  generate : int -> instance;
}

let concurrent inst = Array.length inst.buggy.Ir.threads > 1

(* ---- Certification ------------------------------------------------ *)

exception Cert of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cert s)) fmt
let engines = [ Engine.Tree; Engine.Vm ]

(* The environment seed only picks syscall return values (non-negative
   unless the fault plan fails the call), so any fixed seed certifies
   the same behavior the fault plan describes. *)
let cert_env_seed = 11

(* Bounded budget for per-instance schedule exploration; both conc
   families manifest within the first few schedules (the buggy shapes
   fail even under plain round-robin), so the budget's real job is the
   other direction: evidence that the fixed variant has no failing
   schedule. *)
let explore_budget = 96

let run_once ~engine ~program ~inputs ~fault_plan ~sched () =
  let env = Env.make ~fault_plan ~seed:cert_env_seed ~inputs () in
  Engine.run ~engine ~program ~env ~sched ()

let dedup_path path =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (site, dir) ->
      let key = (site.Ir.thread, site.Ir.pc, dir) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    path

let check_common inst =
  (match Ir.validate inst.buggy with
  | Ok () -> ()
  | Error e -> fail "%s: buggy program invalid: %s" inst.name e);
  (match Ir.validate inst.fixed with
  | Ok () -> ()
  | Error e -> fail "%s: fixed program invalid: %s" inst.name e);
  if Ir.digest inst.buggy = Ir.digest inst.fixed then
    fail "%s: buggy and fixed are structurally identical" inst.name;
  if not (inst.trigger inst.trigger_inputs) then
    fail "%s: trigger predicate rejects its own trigger inputs" inst.name

(* Single-threaded certification: the four-quadrant reproduction
   matrix (buggy/fixed x trigger/benign) under both engines, plus —
   for error-path bugs — the check that the bug really is
   error-path-only (the trigger without the fault plan is harmless). *)
let certify_sequential ~derive inst =
  check_common inst;
  if inst.trigger inst.benign_inputs then
    fail "%s: trigger predicate accepts the benign inputs" inst.name;
  let failing_runs =
    List.map
      (fun engine ->
        let run program inputs fault_plan =
          run_once ~engine ~program ~inputs ~fault_plan ~sched:Sched.Round_robin ()
        in
        let bt = run inst.buggy inst.trigger_inputs inst.fault_plan in
        if not (Outcome.is_failure bt.Interp.outcome) then
          fail "%s: buggy survives its trigger under %s" inst.name (Engine.to_string engine);
        let bb = run inst.buggy inst.benign_inputs inst.fault_plan in
        if Outcome.is_failure bb.Interp.outcome then
          fail "%s: buggy fails on benign inputs under %s" inst.name (Engine.to_string engine);
        let ft = run inst.fixed inst.trigger_inputs inst.fault_plan in
        if Outcome.is_failure ft.Interp.outcome then
          fail "%s: fixed still fails the trigger under %s" inst.name (Engine.to_string engine);
        let fb = run inst.fixed inst.benign_inputs inst.fault_plan in
        if Outcome.is_failure fb.Interp.outcome then
          fail "%s: fixed fails on benign inputs under %s" inst.name (Engine.to_string engine);
        (if inst.fault_plan <> Env.No_faults then
           let nf = run inst.buggy inst.trigger_inputs Env.No_faults in
           if Outcome.is_failure nf.Interp.outcome then
             fail "%s: bug manifests even without its fault plan under %s" inst.name
               (Engine.to_string engine));
        bt)
      engines
  in
  (match failing_runs with
  | [ tree; vm ] ->
    if Outcome.bucket_key tree.Interp.outcome <> Outcome.bucket_key vm.Interp.outcome then
      fail "%s: engines disagree on the failure bucket (%s vs %s)" inst.name
        (Outcome.bucket_key tree.Interp.outcome)
        (Outcome.bucket_key vm.Interp.outcome)
  | _ -> assert false);
  let vm_failure = List.nth failing_runs 1 in
  let path = dedup_path vm_failure.Interp.full_path in
  if derive then { inst with trigger_path = path }
  else if path <> inst.trigger_path then
    fail "%s: stored trigger path disagrees with a fresh derivation" inst.name
  else inst

(* Multi-threaded certification: bounded schedule exploration must
   find a failing schedule for the buggy variant (under both engines,
   agreeing on the failure buckets) and none for the fixed one; the
   chosen hint must reproduce the failure on replay under both
   engines. *)
let certify_threaded ~derive inst =
  check_common inst;
  let make_env () =
    Env.make ~fault_plan:inst.fault_plan ~seed:cert_env_seed ~inputs:inst.trigger_inputs ()
  in
  let explore engine program =
    Schedule_explore.explore ~max_runs:explore_budget ~engine ~program ~make_env ()
  in
  let bug_explorations = List.map (fun engine -> explore engine inst.buggy) engines in
  List.iter2
    (fun engine ex ->
      if ex.Schedule_explore.failures = [] then
        fail "%s: no failing schedule within %d runs under %s" inst.name explore_budget
          (Engine.to_string engine))
    engines bug_explorations;
  let bucket_keys ex =
    List.sort_uniq compare
      (List.map (fun (o, _) -> Outcome.bucket_key o) ex.Schedule_explore.failures)
  in
  (match bug_explorations with
  | [ tree; vm ] ->
    if bucket_keys tree <> bucket_keys vm then
      fail "%s: engines disagree on the explored failure buckets" inst.name
  | _ -> assert false);
  let hint =
    if derive then begin
      (* Deterministic pick: the shortest failing schedule, ties broken
         lexicographically, from the VM exploration (both engines
         explore identically — checked above via the bucket sets). *)
      let shorter a b = compare (List.length a, a) (List.length b, b) < 0 in
      match List.map snd (List.nth bug_explorations 1).Schedule_explore.failures with
      | [] -> assert false
      | first :: rest -> List.fold_left (fun best s -> if shorter s best then s else best) first rest
    end
    else
      match inst.schedule_hint with
      | Some h -> h
      | None -> fail "%s: threaded instance without a schedule hint" inst.name
  in
  let replays =
    List.map
      (fun engine ->
        let r =
          run_once ~engine ~program:inst.buggy ~inputs:inst.trigger_inputs
            ~fault_plan:inst.fault_plan ~sched:(Sched.Replay hint) ()
        in
        if not (Outcome.is_failure r.Interp.outcome) then
          fail "%s: schedule hint does not reproduce the failure under %s" inst.name
            (Engine.to_string engine);
        r)
      engines
  in
  List.iter
    (fun engine ->
      let ex = explore engine inst.fixed in
      if ex.Schedule_explore.failures <> [] then
        fail "%s: fixed variant still has a failing schedule under %s" inst.name
          (Engine.to_string engine))
    engines;
  let path = dedup_path (List.nth replays 1).Interp.full_path in
  let inst = { inst with schedule_hint = Some hint } in
  if derive then { inst with trigger_path = path }
  else if path <> inst.trigger_path then
    fail "%s: stored trigger path disagrees with a fresh derivation" inst.name
  else inst

let certify ~derive inst =
  try Ok ((if concurrent inst then certify_threaded else certify_sequential) ~derive inst)
  with Cert msg -> Error msg

let certified inst =
  match certify ~derive:true inst with
  | Ok inst -> inst
  | Error msg -> invalid_arg ("Corpus_bench: " ^ msg)

let verify inst = Result.map (fun (_ : instance) -> ()) (certify ~derive:false inst)

(* ---- Site helpers ------------------------------------------------- *)

let sites_where program pred =
  let sites = ref [] in
  Array.iteri
    (fun thread body ->
      Array.iteri (fun pc instr -> if pred instr then sites := { Ir.thread; pc } :: !sites) body)
    program.Ir.threads;
  List.rev !sites

let rec expr_has_div = function
  | Ir.Binop (Ir.Div, _, _) -> true
  | Ir.Binop (_, a, b) -> expr_has_div a || expr_has_div b
  | Ir.Unop (_, e) -> expr_has_div e
  | Ir.Const _ | Ir.Var _ | Ir.Input _ -> false

let div_assign_sites program =
  sites_where program (function Ir.Assign (_, e) -> expr_has_div e | _ -> false)

(* ---- Family constructions ----------------------------------------- *)

(* Every family draws all of its shape parameters from one seeded RNG
   *before* building either program variant, so buggy and fixed differ
   exactly at the planted defect and seed-determinism is trivial to
   audit.  Trigger values are kept non-negative so the trigger
   predicate's [mod] matches the interpreter's semantics verbatim. *)

let instance_name family version seed = Printf.sprintf "%s-v%d-s%d" family version seed

(* Off-by-one boundary error: an input-bounded loop indexes one past a
   capacity check ([<=] where [<] was meant); the overrun is made
   observable by a bounds assert inside the loop. *)
let off_by_one_version = 1

let off_by_one seed =
  let rng = Rng.create (0x0ff1 + (seed * 7919)) in
  let cap = 3 + Rng.int rng 7 in
  let m = cap + 1 in
  let scale = 1 + Rng.int rng 5 in
  let n_inputs = 1 + Rng.int rng 3 in
  let slot = Rng.int rng n_inputs in
  let pad_consts = List.init (Rng.int rng 3) (fun _ -> Rng.int rng 100) in
  let trigger_fill = Array.init n_inputs (fun _ -> Rng.int rng 50) in
  let trigger_value = cap + (m * Rng.int rng 3) in
  let benign_value = m * Rng.int rng 3 in
  let name = instance_name "off-by-one" off_by_one_version seed in
  let body bound_cmp =
    let open Build.Infix in
    List.mapi
      (fun k c -> Build.assign (Build.lvar (Printf.sprintf "pad%d" k)) (Build.const c))
      pad_consts
    @ [
        Build.assign (Build.lvar "n") (Build.input slot %: Build.const m);
        Build.assign (Build.lvar "i") (Build.const 0);
        Build.while_
          (bound_cmp (Build.local "i") (Build.local "n"))
          [
            Build.assert_ (Build.local "i" <: Build.const cap) "buffer overrun";
            Build.assign (Build.lvar "acc")
              (Build.local "acc" +: (Build.local "i" *: Build.const scale));
            Build.assign (Build.lvar "i") (Build.local "i" +: Build.const 1);
          ];
        Build.halt;
      ]
  in
  let buggy = Build.program ~name ~n_inputs [ body Build.Infix.( <=: ) ] in
  let fixed = Build.program ~name ~n_inputs [ body Build.Infix.( <: ) ] in
  let inputs value =
    let a = Array.copy trigger_fill in
    a.(slot) <- value;
    a
  in
  certified
    {
      name;
      family = "off-by-one";
      version = off_by_one_version;
      seed;
      buggy;
      fixed;
      trigger = (fun inputs -> Array.length inputs > slot && inputs.(slot) mod m = cap);
      trigger_inputs = inputs trigger_value;
      benign_inputs = inputs benign_value;
      fault_plan = Env.No_faults;
      schedule_hint = None;
      bug_sites = Ir.assert_sites buggy @ Ir.branch_sites buggy;
      trigger_path = [];
      bug_locks = [];
    }

(* Error-path-only fault: a second resource acquisition can fail, and
   only the failure path divides by the unchecked handle.  Without the
   targeted environment fault the program is correct. *)
let error_path_version = 1

let error_path seed =
  let rng = Rng.create (0x0e44 + (seed * 6271)) in
  let m = 2 + Rng.int rng 3 in
  let residue = Rng.int rng m in
  let n_inputs = 1 + Rng.int rng 2 in
  let slot = Rng.int rng n_inputs in
  let numerator = 10 + Rng.int rng 90 in
  let trigger_fill = Array.init n_inputs (fun _ -> Rng.int rng 50) in
  let trigger_value = residue + (m * Rng.int rng 3) in
  let benign_value = ((residue + 1) mod m) + (m * Rng.int rng 3) in
  let name = instance_name "error-path" error_path_version seed in
  let divide =
    let open Build.Infix in
    Build.assign (Build.lvar "progress")
      (Build.const numerator /: (Build.local "dst" +: Build.const 1))
  in
  let body ~guarded =
    let open Build.Infix in
    [
      Build.assign (Build.lvar "mode") (Build.input slot %: Build.const m);
      Build.if_
        (Build.local "mode" ==: Build.const residue)
        [
          Build.syscall Ir.Sys_open (Build.lvar "src");
          Build.if_
            (Build.local "src" >=: Build.const 0)
            [
              Build.syscall Ir.Sys_open (Build.lvar "dst");
              (if guarded then
                 Build.if_
                   (Build.local "dst" >=: Build.const 0)
                   [ divide ]
                   [ Build.assign (Build.lvar "progress") (Build.const 0) ]
               else divide);
            ]
            [ Build.assign (Build.lvar "progress") (Build.const (-1)) ];
        ]
        [ Build.assign (Build.lvar "progress") (Build.const 1) ];
      Build.halt;
    ]
  in
  let buggy = Build.program ~name ~n_inputs [ body ~guarded:false ] in
  let fixed = Build.program ~name ~n_inputs [ body ~guarded:true ] in
  let inputs value =
    let a = Array.copy trigger_fill in
    a.(slot) <- value;
    a
  in
  certified
    {
      name;
      family = "error-path";
      version = error_path_version;
      seed;
      buggy;
      fixed;
      trigger = (fun inputs -> Array.length inputs > slot && inputs.(slot) mod m = residue);
      trigger_inputs = inputs trigger_value;
      benign_inputs = inputs benign_value;
      (* The second acquisition (syscall index 1, execution order)
         fails; the first must succeed to reach it. *)
      fault_plan = Env.Targeted [ 1 ];
      schedule_hint = None;
      bug_sites = div_assign_sites buggy;
      trigger_path = [];
      bug_locks = [];
    }

(* Resource leak: the early-exit path forgets to release the handle it
   acquired.  The leak is made self-checking with an open-count assert
   at function exit, so the bug is an observable crash rather than a
   silent counter drift. *)
let resource_leak_version = 1

let resource_leak seed =
  let rng = Rng.create (0x1eaf + (seed * 4447)) in
  let m = 2 + Rng.int rng 3 in
  let residue = Rng.int rng m in
  let n_inputs = 1 + Rng.int rng 2 in
  let slot = Rng.int rng n_inputs in
  let work = 1 + Rng.int rng 9 in
  let trigger_fill = Array.init n_inputs (fun _ -> Rng.int rng 50) in
  let trigger_value = residue + (m * Rng.int rng 3) in
  let benign_value = ((residue + 1) mod m) + (m * Rng.int rng 3) in
  let name = instance_name "resource-leak" resource_leak_version seed in
  let release =
    Build.assign (Build.lvar "opens") Build.Infix.(Build.local "opens" -: Build.const 1)
  in
  let body ~released =
    let open Build.Infix in
    [
      Build.syscall Ir.Sys_open (Build.lvar "h");
      Build.assign (Build.lvar "opens") (Build.const 1);
      Build.assign (Build.lvar "mode") (Build.input slot %: Build.const m);
      Build.if_
        (Build.local "mode" ==: Build.const residue)
        ([ Build.assign (Build.lvar "status") (Build.const (-1)) ]
        @ (if released then [ release ] else []))
        [ Build.assign (Build.lvar "work") (Build.const work); release ];
      Build.assert_ (Build.local "opens" ==: Build.const 0) "handle leaked";
      Build.halt;
    ]
  in
  let buggy = Build.program ~name ~n_inputs [ body ~released:false ] in
  let fixed = Build.program ~name ~n_inputs [ body ~released:true ] in
  let inputs value =
    let a = Array.copy trigger_fill in
    a.(slot) <- value;
    a
  in
  certified
    {
      name;
      family = "resource-leak";
      version = resource_leak_version;
      seed;
      buggy;
      fixed;
      trigger = (fun inputs -> Array.length inputs > slot && inputs.(slot) mod m = residue);
      trigger_inputs = inputs trigger_value;
      benign_inputs = inputs benign_value;
      fault_plan = Env.No_faults;
      schedule_hint = None;
      bug_sites = Ir.assert_sites buggy @ Ir.branch_sites buggy;
      trigger_path = [];
      bug_locks = [];
    }

(* Input-validation escape: the length check admits the boundary value
   ([<=] instead of [<]), and the admitted path divides by
   [limit - len], which the escaped value makes zero. *)
let input_validation_version = 1

let input_validation seed =
  let rng = Rng.create (0x7a11 + (seed * 3557)) in
  let limit = 3 + Rng.int rng 6 in
  let m = limit + 1 in
  let budget = 10 + Rng.int rng 90 in
  let n_inputs = 1 + Rng.int rng 2 in
  let slot = Rng.int rng n_inputs in
  let trigger_fill = Array.init n_inputs (fun _ -> Rng.int rng 50) in
  let trigger_value = limit + (m * Rng.int rng 3) in
  let benign_value = m * Rng.int rng 3 in
  let name = instance_name "input-validation" input_validation_version seed in
  let body check_cmp =
    let open Build.Infix in
    [
      Build.assign (Build.lvar "len") (Build.input slot %: Build.const m);
      Build.if_
        (check_cmp (Build.local "len") (Build.const limit))
        [
          Build.assign (Build.lvar "share")
            (Build.const budget /: (Build.const limit -: Build.local "len"));
        ]
        [ Build.assign (Build.lvar "reject") (Build.const 1) ];
      Build.halt;
    ]
  in
  let buggy = Build.program ~name ~n_inputs [ body Build.Infix.( <=: ) ] in
  let fixed = Build.program ~name ~n_inputs [ body Build.Infix.( <: ) ] in
  let inputs value =
    let a = Array.copy trigger_fill in
    a.(slot) <- value;
    a
  in
  certified
    {
      name;
      family = "input-validation";
      version = input_validation_version;
      seed;
      buggy;
      fixed;
      trigger = (fun inputs -> Array.length inputs > slot && inputs.(slot) mod m = limit);
      trigger_inputs = inputs trigger_value;
      benign_inputs = inputs benign_value;
      fault_plan = Env.No_faults;
      schedule_hint = None;
      bug_sites = div_assign_sites buggy @ Ir.branch_sites buggy;
      trigger_path = [];
      bug_locks = [];
    }

(* Atomicity violation: two workers run an unlocked read-modify-write
   on a shared counter (the classic lost-update / ABA shape); a checker
   thread waits for both and asserts the combined effect.  The fixed
   variant serializes the RMW under a lock. *)
let atomicity_version = 1

let atomicity seed =
  let rng = Rng.create (0x0a70 + (seed * 2903)) in
  let v = 1 + Rng.int rng 9 in
  let n_locks = 1 + Rng.int rng 2 in
  let lock_id = Rng.int rng n_locks in
  let spin_pad = Rng.int rng 2 in
  let name = instance_name "atomicity" atomicity_version seed in
  let checker =
    let open Build.Infix in
    List.init spin_pad (fun _ -> Build.yield)
    @ [
        Build.while_
          (Build.glob "done_a" +: Build.glob "done_b" <: Build.const 2)
          [ Build.yield ];
        Build.assert_ (Build.glob "counter" ==: Build.const (2 * v)) "lost update";
        Build.halt;
      ]
  in
  let worker ~locked flag =
    let open Build.Infix in
    let rmw =
      [
        Build.assign (Build.lvar "tmp") (Build.glob "counter");
        Build.yield;
        Build.assign (Build.gvar "counter") (Build.local "tmp" +: Build.const v);
      ]
    in
    (if locked then (Build.lock lock_id :: rmw) @ [ Build.unlock lock_id ] else rmw)
    @ [ Build.assign (Build.gvar flag) (Build.const 1); Build.halt ]
  in
  let build ~locked =
    Build.program ~name
      ~globals:[ "counter"; "done_a"; "done_b" ]
      ~n_locks
      [ checker; worker ~locked "done_a"; worker ~locked "done_b" ]
  in
  let buggy = build ~locked:false in
  let fixed = build ~locked:true in
  certified
    {
      name;
      family = "atomicity";
      version = atomicity_version;
      seed;
      buggy;
      fixed;
      trigger = (fun _ -> true);
      trigger_inputs = [||];
      benign_inputs = [||];
      fault_plan = Env.No_faults;
      schedule_hint = None;
      bug_sites = Ir.assert_sites buggy;
      trigger_path = [];
      bug_locks = [];
    }

(* Lock-order ("feed-shift") deadlock: two threads take the same pair
   of locks in inverted order, with a yield between the acquisitions so
   the hold-and-wait window is schedulable.  The fixed variant imposes
   one global order. *)
let lock_order_version = 1

let lock_order seed =
  let rng = Rng.create (0xd1ce + (seed * 1583)) in
  let n_locks = 2 + Rng.int rng 2 in
  let a = Rng.int rng n_locks in
  let b = (a + 1 + Rng.int rng (n_locks - 1)) mod n_locks in
  let d1 = 1 + Rng.int rng 9 in
  let d2 = 1 + Rng.int rng 9 in
  let name = instance_name "lock-order" lock_order_version seed in
  let locker ~first ~second ~delta =
    let open Build.Infix in
    [
      Build.lock first;
      Build.yield;
      Build.lock second;
      Build.assign (Build.gvar "g") (Build.glob "g" +: Build.const delta);
      Build.unlock second;
      Build.unlock first;
      Build.halt;
    ]
  in
  let build ~inverted =
    Build.program ~name ~globals:[ "g" ] ~n_locks
      [
        locker ~first:a ~second:b ~delta:d1;
        (if inverted then locker ~first:b ~second:a ~delta:d2
         else locker ~first:a ~second:b ~delta:d2);
      ]
  in
  let buggy = build ~inverted:true in
  let fixed = build ~inverted:false in
  certified
    {
      name;
      family = "lock-order";
      version = lock_order_version;
      seed;
      buggy;
      fixed;
      trigger = (fun _ -> true);
      trigger_inputs = [||];
      benign_inputs = [||];
      fault_plan = Env.No_faults;
      schedule_hint = None;
      bug_sites = [];
      trigger_path = [];
      bug_locks = List.sort compare [ a; b ];
    }

(* ---- Corpus ------------------------------------------------------- *)

let families =
  [
    {
      family_name = "off-by-one";
      version = off_by_one_version;
      threaded = false;
      describe = "loop bound one past the capacity check";
      generate = off_by_one;
    };
    {
      family_name = "error-path";
      version = error_path_version;
      threaded = false;
      describe = "division by an unchecked handle, reachable only when a targeted syscall fails";
      generate = error_path;
    };
    {
      family_name = "resource-leak";
      version = resource_leak_version;
      threaded = false;
      describe = "handle release skipped on the early-exit path (self-checking leak assert)";
      generate = resource_leak;
    };
    {
      family_name = "input-validation";
      version = input_validation_version;
      threaded = false;
      describe = "boundary value escapes the length check into a division by zero";
      generate = input_validation;
    };
    {
      family_name = "atomicity";
      version = atomicity_version;
      threaded = true;
      describe = "unlocked read-modify-write race (lost update) caught by a checker thread";
      generate = atomicity;
    };
    {
      family_name = "lock-order";
      version = lock_order_version;
      threaded = true;
      describe = "two threads acquire a lock pair in inverted order (feed-shift deadlock)";
      generate = lock_order;
    };
  ]

let default_seeds = [ 1; 2; 3 ]

let corpus ?(seeds = default_seeds) () =
  List.concat_map (fun f -> List.map f.generate seeds) families

let find_family name = List.find_opt (fun f -> f.family_name = name) families

(* ---- Wrong-fix ingredients ------------------------------------------ *)

(* Branch sites on the certified failing path that are NOT ground-truth
   fix locations.  A guard parked at one of these is exactly the
   BugSwarm-style misattributed fix: it correlates with the failure
   (the site is on the trigger path) but repairs nothing. *)
let decoy_sites inst =
  List.sort_uniq compare
    (List.filter_map
       (fun (site, _) -> if List.mem site inst.bug_sites then None else Some site)
       inst.trigger_path)

(* An immunity set that serializes benign schedules without matching
   the planted deadlock: every lock of the buggy build except the
   highest (the [Fixgen] spin-immunity shape, derived from the
   instance instead of invented).  [None] when the instance has no
   locks to over-serialize, or when the over-broad set happens to
   coincide with the ground truth. *)
let overbroad_lock_set inst =
  let n = inst.buggy.Ir.n_locks in
  if n < 2 then None
  else
    let locks = List.init (n - 1) Fun.id in
    if locks = inst.bug_locks then None else Some locks
