(** The versioned bug-benchmark corpus (after BEARS; contrast the
    BugSwarm critiques in PAPERS.md).

    The hand-written {!Softborg_prog.Corpus} is eight programs; it
    cannot quantify "handles as many scenarios as you can imagine".
    This module generates {e seeded families} of realistic bug classes
    as versioned (buggy, fixed) program pairs, each carrying an
    executable reproduction recipe — trigger inputs, an environment
    fault plan, and (for concurrency bugs) a failing schedule.

    The BugSwarm lesson is that ad-hoc benchmark corpora rot:
    duplicated, trivial, or unreproducible entries mislead every tool
    scored against them.  The defense here is {e reproduction at
    construction}: every instance is certified when it is built — the
    buggy program fails under its trigger, survives benign inputs, and
    the fixed program survives the trigger, all checked under {e both}
    execution engines ({!Softborg_exec.Engine.Tree} and
    {!Softborg_exec.Engine.Vm}).  An unreproducible instance is
    impossible by design: construction raises instead of returning it.

    Families are versioned: [version] bumps whenever a family's
    construction changes shape, so scores recorded against
    ["off-by-one" v1] are never silently compared with a different
    program population. *)

module Ir := Softborg_prog.Ir
module Env := Softborg_exec.Env

type instance = {
  name : string;  (** ["<family>-v<version>-s<seed>"]; shared by buggy and fixed. *)
  family : string;
  version : int;
  seed : int;
  buggy : Ir.t;
  fixed : Ir.t;
  trigger : int array -> bool;
      (** Input-space description of the bug: [trigger inputs] holds
          iff these inputs put the buggy program on the failing path
          (under [fault_plan], and for multi-threaded instances under
          [schedule_hint]).  Always [true] for purely
          schedule-triggered bugs. *)
  trigger_inputs : int array;  (** A certified witness of [trigger]. *)
  benign_inputs : int array;
      (** Certified non-triggering inputs ([trigger benign_inputs] is
          [false] for input-triggered families). *)
  fault_plan : Env.fault_plan;
      (** Environment faults required to manifest the bug
          ([No_faults] unless the bug lives on an error path). *)
  schedule_hint : int list option;
      (** For multi-threaded instances: a contended-point schedule,
          found by bounded exploration at construction, whose replay
          manifests the failure.  [None] for single-threaded
          instances. *)
  bug_sites : Ir.site list;
      (** The ground-truth fix location(s) in {e buggy}'s coordinates:
          the crash site plus the branch the fixed version corrects.
          A proposed guard/suppression fix is scored correct iff its
          site is in this list.  Empty for deadlock instances, whose
          ground truth is [bug_locks]. *)
  trigger_path : (Ir.site * bool) list;
      (** Deduplicated branch decisions of the certified failing run —
          the predicates statistical isolation should surface.  Empty
          when the failing path crosses no branch (pure lock-order
          deadlocks). *)
  bug_locks : int list;
      (** Sorted lock set of the planted deadlock; a proposed
          deadlock-immunity fix is scored correct iff it serializes
          exactly this set.  Empty for non-deadlock instances. *)
}

type family = {
  family_name : string;
  version : int;
  threaded : bool;  (** Whether instances are multi-threaded. *)
  describe : string;
  generate : int -> instance;
      (** [generate seed] builds and certifies one instance.
          Deterministic: the same seed always yields the same instance
          (byte-identical programs).
          @raise Invalid_argument if certification fails — an
          unreproducible instance is a construction bug, not data. *)
}

val families : family list
(** The six bug-class families, in fixed order: off-by-one boundary
    errors, error-path-only faults (manifest only when a targeted
    syscall fails), resource leaks (release skipped on an early-exit
    path, made self-checking by a leak assert), input-validation
    escapes (boundary value slips past the check into a trapping
    computation), atomicity violations (unlocked read-modify-write
    races, lost-update/ABA shaped), and lock-order deadlocks (two
    threads acquiring the same pair of locks in inverted order). *)

val default_seeds : int list
(** [[1; 2; 3]] — three instances per family, the floor the repair
    benchmark reports against. *)

val corpus : ?seeds:int list -> unit -> instance list
(** All families at each seed (default {!default_seeds}), certified.
    Order: families in {!families} order, seeds in the given order
    within a family. *)

val concurrent : instance -> bool
(** True iff the instance is multi-threaded (its reproduction needs a
    schedule, not just inputs). *)

val find_family : string -> family option

val verify : instance -> (unit, string) result
(** Re-run the full certification on an existing instance (both
    engines, trigger/benign/fixed checks, schedule-hint replay for
    threaded instances) and additionally check that the stored
    [trigger_path] matches a fresh derivation.  [Ok ()] for every
    instance this module constructs. *)

val decoy_sites : instance -> Ir.site list
(** Branch sites on the certified failing path ([trigger_path]) that
    are {e not} ground-truth fix locations ([bug_sites]) — the places a
    misattributed guard would plausibly be parked.  Sorted and
    deduplicated; empty when every trigger-path site is a bug site. *)

val overbroad_lock_set : instance -> int list option
(** An immunity lock set that would serialize benign schedules without
    matching the planted deadlock: all of [buggy]'s locks but the
    highest.  [None] for instances with fewer than two locks, or when
    the over-broad set coincides with [bug_locks]. *)
