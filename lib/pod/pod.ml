module Rng = Softborg_util.Rng
module Ir = Softborg_prog.Ir
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Engine = Softborg_exec.Engine
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Sampling = Softborg_trace.Sampling
module Anonymize = Softborg_trace.Anonymize
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport
module Fixgen = Softborg_hive.Fixgen
module Fix_lifecycle = Softborg_hive.Fix_lifecycle
module Guidance = Softborg_hive.Guidance
module Protocol = Softborg_hive.Protocol
module Path_cond = Softborg_solver.Path_cond

type upload_mode =
  | Full_traces
  | Sampled_reports of int
  | Outcomes_only

type config = {
  arrival_rate : float;
  workload : Workload.profile;
  fault_probability : float;
  max_steps : int;
  engine : Engine.t;
  anonymize : Anonymize.level;
  upload : upload_mode;
  slow_threshold : int;
  backpressure_base_rate : int;
  backpressure_defer : float;
  resend_dead_letters : bool;
  upload_batch : int;
  delta_encode : bool;
  batch_linger : float;
  attribute_fixes : bool;
}

let default_config =
  {
    arrival_rate = 1.0;
    workload = Workload.default;
    fault_probability = 0.02;
    max_steps = 20_000;
    engine = Engine.Vm;
    anonymize = Anonymize.Full;
    upload = Full_traces;
    slow_threshold = 15_000;
    backpressure_base_rate = 64;
    backpressure_defer = 0.5;
    resend_dead_letters = false;
    (* Batching and delta encoding are off by default: the legacy
       single-frame upload path stays byte-for-byte unperturbed. *)
    upload_batch = 1;
    delta_encode = false;
    batch_linger = 0.25;
    (* Attribution adds bytes to every upload; off by default so the
       legacy wire stream is byte-for-byte unperturbed. *)
    attribute_fixes = false;
  }

type metrics = {
  sessions : int;
  guided_runs : int;
  user_failures : int;
  guided_failures : int;
  averted_crashes : int;
  deferred_acquisitions : int;
  guard_flags : int;
  traces_uploaded : int;
  fix_epoch : int;
  signals : (Feedback.signal * int) list;
  pressure : int;
  thinned_uploads : int;
  deferred_uploads : int;
  dead_letters : int;
  batches_sent : int;
  delta_records : int;
  canary_exposed : bool;
}

type t = {
  config : config;
  sim : Sim.t;
  rng : Rng.t;
  program : Ir.t;
  digest : string;
  endpoint : Transport.endpoint;
  pod_id : int;
  (* Replayable cohort identity for canary membership: the platform
     passes the pod's fleet index, so the same run config yields the
     same cohort regardless of how many pods were minted before. *)
  cohort : int;
  mutable fixes : Fixgen.fix list;
  mutable fix_epoch : int;
  mutable canary : int list;  (* fix ids gated by cohort membership *)
  mutable canary_mils : int;
  mutable canary_exposed : bool;  (* ever ran with a canary fix active *)
  mutable pending_guidance : Guidance.directive list;
  mutable sessions : int;
  mutable guided_runs : int;
  mutable user_failures : int;
  mutable guided_failures : int;
  mutable averted_crashes : int;
  mutable deferred_acquisitions : int;
  mutable guard_flags : int;
  mutable traces_uploaded : int;
  mutable signal_counts : (Feedback.signal * int) list;
  mutable active : bool;  (* false once the chaos harness stops the pod *)
  (* ---- Backpressure response ----
     [pressure_rng] is seeded from the pod id, never from the main
     stream: at pressure level 0 no draw happens at all, and above it
     the jitter draws cannot perturb session randomness. *)
  pressure_rng : Rng.t;
  mutable pressure : int;  (* hive load level, 0–3 *)
  mutable success_streak : int;  (* successes since the last kept-full one *)
  mutable thinned_uploads : int;
  mutable deferred_uploads : int;
  mutable dead_letters : int;
  (* ---- Batched / delta uploads ----
     [batch] accumulates scrubbed success-class traces newest-first;
     it flushes when full, when a failure joins it (failures are
     immediate), or when the linger timer fires.  [basis] is the last
     hive-announced prefix basis for this program. *)
  mutable batch : Trace.t list;
  mutable batch_armed : bool;  (* linger timer pending *)
  mutable basis : (int * int * Trace.t) option;  (* id, fingerprint, trace *)
  mutable batches_sent : int;
  mutable delta_records : int;
}

let next_pod_id = ref 0

let bump_signal t signal =
  let rec loop = function
    | [] -> [ (signal, 1) ]
    | (s, n) :: rest when s = signal -> (s, n + 1) :: rest
    | pair :: rest -> pair :: loop rest
  in
  t.signal_counts <- loop t.signal_counts

(* Hive load is global, so pressure piggybacked on a message for some
   other program still applies; clamp to the protocol's 0–3 range so a
   byzantine hive cannot push the shift counts out of range. *)
let set_pressure t level = t.pressure <- max 0 (min 3 level)

(* The monotonic fix-epoch guard: a duplicated, reordered, or replayed
   downstream frame carrying an older epoch can never regress the pod's
   fix state — in particular a stale Fix_update can never resurrect a
   fix a later Fix_retract removed. *)
let apply_fix_state t ~program_digest ~epoch ~fixes ~canary ~canary_mils =
  if String.equal program_digest t.digest && epoch > t.fix_epoch then begin
    t.fixes <- fixes;
    t.fix_epoch <- epoch;
    t.canary <- canary;
    t.canary_mils <- canary_mils
  end

let handle_message t payload =
  match Protocol.decode payload with
  | Error _ -> ()
  | Ok (Protocol.Fix_update { program_digest; epoch; fixes; canary; canary_mils; pressure })
    ->
    set_pressure t pressure;
    apply_fix_state t ~program_digest ~epoch ~fixes ~canary ~canary_mils
  | Ok
      (Protocol.Fix_retract
         { program_digest; epoch; fixes; canary; canary_mils; pressure; retracted = _ }) ->
    (* The retracted ids are already absent from [fixes]; the pod only
       needs the surviving state, under the same monotonic guard. *)
    set_pressure t pressure;
    apply_fix_state t ~program_digest ~epoch ~fixes ~canary ~canary_mils
  | Ok (Protocol.Guidance_update { program_digest; directives; pressure }) ->
    set_pressure t pressure;
    if String.equal program_digest t.digest then
      t.pending_guidance <- t.pending_guidance @ directives
  | Ok (Protocol.Pressure_update { level }) -> set_pressure t level
  | Ok (Protocol.Basis_update { program_digest; basis_id; payload }) ->
    (* A prefix basis to delta future uploads against.  Decoded from
       the announced payload bytes — the hive keeps the same decoded
       trace on its side, so the XOR anchors agree exactly. *)
    if String.equal program_digest t.digest then begin
      match Wire.decode payload with
      | Error _ -> ()
      | Ok basis ->
        t.basis <- Some (basis_id, Protocol.basis_fingerprint payload, basis)
    end
  | Ok
      ( Protocol.Trace_upload _ | Protocol.Sampled_report _ | Protocol.Shard_map_update _
      | Protocol.Knowledge_delta _ | Protocol.Frontier_summary _ | Protocol.Batch_upload _ ) ->
    (* Upstream-only and federation-plane messages: pods upload through
       a federation router, which consumes the shard map itself. *)
    ()

let create ?(config = default_config) ?cohort ~sim ~rng ~program ~endpoint () =
  incr next_pod_id;
  let t =
    {
      config;
      sim;
      rng;
      program;
      digest = Ir.digest program;
      endpoint;
      pod_id = !next_pod_id;
      cohort = Option.value ~default:!next_pod_id cohort;
      fixes = [];
      fix_epoch = 0;
      canary = [];
      canary_mils = 0;
      canary_exposed = false;
      pending_guidance = [];
      sessions = 0;
      guided_runs = 0;
      user_failures = 0;
      guided_failures = 0;
      averted_crashes = 0;
      deferred_acquisitions = 0;
      guard_flags = 0;
      traces_uploaded = 0;
      signal_counts = [];
      active = true;
      pressure_rng = Rng.create (0x9E3779B9 lxor !next_pod_id);
      pressure = 0;
      success_streak = 0;
      thinned_uploads = 0;
      deferred_uploads = 0;
      dead_letters = 0;
      batch = [];
      batch_armed = false;
      basis = None;
      batches_sent = 0;
      delta_records = 0;
    }
  in
  Transport.on_receive endpoint (handle_message t);
  (* Dead-letter accounting: an upload the transport abandoned after its
     retry budget.  A batched frame loses every trace it carried, so it
     counts its record count, not 1 — pressure and shed quartiles stay
     honest.  Optionally re-sent once per give-up (fresh sequence
     number and budget); off by default so existing runs are unchanged. *)
  Transport.on_give_up endpoint (fun payload ->
      let lost =
        match Protocol.decode payload with
        | Ok (Protocol.Batch_upload { records; _ }) -> max 1 (List.length records)
        | Ok _ | Error _ -> 1
      in
      t.dead_letters <- t.dead_letters + lost;
      if t.config.resend_dead_letters then Transport.send endpoint payload);
  t

(* The fix set this pod actually runs: fleet-wide fixes always, canary
   fixes only when the rendezvous hash puts this pod's cohort id in the
   canary cohort for that fix.  With no canaries this is [t.fixes]. *)
let active_fixes t =
  if t.canary = [] then t.fixes
  else
    List.filter
      (fun fix ->
        (not (List.mem fix.Fixgen.id t.canary))
        || Fix_lifecycle.in_cohort ~cohort:t.cohort ~fix_id:fix.Fixgen.id
             ~mils:t.canary_mils)
      t.fixes

let guards fixes =
  List.filter_map
    (fun fix ->
      match fix.Fixgen.kind with
      | Fixgen.Input_guard { condition; site; crash_kind; _ } -> Some (condition, site, crash_kind)
      | _ -> None)
    fixes

(* Under backpressure, success-class uploads are deferred with a
   jittered delay that doubles per pressure level — the pods spread
   their load instead of synchronizing on the hive's recovery.  Failure
   uploads never pass through here. *)
let send_deferred t payload =
  if t.pressure = 0 then Transport.send t.endpoint payload
  else begin
    let base = t.config.backpressure_defer *. float_of_int (1 lsl (t.pressure - 1)) in
    let delay = base *. (0.5 +. Rng.float t.pressure_rng 1.0) in
    t.deferred_uploads <- t.deferred_uploads + 1;
    Sim.schedule t.sim ~delay (fun () -> Transport.send t.endpoint payload)
  end

(* Flush the accumulated batch as one {!Protocol.Batch_upload} frame.
   With an announced basis every record delta-encodes against it (the
   fingerprint rides along so the hive can detect a stale basis);
   otherwise the first record anchors the rest.  [encode_record] falls
   back to full encoding whenever the delta would be larger, so a
   batch is never bigger than the sum of its full frames. *)
let flush_batch t ~immediate =
  match List.rev t.batch with
  | [] -> ()
  | first :: rest as traces ->
    t.batch <- [];
    let basis_id, basis_check, records =
      match (t.config.delta_encode, t.basis) with
      | true, Some (id, check, basis) ->
        (id, check, List.map (fun tr -> Wire.encode_record ~basis tr) traces)
      | true, None ->
        ( 0,
          0,
          Wire.encode_record first
          :: List.map (fun tr -> Wire.encode_record ~basis:first tr) rest )
      | false, _ -> (0, 0, List.map (fun tr -> Wire.encode_record tr) traces)
    in
    List.iter
      (fun r ->
        if String.length r > 0 && r.[0] = '\x01' then
          t.delta_records <- t.delta_records + 1)
      records;
    t.batches_sent <- t.batches_sent + 1;
    let payload =
      Protocol.encode
        (Protocol.Batch_upload { program_digest = t.digest; basis_id; basis_check; records })
    in
    if immediate then Transport.send t.endpoint payload else send_deferred t payload

let upload t (result : Interp.result) ~label ?attribution () =
  let trace =
    Trace.of_result ~program_digest:t.digest ~pod:t.pod_id ~fix_epoch:t.fix_epoch
      ?attribution
      { result with Interp.outcome = label }
  in
  match t.config.upload with
  | Full_traces ->
    let batching = t.config.upload_batch > 1 in
    (* Batched path: the scrubbed trace joins the batch; the batch
       flushes when full, immediately when a failure joins it, or when
       the linger timer fires — a trickle of traces is never held for
       long.  An immediate flush carries any queued successes along. *)
    let enqueue ~immediate =
      let scrubbed = Anonymize.apply t.config.anonymize trace in
      t.batch <- scrubbed :: t.batch;
      if immediate || List.length t.batch >= t.config.upload_batch then
        flush_batch t ~immediate
      else if not t.batch_armed then begin
        t.batch_armed <- true;
        Sim.schedule t.sim ~delay:t.config.batch_linger (fun () ->
            t.batch_armed <- false;
            flush_batch t ~immediate:false)
      end
    in
    let send_full () =
      if batching then enqueue ~immediate:false
      else
        let scrubbed = Anonymize.apply t.config.anonymize trace in
        send_deferred t (Protocol.encode (Protocol.Trace_upload (Wire.encode scrubbed)))
    in
    (* Adaptive coordinated sampling: at pressure level L, keep every
       2^L-th success-class trace at full fidelity and thin the rest to
       sampled predicate reports at rate [base × 2^L].  Failure traces
       are always full and immediate — they carry the debugging signal.
       At level 0 the counter-based gate keeps everything, so the
       fault-free stream is untouched. *)
    if Outcome.is_failure label then begin
      if batching then enqueue ~immediate:true
      else
        let scrubbed = Anonymize.apply t.config.anonymize trace in
        Transport.send t.endpoint (Protocol.encode (Protocol.Trace_upload (Wire.encode scrubbed)))
    end
    else begin
      t.success_streak <- t.success_streak + 1;
      let keep_every = 1 lsl t.pressure in
      if t.success_streak mod keep_every = 0 then send_full ()
      else begin
        let rate = t.config.backpressure_base_rate * (1 lsl t.pressure) in
        let report =
          Sampling.sample t.pressure_rng ~rate ~full_path:result.Interp.full_path
            ~outcome:label
        in
        t.thinned_uploads <- t.thinned_uploads + 1;
        send_deferred t
          (Protocol.encode (Protocol.Sampled_report { program_digest = t.digest; report }))
      end
    end;
    t.traces_uploaded <- t.traces_uploaded + 1
  | Outcomes_only ->
    let scrubbed = Anonymize.apply Anonymize.Outcome_only trace in
    Transport.send t.endpoint (Protocol.encode (Protocol.Trace_upload (Wire.encode scrubbed)));
    t.traces_uploaded <- t.traces_uploaded + 1
  | Sampled_reports rate ->
    let report =
      Sampling.sample t.rng ~rate ~full_path:result.Interp.full_path ~outcome:label
    in
    Transport.send t.endpoint
      (Protocol.encode (Protocol.Sampled_report { program_digest = t.digest; report }));
    t.traces_uploaded <- t.traces_uploaded + 1

let execute t ~user ~inputs ~fault_plan ~sched =
  let env = Env.make ~fault_plan ~seed:(Rng.int t.rng 1_000_000) ~inputs () in
  let active = active_fixes t in
  if
    t.canary <> []
    && List.exists (fun fix -> List.mem fix.Fixgen.id t.canary) active
  then t.canary_exposed <- true;
  let hooks = Fixgen.runtime_hooks active in
  (* Input guards: the pod knows these inputs used to crash (the
     unconditional site protection is already in [hooks]); flag the
     session as a predicted failure. *)
  let flagged =
    List.exists
      (fun (condition, _, _) -> Path_cond.satisfied_by condition inputs)
      (guards active)
  in
  if flagged then t.guard_flags <- t.guard_flags + 1;
  let result =
    Engine.run ~max_steps:t.config.max_steps ~hooks ~engine:t.config.engine ~program:t.program
      ~env ~sched ()
  in
  if Outcome.is_failure result.Interp.outcome then
    if user then t.user_failures <- t.user_failures + 1
    else t.guided_failures <- t.guided_failures + 1;
  t.averted_crashes <- t.averted_crashes + result.Interp.suppressed_crashes;
  t.deferred_acquisitions <- t.deferred_acquisitions + result.Interp.deferred_acquisitions;
  let signal =
    Feedback.signal_of_run ~outcome:result.Interp.outcome ~steps:result.Interp.steps
      ~slow_threshold:t.config.slow_threshold
  in
  bump_signal t signal;
  let label = Feedback.label_of_signal signal ~outcome:result.Interp.outcome in
  let attribution =
    if t.config.attribute_fixes then
      Some
        {
          Trace.active_fixes =
            List.sort Int.compare (List.map (fun f -> f.Fixgen.id) active);
          (* Every observable hook action on this run: immunity defers,
             crash suppressions, and guard flags — the misfire signal
             the hive's health test reads on benign workloads. *)
          hook_fires =
            result.Interp.suppressed_crashes + result.Interp.deferred_acquisitions
            + (if flagged then 1 else 0);
        }
    else None
  in
  upload t result ~label ?attribution ()

let run_directive t directive =
  t.guided_runs <- t.guided_runs + 1;
  match directive with
  | Guidance.Cover_direction { test; _ } ->
    execute t ~user:false ~inputs:test.Softborg_symexec.Testgen.inputs
      ~fault_plan:test.Softborg_symexec.Testgen.fault_plan ~sched:Sched.Round_robin
  | Guidance.Probe_schedules { inputs; seeds } ->
    List.iter
      (fun seed ->
        execute t ~user:false ~inputs ~fault_plan:Env.No_faults
          ~sched:(Sched.Random_sched (Rng.create seed)))
      seeds

let run_session t =
  t.sessions <- t.sessions + 1;
  let inputs = Workload.draw t.rng t.config.workload ~n_inputs:t.program.Ir.n_inputs in
  let fault_plan =
    if t.config.fault_probability > 0.0 then Env.Random_faults t.config.fault_probability
    else Env.No_faults
  in
  execute t ~user:true ~inputs ~fault_plan ~sched:(Sched.Random_sched (Rng.split t.rng))

let rec schedule_next t =
  let gap = Rng.exponential t.rng t.config.arrival_rate in
  Sim.schedule t.sim ~delay:gap (fun () ->
      (* A stopped pod's pending arrival fires but does nothing and
         does not re-arm: the session stream dies with the user. *)
      if t.active then begin
        (* Guidance directives take priority over natural sessions: the
           hive asked for specific evidence. *)
        (match t.pending_guidance with
        | directive :: rest ->
          t.pending_guidance <- rest;
          run_directive t directive
        | [] -> run_session t);
        schedule_next t
      end)

let start t = schedule_next t
let stop t = t.active <- false

let metrics t =
  {
    sessions = t.sessions;
    guided_runs = t.guided_runs;
    user_failures = t.user_failures;
    guided_failures = t.guided_failures;
    averted_crashes = t.averted_crashes;
    deferred_acquisitions = t.deferred_acquisitions;
    guard_flags = t.guard_flags;
    traces_uploaded = t.traces_uploaded;
    fix_epoch = t.fix_epoch;
    signals = t.signal_counts;
    pressure = t.pressure;
    thinned_uploads = t.thinned_uploads;
    deferred_uploads = t.deferred_uploads;
    dead_letters = t.dead_letters;
    batches_sent = t.batches_sent;
    delta_records = t.delta_records;
    canary_exposed = t.canary_exposed;
  }
