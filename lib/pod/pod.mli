(** The pod: the per-instance agent of Figure 1.

    A pod "lies underneath" one instance of a program: it runs user
    sessions against the instrumented interpreter, captures by-products
    (optionally sampled and anonymized), relays them to the hive over
    the reliable transport, applies fix updates the hive pushes down,
    and executes guidance directives — all on the shared simulated
    clock. *)

module Rng := Softborg_util.Rng
module Ir := Softborg_prog.Ir
module Anonymize := Softborg_trace.Anonymize
module Sim := Softborg_net.Sim
module Transport := Softborg_net.Transport

(** What the pod uploads, per platform mode. *)
type upload_mode =
  | Full_traces  (** SoftBorg: the whole by-product bundle. *)
  | Sampled_reports of int  (** CBI: predicate counts at rate 1/n. *)
  | Outcomes_only  (** WER: the failure bucket, nothing else. *)

type config = {
  arrival_rate : float;  (** User sessions per simulated second. *)
  workload : Workload.profile;
  fault_probability : float;  (** Ambient environment-fault rate. *)
  max_steps : int;  (** Watchdog budget per session. *)
  engine : Softborg_exec.Engine.t;
      (** Execution engine; defaults to the bytecode {!Softborg_exec.Vm}
          — executions/sec is the pod's traffic multiplier, and the VM
          is a tested drop-in for the tree walk. *)
  anonymize : Anonymize.level;
  upload : upload_mode;
  slow_threshold : int;  (** Steps beyond which users get frustrated. *)
  backpressure_base_rate : int;
      (** Sampled-report rate for success traces thinned under hive
          pressure; the effective rate is [base × 2^level]. *)
  backpressure_defer : float;
      (** Base seconds of jittered deferral for success-class uploads
          under pressure; doubles per level.  Jitter draws come from a
          pod-local stream, so level-0 runs are byte-identical to
          builds without backpressure. *)
  resend_dead_letters : bool;
      (** Re-send an upload the transport gave up on (fresh sequence
          number and retry budget).  Default false: count only. *)
  upload_batch : int;
      (** Traces per {!Softborg_hive.Protocol.Batch_upload} frame.  The
          default 1 keeps the legacy one-frame-per-trace path
          byte-for-byte unperturbed; [> 1] accumulates success-class
          traces and flushes when full, when a failure joins the batch
          (failures are immediate), or after [batch_linger]. *)
  delta_encode : bool;
      (** Delta-encode batch records against the hive-announced prefix
          basis (or, without one, against the batch's own first
          record).  Never worse than full encoding — the smaller of the
          two encodings is sent per record.  Default false. *)
  batch_linger : float;
      (** Max seconds a partially-filled batch waits before flushing. *)
  attribute_fixes : bool;
      (** Tag every upload with the active fix ids and hook-fire count
          (see {!Softborg_trace.Trace.attribution}) — the hive's
          rollout health telemetry.  Default false: attribution adds
          bytes to every frame, and the legacy wire stream must stay
          byte-for-byte unperturbed. *)
}

val default_config : config

type metrics = {
  sessions : int;  (** Natural user sessions executed. *)
  guided_runs : int;  (** Hive-directed executions. *)
  user_failures : int;  (** Failures the user actually experienced. *)
  guided_failures : int;
      (** Failures during hive-directed runs — evidence, not user pain. *)
  averted_crashes : int;  (** Suppression-hook saves. *)
  deferred_acquisitions : int;  (** Immunity overhead. *)
  guard_flags : int;  (** Sessions whose inputs matched an input guard. *)
  traces_uploaded : int;
  fix_epoch : int;  (** Current fix version the pod runs with. *)
  signals : (Feedback.signal * int) list;  (** User-signal histogram. *)
  pressure : int;  (** Last hive load level heard (0–3). *)
  thinned_uploads : int;
      (** Success traces downgraded to sampled reports under pressure. *)
  deferred_uploads : int;  (** Uploads delayed by jittered backoff. *)
  dead_letters : int;
      (** Traces the transport abandoned (a lost batch counts every
          record it carried). *)
  batches_sent : int;  (** {!Softborg_hive.Protocol.Batch_upload} frames sent. *)
  delta_records : int;  (** Batch records that went out delta-encoded. *)
  canary_exposed : bool;
      (** Whether this pod ever executed a session with a canary-staged
          fix active — the numerator of "fraction of fleet exposed". *)
}

type t

val create :
  ?config:config ->
  ?cohort:int ->
  sim:Sim.t ->
  rng:Rng.t ->
  program:Ir.t ->
  endpoint:Transport.endpoint ->
  unit ->
  t
(** [endpoint] is the pod's side of its connection to the hive; the
    pod installs its receive handler.  [cohort] is the pod's stable
    identity for canary-cohort membership (the platform passes the
    fleet index, making cohorts replayable across runs); it defaults
    to the process-global pod counter. *)

val start : t -> unit
(** Schedule the first user session. *)

val stop : t -> unit
(** Stop generating sessions (the user leaves).  The pod's pending
    arrival fires as a no-op; already-sent traffic still completes.
    Used by the chaos harness for pod churn. *)

val run_session : t -> unit
(** Execute one natural session immediately (also used by tests). *)

val metrics : t -> metrics
