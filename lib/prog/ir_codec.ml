module Codec = Softborg_util.Codec

let unop_tag = function Ir.Neg -> 0 | Ir.Not -> 1

let unop_of_tag = function
  | 0 -> Ir.Neg
  | 1 -> Ir.Not
  | n -> raise (Codec.Malformed (Printf.sprintf "unop tag %d" n))

let binop_tag = function
  | Ir.Add -> 0
  | Ir.Sub -> 1
  | Ir.Mul -> 2
  | Ir.Div -> 3
  | Ir.Mod -> 4
  | Ir.Eq -> 5
  | Ir.Ne -> 6
  | Ir.Lt -> 7
  | Ir.Le -> 8
  | Ir.Gt -> 9
  | Ir.Ge -> 10
  | Ir.And -> 11
  | Ir.Or -> 12

let binop_of_tag = function
  | 0 -> Ir.Add
  | 1 -> Ir.Sub
  | 2 -> Ir.Mul
  | 3 -> Ir.Div
  | 4 -> Ir.Mod
  | 5 -> Ir.Eq
  | 6 -> Ir.Ne
  | 7 -> Ir.Lt
  | 8 -> Ir.Le
  | 9 -> Ir.Gt
  | 10 -> Ir.Ge
  | 11 -> Ir.And
  | 12 -> Ir.Or
  | n -> raise (Codec.Malformed (Printf.sprintf "binop tag %d" n))

let rec write_expr w = function
  | Ir.Const c ->
    Codec.Writer.byte w 0;
    Codec.Writer.zigzag w c
  | Ir.Input i ->
    Codec.Writer.byte w 1;
    Codec.Writer.varint w i
  | Ir.Var (Ir.Global name) ->
    Codec.Writer.byte w 2;
    Codec.Writer.bytes w name
  | Ir.Var (Ir.Local name) ->
    Codec.Writer.byte w 3;
    Codec.Writer.bytes w name
  | Ir.Unop (op, e) ->
    Codec.Writer.byte w 4;
    Codec.Writer.byte w (unop_tag op);
    write_expr w e
  | Ir.Binop (op, a, b) ->
    Codec.Writer.byte w 5;
    Codec.Writer.byte w (binop_tag op);
    write_expr w a;
    write_expr w b

let rec read_expr r =
  match Codec.Reader.byte r with
  | 0 -> Ir.Const (Codec.Reader.zigzag r)
  | 1 -> Ir.Input (Codec.Reader.varint r)
  | 2 -> Ir.Var (Ir.Global (Codec.Reader.bytes r))
  | 3 -> Ir.Var (Ir.Local (Codec.Reader.bytes r))
  | 4 ->
    let op = unop_of_tag (Codec.Reader.byte r) in
    Ir.Unop (op, read_expr r)
  | 5 ->
    let op = binop_of_tag (Codec.Reader.byte r) in
    let a = read_expr r in
    let b = read_expr r in
    Ir.Binop (op, a, b)
  | n -> raise (Codec.Malformed (Printf.sprintf "expr tag %d" n))

(* ---- Whole programs --------------------------------------------------- *)

let write_var w = function
  | Ir.Global name ->
    Codec.Writer.byte w 0;
    Codec.Writer.bytes w name
  | Ir.Local name ->
    Codec.Writer.byte w 1;
    Codec.Writer.bytes w name

let read_var r =
  match Codec.Reader.byte r with
  | 0 -> Ir.Global (Codec.Reader.bytes r)
  | 1 -> Ir.Local (Codec.Reader.bytes r)
  | n -> raise (Codec.Malformed (Printf.sprintf "var tag %d" n))

let syscall_tag = function
  | Ir.Sys_read -> 0
  | Ir.Sys_open -> 1
  | Ir.Sys_write -> 2
  | Ir.Sys_net -> 3
  | Ir.Sys_time -> 4

let syscall_of_tag = function
  | 0 -> Ir.Sys_read
  | 1 -> Ir.Sys_open
  | 2 -> Ir.Sys_write
  | 3 -> Ir.Sys_net
  | 4 -> Ir.Sys_time
  | n -> raise (Codec.Malformed (Printf.sprintf "syscall tag %d" n))

let write_instr w = function
  | Ir.Assign (v, e) ->
    Codec.Writer.byte w 0;
    write_var w v;
    write_expr w e
  | Ir.Branch { cond; if_true; if_false } ->
    Codec.Writer.byte w 1;
    write_expr w cond;
    Codec.Writer.varint w if_true;
    Codec.Writer.varint w if_false
  | Ir.Jump pc ->
    Codec.Writer.byte w 2;
    Codec.Writer.varint w pc
  | Ir.Syscall { kind; dst } ->
    Codec.Writer.byte w 3;
    Codec.Writer.byte w (syscall_tag kind);
    write_var w dst
  | Ir.Lock l ->
    Codec.Writer.byte w 4;
    Codec.Writer.varint w l
  | Ir.Unlock l ->
    Codec.Writer.byte w 5;
    Codec.Writer.varint w l
  | Ir.Assert { cond; message } ->
    Codec.Writer.byte w 6;
    write_expr w cond;
    Codec.Writer.bytes w message
  | Ir.Yield -> Codec.Writer.byte w 7
  | Ir.Halt -> Codec.Writer.byte w 8

let read_instr r =
  match Codec.Reader.byte r with
  | 0 ->
    let v = read_var r in
    Ir.Assign (v, read_expr r)
  | 1 ->
    let cond = read_expr r in
    let if_true = Codec.Reader.varint r in
    let if_false = Codec.Reader.varint r in
    Ir.Branch { cond; if_true; if_false }
  | 2 -> Ir.Jump (Codec.Reader.varint r)
  | 3 ->
    let kind = syscall_of_tag (Codec.Reader.byte r) in
    Ir.Syscall { kind; dst = read_var r }
  | 4 -> Ir.Lock (Codec.Reader.varint r)
  | 5 -> Ir.Unlock (Codec.Reader.varint r)
  | 6 ->
    let cond = read_expr r in
    Ir.Assert { cond; message = Codec.Reader.bytes r }
  | 7 -> Ir.Yield
  | 8 -> Ir.Halt
  | n -> raise (Codec.Malformed (Printf.sprintf "instr tag %d" n))

let write_program w (p : Ir.t) =
  Codec.Writer.bytes w p.Ir.name;
  Codec.Writer.list w (Codec.Writer.bytes w) p.Ir.globals;
  Codec.Writer.varint w p.Ir.n_inputs;
  Codec.Writer.varint w p.Ir.n_locks;
  Codec.Writer.list w
    (fun body -> Codec.Writer.list w (write_instr w) (Array.to_list body))
    (Array.to_list p.Ir.threads)

let read_program r =
  let name = Codec.Reader.bytes r in
  let globals = Codec.Reader.list r Codec.Reader.bytes in
  let n_inputs = Codec.Reader.varint r in
  let n_locks = Codec.Reader.varint r in
  let threads =
    Codec.Reader.list r (fun r -> Array.of_list (Codec.Reader.list r read_instr))
    |> Array.of_list
  in
  { Ir.name; globals; n_inputs; n_locks; threads }
