(** Program intermediate representation.

    SoftBorg's mechanisms consume execution {e by-products} — branch
    bits, syscall summaries, lock and schedule events (paper §2).  This
    IR is the substitute for real instrumented binaries: a small
    imperative multi-threaded language whose interpreter emits exactly
    those by-products.  A program is a fixed set of thread bodies, each
    a flat array of instructions over integer-valued variables; inputs
    and system-call results are the only {e program-external} value
    sources, and branches whose condition depends on them are the
    input-dependent branches the paper records one bit for (§3.1). *)

(** Variables.  Globals are shared between threads; locals are
    per-thread.  All variables default to 0. *)
type var =
  | Global of string
  | Local of string

type unop =
  | Neg  (** Arithmetic negation. *)
  | Not  (** Logical negation (0 ↦ 1, non-zero ↦ 0). *)

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or

(** Integer expressions.  Comparison and logical operators evaluate to
    0 or 1.  [Input i] reads program input slot [i] — an external,
    taint-carrying value. *)
type expr =
  | Const of int
  | Var of var
  | Input of int
  | Unop of unop * expr
  | Binop of binop * expr * expr

(** Modeled system calls.  Their return values come from the
    environment model and are external (tainted); the environment may
    inject faults (negative returns), which is how the paper's guidance
    "injects a short socket read" (§3.3). *)
type syscall_kind =
  | Sys_read
  | Sys_open
  | Sys_write
  | Sys_net
  | Sys_time

(** Instructions.  [Branch] falls through to [if_true] or jumps to
    [if_false]; both are absolute program counters within the same
    thread body.  [Assert] with a false condition is a crash site.
    [Yield] is a scheduling point hint. *)
type instr =
  | Assign of var * expr
  | Branch of { cond : expr; if_true : int; if_false : int }
  | Jump of int
  | Syscall of { kind : syscall_kind; dst : var }
  | Lock of int
  | Unlock of int
  | Assert of { cond : expr; message : string }
  | Yield
  | Halt

type t = {
  name : string;
  globals : string list;  (** Declared shared variables. *)
  n_inputs : int;  (** Size of the input vector. *)
  n_locks : int;  (** Number of mutexes. *)
  threads : instr array array;  (** One body per thread; thread 0 is main. *)
}

(** A branch site, uniquely identifying one [Branch] instruction. *)
type site = { thread : int; pc : int }

val site_equal : site -> site -> bool
val site_compare : site -> site -> int
val pp_site : Format.formatter -> site -> unit

val syscall_name : syscall_kind -> string

val pp_expr : Format.formatter -> expr -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> t -> unit
(** Full program listing, one thread at a time. *)

val branch_sites : t -> site list
(** All [Branch] instruction sites, in (thread, pc) order.  This is the
    static branch-site universe used for coverage accounting. *)

val assert_sites : t -> site list
(** All [Assert] sites (potential crash sites). *)

val lock_sites : t -> (site * int) list
(** All [Lock] sites with the lock they acquire. *)

val instr_count : t -> int
(** Total instructions across all threads. *)

val digest : t -> string
(** Structural digest (hex); the hive keys its per-program knowledge by
    this, so two pods running the same build aggregate together.
    Depends only on program structure: a structurally rebuilt program
    digests identically regardless of value sharing, which is what lets
    compile caches and persisted checkpoints use it as a key. *)

val validate : t -> (unit, string) result
(** Checks structural well-formedness: jump/branch targets in range,
    lock ids within [n_locks], input slots within [n_inputs], globals
    referenced only if declared, and at least one thread. *)
