type var =
  | Global of string
  | Local of string

type unop = Neg | Not
type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type expr =
  | Const of int
  | Var of var
  | Input of int
  | Unop of unop * expr
  | Binop of binop * expr * expr

type syscall_kind = Sys_read | Sys_open | Sys_write | Sys_net | Sys_time

type instr =
  | Assign of var * expr
  | Branch of { cond : expr; if_true : int; if_false : int }
  | Jump of int
  | Syscall of { kind : syscall_kind; dst : var }
  | Lock of int
  | Unlock of int
  | Assert of { cond : expr; message : string }
  | Yield
  | Halt

type t = {
  name : string;
  globals : string list;
  n_inputs : int;
  n_locks : int;
  threads : instr array array;
}

type site = { thread : int; pc : int }

let site_equal a b = a.thread = b.thread && a.pc = b.pc

let site_compare a b =
  match Int.compare a.thread b.thread with 0 -> Int.compare a.pc b.pc | c -> c

let pp_site fmt s = Format.fprintf fmt "t%d:%d" s.thread s.pc

let syscall_name = function
  | Sys_read -> "read"
  | Sys_open -> "open"
  | Sys_write -> "write"
  | Sys_net -> "net"
  | Sys_time -> "time"

let unop_name = function Neg -> "-" | Not -> "!"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let pp_var fmt = function
  | Global g -> Format.fprintf fmt "@%s" g
  | Local l -> Format.pp_print_string fmt l

let rec pp_expr fmt = function
  | Const c -> Format.pp_print_int fmt c
  | Var v -> pp_var fmt v
  | Input i -> Format.fprintf fmt "in[%d]" i
  | Unop (op, e) -> Format.fprintf fmt "%s(%a)" (unop_name op) pp_expr e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_name op) pp_expr b

let pp_instr fmt = function
  | Assign (v, e) -> Format.fprintf fmt "%a := %a" pp_var v pp_expr e
  | Branch { cond; if_true; if_false } ->
    Format.fprintf fmt "if %a then %d else %d" pp_expr cond if_true if_false
  | Jump pc -> Format.fprintf fmt "jump %d" pc
  | Syscall { kind; dst } -> Format.fprintf fmt "%a := sys_%s()" pp_var dst (syscall_name kind)
  | Lock l -> Format.fprintf fmt "lock %d" l
  | Unlock l -> Format.fprintf fmt "unlock %d" l
  | Assert { cond; message } -> Format.fprintf fmt "assert %a (%s)" pp_expr cond message
  | Yield -> Format.pp_print_string fmt "yield"
  | Halt -> Format.pp_print_string fmt "halt"

let pp fmt t =
  Format.fprintf fmt "program %s (inputs=%d locks=%d)@." t.name t.n_inputs t.n_locks;
  Array.iteri
    (fun ti body ->
      Format.fprintf fmt "thread %d:@." ti;
      Array.iteri (fun pc instr -> Format.fprintf fmt "  %3d: %a@." pc pp_instr instr) body)
    t.threads

let fold_instrs f init t =
  let acc = ref init in
  Array.iteri
    (fun thread body ->
      Array.iteri (fun pc instr -> acc := f !acc { thread; pc } instr) body)
    t.threads;
  !acc

let branch_sites t =
  fold_instrs (fun acc site -> function Branch _ -> site :: acc | _ -> acc) [] t |> List.rev

let assert_sites t =
  fold_instrs (fun acc site -> function Assert _ -> site :: acc | _ -> acc) [] t |> List.rev

let lock_sites t =
  fold_instrs (fun acc site -> function Lock l -> (site, l) :: acc | _ -> acc) [] t |> List.rev

let instr_count t = Array.fold_left (fun acc body -> acc + Array.length body) 0 t.threads

(* The digest feeds compile caches and persisted checkpoints, so it
   must depend only on program {e structure}: two structurally equal
   programs built independently must collide, and sharing inside one
   value must not matter.  Marshal fails both (it encodes sharing), so
   we serialize canonically into a buffer and hash that. *)
let digest t =
  let buf = Buffer.create 512 in
  let tag c = Buffer.add_char buf c in
  let int n =
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf ';'
  in
  let str s =
    int (String.length s);
    Buffer.add_string buf s
  in
  let var = function
    | Global g ->
      tag 'G';
      str g
    | Local l ->
      tag 'L';
      str l
  in
  let unop_code = function Neg -> 0 | Not -> 1 in
  let binop_code = function
    | Add -> 0
    | Sub -> 1
    | Mul -> 2
    | Div -> 3
    | Mod -> 4
    | Eq -> 5
    | Ne -> 6
    | Lt -> 7
    | Le -> 8
    | Gt -> 9
    | Ge -> 10
    | And -> 11
    | Or -> 12
  in
  let syscall_code = function
    | Sys_read -> 0
    | Sys_open -> 1
    | Sys_write -> 2
    | Sys_net -> 3
    | Sys_time -> 4
  in
  let rec expr = function
    | Const c ->
      tag 'c';
      int c
    | Var v ->
      tag 'v';
      var v
    | Input i ->
      tag 'i';
      int i
    | Unop (op, e) ->
      tag 'u';
      int (unop_code op);
      expr e
    | Binop (op, a, b) ->
      tag 'b';
      int (binop_code op);
      expr a;
      expr b
  in
  let instr = function
    | Assign (v, e) ->
      tag 'A';
      var v;
      expr e
    | Branch { cond; if_true; if_false } ->
      tag 'B';
      expr cond;
      int if_true;
      int if_false
    | Jump target ->
      tag 'J';
      int target
    | Syscall { kind; dst } ->
      tag 'S';
      int (syscall_code kind);
      var dst
    | Lock l ->
      tag 'K';
      int l
    | Unlock l ->
      tag 'U';
      int l
    | Assert { cond; message } ->
      tag 'T';
      expr cond;
      str message
    | Yield -> tag 'Y'
    | Halt -> tag 'H'
  in
  str t.name;
  int (List.length t.globals);
  List.iter str t.globals;
  int t.n_inputs;
  int t.n_locks;
  int (Array.length t.threads);
  Array.iter
    (fun body ->
      int (Array.length body);
      Array.iter instr body)
    t.threads;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let validate t =
  let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  let rec check_expr site = function
    | Const _ -> Ok ()
    | Var (Global g) ->
      if List.mem g t.globals then Ok ()
      else fail "%a: undeclared global %s" pp_site site g
    | Var (Local _) -> Ok ()
    | Input i ->
      if i >= 0 && i < t.n_inputs then Ok ()
      else fail "%a: input slot %d out of range" pp_site site i
    | Unop (_, e) -> check_expr site e
    | Binop (_, a, b) -> (
      match check_expr site a with Ok () -> check_expr site b | e -> e)
  in
  let check_target site body pc =
    if pc >= 0 && pc <= Array.length body then Ok ()
    else fail "%a: jump target %d out of range" pp_site site pc
  in
  let check_lock site l =
    if l >= 0 && l < t.n_locks then Ok ()
    else fail "%a: lock %d out of range" pp_site site l
  in
  if Array.length t.threads = 0 then Error "program has no threads"
  else
    fold_instrs
      (fun acc site instr ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          let body = t.threads.(site.thread) in
          match instr with
          | Assign (Global g, e) ->
            if not (List.mem g t.globals) then fail "%a: undeclared global %s" pp_site site g
            else check_expr site e
          | Assign (Local _, e) -> check_expr site e
          | Branch { cond; if_true; if_false } -> (
            match check_expr site cond with
            | Ok () -> (
              match check_target site body if_true with
              | Ok () -> check_target site body if_false
              | e -> e)
            | e -> e)
          | Jump pc -> check_target site body pc
          | Syscall { dst = Global g; _ } ->
            if List.mem g t.globals then Ok ()
            else fail "%a: undeclared global %s" pp_site site g
          | Syscall { dst = Local _; _ } -> Ok ()
          | Lock l | Unlock l -> check_lock site l
          | Assert { cond; _ } -> check_expr site cond
          | Yield | Halt -> Ok ()))
      (Ok ()) t
