(** Binary encoding of IR expressions.

    Synthesized fixes (input guards) and guidance directives carry
    path-condition expressions from the hive back to pods over the
    wire, so expressions need a compact serialization. *)

module Codec := Softborg_util.Codec

val write_expr : Codec.Writer.t -> Ir.expr -> unit

val read_expr : Codec.Reader.t -> Ir.expr
(** @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)

val write_program : Codec.Writer.t -> Ir.t -> unit
(** Serialize a whole program — used by hive checkpoints, which must
    restore the knowledge base without assuming the program is still
    registered elsewhere. *)

val read_program : Codec.Reader.t -> Ir.t
(** @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)
