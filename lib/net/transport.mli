(** Reliable, ordered-enough transport over a lossy link.

    Pods must not lose trace batches to packet drops, and the hive
    must not double-count retransmitted ones.  This transport gives
    at-least-once delivery with receiver-side deduplication (so the
    application sees each message exactly once), via sequence numbers,
    acknowledgements, and timeout-based retransmission with capped
    exponential backoff.  Delivery order is not guaranteed — the hive's
    ingestion is order-insensitive by design (tree merging commutes). *)

module Rng := Softborg_util.Rng

type config = {
  link : Link.config;
  retry_timeout : float;  (** Seconds before the first retransmission. *)
  max_retries : int;  (** Give up after this many retransmissions. *)
  backoff : float;  (** Timeout multiplier per retry (>= 1). *)
}

val default_config : config

type config_error = { field : string; reason : string }
(** Which config field was rejected, and why ([link.*] fields are
    forwarded from {!Link.validate_config}). *)

val pp_config_error : Format.formatter -> config_error -> unit

val validate_config : config -> (config, config_error) result
(** Reject non-positive timeouts, negative retry budgets, backoff
    factors below 1, and invalid link configs. *)

type stats = {
  messages_sent : int;
  retransmissions : int;
  delivered : int;  (** Unique messages handed to the application. *)
  duplicates_suppressed : int;
  gave_up : int;  (** Messages abandoned after [max_retries]. *)
  acks_sent : int;
  bytes_on_wire : int;
      (** Total packet bytes this endpoint pushed onto its outgoing
          link (data + acks, including retransmissions) — the wire
          cost the delta/batch encodings exist to shrink. *)
}

type endpoint

val endpoint_pair :
  ?config:config -> sim:Sim.t -> rng:Rng.t -> unit -> endpoint * endpoint
(** A bidirectional connection: two endpoints over two lossy link
    directions sharing one configuration.
    @raise Invalid_argument if the config fails {!validate_config}. *)

val send : endpoint -> string -> unit
(** Queue a message for reliable delivery to the peer. *)

val on_receive : endpoint -> (string -> unit) -> unit
(** Install the application handler (replaces any previous one). *)

val on_give_up : endpoint -> (string -> unit) -> unit
(** Install the dead-letter handler (replaces any previous one): called
    with the payload each time a message is abandoned after
    [max_retries], immediately after [gave_up] is counted.  The handler
    may {!send} the payload again — the re-send gets a fresh sequence
    number and retry budget.  Default: drop silently (the pre-existing
    behavior). *)

val out_link : endpoint -> Link.t option
(** The endpoint's outgoing link — exposed so the chaos harness (and
    adversarial tests) can degrade it or script faults mid-run. *)

val stats : endpoint -> stats
