(** Deterministic fault schedules for the chaos harness.

    The paper's hive runs over a "potentially unreliable network" (§4)
    serving pods that come and go; a credible reproduction has to keep
    learning through hive crashes, pod churn, and degrading links.  A
    fault plan is a time-sorted script of such faults, either authored
    explicitly ({!create}) or sampled from Poisson processes
    ({!generate}) off the splittable PRNG — so every chaos run replays
    bit-for-bit from a seed.  {!Softborg.Platform} interprets the plan
    during a fleet session. *)

module Rng := Softborg_util.Rng

type event =
  | Checkpoint of { at : float }  (** Snapshot the hive's knowledge. *)
  | Hive_crash of { at : float }
      (** Kill the hive and restart it from the latest checkpoint:
          everything learned since is forgotten. *)
  | Pod_leave of { at : float; pod : int }
      (** Stop pod [pod mod n_pods]'s workload mid-session. *)
  | Pod_join of { at : float }  (** Start a fresh pod mid-session. *)
  | Degrade of { at : float; until_ : float; link : Link.config }
      (** Swap every pod↔hive link to [link] during [at, until_). *)
  | Bad_fix of { at : float; program : int; variant : int }
      (** Inject a sabotaged fix for program [program mod n_programs]
          into the hive, as if synthesis went wrong: [variant] selects
          the sabotage shape (see {!Softborg_hive.Fixgen.sabotage_of_variant}).
          Data-only here — the platform interprets it; the staged
          rollout must detect and retract it. *)

type t

val create : event list -> t
(** Sort a hand-written script by time (stable, so same-instant events
    keep their order — e.g. a [Checkpoint] right before its
    [Hive_crash]). *)

val events : t -> event list
(** Time-ascending. *)

val length : t -> int

val pp_event : Format.formatter -> event -> unit

val generate :
  rng:Rng.t ->
  duration:float ->
  n_pods:int ->
  ?crash_rate:float ->
  ?churn_rate:float ->
  ?degrade_rate:float ->
  unit ->
  t
(** Sample a plan from independent Poisson processes (events/second;
    all rates default to 0).  Each fault family draws from its own
    split of [rng], so changing one rate never shifts another family's
    schedule.  Degradation windows last 10–60 seconds with sampled
    loss (10–35%) and latency (0.2–0.8s mean). *)
