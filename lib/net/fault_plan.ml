module Rng = Softborg_util.Rng

type event =
  | Checkpoint of { at : float }
  | Hive_crash of { at : float }
  | Pod_leave of { at : float; pod : int }
  | Pod_join of { at : float }
  | Degrade of { at : float; until_ : float; link : Link.config }
  | Bad_fix of { at : float; program : int; variant : int }

type t = { events : event list }

let time_of = function
  | Checkpoint { at }
  | Hive_crash { at }
  | Pod_leave { at; _ }
  | Pod_join { at }
  | Degrade { at; _ }
  | Bad_fix { at; _ } ->
    at

(* Stable sort: events authored at the same instant keep their plan
   order (e.g. a Checkpoint written just before its Hive_crash). *)
let create events = { events = List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) events }

let events t = t.events
let length t = List.length t.events

let pp_event fmt = function
  | Checkpoint { at } -> Format.fprintf fmt "t=%.1f checkpoint" at
  | Hive_crash { at } -> Format.fprintf fmt "t=%.1f hive-crash" at
  | Pod_leave { at; pod } -> Format.fprintf fmt "t=%.1f pod-leave #%d" at pod
  | Pod_join { at } -> Format.fprintf fmt "t=%.1f pod-join" at
  | Degrade { at; until_; link } ->
    Format.fprintf fmt "t=%.1f..%.1f degrade (drop=%.2f, latency=%.3fs)" at until_
      link.Link.drop_probability link.Link.mean_latency
  | Bad_fix { at; program; variant } ->
    Format.fprintf fmt "t=%.1f bad-fix program=%d variant=%d" at program variant

(* Poisson arrival times at [rate] events/second over [0, duration). *)
let arrivals rng ~rate ~duration =
  if rate <= 0.0 then []
  else begin
    let rec loop t acc =
      let t = t +. Rng.exponential rng rate in
      if t >= duration then List.rev acc else loop t (t :: acc)
    in
    loop 0.0 []
  end

let degraded_link rng =
  {
    Link.drop_probability = 0.10 +. Rng.float rng 0.25;
    mean_latency = 0.2 +. Rng.float rng 0.6;
    min_latency = 0.01;
  }

let generate ~rng ~duration ~n_pods ?(crash_rate = 0.0) ?(churn_rate = 0.0)
    ?(degrade_rate = 0.0) () =
  (* Each fault family draws from its own split stream, so raising one
     rate never shifts another family's event times. *)
  let crash_rng = Rng.split rng in
  let churn_rng = Rng.split rng in
  let degrade_rng = Rng.split rng in
  let crashes = List.map (fun at -> Hive_crash { at }) (arrivals crash_rng ~rate:crash_rate ~duration) in
  let churn =
    List.map
      (fun at ->
        if Rng.bool churn_rng then Pod_leave { at; pod = Rng.int churn_rng (max 1 n_pods) }
        else Pod_join { at })
      (arrivals churn_rng ~rate:churn_rate ~duration)
  in
  let degradations =
    List.map
      (fun at ->
        let until_ = Float.min duration (at +. 10.0 +. Rng.float degrade_rng 50.0) in
        Degrade { at; until_; link = degraded_link degrade_rng })
      (arrivals degrade_rng ~rate:degrade_rate ~duration)
  in
  create (crashes @ churn @ degradations)
