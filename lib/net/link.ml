module Rng = Softborg_util.Rng

type config = {
  drop_probability : float;
  mean_latency : float;
  min_latency : float;
}

let default_config = { drop_probability = 0.01; mean_latency = 0.05; min_latency = 0.005 }
let lan = { drop_probability = 0.0; mean_latency = 0.0005; min_latency = 0.0001 }

type config_error = { field : string; reason : string }

let pp_config_error fmt { field; reason } = Format.fprintf fmt "link config: %s %s" field reason

let validate_config config =
  let finite f = Float.is_finite f in
  if not (finite config.drop_probability && config.drop_probability >= 0.0
          && config.drop_probability <= 1.0)
  then Error { field = "drop_probability"; reason = "must be in [0, 1]" }
  else if not (finite config.mean_latency && config.mean_latency >= 0.0) then
    Error { field = "mean_latency"; reason = "must be finite and >= 0" }
  else if not (finite config.min_latency && config.min_latency >= 0.0) then
    Error { field = "min_latency"; reason = "must be finite and >= 0" }
  else Ok config

type t = {
  mutable config : config;
  sim : Sim.t;
  rng : Rng.t;
  (* Fault injection: with probability [duplicate_probability] a
     delivered packet is scheduled twice (independent latencies), as a
     flaky router would.  Kept outside [config] so the degradation
     schedule can swap configs without touching the adversarial knobs. *)
  mutable duplicate_probability : float;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable duplicated : int;
  mutable bytes_sent : int;
}

let create ?(config = default_config) ~sim ~rng () =
  (match validate_config config with
  | Ok _ -> ()
  | Error e -> invalid_arg (Format.asprintf "Link.create: %a" pp_config_error e));
  {
    config;
    sim;
    rng;
    duplicate_probability = 0.0;
    sent = 0;
    dropped = 0;
    delivered = 0;
    duplicated = 0;
    bytes_sent = 0;
  }

let config t = t.config

let set_config t config =
  match validate_config config with
  | Ok config -> t.config <- config
  | Error e -> invalid_arg (Format.asprintf "Link.set_config: %a" pp_config_error e)
let set_duplicate_probability t p = t.duplicate_probability <- p

let send t ~payload ~deliver =
  t.sent <- t.sent + 1;
  t.bytes_sent <- t.bytes_sent + String.length payload;
  if Rng.bernoulli t.rng t.config.drop_probability then t.dropped <- t.dropped + 1
  else begin
    let deliver_once () =
      let latency =
        t.config.min_latency
        +.
        if t.config.mean_latency <= 0.0 then 0.0
        else Rng.exponential t.rng (1.0 /. t.config.mean_latency)
      in
      Sim.schedule t.sim ~delay:latency (fun () ->
          t.delivered <- t.delivered + 1;
          deliver payload)
    in
    deliver_once ();
    (* Lazy guard first: with duplication off (the default) no extra
       RNG draw happens, so existing seeded runs are unperturbed. *)
    if t.duplicate_probability > 0.0 && Rng.bernoulli t.rng t.duplicate_probability then begin
      t.duplicated <- t.duplicated + 1;
      deliver_once ()
    end
  end

let sent t = t.sent
let dropped t = t.dropped
let delivered t = t.delivered
let duplicated t = t.duplicated
let bytes_sent t = t.bytes_sent
