module Rng = Softborg_util.Rng
module Codec = Softborg_util.Codec

type config = {
  link : Link.config;
  retry_timeout : float;
  max_retries : int;
  backoff : float;
}

let default_config =
  { link = Link.default_config; retry_timeout = 0.25; max_retries = 20; backoff = 1.5 }

type config_error = { field : string; reason : string }

let pp_config_error fmt { field; reason } =
  Format.fprintf fmt "transport config: %s %s" field reason

let validate_config config =
  match Link.validate_config config.link with
  | Error { Link.field; reason } -> Error { field = "link." ^ field; reason }
  | Ok _ ->
    if not (Float.is_finite config.retry_timeout && config.retry_timeout > 0.0) then
      Error { field = "retry_timeout"; reason = "must be finite and > 0" }
    else if config.max_retries < 0 then
      Error { field = "max_retries"; reason = "must be >= 0" }
    else if not (Float.is_finite config.backoff && config.backoff >= 1.0) then
      Error { field = "backoff"; reason = "must be finite and >= 1" }
    else Ok config

type stats = {
  messages_sent : int;
  retransmissions : int;
  delivered : int;
  duplicates_suppressed : int;
  gave_up : int;
  acks_sent : int;
  bytes_on_wire : int;
}

type packet =
  | Data of { seq : int; payload : string }
  | Ack of { seq : int }

let encode_packet packet =
  let w = Codec.Writer.create () in
  (match packet with
  | Data { seq; payload } ->
    Codec.Writer.byte w 0;
    Codec.Writer.varint w seq;
    Codec.Writer.bytes w payload
  | Ack { seq } ->
    Codec.Writer.byte w 1;
    Codec.Writer.varint w seq);
  Codec.Writer.contents w

let decode_packet s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.byte r with
  | 0 ->
    let seq = Codec.Reader.varint r in
    let payload = Codec.Reader.bytes r in
    Data { seq; payload }
  | 1 -> Ack { seq = Codec.Reader.varint r }
  | n -> raise (Codec.Malformed (Printf.sprintf "packet tag %d" n))

type endpoint = {
  sim : Sim.t;
  config : config;
  mutable out_link : Link.t option;  (* towards the peer *)
  mutable peer : endpoint option;
  mutable next_seq : int;
  mutable unacked : (int, string * int) Hashtbl.t option;  (* seq -> payload, retries *)
  acked : (int, unit) Hashtbl.t;
  seen : (int, unit) Hashtbl.t;
  mutable handler : string -> unit;
  mutable give_up_handler : string -> unit;  (* dead-letter callback *)
  mutable messages_sent : int;
  mutable retransmissions : int;
  mutable delivered : int;
  mutable duplicates_suppressed : int;
  mutable gave_up : int;
  mutable acks_sent : int;
}

let make_endpoint ~sim ~config =
  {
    sim;
    config;
    out_link = None;
    peer = None;
    next_seq = 0;
    unacked = Some (Hashtbl.create 16);
    acked = Hashtbl.create 16;
    seen = Hashtbl.create 16;
    handler = ignore;
    give_up_handler = ignore;
    messages_sent = 0;
    retransmissions = 0;
    delivered = 0;
    duplicates_suppressed = 0;
    gave_up = 0;
    acks_sent = 0;
  }

let unacked t = match t.unacked with Some h -> h | None -> assert false

let rec transmit t packet =
  match (t.out_link, t.peer) with
  | Some link, Some peer ->
    Link.send link ~payload:(encode_packet packet) ~deliver:(fun s -> receive peer s)
  | _ -> ()

and receive t raw =
  match decode_packet raw with
  | exception (Codec.Truncated | Codec.Malformed _) -> ()
  | Ack { seq } ->
    Hashtbl.replace t.acked seq ();
    Hashtbl.remove (unacked t) seq
  | Data { seq; payload } ->
    (* Always (re-)acknowledge; the previous ack may have been lost. *)
    t.acks_sent <- t.acks_sent + 1;
    transmit t (Ack { seq });
    if Hashtbl.mem t.seen seq then t.duplicates_suppressed <- t.duplicates_suppressed + 1
    else begin
      Hashtbl.replace t.seen seq ();
      t.delivered <- t.delivered + 1;
      t.handler payload
    end

let rec arm_retry t seq timeout =
  Sim.schedule t.sim ~delay:timeout (fun () ->
      match Hashtbl.find_opt (unacked t) seq with
      | None -> ()  (* acked in the meantime *)
      | Some (payload, retries) ->
        if retries >= t.config.max_retries then begin
          Hashtbl.remove (unacked t) seq;
          t.gave_up <- t.gave_up + 1;
          (* Dead-letter surface: the sender learns which payload was
             abandoned and may count it or re-enqueue it (a re-send gets
             a fresh sequence number and retry budget). *)
          t.give_up_handler payload
        end
        else begin
          Hashtbl.replace (unacked t) seq (payload, retries + 1);
          t.retransmissions <- t.retransmissions + 1;
          transmit t (Data { seq; payload });
          arm_retry t seq (timeout *. t.config.backoff)
        end)

let send t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.messages_sent <- t.messages_sent + 1;
  Hashtbl.replace (unacked t) seq (payload, 0);
  transmit t (Data { seq; payload });
  arm_retry t seq t.config.retry_timeout

let on_receive t handler = t.handler <- handler
let on_give_up t handler = t.give_up_handler <- handler
let out_link t = t.out_link

let stats t =
  {
    messages_sent = t.messages_sent;
    retransmissions = t.retransmissions;
    delivered = t.delivered;
    duplicates_suppressed = t.duplicates_suppressed;
    gave_up = t.gave_up;
    acks_sent = t.acks_sent;
    bytes_on_wire = (match t.out_link with Some l -> Link.bytes_sent l | None -> 0);
  }

let endpoint_pair ?(config = default_config) ~sim ~rng () =
  (match validate_config config with
  | Ok _ -> ()
  | Error e -> invalid_arg (Format.asprintf "Transport.endpoint_pair: %a" pp_config_error e));
  let a = make_endpoint ~sim ~config in
  let b = make_endpoint ~sim ~config in
  let link_ab = Link.create ~config:config.link ~sim ~rng:(Rng.split rng) () in
  let link_ba = Link.create ~config:config.link ~sim ~rng:(Rng.split rng) () in
  a.out_link <- Some link_ab;
  a.peer <- Some b;
  b.out_link <- Some link_ba;
  b.peer <- Some a;
  (a, b)
