(** Unidirectional lossy, latent links.

    Models the "potentially unreliable network" between pods and the
    hive (paper §4): each packet is independently dropped with a fixed
    probability and otherwise delivered after an exponential latency
    around a configurable mean.  Determinism comes from the link's own
    PRNG stream. *)

module Rng := Softborg_util.Rng

type config = {
  drop_probability : float;  (** Per-packet loss, in [0,1]. *)
  mean_latency : float;  (** Seconds; exponential distribution. *)
  min_latency : float;  (** Floor added to the exponential draw. *)
}

val default_config : config
(** 1% loss, 50ms mean, 5ms floor. *)

val lan : config
(** Lossless, sub-millisecond — for hive-internal traffic. *)

type config_error = { field : string; reason : string }
(** Which config field was rejected, and why. *)

val pp_config_error : Format.formatter -> config_error -> unit

val validate_config : config -> (config, config_error) result
(** Reject probabilities outside [0,1] and negative or non-finite
    latencies, instead of letting them silently skew the simulation. *)

type t

val create : ?config:config -> sim:Sim.t -> rng:Rng.t -> unit -> t
(** @raise Invalid_argument if the config fails {!validate_config}. *)

val config : t -> config

val set_config : t -> config -> unit
(** Swap the link's loss/latency parameters mid-run — the primitive the
    chaos harness uses for time-varying degradation.
    @raise Invalid_argument if the config fails {!validate_config}. *)

val set_duplicate_probability : t -> float -> unit
(** Probability that a delivered packet is delivered {e twice}, with
    independent latencies (so the copies can also reorder).  Default
    0.0, in which case no extra randomness is drawn and seeded runs are
    byte-identical to a build without the knob. *)

val send : t -> payload:string -> deliver:(string -> unit) -> unit
(** Transmit one packet; [deliver] fires after the sampled latency
    unless the packet is dropped. *)

val sent : t -> int
val dropped : t -> int
val delivered : t -> int

val duplicated : t -> int
(** Packets delivered twice by fault injection ({!delivered} counts
    both copies). *)

val bytes_sent : t -> int
