(** The symbolic-execution engine.

    Explores the execution tree of a program statically (paper §3.2,
    Fig. 2), forking at every branch whose condition depends on a
    symbol and pruning forks whose path condition interval-propagation
    refutes.  Unlike classic whole-program symbolic execution, SoftBorg
    uses this engine {e around} the collectively-built tree: to decide
    whether an unexplored direction is feasible (and produce the
    concrete inputs that reach it, §3.3), and to close the remaining
    gaps of a cumulative proof. *)

module Ir := Softborg_prog.Ir
module Outcome := Softborg_exec.Outcome
module Path_cond := Softborg_solver.Path_cond
module Verdict_cache := Softborg_solver.Verdict_cache

(** Where each symbol of a path came from — needed to turn a model
    back into an executable test (inputs vs. syscall faults). *)
type sym_origin =
  | From_input of int  (** Program input slot. *)
  | From_syscall of { occurrence : int; kind : Ir.syscall_kind }
  | From_global of string  (** Havoced global (Local consistency). *)

type path_outcome =
  | Completed
  | Crashed of { site : Ir.site; kind : Outcome.crash_kind; message : string }
  | Path_deadlock
  | Step_limit

type path = {
  decisions : (Ir.site * bool) list;  (** Branch decisions along the path. *)
  condition : Path_cond.t;  (** Conjunction over symbols. *)
  outcome : path_outcome;
  origins : sym_origin array;  (** Origin of symbol [i], for all symbols. *)
  model : int array option;  (** Satisfying symbol values, if solved SAT. *)
  solver_verdict : [ `Sat | `Unsat | `Timeout | `Unsolved ];
}

type config = {
  max_paths : int;  (** Fork budget (default 512). *)
  max_steps_per_path : int;  (** Instruction budget per path (default 4000). *)
  solver_budget : int;  (** Steps for each end-of-path solve (default 200_000). *)
  domain : int * int;  (** Symbol domain for solving (default (-64, 255)). *)
  solve_models : bool;  (** Solve each surviving path for a model (default true). *)
}

val default_config : config

type report = {
  paths : path list;  (** Surviving (not interval-refuted) paths. *)
  pruned_infeasible : int;  (** Forks refuted by interval propagation. *)
  truncated : bool;  (** Hit [max_paths]; the enumeration is partial. *)
  total_steps : int;  (** Interpreter steps across all paths. *)
  solver_steps : int;  (** Constraint-solver steps across all solves. *)
}

val explore : ?config:config -> ?cache:Verdict_cache.t -> Ir.t -> Consistency.level -> report
(** Enumerate paths under the given consistency level, scheduling
    threads round-robin.  With [solve_models], each surviving path is
    solved: [`Unsat] paths are over-approximation artifacts (possible
    under [Local] consistency or after conservative pruning), [`Sat]
    paths carry a model.  With [cache], feasibility checks and
    end-of-path solves are memoized across calls; cache hits cost zero
    [solver_steps]. *)

type direction_verdict =
  | Feasible of { model : int array; origins : sym_origin array }
  | Infeasible
      (** No input in the domain reaches the direction.  Only claimed
          for single-threaded programs with exhaustive exploration. *)
  | Unknown

val direction_feasible :
  ?config:config ->
  ?cache:Verdict_cache.t ->
  Ir.t ->
  site:Ir.site ->
  direction:bool ->
  direction_verdict
(** Directed query: can some execution take branch [site] in
    [direction]?  Returns with the first SAT model found. *)
