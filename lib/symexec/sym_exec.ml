module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome
module Path_cond = Softborg_solver.Path_cond
module Interval = Softborg_solver.Interval
module Pc_solve = Softborg_solver.Pc_solve
module Verdict_cache = Softborg_solver.Verdict_cache
module V = Sym_state
module Smap = Map.Make (String)

type sym_origin =
  | From_input of int
  | From_syscall of { occurrence : int; kind : Ir.syscall_kind }
  | From_global of string

type path_outcome =
  | Completed
  | Crashed of { site : Ir.site; kind : Outcome.crash_kind; message : string }
  | Path_deadlock
  | Step_limit

type path = {
  decisions : (Ir.site * bool) list;
  condition : Path_cond.t;
  outcome : path_outcome;
  origins : sym_origin array;
  model : int array option;
  solver_verdict : [ `Sat | `Unsat | `Timeout | `Unsolved ];
}

type config = {
  max_paths : int;
  max_steps_per_path : int;
  solver_budget : int;
  domain : int * int;
  solve_models : bool;
}

let default_config =
  {
    max_paths = 512;
    max_steps_per_path = 4000;
    solver_budget = 200_000;
    domain = (-64, 255);
    solve_models = true;
  }

type report = {
  paths : path list;
  pruned_infeasible : int;
  truncated : bool;
  total_steps : int;
  solver_steps : int;
}

type thread_status = Runnable | Blocked_on of int | Finished

(* One in-flight symbolic path.  Arrays are copied on fork; the
   persistent maps are shared. *)
type machine = {
  mutable pcs : int array;
  mutable status : thread_status array;
  mutable locals : V.value Smap.t array;
  mutable globals : V.value Smap.t;
  mutable lock_owner : int option array;
  mutable last : int;  (* round-robin cursor *)
  mutable cond : Path_cond.atom list;  (* reversed *)
  mutable decisions : (Ir.site * bool) list;  (* reversed *)
  mutable origins : sym_origin list;  (* reversed *)
  mutable next_sym : int;
  mutable steps : int;
  mutable discharged : Ir.expr list;  (* divisors already constrained non-zero *)
}

let clone m =
  {
    m with
    pcs = Array.copy m.pcs;
    status = Array.copy m.status;
    locals = Array.copy m.locals;
    lock_owner = Array.copy m.lock_owner;
  }

exception Trap_exn of V.crash
exception Guard_exn of Ir.expr

type explorer = {
  program : Ir.t;
  level : Consistency.level;
  config : config;
  mutable stack : machine list;
  mutable emitted : path list;  (* reversed *)
  mutable pruned : int;
  mutable total_steps : int;
  mutable solver_steps : int;
  mutable any_timeout : bool;
  mutable truncated : bool;
  target : (Ir.site * bool) option;
  mutable found : (int array * sym_origin array) option;
  cache : Verdict_cache.t option;
}

let fresh_symbol m origin =
  let sym = m.next_sym in
  m.next_sym <- sym + 1;
  m.origins <- origin :: m.origins;
  V.symbol sym

let initial_machine ex =
  let program = ex.program in
  let n_threads = Array.length program.Ir.threads in
  let active thread =
    match ex.level with
    | Consistency.Strict -> true
    | Consistency.Local { thread = t } -> thread = t
  in
  let m =
    {
      pcs = Array.make n_threads 0;
      status = Array.init n_threads (fun t -> if active t then Runnable else Finished);
      locals = Array.init n_threads (fun _ -> Smap.empty);
      globals = Smap.empty;
      lock_owner = Array.make program.Ir.n_locks None;
      last = -1;
      cond = [];
      decisions = [];
      origins = [];
      next_sym = 0;
      steps = 0;
      discharged = [];
    }
  in
  (* Real inputs occupy the first symbol slots, in order. *)
  for i = 0 to program.Ir.n_inputs - 1 do
    ignore (fresh_symbol m (From_input i))
  done;
  m

let read_global ex m name =
  match Smap.find_opt name m.globals with
  | Some v -> v
  | None -> (
    match ex.level with
    | Consistency.Strict -> V.const 0
    | Consistency.Local _ ->
      (* Havoc: another thread could have written anything. *)
      let v = fresh_symbol m (From_global name) in
      m.globals <- Smap.add name v m.globals;
      v)

let read_var ex m thread = function
  | Ir.Global name -> read_global ex m name
  | Ir.Local name -> (
    match Smap.find_opt name m.locals.(thread) with Some v -> v | None -> V.const 0)

let write_var m thread var value =
  match var with
  | Ir.Global name -> m.globals <- Smap.add name value m.globals
  | Ir.Local name -> m.locals.(thread) <- Smap.add name value m.locals.(thread)

let rec eval ex m thread = function
  | Ir.Const c -> V.const c
  | Ir.Input i -> V.symbol i  (* input slots are the first symbols *)
  | Ir.Var var -> read_var ex m thread var
  | Ir.Unop (op, e) -> V.eval_unop op (eval ex m thread e)
  | Ir.Binop (op, ea, eb) -> (
    let a = eval ex m thread ea in
    let b = eval ex m thread eb in
    match V.eval_binop op a b with
    | V.Value v -> v
    | V.Trap crash -> raise (Trap_exn crash)
    | V.Guarded { guard; value; _ } ->
      if List.mem guard m.discharged then value else raise (Guard_exn guard))

(* Interval-based feasibility filter for a (reversed) atom list. *)
let feasible ex m =
  match
    Pc_solve.check ?cache:ex.cache ~domain:ex.config.domain ~n_inputs:m.next_sym
      (List.rev m.cond)
  with
  | `Infeasible -> false
  | `Feasible | `Unknown -> true

let push_child ex child =
  if feasible ex child then ex.stack <- child :: ex.stack else ex.pruned <- ex.pruned + 1

let solve_path ex m =
  if not ex.config.solve_models then (None, `Unsolved)
  else begin
    let outcome =
      Pc_solve.solve ?cache:ex.cache ~budget:ex.config.solver_budget ~domain:ex.config.domain
        ~n_inputs:m.next_sym (List.rev m.cond)
    in
    ex.solver_steps <- ex.solver_steps + outcome.Interval.steps;
    match outcome.Interval.verdict with
    | Interval.Sat model -> (Some model, `Sat)
    | Interval.Unsat -> (None, `Unsat)
    | Interval.Timeout ->
      ex.any_timeout <- true;
      (None, `Timeout)
  end

let finalize ex m outcome =
  let model, solver_verdict = solve_path ex m in
  (* Unsat paths are over-approximation artifacts; keep them in the
     report (they carry information for E8) unless they crashed —
     an infeasible crash is a false alarm we still want to count. *)
  let path =
    {
      decisions = List.rev m.decisions;
      condition = List.rev m.cond;
      outcome;
      origins = Array.of_list (List.rev m.origins);
      model;
      solver_verdict;
    }
  in
  ex.emitted <- path :: ex.emitted

let check_target ex m =
  match ex.target with
  | None -> ()
  | Some (site, direction) -> (
    match m.decisions with
    | (s, d) :: _ when Ir.site_equal s site && d = direction -> (
      (* Solve the prefix condition now; a model drives a concrete
         execution to this very decision. *)
      let outcome =
        Pc_solve.solve ?cache:ex.cache ~budget:ex.config.solver_budget ~domain:ex.config.domain
          ~n_inputs:m.next_sym (List.rev m.cond)
      in
      ex.solver_steps <- ex.solver_steps + outcome.Interval.steps;
      match outcome.Interval.verdict with
      | Interval.Sat model ->
        ex.found <- Some (model, Array.of_list (List.rev m.origins))
      | Interval.Unsat -> ()
      | Interval.Timeout -> ex.any_timeout <- true)
    | _ -> ())

let record_decision ex m site taken =
  m.decisions <- (site, taken) :: m.decisions;
  check_target ex m

let runnable_threads m =
  let ids = ref [] in
  for thread = Array.length m.status - 1 downto 0 do
    match m.status.(thread) with
    | Runnable -> ids := thread :: !ids
    | Blocked_on lock ->
      if m.lock_owner.(lock) = None then begin
        m.status.(thread) <- Runnable;
        ids := thread :: !ids
      end
    | Finished -> ()
  done;
  !ids

let round_robin m runnable =
  match List.find_opt (fun id -> id > m.last) runnable with
  | Some id -> id
  | None -> List.hd runnable

let all_finished m = Array.for_all (function Finished -> true | _ -> false) m.status

(* Execute instructions of [m] until the path ends or forks; children
   are pushed on the explorer stack, finished paths emitted. *)
let run_machine ex m =
  let program = ex.program in
  let rec loop () =
    if ex.found <> None then ()
    else if all_finished m then finalize ex m Completed
    else if m.steps >= ex.config.max_steps_per_path then finalize ex m Step_limit
    else
      match runnable_threads m with
      | [] -> finalize ex m Path_deadlock
      | runnable -> (
        let thread = round_robin m runnable in
        m.last <- thread;
        m.steps <- m.steps + 1;
        ex.total_steps <- ex.total_steps + 1;
        let body = program.Ir.threads.(thread) in
        let pc = m.pcs.(thread) in
        if pc >= Array.length body then begin
          m.status.(thread) <- Finished;
          loop ()
        end
        else
          let site = { Ir.thread; pc } in
          let crash_here kind message = finalize ex m (Crashed { site; kind; message }) in
          let with_guard_handling f =
            match f () with
            | () -> loop ()
            | exception Trap_exn V.Sym_div_by_zero ->
              crash_here Outcome.Division_by_zero "division by zero"
            | exception Trap_exn (V.Sym_assert_failure msg) ->
              crash_here Outcome.Assertion_failure msg
            | exception Guard_exn guard ->
              (* Fork on the divisor: zero -> crash path, else retry
                 this instruction with the divisor discharged. *)
              let crash_child = clone m in
              crash_child.cond <-
                Path_cond.atom (Ir.Binop (Ir.Eq, guard, Ir.Const 0)) true :: crash_child.cond;
              if feasible ex crash_child then
                finalize ex crash_child
                  (Crashed { site; kind = Outcome.Division_by_zero; message = "division by zero" })
              else ex.pruned <- ex.pruned + 1;
              m.cond <- Path_cond.atom (Ir.Binop (Ir.Eq, guard, Ir.Const 0)) false :: m.cond;
              m.discharged <- guard :: m.discharged;
              if feasible ex m then loop () else ex.pruned <- ex.pruned + 1
          in
          match body.(pc) with
          | Ir.Assign (var, e) ->
            with_guard_handling (fun () ->
                let v = eval ex m thread e in
                write_var m thread var v;
                m.pcs.(thread) <- pc + 1)
          | Ir.Jump target ->
            m.pcs.(thread) <- target;
            loop ()
          | Ir.Yield ->
            m.pcs.(thread) <- pc + 1;
            loop ()
          | Ir.Halt ->
            m.status.(thread) <- Finished;
            loop ()
          | Ir.Syscall { kind; dst } ->
            let occurrence =
              List.length
                (List.filter (function From_syscall _ -> true | _ -> false) m.origins)
            in
            let v = fresh_symbol m (From_syscall { occurrence; kind }) in
            (* Environment contract: a syscall returns -1 (fault) or a
               non-negative value. *)
            m.cond <-
              Path_cond.atom (Ir.Binop (Ir.Ge, V.to_expr v, Ir.Const (-1))) true :: m.cond;
            write_var m thread dst v;
            m.pcs.(thread) <- pc + 1;
            loop ()
          | Ir.Lock lock -> (
            match m.lock_owner.(lock) with
            | Some other when other <> thread ->
              m.status.(thread) <- Blocked_on lock;
              loop ()
            | Some _ ->
              m.status.(thread) <- Blocked_on lock;
              loop ()
            | None ->
              m.lock_owner.(lock) <- Some thread;
              m.pcs.(thread) <- pc + 1;
              loop ())
          | Ir.Unlock lock ->
            if m.lock_owner.(lock) = Some thread then m.lock_owner.(lock) <- None;
            m.pcs.(thread) <- pc + 1;
            loop ()
          | Ir.Assert { cond; message } ->
            with_guard_handling (fun () ->
                let v = eval ex m thread cond in
                match V.truth v with
                | Some true -> m.pcs.(thread) <- pc + 1
                | Some false -> raise (Trap_exn (V.Sym_assert_failure message))
                | None ->
                  let expr = V.to_expr v in
                  let crash_child = clone m in
                  crash_child.cond <- Path_cond.atom expr false :: crash_child.cond;
                  if feasible ex crash_child then
                    finalize ex crash_child
                      (Crashed { site; kind = Outcome.Assertion_failure; message })
                  else ex.pruned <- ex.pruned + 1;
                  m.cond <- Path_cond.atom expr true :: m.cond;
                  if not (feasible ex m) then begin
                    ex.pruned <- ex.pruned + 1;
                    raise Exit
                  end;
                  m.pcs.(thread) <- pc + 1)
          | Ir.Branch { cond; if_true; if_false } ->
            with_guard_handling (fun () ->
                let v = eval ex m thread cond in
                match V.truth v with
                | Some taken ->
                  record_decision ex m site taken;
                  m.pcs.(thread) <- (if taken then if_true else if_false)
                | None ->
                  let expr = V.to_expr v in
                  (* False child forks off; true child continues in place. *)
                  let child = clone m in
                  child.cond <- Path_cond.atom expr false :: child.cond;
                  child.decisions <- (site, false) :: child.decisions;
                  child.pcs.(thread) <- if_false;
                  push_child ex child;
                  (* Check the forked child against the directed-search
                     target before it waits on the stack. *)
                  check_target ex child;
                  m.cond <- Path_cond.atom expr true :: m.cond;
                  record_decision ex m site true;
                  if not (feasible ex m) then begin
                    ex.pruned <- ex.pruned + 1;
                    raise Exit
                  end;
                  m.pcs.(thread) <- if_true))
  in
  match loop () with () -> () | exception Exit -> ()

let explore_gen ?(config = default_config) ?cache ?target program level =
  let ex =
    {
      program;
      level;
      config;
      stack = [];
      emitted = [];
      pruned = 0;
      total_steps = 0;
      solver_steps = 0;
      any_timeout = false;
      truncated = false;
      target;
      found = None;
      cache;
    }
  in
  ex.stack <- [ initial_machine ex ];
  let rec drain () =
    match ex.stack with
    | [] -> ()
    | m :: rest ->
      if ex.found <> None then ()
      else if List.length ex.emitted >= config.max_paths then ex.truncated <- true
      else begin
        ex.stack <- rest;
        run_machine ex m;
        drain ()
      end
  in
  drain ();
  ex

let explore ?config ?cache program level =
  let ex = explore_gen ?config ?cache program level in
  {
    paths = List.rev ex.emitted;
    pruned_infeasible = ex.pruned;
    truncated = ex.truncated;
    total_steps = ex.total_steps;
    solver_steps = ex.solver_steps;
  }

type direction_verdict =
  | Feasible of { model : int array; origins : sym_origin array }
  | Infeasible
  | Unknown

let direction_feasible ?config ?cache program ~site ~direction =
  let ex = explore_gen ?config ?cache ?target:(Some (site, direction)) program Consistency.Strict in
  match ex.found with
  | Some (model, origins) -> Feasible { model; origins }
  | None ->
    let multi_threaded = Array.length program.Ir.threads > 1 in
    if ex.truncated || ex.any_timeout || multi_threaded then Unknown else Infeasible
