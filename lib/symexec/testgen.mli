(** Concrete test-case generation for execution guidance (paper §3.3).

    The hive "produces specific test cases to guide execution, stated
    in terms of inputs or in terms of system call faults to be
    injected".  This module turns a symbolic model (symbol values from
    {!Sym_exec.direction_feasible}) into exactly that: an input vector
    plus a targeted fault plan a pod can execute. *)

module Ir := Softborg_prog.Ir
module Env := Softborg_exec.Env

type test_case = {
  inputs : int array;  (** One value per program input slot. *)
  fault_plan : Env.fault_plan;
      (** [Targeted] indices of syscalls (in execution order) whose
          model value was negative — the only aspect of a syscall a
          pod can force. *)
}

val of_model :
  n_inputs:int -> model:int array -> origins:Sym_exec.sym_origin array -> test_case
(** Project a symbol model onto the executable test surface. *)

val for_direction :
  ?config:Sym_exec.config ->
  ?cache:Softborg_solver.Verdict_cache.t ->
  Ir.t ->
  site:Ir.site ->
  direction:bool ->
  [ `Test of test_case | `Infeasible | `Unknown ]
(** End-to-end: find inputs (and faults) that drive an execution to
    take branch [site] in [direction], or certify that none exist in
    the domain (single-threaded programs only). *)
