module Ir = Softborg_prog.Ir
module Env = Softborg_exec.Env

type test_case = {
  inputs : int array;
  fault_plan : Env.fault_plan;
}

let of_model ~n_inputs ~model ~origins =
  let inputs = Array.make n_inputs 0 in
  let faults = ref [] in
  Array.iteri
    (fun sym origin ->
      let value = if sym < Array.length model then model.(sym) else 0 in
      match origin with
      | Sym_exec.From_input i -> if i < n_inputs then inputs.(i) <- value
      | Sym_exec.From_syscall { occurrence; _ } ->
        if value < 0 then faults := occurrence :: !faults
      | Sym_exec.From_global _ -> ())
    origins;
  let fault_plan =
    match List.sort_uniq Int.compare !faults with
    | [] -> Env.No_faults
    | indices -> Env.Targeted indices
  in
  { inputs; fault_plan }

let for_direction ?config ?cache program ~site ~direction =
  match Sym_exec.direction_feasible ?config ?cache program ~site ~direction with
  | Sym_exec.Feasible { model; origins } ->
    `Test (of_model ~n_inputs:program.Ir.n_inputs ~model ~origins)
  | Sym_exec.Infeasible -> `Infeasible
  | Sym_exec.Unknown -> `Unknown
