(** Thread schedulers.

    Thread interleavings weave different executions out of identical
    per-thread paths (paper §3.2), so the schedule is part of the
    by-product record.  A scheduler picks, at every step, which
    runnable thread executes next; the choice is recorded only at
    {e contended} points (more than one runnable thread), which keeps
    single-threaded schedules empty. *)

module Rng := Softborg_util.Rng

type policy =
  | Round_robin  (** Deterministic rotation — the default OS-ish baseline. *)
  | Random_sched of Rng.t  (** Uniform choice; models preemption noise. *)
  | Replay of int list
      (** Thread ids to pick at successive contended points; falls back
          to round-robin when exhausted (used for trace replay). *)
  | Guided of { prefix : int list; fallback : Rng.t }
      (** Follow the hive-supplied prefix, then explore randomly —
          the paper's schedule steering (§3.3). *)

type t

val create : policy -> t

val choose : t -> runnable:int list -> int
(** [choose t ~runnable] picks one of the (non-empty, ascending)
    runnable thread ids.  If a replay/guided choice is not currently
    runnable, the scheduler falls back to its default rather than
    wedging. *)

val choose_prefix : t -> buf:int array -> n:int -> int
(** [choose_prefix t ~buf ~n] is [choose t ~runnable] where [runnable]
    is the first [n] elements of [buf] (ascending, non-empty), without
    allocating.  Identical policy semantics and RNG consumption; used
    by the bytecode VM's dispatch loop.
    @raise Invalid_argument if [n <= 0]. *)

val record : t -> int list
(** Contended-point choices made so far, oldest first. *)
