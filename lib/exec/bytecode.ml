module Ir = Softborg_prog.Ir

type thread_code = {
  code : int array;
  entry : int array;
  n_locals : int;
}

type t = {
  source_digest : string;
  threads : thread_code array;
  messages : string array;
  n_globals : int;
  n_locks : int;
  n_inputs : int;
  max_stack : int;
  n_instrs : int;
  n_ops : int;
}

(* ---- Opcode table -------------------------------------------------- *)

let op_push_const = 0
let op_push_local = 1
let op_push_global = 2
let op_push_input = 3
let op_neg = 4
let op_not = 5
let op_add = 6
let op_sub = 7
let op_mul = 8
let op_div = 9
let op_mod = 10
let op_eq = 11
let op_ne = 12
let op_lt = 13
let op_le = 14
let op_gt = 15
let op_ge = 16
let op_and = 17
let op_or = 18
let op_addc = 19
let op_subc = 20
let op_mulc = 21
let op_divc = 22
let op_modc = 23
let op_eqc = 24
let op_nec = 25
let op_ltc = 26
let op_lec = 27
let op_gtc = 28
let op_gec = 29
let op_andc = 30
let op_orc = 31
let op_store_local = 32
let op_store_global = 33
let op_store_local_const = 34
let op_store_global_const = 35
let op_br = 36
let op_br_const = 37
let op_jmp = 38
let op_sys = 39
let op_lock = 40
let op_unlock = 41
let op_assert = 42
let op_assert_fail = 43
let op_nop_end = 44
let op_halt = 45
let op_eob = 46

let ctx_branch = 0
let ctx_assert = 1
let ctx_assign = 2

let syscall_kind_code = function
  | Ir.Sys_read -> 0
  | Ir.Sys_open -> 1
  | Ir.Sys_write -> 2
  | Ir.Sys_net -> 3
  | Ir.Sys_time -> 4

let syscall_kind_of_code = function
  | 0 -> Ir.Sys_read
  | 1 -> Ir.Sys_open
  | 2 -> Ir.Sys_write
  | 3 -> Ir.Sys_net
  | 4 -> Ir.Sys_time
  | c -> invalid_arg (Printf.sprintf "Bytecode.syscall_kind_of_code: %d" c)

(* ---- Constant folding ---------------------------------------------- *)

let truth n = n <> 0
let of_bool b = if b then 1 else 0

(* Fold pure-constant subtrees.  Division/modulo by a constant zero is
   deliberately left unfolded: the runtime crash (and its hook
   consultation) must be byte-identical to the tree walk. *)
let rec fold_expr e =
  match e with
  | Ir.Const _ | Ir.Var _ | Ir.Input _ -> e
  | Ir.Unop (op, a) -> (
    match fold_expr a with
    | Ir.Const x -> Ir.Const (match op with Ir.Neg -> -x | Ir.Not -> of_bool (not (truth x)))
    | a' -> Ir.Unop (op, a'))
  | Ir.Binop (op, a, b) -> (
    let a' = fold_expr a and b' = fold_expr b in
    match (a', b') with
    | Ir.Const x, Ir.Const y -> (
      match op with
      | Ir.Add -> Ir.Const (x + y)
      | Ir.Sub -> Ir.Const (x - y)
      | Ir.Mul -> Ir.Const (x * y)
      | Ir.Div -> if y = 0 then Ir.Binop (op, a', b') else Ir.Const (x / y)
      | Ir.Mod -> if y = 0 then Ir.Binop (op, a', b') else Ir.Const (x mod y)
      | Ir.Eq -> Ir.Const (of_bool (x = y))
      | Ir.Ne -> Ir.Const (of_bool (x <> y))
      | Ir.Lt -> Ir.Const (of_bool (x < y))
      | Ir.Le -> Ir.Const (of_bool (x <= y))
      | Ir.Gt -> Ir.Const (of_bool (x > y))
      | Ir.Ge -> Ir.Const (of_bool (x >= y))
      | Ir.And -> Ir.Const (of_bool (truth x && truth y))
      | Ir.Or -> Ir.Const (of_bool (truth x || truth y)))
    | _ -> Ir.Binop (op, a', b'))

(* Worst-case operand-stack depth; superinstruction selection only ever
   lowers the real depth, so this bound stays safe. *)
let rec expr_depth = function
  | Ir.Const _ | Ir.Var _ | Ir.Input _ -> 1
  | Ir.Unop (_, e) -> expr_depth e
  | Ir.Binop (_, a, b) -> max (expr_depth a) (expr_depth b + 1)

(* ---- Compilation --------------------------------------------------- *)

type emitter = { mutable buf : int array; mutable len : int }

let emit e x =
  let cap = Array.length e.buf in
  if e.len = cap then begin
    let grown = Array.make (if cap = 0 then 64 else 2 * cap) 0 in
    Array.blit e.buf 0 grown 0 e.len;
    e.buf <- grown
  end;
  e.buf.(e.len) <- x;
  e.len <- e.len + 1

(* Superinstruction opcode for [op] with a constant right operand, or
   [-1] when the generic form must be used (non-commutative const-left,
   or a constant-zero divisor whose crash must stay dynamic). *)
let const_rhs_op op c =
  match op with
  | Ir.Add -> op_addc
  | Ir.Sub -> op_subc
  | Ir.Mul -> op_mulc
  | Ir.Div -> if c = 0 then -1 else op_divc
  | Ir.Mod -> if c = 0 then -1 else op_modc
  | Ir.Eq -> op_eqc
  | Ir.Ne -> op_nec
  | Ir.Lt -> op_ltc
  | Ir.Le -> op_lec
  | Ir.Gt -> op_gtc
  | Ir.Ge -> op_gec
  | Ir.And -> op_andc
  | Ir.Or -> op_orc

(* For [Const c OP x]: either an equivalent right-constant form (swap
   commutative ops, mirror comparisons) or [-1]. *)
let const_lhs_op op =
  match op with
  | Ir.Add -> op_addc
  | Ir.Mul -> op_mulc
  | Ir.Eq -> op_eqc
  | Ir.Ne -> op_nec
  | Ir.Lt -> op_gtc (* c < x  <=>  x > c *)
  | Ir.Le -> op_gec
  | Ir.Gt -> op_ltc
  | Ir.Ge -> op_lec
  | Ir.And -> op_andc
  | Ir.Or -> op_orc
  | Ir.Sub | Ir.Div | Ir.Mod -> -1

let compile (p : Ir.t) : t =
  let message_count = ref 0 in
  let message_strings = ref [] in
  let add_message msg =
    let idx = !message_count in
    incr message_count;
    message_strings := msg :: !message_strings;
    idx
  in
  let global_slots = Hashtbl.create 16 in
  List.iteri (fun i g -> Hashtbl.replace global_slots g i) p.Ir.globals;
  let n_globals = ref (List.length p.Ir.globals) in
  let global_slot g =
    match Hashtbl.find_opt global_slots g with
    | Some s -> s
    | None ->
      (* Defensive: [Ir.validate] rejects undeclared globals, but an
         unvalidated program must still compile to {e something}. *)
      let s = !n_globals in
      incr n_globals;
      Hashtbl.replace global_slots g s;
      s
  in
  let max_stack = ref 1 in
  let n_instrs = ref 0 in
  let n_ops = ref 0 in
  let compile_thread body =
    let local_slots = Hashtbl.create 16 in
    let n_locals = ref 0 in
    let local_slot l =
      match Hashtbl.find_opt local_slots l with
      | Some s -> s
      | None ->
        let s = !n_locals in
        incr n_locals;
        Hashtbl.replace local_slots l s;
        s
    in
    let slot_of_var = function
      | Ir.Local l -> `Local (local_slot l)
      | Ir.Global g -> `Global (global_slot g)
    in
    (* Signed slot encoding for operands that may address either space:
       local s is s, global g is lnot g. *)
    let signed_slot = function `Local s -> s | `Global g -> lnot g in
    let code = { buf = [||]; len = 0 } in
    let fixups = ref [] in
    (* Emit a branch-target operand; the source pc is patched to a code
       offset once the whole body is laid out. *)
    let emit_target pc =
      fixups := code.len :: !fixups;
      emit code pc
    in
    (* Compile [e] to code leaving one value on the operand stack.
       [ctx]/[ctx_slot] describe what a division crash inside [e] means
       to the crash hook (branch condition, assert condition, or an
       assignment with a fallback target). *)
    let rec emit_expr ~src_pc ~ctx ~ctx_slot e =
      match e with
      | Ir.Const c ->
        emit code op_push_const;
        emit code c
      | Ir.Var v -> (
        match slot_of_var v with
        | `Local s ->
          emit code op_push_local;
          emit code s
        | `Global s ->
          emit code op_push_global;
          emit code s)
      | Ir.Input i ->
        emit code op_push_input;
        emit code i
      | Ir.Unop (op, a) ->
        emit_expr ~src_pc ~ctx ~ctx_slot a;
        emit code (match op with Ir.Neg -> op_neg | Ir.Not -> op_not)
      | Ir.Binop (op, a, Ir.Const c) when const_rhs_op op c >= 0 ->
        emit_expr ~src_pc ~ctx ~ctx_slot a;
        emit code (const_rhs_op op c);
        emit code c
      | Ir.Binop (op, Ir.Const c, b) when const_lhs_op op >= 0 ->
        emit_expr ~src_pc ~ctx ~ctx_slot b;
        emit code (const_lhs_op op);
        emit code c
      | Ir.Binop (op, a, b) -> (
        emit_expr ~src_pc ~ctx ~ctx_slot a;
        emit_expr ~src_pc ~ctx ~ctx_slot b;
        match op with
        | Ir.Div | Ir.Mod ->
          emit code (if op = Ir.Div then op_div else op_mod);
          emit code src_pc;
          emit code ctx;
          emit code ctx_slot
        | Ir.Add -> emit code op_add
        | Ir.Sub -> emit code op_sub
        | Ir.Mul -> emit code op_mul
        | Ir.Eq -> emit code op_eq
        | Ir.Ne -> emit code op_ne
        | Ir.Lt -> emit code op_lt
        | Ir.Le -> emit code op_le
        | Ir.Gt -> emit code op_gt
        | Ir.Ge -> emit code op_ge
        | Ir.And -> emit code op_and
        | Ir.Or -> emit code op_or)
    in
    let entry = Array.make (Array.length body + 1) 0 in
    Array.iteri
      (fun pc instr ->
        entry.(pc) <- code.len;
        incr n_instrs;
        match instr with
        | Ir.Assign (v, e) -> (
          let e = fold_expr e in
          let slot = slot_of_var v in
          match (e, slot) with
          | Ir.Const c, `Local s ->
            emit code op_store_local_const;
            emit code s;
            emit code c
          | Ir.Const c, `Global s ->
            emit code op_store_global_const;
            emit code s;
            emit code c
          | _ ->
            max_stack := max !max_stack (expr_depth e);
            emit_expr ~src_pc:pc ~ctx:ctx_assign ~ctx_slot:(signed_slot slot) e;
            (match slot with
            | `Local s ->
              emit code op_store_local;
              emit code s
            | `Global s ->
              emit code op_store_global;
              emit code s))
        | Ir.Branch { cond; if_true; if_false } -> (
          match fold_expr cond with
          | Ir.Const c ->
            (* The decision is still part of the recorded path (the
               tree walk records every branch), so a folded branch
               keeps a decision-emitting op. *)
            let taken = truth c in
            emit code op_br_const;
            emit code pc;
            emit code (of_bool taken);
            emit_target (if taken then if_true else if_false)
          | cond ->
            max_stack := max !max_stack (expr_depth cond);
            emit_expr ~src_pc:pc ~ctx:ctx_branch ~ctx_slot:0 cond;
            emit code op_br;
            emit code pc;
            emit_target if_true;
            emit_target if_false)
        | Ir.Jump target ->
          emit code op_jmp;
          emit_target target
        | Ir.Syscall { kind; dst } ->
          emit code op_sys;
          emit code (syscall_kind_code kind);
          emit code (signed_slot (slot_of_var dst))
        | Ir.Lock l ->
          emit code op_lock;
          emit code l
        | Ir.Unlock l ->
          emit code op_unlock;
          emit code l
        | Ir.Assert { cond; message } -> (
          match fold_expr cond with
          | Ir.Const c when truth c -> emit code op_nop_end
          | Ir.Const _ ->
            emit code op_assert_fail;
            emit code pc;
            emit code (add_message message)
          | cond ->
            max_stack := max !max_stack (expr_depth cond);
            emit_expr ~src_pc:pc ~ctx:ctx_assert ~ctx_slot:0 cond;
            emit code op_assert;
            emit code pc;
            emit code (add_message message))
        | Ir.Yield -> emit code op_nop_end
        | Ir.Halt -> emit code op_halt)
      body;
    entry.(Array.length body) <- code.len;
    emit code op_eob;
    List.iter (fun pos -> code.buf.(pos) <- entry.(code.buf.(pos))) !fixups;
    n_ops := !n_ops + code.len;
    { code = Array.sub code.buf 0 code.len; entry; n_locals = !n_locals }
  in
  let threads = Array.map compile_thread p.Ir.threads in
  {
    source_digest = Ir.digest p;
    threads;
    messages = Array.of_list (List.rev !message_strings);
    n_globals = !n_globals;
    n_locks = p.Ir.n_locks;
    n_inputs = p.Ir.n_inputs;
    max_stack = !max_stack;
    n_instrs = !n_instrs;
    n_ops = !n_ops;
  }

(* ---- Compile cache ------------------------------------------------- *)

type cache = {
  mutex : Mutex.t;
  by_digest : (string, t) Hashtbl.t;
  fast : (Ir.t * t) option array;  (* recent (program, compiled) pairs *)
  mutable fast_next : int;
  mutable hits : int;
  mutable fast_hits : int;
  mutable misses : int;
}

type cache_stats = {
  hits : int;
  fast_hits : int;
  misses : int;
  entries : int;
}

let create_cache ?(fast_slots = 64) () =
  {
    mutex = Mutex.create ();
    by_digest = Hashtbl.create 64;
    fast = Array.make (max 1 fast_slots) None;
    fast_next = 0;
    hits = 0;
    fast_hits = 0;
    misses = 0;
  }

let shared_cache = create_cache ()

let find_or_compile cache program =
  Mutex.lock cache.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache.mutex)
    (fun () ->
      (* Physical-equality fast path: pods hold one program value and
         execute it millions of times, so the common lookup should not
         even hash the digest. *)
      let n = Array.length cache.fast in
      let rec scan i =
        if i >= n then None
        else
          match cache.fast.(i) with
          | Some (p, compiled) when p == program -> Some compiled
          | _ -> scan (i + 1)
      in
      match scan 0 with
      | Some compiled ->
        cache.fast_hits <- cache.fast_hits + 1;
        compiled
      | None ->
        let remember compiled =
          cache.fast.(cache.fast_next) <- Some (program, compiled);
          cache.fast_next <- (cache.fast_next + 1) mod n;
          compiled
        in
        let digest = Ir.digest program in
        (match Hashtbl.find_opt cache.by_digest digest with
        | Some compiled ->
          cache.hits <- cache.hits + 1;
          remember compiled
        | None ->
          let compiled = compile program in
          cache.misses <- cache.misses + 1;
          Hashtbl.replace cache.by_digest digest compiled;
          remember compiled))

let cache_stats cache =
  Mutex.lock cache.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache.mutex)
    (fun () ->
      {
        hits = cache.hits;
        fast_hits = cache.fast_hits;
        misses = cache.misses;
        entries = Hashtbl.length cache.by_digest;
      })
