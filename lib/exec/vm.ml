module Bitvec = Softborg_util.Bitvec
module Ir = Softborg_prog.Ir
module B = Bytecode

(* The dispatch loop matches opcode literals (a dense int match
   compiles to a jump table); tie every literal to its named constant
   so the table in bytecode.ml stays the single source of truth. *)
let () =
  assert (
    B.op_push_const = 0 && B.op_push_local = 1 && B.op_push_global = 2 && B.op_push_input = 3
    && B.op_neg = 4 && B.op_not = 5 && B.op_add = 6 && B.op_sub = 7 && B.op_mul = 8
    && B.op_div = 9 && B.op_mod = 10 && B.op_eq = 11 && B.op_ne = 12 && B.op_lt = 13
    && B.op_le = 14 && B.op_gt = 15 && B.op_ge = 16 && B.op_and = 17 && B.op_or = 18
    && B.op_addc = 19 && B.op_subc = 20 && B.op_mulc = 21 && B.op_divc = 22 && B.op_modc = 23
    && B.op_eqc = 24 && B.op_nec = 25 && B.op_ltc = 26 && B.op_lec = 27 && B.op_gtc = 28
    && B.op_gec = 29 && B.op_andc = 30 && B.op_orc = 31 && B.op_store_local = 32
    && B.op_store_global = 33 && B.op_store_local_const = 34 && B.op_store_global_const = 35
    && B.op_br = 36 && B.op_br_const = 37 && B.op_jmp = 38 && B.op_sys = 39 && B.op_lock = 40
    && B.op_unlock = 41 && B.op_assert = 42 && B.op_assert_fail = 43 && B.op_nop_end = 44
    && B.op_halt = 45 && B.op_eob = 46 && B.ctx_branch = 0 && B.ctx_assert = 1
    && B.ctx_assign = 2)

exception Vm_crash of Outcome.crash_kind * string * int  (* source pc *)

type mode =
  | Record of Env.t
  | Replay of { bits : Bitvec.t; mutable bit_pos : int }

(* Values are (int, taint-bit) pairs split across parallel arrays; a
   value is known iff the run records or the taint bit is clear (the
   tree walk's [tainted <=> None] replay invariant, flattened).  All
   by-product accumulators are packed int buffers sized >= 512 words so
   every growth allocation lands directly on the major heap — the
   dispatch loop itself allocates nothing in the minor heap. *)
type machine = {
  prog : B.t;
  mode : mode;
  is_replay : bool;
  hooks : Interp.hooks;
  ips : int array;  (* per-thread bytecode offset of the current statement *)
  status : int array;  (* 0 runnable, 1 finished, lock+2 blocked *)
  stack_v : int array;
  stack_t : Bytes.t;
  locals_v : int array array;
  locals_t : Bytes.t array;
  globals_v : int array;
  globals_t : Bytes.t;
  lock_owner : int array;  (* -1 = unowned *)
  runnable : int array;  (* scratch prefix for the scheduler *)
  mutable finished : int;
  mutable steps : int;
  mutable deferred : int;
  mutable suppressed : int;
  out_bits : Bitvec.t;
  (* decisions packed as (pc lsl 16) lor (thread lsl 1) lor taken *)
  mutable dec : int array;
  mutable n_dec : int;
  mutable sys_kind : int array;
  mutable sys_val : int array;
  mutable n_sys : int;
  (* lock events, stride 2: (lock lsl 17) lor (thread lsl 1) lor tag, step *)
  mutable lev : int array;
  mutable n_lev : int;
}

(* Initial by-product capacity: enough that short runs never grow, low
   enough that zeroing it isn't a per-execution tax when [max_steps] is
   large.  >= 512 words so both the initial arrays and every doubling
   land directly on the major heap (Max_young_wosize), keeping the
   minor heap quiet; decision-heavy runs grow amortized-O(1). *)
let buf_size ~max_steps = max 512 (min (max max_steps 16) 4_096)

let make_machine ~prog ~mode ~hooks ~max_steps =
  let n_threads = Array.length prog.B.threads in
  let cap = buf_size ~max_steps in
  {
    prog;
    mode;
    is_replay = (match mode with Record _ -> false | Replay _ -> true);
    hooks;
    ips = Array.make n_threads 0;
    status = Array.make n_threads 0;
    stack_v = Array.make (max 1 prog.B.max_stack) 0;
    stack_t = Bytes.make (max 1 prog.B.max_stack) '\000';
    locals_v = Array.init n_threads (fun i -> Array.make (max 1 prog.B.threads.(i).B.n_locals) 0);
    locals_t = Array.init n_threads (fun i -> Bytes.make (max 1 prog.B.threads.(i).B.n_locals) '\000');
    globals_v = Array.make (max 1 prog.B.n_globals) 0;
    globals_t = Bytes.make (max 1 prog.B.n_globals) '\000';
    lock_owner = Array.make (max 1 prog.B.n_locks) (-1);
    runnable = Array.make n_threads 0;
    finished = 0;
    steps = 0;
    deferred = 0;
    suppressed = 0;
    out_bits = Bitvec.create ();
    dec = Array.make cap 0;
    n_dec = 0;
    sys_kind = Array.make 512 0;
    sys_val = Array.make 512 0;
    n_sys = 0;
    lev = Array.make 1024 0;
    n_lev = 0;
  }

let grow a =
  let b = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let push_decision m ~pc ~thread ~taken =
  if m.n_dec = Array.length m.dec then m.dec <- grow m.dec;
  Array.unsafe_set m.dec m.n_dec ((pc lsl 16) lor (thread lsl 1) lor (if taken then 1 else 0));
  m.n_dec <- m.n_dec + 1

let push_syscall m ~kind ~value =
  if m.n_sys = Array.length m.sys_kind then begin
    m.sys_kind <- grow m.sys_kind;
    m.sys_val <- grow m.sys_val
  end;
  m.sys_kind.(m.n_sys) <- kind;
  m.sys_val.(m.n_sys) <- value;
  m.n_sys <- m.n_sys + 1

let push_lock_event m ~acquired ~thread ~lock =
  if 2 * m.n_lev = Array.length m.lev then m.lev <- grow m.lev;
  m.lev.(2 * m.n_lev) <- (lock lsl 17) lor (thread lsl 1) lor (if acquired then 1 else 0);
  m.lev.((2 * m.n_lev) + 1) <- m.steps;
  m.n_lev <- m.n_lev + 1

(* Signed-slot write used by syscall destinations and the suppressed-
   assignment fallback: local slot [s >= 0], global [lnot g]. *)
let write_signed_slot m thread slot v taint =
  if slot >= 0 then begin
    m.locals_v.(thread).(slot) <- v;
    Bytes.unsafe_set m.locals_t.(thread) slot (if taint then '\001' else '\000')
  end
  else begin
    let g = lnot slot in
    m.globals_v.(g) <- v;
    Bytes.unsafe_set m.globals_t g (if taint then '\001' else '\000')
  end

(* A crash inside a statement: branch-condition context propagates
   without consulting the hook (matching the tree walk); assert and
   assignment contexts are suppressible, an assignment additionally
   zeroing its target.  On suppression the thread resumes at the next
   source instruction. *)
let crash_in_context m thread tc ~src ~ctx ~slot kind message =
  if ctx = 0 then raise (Vm_crash (kind, message, src))
  else
    match m.hooks.Interp.on_crash ~site:{ Ir.thread; pc = src } ~kind with
    | `Propagate -> raise (Vm_crash (kind, message, src))
    | `Suppress ->
      m.suppressed <- m.suppressed + 1;
      if ctx = 2 then write_signed_slot m thread slot 0 false;
      m.ips.(thread) <- tc.B.entry.(src + 1)

exception Replay_error_local of string

let[@inline always] tainted st i = Bytes.unsafe_get st i <> '\000'

(* Execute exactly one source statement of [thread] (a run of stack
   micro-ops ending in a control op).  Mirrors [Interp.step] case by
   case; raises [Vm_crash] on a propagated crash and
   [Interp.Replay_error] when replay bits run dry. *)
let exec m thread =
  let tc = Array.unsafe_get m.prog.B.threads thread in
  let code = tc.B.code in
  let lv = Array.unsafe_get m.locals_v thread in
  let lt = Array.unsafe_get m.locals_t thread in
  let gv = m.globals_v in
  let gt = m.globals_t in
  let sv = m.stack_v in
  let st = m.stack_t in
  let is_replay = m.is_replay in
  let ip = ref (Array.unsafe_get m.ips thread) in
  let sp = ref 0 in
  let running = ref true in
  (* [next >= 0] ends the statement, resuming the thread there.  All
     four refs stay uncaptured so the compiler unboxes them — a helper
     closure here would box [running] and cost minor words on every
     dispatched instruction. *)
  let next = ref (-1) in
  while !next < 0 && !running do
    let op = Array.unsafe_get code !ip in
    match op with
    | 0 (* PUSH_CONST c *) ->
      Array.unsafe_set sv !sp (Array.unsafe_get code (!ip + 1));
      Bytes.unsafe_set st !sp '\000';
      sp := !sp + 1;
      ip := !ip + 2
    | 1 (* PUSH_LOCAL s *) ->
      let s = Array.unsafe_get code (!ip + 1) in
      Array.unsafe_set sv !sp (Array.unsafe_get lv s);
      Bytes.unsafe_set st !sp (Bytes.unsafe_get lt s);
      sp := !sp + 1;
      ip := !ip + 2
    | 2 (* PUSH_GLOBAL s *) ->
      let s = Array.unsafe_get code (!ip + 1) in
      Array.unsafe_set sv !sp (Array.unsafe_get gv s);
      Bytes.unsafe_set st !sp (Bytes.unsafe_get gt s);
      sp := !sp + 1;
      ip := !ip + 2
    | 3 (* PUSH_INPUT i *) ->
      let i = Array.unsafe_get code (!ip + 1) in
      let v = match m.mode with Record env -> Env.input env i | Replay _ -> 0 in
      Array.unsafe_set sv !sp v;
      Bytes.unsafe_set st !sp '\001';
      sp := !sp + 1;
      ip := !ip + 2
    | 4 (* NEG *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then Array.unsafe_set sv i (-Array.unsafe_get sv i);
      ip := !ip + 1
    | 5 (* NOT *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i <> 0 then 0 else 1);
      ip := !ip + 1
    | 6 (* ADD *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (Array.unsafe_get sv i + Array.unsafe_get sv !sp);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 7 (* SUB *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (Array.unsafe_get sv i - Array.unsafe_get sv !sp);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 8 (* MUL *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (Array.unsafe_get sv i * Array.unsafe_get sv !sp);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 9 (* DIV src ctx slot *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then begin
        let y = Array.unsafe_get sv !sp in
        if y = 0 then begin
          crash_in_context m thread tc ~src:code.(!ip + 1) ~ctx:code.(!ip + 2)
            ~slot:code.(!ip + 3) Outcome.Division_by_zero "division by zero";
          running := false
        end
        else begin
          Array.unsafe_set sv i (Array.unsafe_get sv i / y);
          if tainted st !sp then Bytes.unsafe_set st i '\001';
          ip := !ip + 4
        end
      end
      else begin
        if tainted st !sp then Bytes.unsafe_set st i '\001';
        ip := !ip + 4
      end
    | 10 (* MOD src ctx slot *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then begin
        let y = Array.unsafe_get sv !sp in
        if y = 0 then begin
          crash_in_context m thread tc ~src:code.(!ip + 1) ~ctx:code.(!ip + 2)
            ~slot:code.(!ip + 3) Outcome.Division_by_zero "modulo by zero";
          running := false
        end
        else begin
          Array.unsafe_set sv i (Array.unsafe_get sv i mod y);
          if tainted st !sp then Bytes.unsafe_set st i '\001';
          ip := !ip + 4
        end
      end
      else begin
        if tainted st !sp then Bytes.unsafe_set st i '\001';
        ip := !ip + 4
      end
    | 11 (* EQ *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i = Array.unsafe_get sv !sp then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 12 (* NE *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i <> Array.unsafe_get sv !sp then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 13 (* LT *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i < Array.unsafe_get sv !sp then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 14 (* LE *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i <= Array.unsafe_get sv !sp then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 15 (* GT *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i > Array.unsafe_get sv !sp then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 16 (* GE *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i >= Array.unsafe_get sv !sp then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 17 (* AND *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i
          (if Array.unsafe_get sv i <> 0 && Array.unsafe_get sv !sp <> 0 then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 18 (* OR *) ->
      sp := !sp - 1;
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i || tainted st !sp) then
        Array.unsafe_set sv i
          (if Array.unsafe_get sv i <> 0 || Array.unsafe_get sv !sp <> 0 then 1 else 0);
      if tainted st !sp then Bytes.unsafe_set st i '\001';
      ip := !ip + 1
    | 19 (* ADDC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (Array.unsafe_get sv i + Array.unsafe_get code (!ip + 1));
      ip := !ip + 2
    | 20 (* SUBC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (Array.unsafe_get sv i - Array.unsafe_get code (!ip + 1));
      ip := !ip + 2
    | 21 (* MULC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (Array.unsafe_get sv i * Array.unsafe_get code (!ip + 1));
      ip := !ip + 2
    | 22 (* DIVC c, c <> 0 *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (Array.unsafe_get sv i / Array.unsafe_get code (!ip + 1));
      ip := !ip + 2
    | 23 (* MODC c, c <> 0 *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (Array.unsafe_get sv i mod Array.unsafe_get code (!ip + 1));
      ip := !ip + 2
    | 24 (* EQC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i = Array.unsafe_get code (!ip + 1) then 1 else 0);
      ip := !ip + 2
    | 25 (* NEC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i
          (if Array.unsafe_get sv i <> Array.unsafe_get code (!ip + 1) then 1 else 0);
      ip := !ip + 2
    | 26 (* LTC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i < Array.unsafe_get code (!ip + 1) then 1 else 0);
      ip := !ip + 2
    | 27 (* LEC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i
          (if Array.unsafe_get sv i <= Array.unsafe_get code (!ip + 1) then 1 else 0);
      ip := !ip + 2
    | 28 (* GTC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i (if Array.unsafe_get sv i > Array.unsafe_get code (!ip + 1) then 1 else 0);
      ip := !ip + 2
    | 29 (* GEC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i
          (if Array.unsafe_get sv i >= Array.unsafe_get code (!ip + 1) then 1 else 0);
      ip := !ip + 2
    | 30 (* ANDC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i
          (if Array.unsafe_get sv i <> 0 && Array.unsafe_get code (!ip + 1) <> 0 then 1 else 0);
      ip := !ip + 2
    | 31 (* ORC c *) ->
      let i = !sp - 1 in
      if (not is_replay) || not (tainted st i) then
        Array.unsafe_set sv i
          (if Array.unsafe_get sv i <> 0 || Array.unsafe_get code (!ip + 1) <> 0 then 1 else 0);
      ip := !ip + 2
    | 32 (* STORE_LOCAL s *) ->
      sp := !sp - 1;
      let s = Array.unsafe_get code (!ip + 1) in
      Array.unsafe_set lv s (Array.unsafe_get sv !sp);
      Bytes.unsafe_set lt s (Bytes.unsafe_get st !sp);
      next := !ip + 2
    | 33 (* STORE_GLOBAL s *) ->
      sp := !sp - 1;
      let s = Array.unsafe_get code (!ip + 1) in
      Array.unsafe_set gv s (Array.unsafe_get sv !sp);
      Bytes.unsafe_set gt s (Bytes.unsafe_get st !sp);
      next := !ip + 2
    | 34 (* STORE_LOCAL_CONST s c *) ->
      let s = Array.unsafe_get code (!ip + 1) in
      Array.unsafe_set lv s (Array.unsafe_get code (!ip + 2));
      Bytes.unsafe_set lt s '\000';
      next := !ip + 3
    | 35 (* STORE_GLOBAL_CONST s c *) ->
      let s = Array.unsafe_get code (!ip + 1) in
      Array.unsafe_set gv s (Array.unsafe_get code (!ip + 2));
      Bytes.unsafe_set gt s '\000';
      next := !ip + 3
    | 36 (* BR src t_off f_off *) ->
      sp := !sp - 1;
      let src = Array.unsafe_get code (!ip + 1) in
      let taken =
        if not (tainted st !sp) then Array.unsafe_get sv !sp <> 0
        else begin
          match m.mode with
          | Record _ ->
            let b = Array.unsafe_get sv !sp <> 0 in
            Bitvec.push m.out_bits b;
            b
          | Replay r ->
            if r.bit_pos >= Bitvec.length r.bits then
              raise (Replay_error_local "trace bits exhausted at input-dependent branch")
            else begin
              let b = Bitvec.get r.bits r.bit_pos in
              r.bit_pos <- r.bit_pos + 1;
              b
            end
        end
      in
      push_decision m ~pc:src ~thread ~taken;
      next := Array.unsafe_get code (!ip + if taken then 2 else 3)
    | 37 (* BR_CONST src taken target *) ->
      (* Condition folded at compile time; the decision is still part
         of the recorded path, exactly as the tree walk records it. *)
      let src = Array.unsafe_get code (!ip + 1) in
      let taken = Array.unsafe_get code (!ip + 2) <> 0 in
      push_decision m ~pc:src ~thread ~taken;
      next := Array.unsafe_get code (!ip + 3)
    | 38 (* JMP target *) -> next := Array.unsafe_get code (!ip + 1)
    | 39 (* SYS kind slot *) ->
      let kind = Array.unsafe_get code (!ip + 1) in
      let slot = Array.unsafe_get code (!ip + 2) in
      (match m.mode with
      | Record env ->
        let concrete = Env.syscall env (B.syscall_kind_of_code kind) in
        push_syscall m ~kind ~value:concrete;
        write_signed_slot m thread slot concrete true
      | Replay _ -> write_signed_slot m thread slot 0 true);
      next := !ip + 3
    | 40 (* LOCK l *) ->
      let lock = Array.unsafe_get code (!ip + 1) in
      if m.lock_owner.(lock) >= 0 then begin
        (* Held by anyone — including this thread: self-deadlock. *)
        m.status.(thread) <- lock + 2;
        running := false
      end
      else begin
        let holding = ref [] in
        for l = Array.length m.lock_owner - 1 downto 0 do
          if m.lock_owner.(l) = thread then holding := l :: !holding
        done;
        let owner l = if m.lock_owner.(l) >= 0 then Some m.lock_owner.(l) else None in
        match m.hooks.Interp.on_lock_request ~thread ~lock ~holding:!holding ~owner with
        | `Defer ->
          (* Spin: stay runnable at the same statement and retry. *)
          m.deferred <- m.deferred + 1;
          running := false
        | `Proceed ->
          m.lock_owner.(lock) <- thread;
          push_lock_event m ~acquired:true ~thread ~lock;
          next := !ip + 2
      end
    | 41 (* UNLOCK l *) ->
      let lock = Array.unsafe_get code (!ip + 1) in
      if m.lock_owner.(lock) = thread then begin
        m.lock_owner.(lock) <- -1;
        push_lock_event m ~acquired:false ~thread ~lock
      end;
      next := !ip + 2
    | 42 (* ASSERT src msg *) ->
      sp := !sp - 1;
      let known = (not is_replay) || not (tainted st !sp) in
      if known && Array.unsafe_get sv !sp = 0 then begin
        crash_in_context m thread tc ~src:code.(!ip + 1) ~ctx:1 ~slot:0 Outcome.Assertion_failure
          m.prog.B.messages.(Array.unsafe_get code (!ip + 2));
        running := false
      end
      else next := !ip + 3
    | 43 (* ASSERT_FAIL src msg *) ->
      crash_in_context m thread tc ~src:code.(!ip + 1) ~ctx:1 ~slot:0 Outcome.Assertion_failure
        m.prog.B.messages.(Array.unsafe_get code (!ip + 2));
      running := false
    | 44 (* NOP_END *) -> next := !ip + 1
    | 45 (* HALT *) | 46 (* EOB *) ->
      m.status.(thread) <- 1;
      m.finished <- m.finished + 1;
      running := false
    | _ -> assert false
  done;
  if !next >= 0 then m.ips.(thread) <- !next

(* Runnable threads into the scratch prefix, ascending; waking any
   blocked thread whose lock has freed (it then re-runs its Lock). *)
let runnable_scan m =
  let n = ref 0 in
  let status = m.status in
  for thread = 0 to Array.length status - 1 do
    let s = Array.unsafe_get status thread in
    if s = 0 then begin
      m.runnable.(!n) <- thread;
      incr n
    end
    else if s >= 2 && m.lock_owner.(s - 2) < 0 then begin
      status.(thread) <- 0;
      m.runnable.(!n) <- thread;
      incr n
    end
  done;
  !n

let waiting_pairs m =
  let pairs = ref [] in
  for thread = Array.length m.status - 1 downto 0 do
    let s = m.status.(thread) in
    if s >= 2 then pairs := (thread, s - 2) :: !pairs
  done;
  !pairs

(* ---- Materializing by-products ------------------------------------ *)

let decisions_list m =
  let rec go i acc =
    if i < 0 then acc
    else
      let packed = m.dec.(i) in
      go (i - 1)
        (({ Ir.thread = (packed lsr 1) land 0x7fff; pc = packed lsr 16 }, packed land 1 = 1) :: acc)
  in
  go (m.n_dec - 1) []

let syscalls_list m =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) ((B.syscall_kind_of_code m.sys_kind.(i), m.sys_val.(i)) :: acc)
  in
  go (m.n_sys - 1) []

let lock_events_list m =
  let rec go i acc =
    if i < 0 then acc
    else
      let packed = m.lev.(2 * i) and step = m.lev.((2 * i) + 1) in
      let thread = (packed lsr 1) land 0xffff and lock = packed lsr 17 in
      let event =
        if packed land 1 = 1 then Interp.Acquired { thread; lock; step }
        else Interp.Released { thread; lock; step }
      in
      go (i - 1) (event :: acc)
  in
  go (m.n_lev - 1) []

(* ---- Drivers ------------------------------------------------------- *)

let execute ?(max_steps = 20_000) ?(hooks = Interp.no_hooks) ?(cache = B.shared_cache) ~program
    ~env ~sched () =
  let prog = B.find_or_compile cache program in
  let m = make_machine ~prog ~mode:(Record env) ~hooks ~max_steps in
  let scheduler = Sched.create sched in
  let n_threads = Array.length m.status in
  let rec loop () =
    if m.finished = n_threads then Outcome.Success
    else if m.steps >= max_steps then Outcome.Hang
    else
      let n = runnable_scan m in
      if n = 0 then Outcome.Deadlock { waiting = waiting_pairs m }
      else begin
        let thread = Sched.choose_prefix scheduler ~buf:m.runnable ~n in
        m.steps <- m.steps + 1;
        match exec m thread with
        | () -> loop ()
        | exception Vm_crash (kind, message, pc) ->
          Outcome.Crash { site = { Ir.thread; pc }; kind; message }
      end
  in
  let outcome = loop () in
  {
    Interp.outcome;
    bits = m.out_bits;
    full_path = decisions_list m;
    schedule = Sched.record scheduler;
    syscalls = syscalls_list m;
    lock_events = lock_events_list m;
    steps = m.steps;
    deferred_acquisitions = m.deferred;
    suppressed_crashes = m.suppressed;
  }

let reconstruct ?(hooks = Interp.no_hooks) ?(cache = B.shared_cache) ~program ~bits ~schedule
    ~total_decisions ~total_steps () =
  let prog = B.find_or_compile cache program in
  let m = make_machine ~prog ~mode:(Replay { bits; bit_pos = 0 }) ~hooks ~max_steps:total_steps in
  let scheduler = Sched.create (Sched.Replay schedule) in
  let n_threads = Array.length m.status in
  let rec loop () =
    if m.steps >= total_steps then Ok ()
    else if m.finished = n_threads then Ok ()
    else
      let n = runnable_scan m in
      if n = 0 then Ok () (* deadlocked execution: path ends here *)
      else begin
        let thread = Sched.choose_prefix scheduler ~buf:m.runnable ~n in
        m.steps <- m.steps + 1;
        match exec m thread with
        | () -> loop ()
        | exception Vm_crash _ -> Ok () (* concrete crash on a deterministic path *)
        | exception Replay_error_local msg ->
          (* Bits running dry on the recorded crash step is the normal
             end of a trace cut short while evaluating a branch. *)
          if m.n_dec = total_decisions && m.steps >= total_steps then Ok () else Error msg
      end
  in
  match loop () with
  | Ok () ->
    if m.n_dec <> total_decisions then
      Error
        (Printf.sprintf "reconstructed %d decisions, trace recorded %d" m.n_dec total_decisions)
    else Ok { Interp.decisions = decisions_list m; locks = lock_events_list m }
  | Error msg -> Error msg
