type t =
  | Tree
  | Vm

let to_string = function Tree -> "tree" | Vm -> "vm"
let of_string = function "tree" -> Some Tree | "vm" -> Some Vm | _ -> None

let run ?max_steps ?hooks ?cache ~engine ~program ~env ~sched () =
  match engine with
  | Tree -> Interp.run ?max_steps ?hooks ~program ~env ~sched ()
  | Vm -> Vm.execute ?max_steps ?hooks ?cache ~program ~env ~sched ()

let reconstruct ?hooks ?cache ~engine ~program ~bits ~schedule ~total_decisions ~total_steps () =
  match engine with
  | Tree -> Interp.reconstruct ?hooks ~program ~bits ~schedule ~total_decisions ~total_steps ()
  | Vm -> Vm.reconstruct ?hooks ?cache ~program ~bits ~schedule ~total_decisions ~total_steps ()
