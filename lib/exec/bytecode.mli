(** One-time [Ir] → flat bytecode compilation, behind a digest-keyed
    cache.

    The tree-walk interpreter pays for boxed expression nodes and
    string-keyed variable lookups on every single step; pods run
    millions of steps, so executions/sec is the traffic multiplier for
    the whole hive.  Compiling once per program removes all of that
    from the hot path: each thread body becomes one [int array] of
    int-coded opcodes with inline operands, variables are resolved at
    compile time to dense integer slots (globals by declaration order,
    locals by first occurrence per thread), pure-constant subtrees are
    folded, and [Const]-operand binops collapse into superinstructions
    so the common [x < 10] shape is a single fetch.

    Compilation preserves tree-walk semantics exactly — see {!Vm} for
    the dispatch loop and DESIGN.md §10 for the opcode table and the
    equivalence argument.  In particular, folding never evaluates a
    division or modulo whose divisor is constant zero (the runtime
    crash must survive), and a branch whose condition folds to a
    constant still records its path decision. *)

module Ir := Softborg_prog.Ir

(** {1 Compiled form} *)

type thread_code = {
  code : int array;  (** Opcode stream: int-coded ops with inline operands. *)
  entry : int array;
      (** [entry.(pc)] is the code offset of source instruction [pc];
          length is body length + 1, the last slot addressing the
          end-of-body op (a valid branch target in the IR). *)
  n_locals : int;  (** Dense local slots used by this thread. *)
}

type t = {
  source_digest : string;  (** {!Ir.digest} of the compiled program. *)
  threads : thread_code array;
  messages : string array;  (** Assert messages, indexed by operand. *)
  n_globals : int;
  n_locks : int;
  n_inputs : int;
  max_stack : int;  (** Worst-case operand-stack depth of any statement. *)
  n_instrs : int;  (** Source IR instructions compiled. *)
  n_ops : int;  (** Total bytecode words emitted across threads. *)
}

val compile : Ir.t -> t
(** Compile without touching any cache. *)

(** {1 Compile cache}

    Pods keep re-executing the same registered program, and a hive
    process hosts many pods; compiling is ~1000× the cost of one
    execution step, so compilations are memoized process-wide.  The
    cache is keyed by {!Ir.digest} and fronted by a small
    physical-equality ring so steady-state lookups (same program value
    every execution) skip even the digest. *)

type cache

val create_cache : ?fast_slots:int -> unit -> cache
(** Fresh cache. [fast_slots] (default 64) sizes the physical-equality
    fast path. *)

val shared_cache : cache
(** Process-wide default cache, safe across domains. *)

val find_or_compile : cache -> Ir.t -> t
(** Memoized {!compile}.  Structurally equal programs share one
    compiled value, and distinct programs can never conflate (digest
    collisions aside). *)

type cache_stats = {
  hits : int;  (** Digest-keyed lookups that found an entry. *)
  fast_hits : int;  (** Lookups served by the physical-equality ring. *)
  misses : int;  (** Lookups that compiled. *)
  entries : int;  (** Distinct programs cached. *)
}

val cache_stats : cache -> cache_stats

(** {1 Opcodes}

    Exposed for the VM dispatch loop and for tests; see DESIGN.md §10
    for the full table.  Operand slots for syscall destinations and
    crash-fallback targets use a signed encoding: local slot [s] is
    [s >= 0], global slot [g] is [lnot g]. *)

val op_push_const : int
val op_push_local : int
val op_push_global : int
val op_push_input : int
val op_neg : int
val op_not : int
val op_add : int
val op_sub : int
val op_mul : int
val op_div : int
val op_mod : int
val op_eq : int
val op_ne : int
val op_lt : int
val op_le : int
val op_gt : int
val op_ge : int
val op_and : int
val op_or : int
val op_addc : int
val op_subc : int
val op_mulc : int
val op_divc : int
val op_modc : int
val op_eqc : int
val op_nec : int
val op_ltc : int
val op_lec : int
val op_gtc : int
val op_gec : int
val op_andc : int
val op_orc : int
val op_store_local : int
val op_store_global : int
val op_store_local_const : int
val op_store_global_const : int
val op_br : int
val op_br_const : int
val op_jmp : int
val op_sys : int
val op_lock : int
val op_unlock : int
val op_assert : int
val op_assert_fail : int
val op_nop_end : int
val op_halt : int
val op_eob : int

val syscall_kind_code : Ir.syscall_kind -> int
val syscall_kind_of_code : int -> Ir.syscall_kind
(** @raise Invalid_argument on an unknown code. *)

(** Crash-context codes carried by crash-capable ops (generic division
    and modulo): [ctx_branch] propagates without consulting the crash
    hook, [ctx_assert] is suppressible with no fallback effect,
    [ctx_assign] is suppressible with a zero-write fallback to the
    carried slot. *)

val ctx_branch : int
val ctx_assert : int
val ctx_assign : int
