module Bitvec = Softborg_util.Bitvec
module Ir = Softborg_prog.Ir

type lock_event =
  | Acquired of { thread : int; lock : int; step : int }
  | Released of { thread : int; lock : int; step : int }

type hooks = {
  on_lock_request :
    thread:int -> lock:int -> holding:int list -> owner:(int -> int option) ->
    [ `Proceed | `Defer ];
  on_crash : site:Ir.site -> kind:Outcome.crash_kind -> [ `Suppress | `Propagate ];
}

let no_hooks =
  {
    on_lock_request = (fun ~thread:_ ~lock:_ ~holding:_ ~owner:_ -> `Proceed);
    on_crash = (fun ~site:_ ~kind:_ -> `Propagate);
  }

type result = {
  outcome : Outcome.t;
  bits : Bitvec.t;
  full_path : (Ir.site * bool) list;
  schedule : int list;
  syscalls : (Ir.syscall_kind * int) list;
  lock_events : lock_event list;
  steps : int;
  deferred_acquisitions : int;
  suppressed_crashes : int;
}

(* A value is a possibly-unknown integer plus an input-dependence
   taint.  Record mode always has [Some _]; replay mode maintains the
   invariant tainted <=> None because external sources yield None and
   propagation is strictly structural (no absorbing-element shortcuts,
   which would break the bit-consumption alignment between modes). *)
type value = { v : int option; tainted : bool }

exception Crash_now of Outcome.crash_kind * string
exception Replay_error of string

type mode =
  | Record of Env.t
  | Replay of { bits : Bitvec.t; mutable bit_pos : int; total_decisions : int }

type thread_status =
  | Runnable
  | Blocked_on of int
  | Finished

(* Growable-array accumulators for trace by-products: no per-event cons
   on the hot loop and no final [List.rev].  The first push allocates at
   [hint] capacity (sized from [max_steps]); growth doubles. *)
type 'a vec = { mutable data : 'a array; mutable len : int; hint : int }

let vec_make ~max_steps = { data = [||]; len = 0; hint = max 16 (min max_steps 4096) }

let vec_push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let grown = Array.make (if cap = 0 then v.hint else 2 * cap) x in
    Array.blit v.data 0 grown 0 v.len;
    v.data <- grown
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let vec_to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (Array.unsafe_get v.data i :: acc) in
  go (v.len - 1) []

type machine = {
  program : Ir.t;
  mode : mode;
  hooks : hooks;
  pcs : int array;
  status : thread_status array;
  locals : (string, value) Hashtbl.t array;
  globals : (string, value) Hashtbl.t;
  lock_owner : int option array;
  mutable steps : int;
  mutable deferred : int;
  mutable suppressed : int;
  mutable out_bits : Bitvec.t;
  decisions : (Ir.site * bool) vec;
  syscalls : (Ir.syscall_kind * int) vec;
  lock_events : lock_event vec;
}

let make_machine ~program ~mode ~hooks ~max_steps =
  {
    program;
    mode;
    hooks;
    pcs = Array.make (Array.length program.Ir.threads) 0;
    status = Array.make (Array.length program.Ir.threads) Runnable;
    locals = Array.init (Array.length program.Ir.threads) (fun _ -> Hashtbl.create 8);
    globals = Hashtbl.create 8;
    lock_owner = Array.make program.Ir.n_locks None;
    steps = 0;
    deferred = 0;
    suppressed = 0;
    out_bits = Bitvec.create ();
    decisions = vec_make ~max_steps;
    syscalls = vec_make ~max_steps;
    lock_events = vec_make ~max_steps;
  }

let known n = { v = Some n; tainted = false }

(* Shared default for unbound variable reads: immutable, so one value
   serves every miss instead of consing a fresh [known 0] each time. *)
let default_value = known 0

let external_value m concrete =
  match m.mode with
  | Record _ -> { v = Some concrete; tainted = true }
  | Replay _ -> { v = None; tainted = true }

let read_var m thread var =
  let table = match var with Ir.Global _ -> m.globals | Ir.Local _ -> m.locals.(thread) in
  let name = match var with Ir.Global n | Ir.Local n -> n in
  match Hashtbl.find_opt table name with Some v -> v | None -> default_value

let write_var m thread var value =
  let table = match var with Ir.Global _ -> m.globals | Ir.Local _ -> m.locals.(thread) in
  let name = match var with Ir.Global n | Ir.Local n -> n in
  Hashtbl.replace table name value

let truth n = n <> 0
let of_bool b = if b then 1 else 0

let apply_binop op x y =
  match op with
  | Ir.Add -> x + y
  | Ir.Sub -> x - y
  | Ir.Mul -> x * y
  | Ir.Div ->
    if y = 0 then raise (Crash_now (Outcome.Division_by_zero, "division by zero"));
    x / y
  | Ir.Mod ->
    if y = 0 then raise (Crash_now (Outcome.Division_by_zero, "modulo by zero"));
    x mod y
  | Ir.Eq -> of_bool (x = y)
  | Ir.Ne -> of_bool (x <> y)
  | Ir.Lt -> of_bool (x < y)
  | Ir.Le -> of_bool (x <= y)
  | Ir.Gt -> of_bool (x > y)
  | Ir.Ge -> of_bool (x >= y)
  | Ir.And -> of_bool (truth x && truth y)
  | Ir.Or -> of_bool (truth x || truth y)

let rec eval m thread expr =
  match expr with
  | Ir.Const c -> known c
  | Ir.Var var -> read_var m thread var
  | Ir.Input i ->
    let concrete = match m.mode with Record env -> Env.input env i | Replay _ -> 0 in
    external_value m concrete
  | Ir.Unop (op, e) ->
    let a = eval m thread e in
    let v =
      match a.v with
      | None -> None
      | Some x -> Some (match op with Ir.Neg -> -x | Ir.Not -> of_bool (not (truth x)))
    in
    { v; tainted = a.tainted }
  | Ir.Binop (op, ea, eb) ->
    let a = eval m thread ea in
    let b = eval m thread eb in
    let v =
      match (a.v, b.v) with
      | Some x, Some y -> Some (apply_binop op x y)
      | (None, _ | _, None) ->
        (* Division by an unknown-but-actually-zero value cannot be
           seen in replay; the decision-count stop makes this safe. *)
        None
    in
    { v; tainted = a.tainted || b.tainted }

let record_decision m site taken = vec_push m.decisions (site, taken)

let branch_decision m site cond_value =
  match cond_value with
  | { tainted = false; v = Some n } ->
    let taken = truth n in
    record_decision m site taken;
    taken
  | { tainted = true; v } -> (
    match m.mode with
    | Record _ ->
      let taken = match v with Some n -> truth n | None -> assert false in
      Bitvec.push m.out_bits taken;
      record_decision m site taken;
      taken
    | Replay r ->
      if r.bit_pos >= Bitvec.length r.bits then
        raise (Replay_error "trace bits exhausted at input-dependent branch");
      let taken = Bitvec.get r.bits r.bit_pos in
      r.bit_pos <- r.bit_pos + 1;
      record_decision m site taken;
      taken)
  | { tainted = false; v = None } ->
    raise (Replay_error "untainted value is unknown (machine invariant broken)")

(* Execute one instruction of [thread].  Returns [true] if the thread
   made progress (anything but a blocked lock attempt). *)
let step m thread =
  let body = m.program.Ir.threads.(thread) in
  let pc = m.pcs.(thread) in
  if pc >= Array.length body then begin
    m.status.(thread) <- Finished;
    true
  end
  else begin
    let site = { Ir.thread; pc } in
    (* A crash at a suppressible instruction may be patched over by the
       crash hook: skip the instruction, zero an assignment target. *)
    let suppress_or_reraise kind message fallback =
      match m.hooks.on_crash ~site ~kind with
      | `Suppress ->
        m.suppressed <- m.suppressed + 1;
        fallback ();
        m.pcs.(thread) <- pc + 1;
        true
      | `Propagate -> raise (Crash_now (kind, message))
    in
    match body.(pc) with
    | Ir.Assign (var, e) -> (
      match eval m thread e with
      | value ->
        write_var m thread var value;
        m.pcs.(thread) <- pc + 1;
        true
      | exception Crash_now (kind, message) ->
        suppress_or_reraise kind message (fun () -> write_var m thread var (known 0)))
    | Ir.Branch { cond; if_true; if_false } ->
      let value = eval m thread cond in
      let taken = branch_decision m site value in
      m.pcs.(thread) <- (if taken then if_true else if_false);
      true
    | Ir.Jump target ->
      m.pcs.(thread) <- target;
      true
    | Ir.Syscall { kind; dst } ->
      let concrete = match m.mode with Record env -> Env.syscall env kind | Replay _ -> 0 in
      (match m.mode with
      | Record _ -> vec_push m.syscalls (kind, concrete)
      | Replay _ -> ());
      write_var m thread dst (external_value m concrete);
      m.pcs.(thread) <- pc + 1;
      true
    | Ir.Lock lock -> (
      match m.lock_owner.(lock) with
      | Some other when other <> thread ->
        m.status.(thread) <- Blocked_on lock;
        false
      | Some _ ->
        (* Re-acquiring a lock we hold: self-deadlock. *)
        m.status.(thread) <- Blocked_on lock;
        false
      | None -> (
        let holding =
          Array.to_list m.lock_owner
          |> List.mapi (fun l owner -> (l, owner))
          |> List.filter_map (fun (l, owner) -> if owner = Some thread then Some l else None)
        in
        let owner l = m.lock_owner.(l) in
        match m.hooks.on_lock_request ~thread ~lock ~holding ~owner with
        | `Defer ->
          m.deferred <- m.deferred + 1;
          (* Spin: stay runnable at the same pc and retry later. *)
          true
        | `Proceed ->
          m.lock_owner.(lock) <- Some thread;
          vec_push m.lock_events (Acquired { thread; lock; step = m.steps });
          m.status.(thread) <- Runnable;
          m.pcs.(thread) <- pc + 1;
          true))
    | Ir.Unlock lock ->
      if m.lock_owner.(lock) = Some thread then begin
        m.lock_owner.(lock) <- None;
        vec_push m.lock_events (Released { thread; lock; step = m.steps })
      end;
      m.pcs.(thread) <- pc + 1;
      true
    | Ir.Assert { cond; message } -> (
      match eval m thread cond with
      | value ->
        (match value.v with
        | Some n when not (truth n) ->
          ignore (suppress_or_reraise Outcome.Assertion_failure message (fun () -> ()))
        | Some _ | None -> m.pcs.(thread) <- pc + 1);
        true
      | exception Crash_now (kind, message) ->
        suppress_or_reraise kind message (fun () -> ()))
    | Ir.Yield ->
      m.pcs.(thread) <- pc + 1;
      true
    | Ir.Halt ->
      m.status.(thread) <- Finished;
      true
  end

let runnable_threads m =
  let ids = ref [] in
  for thread = Array.length m.status - 1 downto 0 do
    match m.status.(thread) with
    | Runnable -> ids := thread :: !ids
    | Blocked_on lock ->
      (* A blocked thread wakes when the lock frees up; it then re-runs
         its Lock instruction. *)
      if m.lock_owner.(lock) = None then begin
        m.status.(thread) <- Runnable;
        ids := thread :: !ids
      end
    | Finished -> ()
  done;
  !ids

let all_finished m =
  Array.for_all (function Finished -> true | Runnable | Blocked_on _ -> false) m.status

let waiting_pairs m =
  let pairs = ref [] in
  Array.iteri
    (fun thread status ->
      match status with Blocked_on lock -> pairs := (thread, lock) :: !pairs | Runnable | Finished -> ())
    m.status;
  List.rev !pairs

(* The shared driver loop.  Returns the outcome; by-products accumulate
   in the machine. *)
let drive m ~max_steps ~sched =
  let scheduler = Sched.create sched in
  let rec loop () =
    if all_finished m then Outcome.Success
    else if m.steps >= max_steps then Outcome.Hang
    else
      match runnable_threads m with
      | [] -> Outcome.Deadlock { waiting = waiting_pairs m }
      | runnable -> (
        let thread = Sched.choose scheduler ~runnable in
        m.steps <- m.steps + 1;
        match step m thread with
        | _made_progress -> loop ()
        | exception Crash_now (kind, message) ->
          Outcome.Crash { site = { Ir.thread; pc = m.pcs.(thread) }; kind; message })
  in
  let outcome = loop () in
  (outcome, Sched.record scheduler)

let run ?(max_steps = 20_000) ?(hooks = no_hooks) ~program ~env ~sched () =
  let m = make_machine ~program ~mode:(Record env) ~hooks ~max_steps in
  let outcome, schedule = drive m ~max_steps ~sched in
  {
    outcome;
    bits = m.out_bits;
    full_path = vec_to_list m.decisions;
    schedule;
    syscalls = vec_to_list m.syscalls;
    lock_events = vec_to_list m.lock_events;
    steps = m.steps;
    deferred_acquisitions = m.deferred;
    suppressed_crashes = m.suppressed;
  }

type reconstruction = {
  decisions : (Ir.site * bool) list;
  locks : lock_event list;
}

let reconstruct ?(hooks = no_hooks) ~program ~bits ~schedule ~total_decisions ~total_steps ()
    =
  let mode = Replay { bits; bit_pos = 0; total_decisions } in
  let m = make_machine ~program ~mode ~hooks ~max_steps:total_steps in
  let scheduler = Sched.create (Sched.Replay schedule) in
  let rec loop () =
    if m.steps >= total_steps then Ok ()
    else if all_finished m then Ok ()
    else
      match runnable_threads m with
      | [] -> Ok ()  (* deadlocked execution: path ends here *)
      | runnable -> (
        let thread = Sched.choose scheduler ~runnable in
        m.steps <- m.steps + 1;
        match step m thread with
        | _ -> loop ()
        | exception Crash_now _ -> Ok ()  (* concrete crash on a deterministic path *)
        | exception Replay_error msg ->
          (* Bits running dry on the recorded crash step is the normal
             end of a trace cut short while evaluating a branch. *)
          if m.decisions.len = total_decisions && m.steps >= total_steps then Ok ()
          else Error msg)
  in
  match loop () with
  | Ok () ->
    if m.decisions.len <> total_decisions then
      Error
        (Printf.sprintf "reconstructed %d decisions, trace recorded %d" m.decisions.len
           total_decisions)
    else Ok { decisions = vec_to_list m.decisions; locks = vec_to_list m.lock_events }
  | Error msg -> Error msg
