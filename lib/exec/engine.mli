(** Execution-engine selection.

    Both engines implement the same record/replay semantics (a tested
    equivalence); pods default to the bytecode {!Vm} for throughput,
    while the tree-walk {!Interp} remains the reference semantics and a
    debugging fallback. *)

module Bitvec := Softborg_util.Bitvec
module Ir := Softborg_prog.Ir

type t =
  | Tree  (** Tree-walk reference interpreter ({!Interp}). *)
  | Vm  (** Compiled bytecode ({!Bytecode} + {!Vm}). *)

val to_string : t -> string
(** ["tree"] or ["vm"]. *)

val of_string : string -> t option

val run :
  ?max_steps:int ->
  ?hooks:Interp.hooks ->
  ?cache:Bytecode.cache ->
  engine:t ->
  program:Ir.t ->
  env:Env.t ->
  sched:Sched.policy ->
  unit ->
  Interp.result
(** Dispatch to {!Interp.run} or {!Vm.execute}; [cache] only applies to
    the VM engine. *)

val reconstruct :
  ?hooks:Interp.hooks ->
  ?cache:Bytecode.cache ->
  engine:t ->
  program:Ir.t ->
  bits:Bitvec.t ->
  schedule:int list ->
  total_decisions:int ->
  total_steps:int ->
  unit ->
  (Interp.reconstruction, string) result
(** Dispatch to {!Interp.reconstruct} or {!Vm.reconstruct}. *)
