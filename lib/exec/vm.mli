(** Allocation-free bytecode execution.

    Drop-in replacement for the tree-walk {!Interp}: same record/replay
    semantics — taint tracking, branch-bit emission/consumption, crash
    hooks and suppression, syscall summaries, lock events, and the
    decision-count stop — but dispatching {!Bytecode} int opcodes over
    dense slot arrays.  After the per-run setup, the dispatch loop
    allocates no minor words per iteration: values live in
    preallocated int arrays, taint in bytes, and trace by-products
    accumulate into packed int buffers whose growth goes straight to
    the major heap.  That matters because pods share a process with
    racing solver domains, and OCaml 5 minor collections stop every
    domain.

    Equivalence with {!Interp} is a tested property (identical
    {!Outcome.t}, bits, decisions, syscall summaries, lock events, and
    replay errors over the generator corpus); the argument is spelled
    out in DESIGN.md §10. *)

module Bitvec := Softborg_util.Bitvec
module Ir := Softborg_prog.Ir

val execute :
  ?max_steps:int ->
  ?hooks:Interp.hooks ->
  ?cache:Bytecode.cache ->
  program:Ir.t ->
  env:Env.t ->
  sched:Sched.policy ->
  unit ->
  Interp.result
(** Bytecode counterpart of {!Interp.run}; identical defaults
    ([max_steps] 20_000, no hooks) and identical results.  The program
    is compiled through [cache] (default {!Bytecode.shared_cache}). *)

val reconstruct :
  ?hooks:Interp.hooks ->
  ?cache:Bytecode.cache ->
  program:Ir.t ->
  bits:Bitvec.t ->
  schedule:int list ->
  total_decisions:int ->
  total_steps:int ->
  unit ->
  (Interp.reconstruction, string) result
(** Bytecode counterpart of {!Interp.reconstruct}: replays a recorded
    trace, reconstructing the full decision sequence and lock events,
    with the same error behavior on truncated or over-long bit
    vectors. *)
