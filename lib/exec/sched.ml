module Rng = Softborg_util.Rng

type policy =
  | Round_robin
  | Random_sched of Rng.t
  | Replay of int list
  | Guided of { prefix : int list; fallback : Rng.t }

type t = {
  policy : policy;
  mutable pending : int list;  (* remaining replay/guided choices *)
  mutable last : int;  (* last chosen thread, for round-robin *)
  mutable chosen : int list;  (* reverse-order record of contended choices *)
}

let create policy =
  let pending =
    match policy with Replay l -> l | Guided { prefix; _ } -> prefix | Round_robin | Random_sched _ -> []
  in
  { policy; pending; last = -1; chosen = [] }

let round_robin t runnable =
  (* First runnable thread strictly greater than the last choice,
     wrapping around. *)
  match List.find_opt (fun id -> id > t.last) runnable with
  | Some id -> id
  | None -> List.hd runnable

let default_choice t runnable =
  match t.policy with
  | Random_sched rng | Guided { fallback = rng; _ } -> Rng.choice rng (Array.of_list runnable)
  | Round_robin | Replay _ -> round_robin t runnable

let choose t ~runnable =
  match runnable with
  | [] -> invalid_arg "Sched.choose: no runnable threads"
  | [ only ] ->
    t.last <- only;
    only
  | _ ->
    let chosen =
      match t.pending with
      | wanted :: rest when List.mem wanted runnable ->
        t.pending <- rest;
        wanted
      | wanted :: rest when not (List.mem wanted runnable) ->
        (* Skip stale choices (the wanted thread finished or blocked). *)
        t.pending <- rest;
        default_choice t runnable
      | _ -> default_choice t runnable
    in
    t.last <- chosen;
    t.chosen <- chosen :: t.chosen;
    chosen

(* Allocation-free variant of [choose] over an array prefix.  Must stay
   behaviorally identical to [choose] on the same runnable set — same
   RNG draws ([Rng.choice] is one uniform index draw over the length),
   same pending/round-robin fallbacks, same recording — so that the
   bytecode VM and the tree-walk interpreter produce identical
   schedules from identical policies. *)
let choose_prefix t ~buf ~n =
  if n <= 0 then invalid_arg "Sched.choose_prefix: no runnable threads"
  else if n = 1 then begin
    let only = buf.(0) in
    t.last <- only;
    only
  end
  else begin
    let mem wanted =
      let rec go i = i < n && (buf.(i) = wanted || go (i + 1)) in
      go 0
    in
    let default () =
      match t.policy with
      | Random_sched rng | Guided { fallback = rng; _ } -> buf.(Rng.int rng n)
      | Round_robin | Replay _ ->
        (* First runnable thread strictly greater than the last choice,
           wrapping around ([buf] is ascending like [runnable]). *)
        let rec find i = if i >= n then buf.(0) else if buf.(i) > t.last then buf.(i) else find (i + 1) in
        find 0
    in
    let chosen =
      match t.pending with
      | wanted :: rest when mem wanted ->
        t.pending <- rest;
        wanted
      | _ :: rest ->
        t.pending <- rest;
        default ()
      | [] -> default ()
    in
    t.last <- chosen;
    t.chosen <- chosen :: t.chosen;
    chosen
  end

let record t = List.rev t.chosen
