module Rng = Softborg_util.Rng

type heuristic =
  | Max_occurrence
  | Jeroslow_wang
  | Random_branch of Rng.t

type verdict =
  | Sat of Cnf.assignment
  | Unsat
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;
}

type assign_state =
  | Unset
  | True_at of int  (* decision level *)
  | False_at of int

(* The search is an explicit machine rather than a recursion so a race
   scheduler can run it a bounded number of steps and resume it later.
   A frame is one open decision: [flipped] records whether the second
   phase has been tried yet. *)
type frame = {
  var : int;
  mutable phase : bool;
  mutable flipped : bool;
  level : int;
}

type control =
  | Propagate  (* unit-propagate at the current level *)
  | Check  (* propagation stable: test satisfaction, then branch *)
  | Backtrack

type state = {
  clauses : int array array;
  n : int;
  assign : assign_state array;
  heuristic : heuristic;
  mutable trail : frame list;
  mutable control : control;
  mutable steps : int;
  mutable result : verdict option;
}

let start ?(heuristic = Max_occurrence) formula =
  {
    clauses = Array.of_list (List.map Array.of_list formula.Cnf.clauses);
    n = formula.Cnf.n_vars;
    assign = Array.make (formula.Cnf.n_vars + 1) Unset;
    heuristic;
    trail = [];
    control = Propagate;
    steps = 0;
    result = None;
  }

let steps st = st.steps

(* Literal value as an unboxed int (1 true, -1 false, 0 unset).  The
   solvers race on separate domains, and in OCaml 5 every minor
   collection synchronizes all domains — an [option] here would
   allocate once per literal examined and serialize the whole
   portfolio on the GC. *)
let ivalue st lit =
  match st.assign.(abs lit) with
  | Unset -> 0
  | True_at _ -> if lit > 0 then 1 else -1
  | False_at _ -> if lit > 0 then -1 else 1

let assign st lit level =
  st.assign.(abs lit) <- (if lit > 0 then True_at level else False_at level)

let unassign_level st level =
  for v = 1 to st.n do
    match st.assign.(v) with
    | True_at l | False_at l -> if l >= level then st.assign.(v) <- Unset
    | Unset -> ()
  done

let current_level st = match st.trail with [] -> 0 | f :: _ -> f.level

(* Scan all clauses once: detect conflicts and collect unit literals.
   Returns `Conflict, `Units of literals, or `Stable. *)
let scan st =
  let units = ref [] in
  let conflict = ref false in
  let clauses = st.clauses in
  let n_clauses = Array.length clauses in
  let c = ref 0 in
  while (not !conflict) && !c < n_clauses do
    let clause = clauses.(!c) in
    st.steps <- st.steps + 1;
    (* Count unassigned literals instead of collecting them: the scan
       only needs to distinguish 0 / 1 / many.  Plain loops, no
       closures — a closure per clause here costs a dozen words per
       step, enough to put a racing domain in near-permanent minor
       GC (see [ivalue]). *)
    let satisfied = ref false in
    let n_unassigned = ref 0 in
    let unit_lit = ref 0 in
    let len = Array.length clause in
    for j = 0 to len - 1 do
      let lit = clause.(j) in
      match ivalue st lit with
      | 1 -> satisfied := true
      | 0 ->
        incr n_unassigned;
        unit_lit := lit
      | _ -> ()
    done;
    if not !satisfied then
      if !n_unassigned = 0 then conflict := true
      else if !n_unassigned = 1 then units := !unit_lit :: !units;
    incr c
  done;
  if !conflict then `Conflict else match !units with [] -> `Stable | lits -> `Units lits

let pick_branch_variable st =
  match st.heuristic with
  | Random_branch rng ->
    let candidates = ref [] in
    for v = 1 to st.n do
      if st.assign.(v) = Unset then candidates := v :: !candidates
    done;
    (match !candidates with
    | [] -> None
    | vs -> Some (Rng.choice rng (Array.of_list vs)))
  | Max_occurrence | Jeroslow_wang ->
    let score = Array.make (st.n + 1) 0.0 in
    let clauses = st.clauses in
    for c = 0 to Array.length clauses - 1 do
      let clause = clauses.(c) in
      st.steps <- st.steps + 1;
      let len = Array.length clause in
      let satisfied = ref false in
      let j = ref 0 in
      while (not !satisfied) && !j < len do
        if ivalue st clause.(!j) = 1 then satisfied := true;
        incr j
      done;
      if not !satisfied then begin
        let weight =
          match st.heuristic with
          | Jeroslow_wang -> Float.pow 2.0 (-.float_of_int len)
          | Max_occurrence | Random_branch _ -> 1.0
        in
        for k = 0 to len - 1 do
          let lit = clause.(k) in
          if ivalue st lit = 0 then score.(abs lit) <- score.(abs lit) +. weight
        done
      end
    done;
    let best = ref 0 and best_score = ref (-1.0) in
    for v = 1 to st.n do
      if st.assign.(v) = Unset && score.(v) > !best_score then begin
        best := v;
        best_score := score.(v)
      end
    done;
    if !best = 0 then None else Some !best

(* Closure-free: same minor-GC-pressure concern as [scan]. *)
let clause_satisfied st clause =
  let len = Array.length clause in
  let sat = ref false in
  let j = ref 0 in
  while (not !sat) && !j < len do
    if ivalue st clause.(!j) = 1 then sat := true;
    incr j
  done;
  !sat

let all_satisfied st =
  let clauses = st.clauses in
  let n_clauses = Array.length clauses in
  let ok = ref true in
  let c = ref 0 in
  while !ok && !c < n_clauses do
    st.steps <- st.steps + 1;
    if not (clause_satisfied st clauses.(!c)) then ok := false;
    incr c
  done;
  !ok

let extract_sat st =
  let assignment = Array.make (st.n + 1) false in
  for v = 1 to st.n do
    assignment.(v) <- (match st.assign.(v) with True_at _ -> true | False_at _ | Unset -> false)
  done;
  Sat assignment

let finish st verdict =
  st.result <- Some verdict;
  `Done verdict

(* Run one control transition; each costs at most one pass over the
   clauses, which is the fuel-check granularity of [step]. *)
let advance st =
  match st.control with
  | Propagate -> (
    let level = current_level st in
    match scan st with
    | `Conflict ->
      st.control <- Backtrack;
      `Running
    | `Stable ->
      st.control <- Check;
      `Running
    | `Units lits ->
      let progressed = ref false in
      let contradiction = ref false in
      List.iter
        (fun lit ->
          match ivalue st lit with
          | 0 ->
            assign st lit level;
            progressed := true
          | 1 -> ()
          | _ -> contradiction := true)
        lits;
      if !contradiction then st.control <- Backtrack
      else if not !progressed then st.control <- Check;
      `Running)
  | Check ->
    if all_satisfied st then `Decided (extract_sat st)
    else (
      match pick_branch_variable st with
      | None ->
        (* Every variable assigned yet some clause unsatisfied. *)
        st.control <- Backtrack;
        `Running
      | Some v ->
        let level = current_level st + 1 in
        st.trail <- { var = v; phase = true; flipped = false; level } :: st.trail;
        assign st v level;
        st.control <- Propagate;
        `Running)
  | Backtrack -> (
    match st.trail with
    | [] -> `Decided Unsat
    | frame :: rest ->
      unassign_level st frame.level;
      if frame.flipped then begin
        st.trail <- rest;
        `Running  (* stay in Backtrack *)
      end
      else begin
        frame.phase <- not frame.phase;
        frame.flipped <- true;
        assign st (if frame.phase then frame.var else -frame.var) frame.level;
        st.control <- Propagate;
        `Running
      end)

let step st ~fuel =
  match st.result with
  | Some verdict -> `Done verdict
  | None ->
    let floor = st.steps in
    let rec go () =
      match advance st with
      | `Decided verdict -> finish st verdict
      | `Running -> if st.steps - floor >= fuel then `More else go ()
    in
    go ()

let solve ?heuristic ?(budget = 10_000_000) formula =
  let st = start ?heuristic formula in
  match step st ~fuel:budget with
  | `Done verdict -> { verdict; steps = st.steps }
  | `More -> { verdict = Timeout; steps = st.steps }
