(** Solver portfolios (paper §4).

    "Choosing the equities with the highest return is undecidable, so
    one invests in several in parallel."  A portfolio runs k
    heterogeneous SAT solvers on the same instance; the race ends when
    the first solver reaches a verdict.  The paper's preliminary
    result — a portfolio of three SAT solvers giving a 10× speedup in
    solving time for a 3× increase in resources — is reproduced by
    experiment E3 on top of this module.

    The race is genuinely preemptive: members expose resumable
    step-sliced searches, {!race} interleaves their slices round-robin
    and stops every loser the moment one member decides, so
    [resource_steps] is work actually performed — not the counterfactual
    accounting of a simulated race ({!race_whole_budget} keeps the
    run-everyone-to-budget behavior as the baseline E3 compares
    against).  Costs are in solver {e steps} (clause examinations), the
    shared machine-independent unit. *)

module Rng := Softborg_util.Rng
module Pool := Softborg_util.Pool

type verdict =
  | V_sat
  | V_unsat
  | V_unknown  (** Budget exhausted with no decision. *)

type run = {
  solver : string;
  verdict : verdict;
      (** [V_unknown] for members that were cancelled or exhausted
          their budget. *)
  steps : int;  (** Steps the member had executed when the race ended. *)
}

type member = {
  step : fuel:int -> [ `Done of verdict | `More ];
  steps : unit -> int;
}
(** One racing instance: a paused search plus its step counter.  States
    must be independent — a race may run members on different domains. *)

type solver = {
  name : string;
  budget : int;  (** Per-member step budget for one race. *)
  start : Cnf.formula -> member;
}

val dpll_solver : ?heuristic:Dpll.heuristic -> budget:int -> string -> solver
(** With [Random_branch], every {!solver.start} splits a fresh child
    generator, so cancellation depth cannot leak into later races. *)

val walksat_solver : budget:int -> seed:int -> string -> solver
(** Each instance draws from its own {!Rng.split} stream — repeated
    races are independent yet the whole sequence replays from
    [seed]. *)

val standard_three : budget:int -> seed:int -> solver list
(** The paper's "three different SAT solvers": DPLL/max-occurrence,
    DPLL/random-branching, and WalkSAT — three genuinely different
    performance profiles. *)

type race_result = {
  verdict : verdict;
  winner : string option;  (** First solver to decide, if any. *)
  wall_steps : int;  (** The winner's steps (max over members if nobody decided). *)
  resource_steps : int;  (** Total steps actually executed across all members. *)
  runs : run list;  (** Per-member accounting, in portfolio order. *)
}

val default_slice : int
(** Steps per slice of the round-robin schedule (4096). *)

val race :
  ?slice:int ->
  ?pool:Pool.t ->
  ?force_parallel:bool ->
  solver list ->
  Cnf.formula ->
  race_result
(** Preemptive race: members advance [slice] steps at a time in
    round-robin order; the first [`Done] in schedule order wins and
    every other member stops.  With a [pool] of size > 1, members run
    on worker domains instead, cooperatively cancelled through a
    {!Pool.Race_cell} checked at slice boundaries — the result
    (verdict, winner, and all step accounting) is guaranteed identical
    to the sequential schedule for any pool size; only wall-clock
    changes.  On a single-core host ({!Domain.recommended_domain_count}
    = 1) the pool is ignored and the sequential engine runs — physical
    domains can only time-share the CPU there — unless [force_parallel]
    (default [false]) insists on the physical path, which the
    determinism tests use to exercise it everywhere.
    @raise Invalid_argument on an empty portfolio or [slice <= 0]. *)

val race_whole_budget : solver list -> Cnf.formula -> race_result
(** The pre-preemption baseline: every member runs to its own verdict
    or budget, the winner is the decider with the fewest steps, and
    [resource_steps] is the sum of all members' full runs — the waste
    {!race} eliminates.  Verdict-equivalent to {!race} for sound
    members (property-tested against it and the brute-force oracle).
    @raise Invalid_argument on an empty portfolio. *)

val speedup : single_steps:float -> portfolio_steps:float -> float
(** Ratio, guarding against zero. *)
