module Ir = Softborg_prog.Ir

type verdict =
  | Sat of int array
  | Unsat
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;
}

(* Intervals are inclusive [lo, hi]; [top] is wide enough to dominate
   any arithmetic on domain-bounded values without overflowing. *)
let top_lo = -(1 lsl 40)
let top_hi = 1 lsl 40

type interval = { lo : int; hi : int }

let top = { lo = top_lo; hi = top_hi }
let point n = { lo = n; hi = n }
let clamp i = { lo = max i.lo top_lo; hi = min i.hi top_hi }
let contains_zero i = i.lo <= 0 && i.hi >= 0

(* Truthiness interval of a boolean-producing expression: [0;1],
   [0;0], or [1;1]. *)
let bool_iv ~can_false ~can_true =
  { lo = (if can_false then 0 else 1); hi = (if can_true then 1 else 0) }

let of_bool b = if b then 1 else 0
let truthy n = n <> 0

let concrete_binop op x y =
  match op with
  | Ir.Add -> Some (x + y)
  | Ir.Sub -> Some (x - y)
  | Ir.Mul -> Some (x * y)
  | Ir.Div -> if y = 0 then None else Some (x / y)
  | Ir.Mod -> if y = 0 then None else Some (x mod y)
  | Ir.Eq -> Some (of_bool (x = y))
  | Ir.Ne -> Some (of_bool (x <> y))
  | Ir.Lt -> Some (of_bool (x < y))
  | Ir.Le -> Some (of_bool (x <= y))
  | Ir.Gt -> Some (of_bool (x > y))
  | Ir.Ge -> Some (of_bool (x >= y))
  | Ir.And -> Some (of_bool (truthy x && truthy y))
  | Ir.Or -> Some (of_bool (truthy x || truthy y))

let rec eval_iv env = function
  | Ir.Const c -> point c
  | Ir.Var _ -> top
  | Ir.Input i -> if i >= 0 && i < Array.length env then env.(i) else top
  | Ir.Unop (op, e) -> (
    let a = eval_iv env e in
    match op with
    | Ir.Neg -> clamp { lo = -a.hi; hi = -a.lo }
    | Ir.Not ->
      let can_true = contains_zero a (* operand can be 0 -> not = 1 *) in
      let can_false = a.lo <> 0 || a.hi <> 0 in
      bool_iv ~can_false ~can_true)
  | Ir.Binop (op, ea, eb) -> (
    let a = eval_iv env ea in
    let b = eval_iv env eb in
    (* Point intervals evaluate exactly (division by a zero point is
       conservatively top: the trap is the concrete checker's job). *)
    if a.lo = a.hi && b.lo = b.hi then
      match concrete_binop op a.lo b.lo with Some v -> point v | None -> top
    else
    match op with
    | Ir.Add -> clamp { lo = a.lo + b.lo; hi = a.hi + b.hi }
    | Ir.Sub -> clamp { lo = a.lo - b.hi; hi = a.hi - b.lo }
    | Ir.Mul ->
      (* Wide operands would overflow the corner products; give up. *)
      let wide i = i.lo <= -(1 lsl 20) || i.hi >= 1 lsl 20 in
      if wide a || wide b then top
      else
        let corners = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
        clamp { lo = List.fold_left min max_int corners; hi = List.fold_left max min_int corners }
    | Ir.Div ->
      if contains_zero b then top
      else
        let corners = [ a.lo / b.lo; a.lo / b.hi; a.hi / b.lo; a.hi / b.hi ] in
        (* Truncated division is monotone enough for corner bounds,
           widened by one to stay conservative near sign changes. *)
        clamp
          {
            lo = List.fold_left min max_int corners - 1;
            hi = List.fold_left max min_int corners + 1;
          }
    | Ir.Mod ->
      if b.lo = b.hi && b.lo > 0 then
        let m = b.lo in
        if a.lo >= 0 then { lo = 0; hi = m - 1 } else { lo = -(m - 1); hi = m - 1 }
      else top
    | Ir.Eq ->
      let overlap = not (a.hi < b.lo || b.hi < a.lo) in
      let forced = a.lo = a.hi && b.lo = b.hi && a.lo = b.lo in
      bool_iv ~can_false:(not forced) ~can_true:overlap
    | Ir.Ne ->
      let overlap = not (a.hi < b.lo || b.hi < a.lo) in
      let forced_eq = a.lo = a.hi && b.lo = b.hi && a.lo = b.lo in
      bool_iv ~can_false:overlap ~can_true:(not forced_eq)
    | Ir.Lt -> bool_iv ~can_false:(a.hi >= b.lo) ~can_true:(a.lo < b.hi)
    | Ir.Le -> bool_iv ~can_false:(a.hi > b.lo) ~can_true:(a.lo <= b.hi)
    | Ir.Gt -> bool_iv ~can_false:(a.lo <= b.hi) ~can_true:(a.hi > b.lo)
    | Ir.Ge -> bool_iv ~can_false:(a.lo < b.hi) ~can_true:(a.hi >= b.lo)
    | Ir.And ->
      let a_false = contains_zero a and b_false = contains_zero b in
      let a_true = a.lo <> 0 || a.hi <> 0 in
      let b_true = b.lo <> 0 || b.hi <> 0 in
      bool_iv ~can_false:(a_false || b_false) ~can_true:(a_true && b_true)
    | Ir.Or ->
      let a_false = contains_zero a and b_false = contains_zero b in
      let a_true = a.lo <> 0 || a.hi <> 0 in
      let b_true = b.lo <> 0 || b.hi <> 0 in
      bool_iv ~can_false:(a_false && b_false) ~can_true:(a_true || b_true))

(* Check one atom against an interval environment. *)
type atom_status = Definitely_holds | Definitely_fails | Undecided

let atom_status env (a : Path_cond.atom) =
  let iv = eval_iv env a.Path_cond.cond in
  (* Truthiness over the interval: any nonzero value is true. *)
  let can_be_true = not (iv.lo = 0 && iv.hi = 0) in
  let can_be_false = contains_zero iv in
  match (a.Path_cond.expected, can_be_true, can_be_false) with
  | true, false, _ -> Definitely_fails
  | true, true, false -> Definitely_holds
  | false, _, false -> Definitely_fails
  | false, false, true -> Definitely_holds
  | _, true, true -> Undecided

let check_env steps env atoms =
  let rec loop = function
    | [] -> `Possible
    | a :: rest -> (
      incr steps;
      match atom_status env a with
      | Definitely_fails -> `Refuted
      | Definitely_holds | Undecided -> loop rest)
  in
  loop atoms

(* Narrow per-input bounds using atoms of the direct shape
   [Input i  <cmp>  Const c].  Returns false when a domain empties
   (definite infeasibility). *)
let narrow env atoms =
  let ok = ref true in
  let update i lo hi =
    if i >= 0 && i < Array.length env then begin
      let iv = env.(i) in
      let lo = max iv.lo lo and hi = min iv.hi hi in
      env.(i) <- { lo; hi };
      if lo > hi then ok := false
    end
  in
  List.iter
    (fun (a : Path_cond.atom) ->
      match (a.Path_cond.cond, a.Path_cond.expected) with
      | Ir.Binop (cmp, Ir.Input i, Ir.Const c), expected -> (
        match (cmp, expected) with
        | Ir.Lt, true -> update i top_lo (c - 1)
        | Ir.Lt, false -> update i c top_hi
        | Ir.Le, true -> update i top_lo c
        | Ir.Le, false -> update i (c + 1) top_hi
        | Ir.Gt, true -> update i (c + 1) top_hi
        | Ir.Gt, false -> update i top_lo c
        | Ir.Ge, true -> update i c top_hi
        | Ir.Ge, false -> update i top_lo (c - 1)
        | Ir.Eq, true -> update i c c
        | (Ir.Eq | Ir.Ne | Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Mod | Ir.And | Ir.Or), _ -> ())
      | _ -> ())
    atoms;
  !ok

(* Constraint-derived value-ordering hints: constants (±1) and residue
   ladders r + k*m for every (modulus m, comparison constant r). *)
let hints ~domain:(dom_lo, dom_hi) atoms =
  let consts = Path_cond.constants atoms in
  let mods = List.filter (fun m -> m > 1) (Path_cond.moduli atoms) in
  let near = List.concat_map (fun c -> [ c - 1; c; c + 1 ]) consts in
  let ladders =
    List.concat_map
      (fun m ->
        List.concat_map
          (fun r ->
            if r >= 0 && r < m then
              let rec ladder v acc = if v > dom_hi then acc else ladder (v + m) (v :: acc) in
              ladder (((dom_lo / m) * m) + r) []
            else [])
          consts)
      mods
  in
  List.filter (fun v -> v >= dom_lo && v <= dom_hi) (near @ ladders)
  |> List.sort_uniq Int.compare

(* Resumable backtracking enumeration.  One frame per used input; a
   frame remembers the interval it clobbered and the candidate values
   not yet tried.  [advance] performs one "try" (or one backtrack pop),
   the fuel-check granularity of [step]. *)
type frame = {
  input : int;
  saved : interval;
  below : int list;  (* used inputs still to fix beneath this frame *)
  mutable pending : int list;
}

type enum = {
  atoms : Path_cond.t;
  env : interval array;
  candidates : int list;
  dom_lo : int;
  mutable stack : frame list;
  mutable steps : int;
  mutable result : verdict option;
}

let verify_leaf st =
  (* All used inputs fixed: verify concretely. *)
  let model = Array.map (fun iv -> if iv.lo = iv.hi then iv.lo else st.dom_lo) st.env in
  st.steps <- st.steps + 1;
  if Path_cond.satisfied_by st.atoms model then st.result <- Some (Sat model)

let push_frame st input below =
  st.stack <- { input; saved = st.env.(input); below; pending = st.candidates } :: st.stack

let start ~domain:(dom_lo, dom_hi) ~n_inputs atoms =
  if dom_lo > dom_hi then invalid_arg "Interval.start: empty domain";
  if n_inputs < 0 then invalid_arg "Interval.start: negative n_inputs";
  if not (Path_cond.well_formed atoms) then
    invalid_arg "Interval.start: path condition mentions program variables";
  let env = Array.make n_inputs { lo = dom_lo; hi = dom_hi } in
  let used = Path_cond.inputs_used atoms in
  let used = List.filter (fun i -> i < n_inputs) used in
  let hinted = hints ~domain:(dom_lo, dom_hi) atoms in
  let candidates =
    (* Hinted values first, then the rest of the domain ascending. *)
    let in_hints v = List.mem v hinted in
    hinted @ List.filter (fun v -> not (in_hints v)) (List.init (dom_hi - dom_lo + 1) (fun k -> dom_lo + k))
  in
  let st = { atoms; env; candidates; dom_lo; stack = []; steps = 0; result = None } in
  let steps = ref 0 in
  (if not (narrow env atoms) then st.result <- Some Unsat
   else
     match check_env steps env atoms with
     | `Refuted -> st.result <- Some Unsat
     | `Possible -> (
       match used with
       | [] ->
         verify_leaf st;
         if st.result = None then st.result <- Some Unsat
       | input :: below -> push_frame st input below));
  st.steps <- st.steps + !steps;
  st

(* One enumeration move: try the next pending value of the top frame,
   descending on success, or pop an exhausted frame. *)
let advance st =
  match st.stack with
  | [] -> st.result <- Some Unsat
  | frame :: rest -> (
    match frame.pending with
    | [] ->
      st.env.(frame.input) <- frame.saved;
      st.stack <- rest
    | v :: pending -> (
      frame.pending <- pending;
      st.env.(frame.input) <- point v;
      let steps = ref 0 in
      let status = check_env steps st.env st.atoms in
      st.steps <- st.steps + !steps;
      match status with
      | `Refuted -> ()
      | `Possible -> (
        match frame.below with
        | [] -> verify_leaf st
        | input :: below -> push_frame st input below)))

let step st ~fuel =
  match st.result with
  | Some verdict -> `Done verdict
  | None ->
    let floor = st.steps in
    let rec go () =
      advance st;
      match st.result with
      | Some verdict -> `Done verdict
      | None -> if st.steps - floor >= fuel then `More else go ()
    in
    go ()

let enum_steps st = st.steps

let solve ?(budget = 2_000_000) ~domain ~n_inputs atoms =
  let st = start ~domain ~n_inputs atoms in
  match step st ~fuel:budget with
  | `Done verdict -> { verdict; steps = st.steps }
  | `More -> { verdict = Timeout; steps = st.steps }

let check_interval_only ~domain:(dom_lo, dom_hi) ~n_inputs atoms =
  if not (Path_cond.well_formed atoms) then `Unknown
  else
    let env = Array.make (max n_inputs 0) { lo = dom_lo; hi = dom_hi } in
    if not (narrow env atoms) then `Infeasible
    else
      let steps = ref 0 in
      match check_env steps env atoms with
      | `Refuted -> `Infeasible
      | `Possible -> `Feasible
