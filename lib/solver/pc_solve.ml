module Rng = Softborg_util.Rng

let check ?cache ~domain ~n_inputs cond =
  match cache with
  | None -> Interval.check_interval_only ~domain ~n_inputs cond
  | Some cache -> (
    let key = Verdict_cache.check_key ~domain ~n_inputs cond in
    match Verdict_cache.find cache key with
    | Some (Verdict_cache.Check status) -> status
    | Some (Verdict_cache.Solved _) | None ->
      let status = Interval.check_interval_only ~domain ~n_inputs cond in
      Verdict_cache.add cache key (Verdict_cache.Check status);
      status)

(* Random probing: draw input vectors uniformly from the domain and
   verify them with {!Path_cond.satisfied_by}, so any model it reports
   is sound by construction.  Seeded from the condition's digest: the
   stream depends only on the query, never on call order. *)
type probe = {
  p_rng : Rng.t;
  p_lo : int;
  p_width : int;
  p_n : int;
  p_cond : Path_cond.t;
  mutable p_steps : int;
  mutable p_found : int array option;
}

let probe_start ~domain:(lo, hi) ~n_inputs cond =
  let width = hi - lo + 1 in
  let width = if width <= 0 then max_int else width (* overflow guard *) in
  let seed = Hashtbl.hash (Path_cond.digest cond, lo, hi, n_inputs) in
  {
    p_rng = Rng.create seed;
    p_lo = lo;
    p_width = width;
    p_n = n_inputs;
    p_cond = cond;
    p_steps = 0;
    p_found = None;
  }

let probe_step p ~fuel =
  let floor = p.p_steps in
  let rec loop () =
    match p.p_found with
    | Some model -> `Done model
    | None ->
      if p.p_steps - floor >= fuel then `More
      else begin
        let v = Array.init p.p_n (fun _ -> p.p_lo + Rng.int p.p_rng p.p_width) in
        p.p_steps <- p.p_steps + 1;
        if Path_cond.satisfied_by p.p_cond v then p.p_found <- Some v;
        loop ()
      end
  in
  loop ()

let solve_uncached ~slice ~budget ~domain ~n_inputs cond =
  let enum = Interval.start ~domain ~n_inputs cond in
  let probe = probe_start ~domain ~n_inputs cond in
  let spent () = Interval.enum_steps enum + probe.p_steps in
  (* Round-robin over the two members, enumeration first, against one
     shared budget of executed steps.  Unsat can only come from the
     enumeration (the probe never refutes); Timeout only once the
     budget is gone. *)
  let rec round () =
    if spent () >= budget then { Interval.verdict = Interval.Timeout; steps = spent () }
    else
      let fuel = min slice (budget - spent ()) in
      match Interval.step enum ~fuel with
      | `Done verdict -> { Interval.verdict; steps = spent () }
      | `More ->
        if spent () >= budget then { Interval.verdict = Interval.Timeout; steps = spent () }
        else (
          let fuel = min slice (budget - spent ()) in
          match probe_step probe ~fuel with
          | `Done model -> { Interval.verdict = Interval.Sat model; steps = spent () }
          | `More -> round ())
  in
  round ()

let default_budget = 2_000_000

let solve ?(slice = Portfolio.default_slice) ?(budget = default_budget) ?cache ~domain ~n_inputs
    cond =
  if slice <= 0 then invalid_arg "Pc_solve.solve: slice must be positive";
  match cache with
  | None -> solve_uncached ~slice ~budget ~domain ~n_inputs cond
  | Some cache -> (
    let key = Verdict_cache.solve_key ~domain ~n_inputs ~budget cond in
    match Verdict_cache.find cache key with
    | Some (Verdict_cache.Solved verdict) -> { Interval.verdict; steps = 0 }
    | Some (Verdict_cache.Check _) | None ->
      let outcome = solve_uncached ~slice ~budget ~domain ~n_inputs cond in
      Verdict_cache.add cache key (Verdict_cache.Solved outcome.Interval.verdict);
      outcome)
