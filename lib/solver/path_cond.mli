(** Path conditions: the constraints a symbolic execution accumulates
    along one path of the execution tree (paper §3.2).

    A path condition is a conjunction of branch conditions — IR
    expressions over [Input] slots only — each required to evaluate
    true or false.  Feasibility of an unexplored tree direction is
    exactly satisfiability of its path condition. *)

module Ir := Softborg_prog.Ir

type atom = {
  cond : Ir.expr;  (** Over [Const]/[Input]/operators; no [Var]s. *)
  expected : bool;
}

type t = atom list

val atom : Ir.expr -> bool -> atom

val well_formed : t -> bool
(** True iff no atom mentions a program variable (only inputs). *)

val inputs_used : t -> int list
(** Input slots mentioned, ascending, deduplicated. *)

val eval_expr : int array -> Ir.expr -> int option
(** Evaluate an input-only expression under concrete inputs; [None] on
    division/modulo by zero or a stray [Var]. *)

val satisfied_by : t -> int array -> bool
(** All atoms hold and no atom traps. *)

val constants : t -> int list
(** All integer constants appearing in the atoms (deduplicated);
    solver value-ordering hints. *)

val moduli : t -> int list
(** Constant right-hand sides of [Mod] operations (deduplicated);
    solver hints for residue-style rare predicates. *)

val digest : t -> string
(** 16-byte MD5 of the condition's canonical wire serialization
    (atom order preserved — conjunctions are kept in accumulation
    order, so equal paths digest equally).  Cache key material for
    {!Verdict_cache}. *)

val pp : Format.formatter -> t -> unit
