module Rng = Softborg_util.Rng
module Pool = Softborg_util.Pool

type verdict =
  | V_sat
  | V_unsat
  | V_unknown

type run = {
  solver : string;
  verdict : verdict;
  steps : int;
}

type member = {
  step : fuel:int -> [ `Done of verdict | `More ];
  steps : unit -> int;
}

type solver = {
  name : string;
  budget : int;
  start : Cnf.formula -> member;
}

let dpll_solver ?heuristic ~budget name =
  {
    name;
    budget;
    start =
      (fun formula ->
        (* Each instance branches from its own split stream: how far a
           run advances before being cancelled can then never leak into
           the next race, which the parallel mode's determinism needs. *)
        let heuristic =
          match heuristic with
          | Some (Dpll.Random_branch rng) -> Some (Dpll.Random_branch (Rng.split rng))
          | other -> other
        in
        let st = Dpll.start ?heuristic formula in
        {
          step =
            (fun ~fuel ->
              match Dpll.step st ~fuel with
              | `Done (Dpll.Sat _) -> `Done V_sat
              | `Done Dpll.Unsat -> `Done V_unsat
              | `Done Dpll.Timeout -> `Done V_unknown  (* not produced by Dpll.step *)
              | `More -> `More);
          steps = (fun () -> Dpll.steps st);
        });
  }

let walksat_solver ~budget ~seed name =
  let base = Rng.create seed in
  {
    name;
    budget;
    start =
      (fun formula ->
        (* One split per call: every instance draws from an independent
           stream, yet the sequence of races replays from [seed]. *)
        let st = Walksat.start ~rng:(Rng.split base) formula in
        {
          step =
            (fun ~fuel ->
              match Walksat.step st ~fuel with
              | `Done (Walksat.Sat _) -> `Done V_sat
              | `Done Walksat.Timeout -> `Done V_unknown  (* not produced by Walksat.step *)
              | `More -> `More);
          steps = (fun () -> Walksat.steps st);
        });
  }

let standard_three ~budget ~seed =
  [
    dpll_solver ~heuristic:Dpll.Max_occurrence ~budget "dpll-maxocc";
    (* Random branching is a genuinely different systematic profile:
       on uniform 3-SAT, Jeroslow–Wang degenerates to max-occurrence. *)
    dpll_solver ~heuristic:(Dpll.Random_branch (Rng.create (seed + 1))) ~budget "dpll-rand";
    walksat_solver ~budget ~seed "walksat";
  ]

type race_result = {
  verdict : verdict;
  winner : string option;
  wall_steps : int;
  resource_steps : int;
  runs : run list;
}

let default_slice = 4096

(* ---- Preemptive sliced race ------------------------------------------- *)

(* Per-member account of a race: the decision (if any) with the round
   it landed in, and cumulative steps at every slice boundary.  The
   sequential scheduler records exactly what it ran; the parallel mode
   may overrun (it learns of the winner late) but the history lets the
   result be computed for the logical schedule, so both modes report
   identical accounting. *)
type account = {
  a_decision : (int * verdict) option;  (* (round, verdict) *)
  a_hist : int array;  (* cumulative steps after rounds 1..k *)
  a_total : int;
}

(* Cumulative steps of a member after [rounds] rounds of the logical
   schedule.  Past the recorded history the member had already stopped
   (decided or exhausted), so its count no longer grows. *)
let cum account rounds =
  let k = Array.length account.a_hist in
  if rounds <= 0 || k = 0 then if rounds <= 0 then 0 else account.a_total
  else account.a_hist.(min rounds k - 1)

let result_of_accounts members accounts =
  let n = Array.length members in
  let best = ref None in
  Array.iteri
    (fun i account ->
      match account.a_decision with
      | None -> ()
      | Some (round, verdict) -> (
        match !best with
        | Some (r, j, _) when (r, j) <= (round, i) -> ()
        | _ -> best := Some (round, i, verdict)))
    accounts;
  match !best with
  | None ->
    (* Nobody decided: the race runs until every member gives up. *)
    let runs =
      List.init n (fun i ->
          { solver = members.(i).name; verdict = V_unknown; steps = accounts.(i).a_total })
    in
    let wall = List.fold_left (fun acc (r : run) -> max acc r.steps) 0 runs in
    let resources = List.fold_left (fun acc (r : run) -> acc + r.steps) 0 runs in
    { verdict = V_unknown; winner = None; wall_steps = wall; resource_steps = resources; runs }
  | Some (round, index, verdict) ->
    (* In round [round] the schedule reaches member [index]'s slice and
       it decides; members before it have run [round] slices, members
       after it one fewer. *)
    let runs =
      List.init n (fun i ->
          let steps = cum accounts.(i) (if i <= index then round else round - 1) in
          { solver = members.(i).name; verdict = (if i = index then verdict else V_unknown); steps })
    in
    let wall = cum accounts.(index) round in
    let resources = List.fold_left (fun acc (r : run) -> acc + r.steps) 0 runs in
    {
      verdict;
      winner = Some members.(index).name;
      wall_steps = wall;
      resource_steps = resources;
      runs;
    }

let start_members members formula =
  let n = Array.length members in
  let states = Array.make n None in
  for i = 0 to n - 1 do
    states.(i) <- Some (members.(i).start formula)
  done;
  Array.map (function Some m -> m | None -> assert false) states

let race_sequential ~slice members formula =
  let n = Array.length members in
  let states = start_members members formula in
  let hist = Array.make n [] in
  let decision = Array.make n None in
  let stopped = Array.make n false in
  let decided = ref None in
  let rec run_round round =
    let rec member i =
      if i < n && !decided = None then begin
        if not stopped.(i) then begin
          let spent = states.(i).steps () in
          if spent >= members.(i).budget then stopped.(i) <- true
          else
          let fuel = min slice (members.(i).budget - spent) in
          (match states.(i).step ~fuel with
          | `Done verdict ->
            hist.(i) <- states.(i).steps () :: hist.(i);
            decision.(i) <- Some (round, verdict);
            decided := Some ();
            stopped.(i) <- true
          | `More ->
            hist.(i) <- states.(i).steps () :: hist.(i);
            if states.(i).steps () >= members.(i).budget then stopped.(i) <- true)
        end;
        member (i + 1)
      end
    in
    member 0;
    if !decided = None && Array.exists not stopped then run_round (round + 1)
  in
  run_round 1;
  let accounts =
    Array.init n (fun i ->
        {
          a_decision = decision.(i);
          a_hist = Array.of_list (List.rev hist.(i));
          a_total = states.(i).steps ();
        })
  in
  result_of_accounts members accounts

(* Parallel mode: one task per member, sliced runs guarded by a shared
   {!Pool.Race_cell} holding the best decision's rank in the
   sequential schedule.  The cell only decreases, so no member ever
   stops before the slice at which the sequential schedule would have
   stopped it — its history always covers what [result_of_accounts]
   needs, and the computed result is identical to the sequential one.

   Two refinements keep the wall-clock honest:

   - {e Sprint}: round 1 runs inline, exactly as the sequential
     scheduler would.  Races decided within one slice — common for
     loose conditions — never pay pool dispatch at all.

   - {e Bounded lag}: a member may run at most [max_lead] rounds ahead
     of the slowest still-running member.  Without the bound, losers
     free-run toward their full budgets before they observe the
     winner's proposal (on few-core hosts the OS can run a loser for a
     whole timeslice first), burning CPU on work the logical schedule
     discards.  Members that get ahead block on a condition variable,
     yielding the core to the member the schedule actually needs. *)

let max_lead = 2

type gate = {
  g_lock : Mutex.t;
  g_cond : Condition.t;
  g_progress : int array;  (* rounds completed; max_int once stopped *)
}

let gate_create progress =
  { g_lock = Mutex.create (); g_cond = Condition.create (); g_progress = progress }

let gate_publish g i rounds =
  Mutex.lock g.g_lock;
  g.g_progress.(i) <- rounds;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_lock

let gate_stop g i = gate_publish g i max_int

(* Block until member [i] may run [round]: within [max_lead] of the
   slowest live member, or its rank already lost the race (the caller
   re-checks the cell and stops).  Waiters are woken by every publish,
   and every worker exit path publishes, so no wait outlives the
   race. *)
let gate_wait g cell ~rank_mine round =
  Mutex.lock g.g_lock;
  let can_run () =
    rank_mine > Pool.Race_cell.current cell
    || round - max_lead <= Array.fold_left min max_int g.g_progress
  in
  while not (can_run ()) do
    Condition.wait g.g_cond g.g_lock
  done;
  Mutex.unlock g.g_lock

let race_parallel ~slice ~pool members formula =
  let n = Array.length members in
  let states = start_members members formula in
  let hist = Array.make n [] in
  let decision = Array.make n None in
  let stopped = Array.make n false in
  let decided = ref false in
  (* Sprint: round 1, replicating the sequential scheduler exactly
     (including its budget-entry check and decided-abort). *)
  for i = 0 to n - 1 do
    if (not !decided) && not stopped.(i) then begin
      let spent = states.(i).steps () in
      if spent >= members.(i).budget then stopped.(i) <- true
      else begin
        let fuel = min slice (members.(i).budget - spent) in
        match states.(i).step ~fuel with
        | `Done verdict ->
          hist.(i) <- states.(i).steps () :: hist.(i);
          decision.(i) <- Some (1, verdict);
          decided := true;
          stopped.(i) <- true
        | `More ->
          hist.(i) <- states.(i).steps () :: hist.(i);
          if states.(i).steps () >= members.(i).budget then stopped.(i) <- true
      end
    end
  done;
  let account_of i =
    {
      a_decision = decision.(i);
      a_hist = Array.of_list (List.rev hist.(i));
      a_total = states.(i).steps ();
    }
  in
  if !decided || Array.for_all Fun.id stopped then
    result_of_accounts members (Array.init n account_of)
  else begin
    let cell = Pool.Race_cell.create () in
    let rank round i = (round * n) + i in
    (* Progress starts at [max_int] for everyone: with fewer workers
       than members a task may queue behind running ones, and gating on
       a member whose task has not started would deadlock.  Workers
       publish their real progress when their task begins, so the lag
       bound binds exactly the concurrently-running subset. *)
    let gate = gate_create (Array.make n max_int) in
    let accounts =
      Pool.map pool
        (fun i ->
          if stopped.(i) then account_of i
          else begin
            gate_publish gate i 1;
            let member = states.(i) in
            let budget = members.(i).budget in
            let my_hist = ref hist.(i) in
            let my_decision = ref None in
            let rec go round =
              if member.steps () >= budget then ()
              else begin
                gate_wait gate cell ~rank_mine:(rank round i) round;
                if rank round i > Pool.Race_cell.current cell then ()
                else begin
                  let fuel = min slice (budget - member.steps ()) in
                  match member.step ~fuel with
                  | `Done verdict ->
                    my_hist := member.steps () :: !my_hist;
                    my_decision := Some (round, verdict);
                    ignore (Pool.Race_cell.propose cell (rank round i))
                  | `More ->
                    my_hist := member.steps () :: !my_hist;
                    gate_publish gate i round;
                    go (round + 1)
                end
              end
            in
            (* Every exit (decide, cancel, exhaust, exception) must
               publish, or a gated peer would wait forever. *)
            Fun.protect ~finally:(fun () -> gate_stop gate i) (fun () -> go 2);
            {
              a_decision = !my_decision;
              a_hist = Array.of_list (List.rev !my_hist);
              a_total = member.steps ();
            }
          end)
        (List.init n (fun i -> i))
    in
    result_of_accounts members (Array.of_list accounts)
  end

let race ?(slice = default_slice) ?pool ?(force_parallel = false) members formula =
  if members = [] then invalid_arg "Portfolio.race: empty portfolio";
  if slice <= 0 then invalid_arg "Portfolio.race: slice must be positive";
  let members = Array.of_list members in
  (* On a single-core host domains only time-share the CPU, so the
     physical race can't beat the sequential engine — it just pays
     scheduling overhead for the same logical result.  Degrade to the
     sequential engine there unless a caller (e.g. the determinism
     tests) explicitly forces the physical path. *)
  let parallel_pays = force_parallel || Domain.recommended_domain_count () > 1 in
  match pool with
  | Some pool when Pool.size pool > 1 && parallel_pays ->
    race_parallel ~slice ~pool members formula
  | Some _ | None -> race_sequential ~slice members formula

(* ---- Whole-budget baseline -------------------------------------------- *)

let race_whole_budget members formula =
  if members = [] then invalid_arg "Portfolio.race_whole_budget: empty portfolio";
  let runs =
    List.map
      (fun solver ->
        let st = solver.start formula in
        match st.step ~fuel:solver.budget with
        | `Done verdict -> { solver = solver.name; verdict; steps = st.steps () }
        | `More -> { solver = solver.name; verdict = V_unknown; steps = st.steps () })
      members
  in
  let resources = List.fold_left (fun acc (r : run) -> acc + r.steps) 0 runs in
  let deciders = List.filter (fun (r : run) -> r.verdict <> V_unknown) runs in
  match List.sort (fun (a : run) (b : run) -> Int.compare a.steps b.steps) deciders with
  | [] ->
    let wall = List.fold_left (fun acc (r : run) -> max acc r.steps) 0 runs in
    { verdict = V_unknown; winner = None; wall_steps = wall; resource_steps = resources; runs }
  | best :: _ ->
    {
      verdict = best.verdict;
      winner = Some best.solver;
      wall_steps = best.steps;
      resource_steps = resources;
      runs;
    }

let speedup ~single_steps ~portfolio_steps =
  if portfolio_steps <= 0.0 then Float.nan else single_steps /. portfolio_steps
