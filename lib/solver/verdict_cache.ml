module Lru = Softborg_util.Lru

type entry =
  | Check of [ `Feasible | `Infeasible | `Unknown ]
  | Solved of Interval.verdict

type t = {
  lru : (string, entry) Lru.t;
  lock : Mutex.t;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  { lru = Lru.create capacity; lock = Mutex.create () }

(* The key must pin down everything the answer depends on: the query
   kind (a [Check] and a [Solved] for the same condition are different
   facts), the input domain and arity, the budget for budget-bounded
   queries, and the condition itself via its canonical digest. *)
let key ~kind ~domain:(lo, hi) ~n_inputs ~budget cond =
  Printf.sprintf "%c|%d|%d|%d|%d|%s" kind lo hi n_inputs budget (Path_cond.digest cond)

let check_key ~domain ~n_inputs cond = key ~kind:'c' ~domain ~n_inputs ~budget:0 cond
let solve_key ~domain ~n_inputs ~budget cond = key ~kind:'s' ~domain ~n_inputs ~budget cond

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t k = locked t (fun () -> Lru.find t.lru k)
let add t k v = locked t (fun () -> Lru.add t.lru k v)
let clear t = locked t (fun () -> Lru.clear t.lru)
let length t = locked t (fun () -> Lru.length t.lru)
let hits t = locked t (fun () -> Lru.hits t.lru)
let misses t = locked t (fun () -> Lru.misses t.lru)
