module Rng = Softborg_util.Rng

type verdict =
  | Sat of Cnf.assignment
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;
}

(* Incremental WalkSAT: per-clause true-literal counts maintained via
   occurrence lists, O(1) unsatisfied-clause sampling, and break counts
   computed from the counts — each clause touch costs one step, the
   same unit as DPLL's clause examinations.  The mutable state doubles
   as the resumable-search state: one flip iteration is the
   fuel-check granularity of [step]. *)

type state = {
  clauses : int array array;
  occurrences : (int * int) list array;  (* var -> (clause idx, literal) *)
  assignment : bool array;
  n_true : int array;  (* clause -> currently-true literal count *)
  unsat : int array;  (* dense set of unsatisfied clause indices *)
  mutable unsat_size : int;
  position : int array;  (* clause -> index in [unsat], or -1 *)
  mutable steps : int;
  n : int;
  rng : Rng.t;
  noise : float;
  restart_period : int;
  mutable flips : int;
  mutable result : Cnf.assignment option;
}

let lit_true st lit = if lit > 0 then st.assignment.(lit) else not st.assignment.(-lit)

let unsat_add st c =
  if st.position.(c) < 0 then begin
    st.unsat.(st.unsat_size) <- c;
    st.position.(c) <- st.unsat_size;
    st.unsat_size <- st.unsat_size + 1
  end

let unsat_remove st c =
  let pos = st.position.(c) in
  if pos >= 0 then begin
    let last = st.unsat.(st.unsat_size - 1) in
    st.unsat.(pos) <- last;
    st.position.(last) <- pos;
    st.unsat_size <- st.unsat_size - 1;
    st.position.(c) <- -1
  end

let recount st =
  st.unsat_size <- 0;
  Array.fill st.position 0 (Array.length st.position) (-1);
  Array.iteri
    (fun c clause ->
      st.steps <- st.steps + 1;
      let trues = Array.fold_left (fun acc lit -> if lit_true st lit then acc + 1 else acc) 0 clause in
      st.n_true.(c) <- trues;
      if trues = 0 then unsat_add st c)
    st.clauses

(* The flip loop and break counts run on racing domains; like
   [Dpll.ivalue] they must not allocate — a closure per call here
   turns into stop-the-world minor collections that stall every
   portfolio member, so both walk their occurrence lists with plain
   while loops. *)
let flip st v =
  st.assignment.(v) <- not st.assignment.(v);
  let rest = ref st.occurrences.(v) in
  let continue_ = ref true in
  while !continue_ do
    match !rest with
    | [] -> continue_ := false
    | (c, lit) :: tl ->
      rest := tl;
      st.steps <- st.steps + 1;
      if lit_true st lit then begin
        st.n_true.(c) <- st.n_true.(c) + 1;
        if st.n_true.(c) = 1 then unsat_remove st c
      end
      else begin
        st.n_true.(c) <- st.n_true.(c) - 1;
        if st.n_true.(c) = 0 then unsat_add st c
      end
  done

(* Clauses this variable would break: those where its literal is the
   only true one. *)
let break_count st v =
  let acc = ref 0 in
  let rest = ref st.occurrences.(v) in
  let continue_ = ref true in
  while !continue_ do
    match !rest with
    | [] -> continue_ := false
    | (c, lit) :: tl ->
      rest := tl;
      st.steps <- st.steps + 1;
      if lit_true st lit && st.n_true.(c) = 1 then incr acc
  done;
  !acc

let randomize st =
  for v = 1 to st.n do
    st.assignment.(v) <- Rng.bool st.rng
  done;
  recount st

let start ?(noise = 0.5) ~rng formula =
  let clauses = Array.of_list (List.map Array.of_list formula.Cnf.clauses) in
  let n = formula.Cnf.n_vars in
  let m = Array.length clauses in
  let occurrences = Array.make (n + 1) [] in
  Array.iteri
    (fun c clause ->
      Array.iter
        (fun lit ->
          let v = abs lit in
          occurrences.(v) <- (c, lit) :: occurrences.(v))
        clause)
    clauses;
  let st =
    {
      clauses;
      occurrences;
      assignment = Array.make (n + 1) false;
      n_true = Array.make m 0;
      unsat = Array.make m 0;
      unsat_size = 0;
      position = Array.make m (-1);
      steps = 0;
      n;
      rng;
      noise;
      restart_period = max 10_000 (100 * n);
      flips = 0;
      result = None;
    }
  in
  if m > 0 then randomize st;
  st

let steps st = st.steps

let step st ~fuel =
  match st.result with
  | Some assignment -> `Done (Sat assignment)
  | None ->
    let floor = st.steps in
    let rec loop () =
      if st.unsat_size = 0 then begin
        let assignment = Array.copy st.assignment in
        st.result <- Some assignment;
        `Done (Sat assignment)
      end
      else if st.steps - floor >= fuel then `More
      else begin
        if st.flips > 0 && st.flips mod st.restart_period = 0 then randomize st;
        if st.unsat_size > 0 then begin
          let clause = st.clauses.(st.unsat.(Rng.int st.rng st.unsat_size)) in
          let v =
            if Rng.bernoulli st.rng st.noise then abs clause.(Rng.int st.rng (Array.length clause))
            else begin
              (* Greedy: flip the variable breaking the fewest clauses. *)
              let best = ref (abs clause.(0)) and best_break = ref max_int in
              for k = 0 to Array.length clause - 1 do
                let lit = clause.(k) in
                let b = break_count st (abs lit) in
                if b < !best_break then begin
                  best := abs lit;
                  best_break := b
                end
              done;
              !best
            end
          in
          flip st v
        end;
        st.flips <- st.flips + 1;
        loop ()
      end
    in
    loop ()

let solve ?noise ?(budget = 10_000_000) ~rng formula =
  let st = start ?noise ~rng formula in
  match step st ~fuel:budget with
  | `Done verdict -> { verdict; steps = st.steps }
  | `More -> { verdict = Timeout; steps = st.steps }
