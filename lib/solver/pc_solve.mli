(** Path-condition solving front-end: the sliced race plus the verdict
    cache, packaged for symbolic execution.

    Every feasibility check and model search in {!Softborg_symexec}
    funnels through here.  [solve] races the complete interval
    enumeration against a digest-seeded random probe in bounded
    round-robin slices — the probe wins on loosely-constrained
    conditions where enumeration grinds through a large prefix of the
    domain, the enumeration wins on tight or unsatisfiable ones.  Both
    members are deterministic, the schedule is fixed (enumeration gets
    the first slice of each round), and the race is strictly
    sequential, so results are reproducible and safe to call from pool
    worker domains (no nested-pool deadlock).

    Soundness: [Sat] models are verified against the condition before
    being reported; [Unsat] only ever comes from the exhaustive
    enumeration; [Timeout] only when the shared step budget is gone.

    With [?cache], answers are memoized in a {!Verdict_cache} keyed by
    (kind, domain, arity, budget, condition digest); a hit costs zero
    solver steps. *)

val check :
  ?cache:Verdict_cache.t ->
  domain:int * int ->
  n_inputs:int ->
  Path_cond.t ->
  [ `Feasible | `Infeasible | `Unknown ]
(** Cached {!Interval.check_interval_only}: pure bound propagation,
    [`Infeasible] is definitive, [`Feasible] means "not refuted". *)

val default_budget : int
(** 2_000_000 steps, matching {!Interval.solve}'s default. *)

val solve :
  ?slice:int ->
  ?budget:int ->
  ?cache:Verdict_cache.t ->
  domain:int * int ->
  n_inputs:int ->
  Path_cond.t ->
  Interval.outcome
(** Decide satisfiability over [domain]^n_inputs by the sliced
    enumeration/probe race under one shared [budget] of executed steps
    (default {!default_budget}); [outcome.steps] is work actually
    performed, 0 on a cache hit.  Complete relative to the domain,
    like {!Interval.solve} — but the model returned for a satisfiable
    condition may differ from pure enumeration's (it is whichever
    member decides first; still deterministic).
    @raise Invalid_argument on an empty domain, negative [n_inputs],
    [slice <= 0], or a condition mentioning program variables. *)
