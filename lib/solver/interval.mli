(** Interval-propagation solver for path conditions.

    The portfolio's third profile (paper §4): an incomplete-but-fast
    bound propagator strengthened to a complete decision procedure over
    a finite input domain by backtracking enumeration with interval
    pruning and constraint-derived value ordering.  This is also the
    model generator behind execution guidance and frontier-feasibility
    checks: a [Sat] verdict carries concrete inputs that drive a pod
    down the wanted path (paper §3.3). *)

type verdict =
  | Sat of int array  (** A model: one value per input slot. *)
  | Unsat  (** No model within the given domain. *)
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;  (** Constraint evaluations performed. *)
}

type enum
(** A paused enumeration: interval narrowing already applied, the
    backtracking search over candidate values resumable in bounded
    slices. *)

val start : domain:int * int -> n_inputs:int -> Path_cond.t -> enum
(** Narrow per-input bounds and set up the enumeration.  Narrowing can
    already decide the query: the first {!step} then returns
    immediately.
    @raise Invalid_argument on an empty domain, negative [n_inputs],
    or a path condition mentioning program variables. *)

val step : enum -> fuel:int -> [ `Done of verdict | `More ]
(** Advance by at least one candidate try and at most [fuel] steps
    (checked between tries).  [`Done] verdicts are only ever
    [Sat]/[Unsat] — budget enforcement is the caller's job — and are
    sticky.  The trajectory is independent of how the work is sliced
    across calls. *)

val enum_steps : enum -> int
(** Total steps spent so far, including {!start}'s initial check. *)

val solve :
  ?budget:int ->
  domain:int * int ->
  n_inputs:int ->
  Path_cond.t ->
  outcome
(** Decide whether some input vector in [domain]^n_inputs satisfies
    the path condition (default budget 2_000_000 steps): {!start}
    driven by one whole-budget {!step}, [`More] reported as [Timeout].
    Complete relative to the domain: [Unsat] means no model exists
    with every input inside [domain].
    @raise Invalid_argument on an empty domain, negative [n_inputs],
    or a path condition mentioning program variables. *)

val check_interval_only : domain:int * int -> n_inputs:int -> Path_cond.t -> [ `Feasible | `Infeasible | `Unknown ]
(** Pure bound propagation, no search: cheap and sound ([`Infeasible]
    is definitive) but incomplete ([`Feasible] here means "not
    refuted"). *)
