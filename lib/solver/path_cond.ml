module Ir = Softborg_prog.Ir

type atom = {
  cond : Ir.expr;
  expected : bool;
}

type t = atom list

let atom cond expected = { cond; expected }

let rec expr_input_only = function
  | Ir.Const _ -> true
  | Ir.Input _ -> true
  | Ir.Var _ -> false
  | Ir.Unop (_, e) -> expr_input_only e
  | Ir.Binop (_, a, b) -> expr_input_only a && expr_input_only b

let well_formed t = List.for_all (fun a -> expr_input_only a.cond) t

let rec expr_inputs acc = function
  | Ir.Const _ | Ir.Var _ -> acc
  | Ir.Input i -> i :: acc
  | Ir.Unop (_, e) -> expr_inputs acc e
  | Ir.Binop (_, a, b) -> expr_inputs (expr_inputs acc a) b

let inputs_used t =
  List.fold_left (fun acc a -> expr_inputs acc a.cond) [] t |> List.sort_uniq Int.compare

let of_bool b = if b then 1 else 0
let truth n = n <> 0

let rec eval_expr inputs = function
  | Ir.Const c -> Some c
  | Ir.Var _ -> None
  | Ir.Input i -> if i >= 0 && i < Array.length inputs then Some inputs.(i) else None
  | Ir.Unop (op, e) -> (
    match eval_expr inputs e with
    | None -> None
    | Some x -> Some (match op with Ir.Neg -> -x | Ir.Not -> of_bool (not (truth x))))
  | Ir.Binop (op, a, b) -> (
    match (eval_expr inputs a, eval_expr inputs b) with
    | Some x, Some y -> (
      match op with
      | Ir.Add -> Some (x + y)
      | Ir.Sub -> Some (x - y)
      | Ir.Mul -> Some (x * y)
      | Ir.Div -> if y = 0 then None else Some (x / y)
      | Ir.Mod -> if y = 0 then None else Some (x mod y)
      | Ir.Eq -> Some (of_bool (x = y))
      | Ir.Ne -> Some (of_bool (x <> y))
      | Ir.Lt -> Some (of_bool (x < y))
      | Ir.Le -> Some (of_bool (x <= y))
      | Ir.Gt -> Some (of_bool (x > y))
      | Ir.Ge -> Some (of_bool (x >= y))
      | Ir.And -> Some (of_bool (truth x && truth y))
      | Ir.Or -> Some (of_bool (truth x || truth y)))
    | (None, _ | _, None) -> None)

let satisfied_by t inputs =
  List.for_all
    (fun a ->
      match eval_expr inputs a.cond with
      | Some v -> truth v = a.expected
      | None -> false)
    t

let rec expr_constants acc = function
  | Ir.Const c -> c :: acc
  | Ir.Input _ | Ir.Var _ -> acc
  | Ir.Unop (_, e) -> expr_constants acc e
  | Ir.Binop (_, a, b) -> expr_constants (expr_constants acc a) b

let constants t =
  List.fold_left (fun acc a -> expr_constants acc a.cond) [] t |> List.sort_uniq Int.compare

let rec expr_moduli acc = function
  | Ir.Const _ | Ir.Input _ | Ir.Var _ -> acc
  | Ir.Unop (_, e) -> expr_moduli acc e
  | Ir.Binop (Ir.Mod, a, Ir.Const m) -> expr_moduli (m :: acc) a
  | Ir.Binop (_, a, b) -> expr_moduli (expr_moduli acc a) b

let moduli t =
  List.fold_left (fun acc a -> expr_moduli acc a.cond) [] t |> List.sort_uniq Int.compare

let digest t =
  let module Codec = Softborg_util.Codec in
  let w = Codec.Writer.create () in
  Codec.Writer.list w
    (fun a ->
      Codec.Writer.bool w a.expected;
      Softborg_prog.Ir_codec.write_expr w a.cond)
    t;
  Digest.string (Codec.Writer.contents w)

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " /\\ ")
    (fun fmt a ->
      if a.expected then Ir.pp_expr fmt a.cond
      else Format.fprintf fmt "!(%a)" Ir.pp_expr a.cond)
    fmt t
