(** WalkSAT: stochastic local search for SAT.

    The portfolio's incomplete member (paper §4): it cannot prove
    unsatisfiability, but on loosely-constrained satisfiable instances
    it typically finds a model orders of magnitude faster than
    systematic search — exactly the performance diversity portfolio
    theory wants ("each solver is fast on some path constraints but
    slow on others").

    Like {!Dpll}, the search is resumable: {!start} then repeated
    bounded {!step}s, so a portfolio race can interleave it with other
    members and cancel it the moment someone else decides. *)

module Rng := Softborg_util.Rng

type verdict =
  | Sat of Cnf.assignment
  | Timeout  (** No model found within budget (says nothing about UNSAT). *)

type outcome = {
  verdict : verdict;
  steps : int;  (** Clause examinations performed. *)
}

type state
(** A paused search; owns its [rng], so never share one state between
    concurrent callers. *)

val start : ?noise:float -> rng:Rng.t -> Cnf.formula -> state
(** A fresh search with random-walk probability [noise] (default 0.5),
    started from a random assignment.  An empty formula is already
    satisfied: the first {!step} returns [Sat] at zero steps. *)

val step : state -> fuel:int -> [ `Done of verdict | `More ]
(** Advance by at least one flip and at most [fuel] steps (checked
    between flips).  [`Done] is always [Sat] — WalkSAT never refutes —
    and is sticky.  Restarts from a fresh random assignment
    periodically, as before.  The trajectory is independent of how the
    work is sliced across calls. *)

val steps : state -> int
(** Total steps spent so far. *)

val solve :
  ?noise:float -> ?budget:int -> rng:Rng.t -> Cnf.formula -> outcome
(** Local search until a model is found or [budget] steps (default
    10_000_000) are spent: [start] driven by one whole-budget
    {!step}. *)
