(** A DPLL SAT solver: systematic backtracking search with unit
    propagation.

    One member of the cooperative prover's solver portfolio (paper §4).
    Two branching heuristics give two genuinely different performance
    profiles — part of the diversity the portfolio exploits.  Cost is
    counted in {e steps} (clause examinations), a machine-independent
    unit shared by every solver in the portfolio so that speedup and
    resource ratios are well-defined.

    The search runs as an explicit resumable machine: {!start} builds
    the initial state, {!step} advances it by a bounded number of steps
    — the interface a preemptive portfolio race needs to interleave
    members and cancel losers. *)

module Rng := Softborg_util.Rng

type heuristic =
  | Max_occurrence  (** Branch on the variable occurring most among open clauses. *)
  | Jeroslow_wang  (** Weight occurrences by 2^-|clause| (short clauses first). *)
  | Random_branch of Rng.t  (** Uniform over unassigned variables. *)

type verdict =
  | Sat of Cnf.assignment
  | Unsat
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;  (** Clause examinations performed. *)
}

type state
(** A paused search.  Owns its random generator (for
    [Random_branch]); never share one state between concurrent
    callers. *)

val start : ?heuristic:heuristic -> Cnf.formula -> state
(** A fresh search over [formula], no steps spent yet. *)

val step : state -> fuel:int -> [ `Done of verdict | `More ]
(** Advance the search by at least one transition and at most [fuel]
    steps (checked at pass boundaries, so a slice can overshoot by up
    to one pass over the clauses).  [`Done] verdicts are only ever
    [Sat]/[Unsat] — budget enforcement is the caller's job — and are
    sticky: further calls return the same verdict.  The trajectory is
    independent of how the work is sliced: any sequence of fuels
    reaches the same verdict after the same total steps. *)

val steps : state -> int
(** Total steps spent so far. *)

val solve : ?heuristic:heuristic -> ?budget:int -> Cnf.formula -> outcome
(** Decide satisfiability within [budget] steps (default 10_000_000):
    [start] driven by a single whole-budget [step], [`More] reported
    as [Timeout].  A [Sat] assignment always satisfies the formula
    (checked by the test suite against brute force). *)
