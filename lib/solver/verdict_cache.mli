(** Path-condition verdict cache.

    Symbolic exploration re-derives the same path conditions over and
    over — sibling directions share prefixes, guidance re-plans over
    the same frontier, cooperating provers chase the same gaps.  Each
    query's answer is a pure function of (query kind, domain, arity,
    budget, condition), so it can be memoized across the whole hive
    tick in one bounded LRU keyed by the condition's canonical digest
    ({!Path_cond.digest}).

    The cache is mutex-guarded and safe to share between pool worker
    domains: because every cached value equals what recomputation
    would produce, hit/miss nondeterminism under concurrency is
    invisible in outputs.  Like {!Softborg_hive.Gap_memo}, it must be
    cleared whenever the knowledge epoch bumps — verdicts mention the
    subject program, which a patch changes. *)

type entry =
  | Check of [ `Feasible | `Infeasible | `Unknown ]
      (** Result of a bound-propagation feasibility check. *)
  | Solved of Interval.verdict
      (** Result of a budget-bounded model search. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity {!default_capacity}. *)

val default_capacity : int
(** 4096 entries. *)

val check_key : domain:int * int -> n_inputs:int -> Path_cond.t -> string
(** Key for a {!Check} query (budget-independent). *)

val solve_key : domain:int * int -> n_inputs:int -> budget:int -> Path_cond.t -> string
(** Key for a {!Solved} query; the budget is part of the key because a
    bigger budget can turn [Timeout] into a decision. *)

val find : t -> string -> entry option
val add : t -> string -> entry -> unit

val clear : t -> unit
(** Drop all entries (epoch bump); hit/miss counters persist. *)

val length : t -> int
val hits : t -> int
val misses : t -> int
