(** Content-addressed trace storage with deduplication.

    "Users execute software billions of times around the world" (paper
    §2): the overwhelming majority of those executions repeat paths the
    hive has already seen, so storing every upload verbatim would be
    absurd.  The store keys each trace by a digest of its {e content}
    (path bits, schedule, syscall summary, outcome) and keeps one copy
    plus a multiplicity counter; the accounting exposes how much the
    popularity skew saves. *)

module Trace := Softborg_trace.Trace

type t

val create : unit -> t

type admission =
  | Novel  (** First time this exact execution content was seen. *)
  | Duplicate of int  (** Seen before; the new multiplicity. *)

type prepared = {
  p_trace : Trace.t;
  p_encoded : string;  (** Canonical {!Softborg_trace.Wire.encode} bytes. *)
  p_key : string;  (** Content digest, as {!content_key}. *)
  p_size : int;  (** Wire bytes for accounting ([= String.length p_encoded]). *)
}
(** A trace together with its canonical wire bytes, content key, and
    byte accounting, all derived from one encode. *)

val prepare : Trace.t -> prepared
(** Encode once, derive everything.  Pure — safe on worker domains.
    The hive prepares every decoded upload so admission, the replay
    cache, and the federation ingest tap all reuse the same buffer. *)

val with_trace : prepared -> Trace.t -> prepared
(** Replace the carried trace (e.g. after assigning a fresh trace id —
    ids are not encoded, so the canonical bytes stay valid). *)

val admit : t -> Trace.t -> admission
(** Record one uploaded trace.  Encodes the trace exactly once: the
    content digest and the wire-byte accounting come from the same
    buffer. *)

val admit_keyed : ?prepared:prepared -> t -> Trace.t -> string * admission
(** Like {!admit}, but also returns the content key so callers (e.g.
    the knowledge replay cache) can reuse it without re-encoding.
    With [prepared], no encode happens at all — the prepared key and
    size are filed directly; without it, the store encodes and counts
    a {!fallback_encodes}. *)

val fallback_encodes : t -> int
(** Admissions that re-encoded because no prepared bytes were supplied.
    Stays 0 on the hive's serving paths — a regression counter for the
    federation double-encode bug.  Not checkpointed. *)

val content_key : Trace.t -> string
(** The content digest {!admit} files the trace under: a hex digest of
    the wire encoding with the per-upload identifiers (trace id, pod)
    zeroed out. *)

val distinct : t -> int
(** Distinct execution contents stored. *)

val received : t -> int
(** Total uploads admitted (with multiplicity). *)

val bytes_received : t -> int
(** Wire bytes across all uploads. *)

val bytes_stored : t -> int
(** Wire bytes actually kept (one copy per distinct content). *)

val dedup_ratio : t -> float
(** bytes_received / bytes_stored (1.0 when everything is novel). *)

val multiplicity : t -> Trace.t -> int
(** How often this exact content has been seen (0 if never). *)

val heaviest : t -> n:int -> (string * int) list
(** The [n] most frequent content digests with their counts — the
    "hot paths" of the user population. *)

val write : Softborg_util.Codec.Writer.t -> t -> unit
(** Checkpoint codec: counters plus all entries sorted by digest, so
    equal stores serialize to equal bytes. *)

val read : Softborg_util.Codec.Reader.t -> t
(** @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)
