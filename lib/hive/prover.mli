(** Cumulative proofs (paper §3.3).

    "A complete exploration of all paths leads to a proof, while a test
    is just a weaker proof that covers a smaller subset of the paths."
    The prover unifies the two on one spectrum: a {!strength} is either
    [Proved] — the execution tree, closed with symbolic analysis, is
    complete and every path satisfies the property — or [Tested], a
    quantified amount of evidence short of completeness.

    Proofs are relative to the analysis domain (symbol values the
    solver enumerates) and to the program version: deploying a fix
    changes behavior, so existing proofs are invalidated (paper §3.3:
    the hive must "decide whether the instrumentation invalidates the
    hive's existing knowledge and proofs"). *)

module Ir := Softborg_prog.Ir
module Env := Softborg_exec.Env
module Interp := Softborg_exec.Interp
module Exec_tree := Softborg_tree.Exec_tree
module Sym_exec := Softborg_symexec.Sym_exec

type property =
  | Assert_safety  (** No assertion failure or arithmetic trap. *)
  | Deadlock_freedom

type strength =
  | Proved of { domain : int * int }  (** Complete over this input domain. *)
  | Tested of { executions : int; schedules : int }
      (** Evidence-only: distinct executions and schedules examined. *)

type proof = {
  id : int;
  property : property;
  strength : strength;
  epoch : int;  (** Fix epoch the proof was established against. *)
  distinct_paths : int;  (** Tree paths backing the claim. *)
  mutable valid : bool;
}

val property_name : property -> string
val strength_name : strength -> string
val pp : Format.formatter -> proof -> unit

val close_gaps :
  ?config:Sym_exec.config ->
  ?cache:Softborg_solver.Verdict_cache.t ->
  ?memo:Gap_memo.t ->
  ?owned:(Exec_tree.gap -> bool) ->
  ?limit:int ->
  Ir.t ->
  Exec_tree.t ->
  int
(** Symbolically close the tree's frontier: mark directions that no
    in-domain input reaches as infeasible (paper §3.3, the "incomplete
    tree" hurdle).  Considers at most [limit] gaps (default 24 — each
    costs a directed symbolic exploration), pulled lazily from
    {!Exec_tree.frontier_seq} so the cost is O(limit), and returns the
    number closed.  [owned] restricts attention to a subset of the
    frontier before the limit applies — federation shards pass their
    {!Shard_map.owner_of_verdict} test, so each distinct (site,
    direction) verdict is derived on exactly one shard instead of once
    per shard whose subtree exposes the site.  [memo] caches verdicts across calls
    (and across the guidance planner, which shares the same table);
    [cache] memoizes the underlying path-condition solver queries.
    Feasible gaps are left open for execution guidance. *)

val attempt_assert_safety :
  ?config:Sym_exec.config ->
  ?cache:Softborg_solver.Verdict_cache.t ->
  program:Ir.t ->
  tree:Exec_tree.t ->
  crash_observations:int ->
  epoch:int ->
  unit ->
  proof option
(** Try to establish assertion safety: requires no observed crashes,
    an exhaustive (untruncated, fully-solved) symbolic exploration in
    which every feasible path completes cleanly, and a single-threaded
    program (thread interleavings would weaken exploration to one
    schedule).  Multi-threaded or incomplete evidence yields a [Tested]
    proof instead — the weaker end of the spectrum — provided at least
    one execution has been observed and none failed. *)

val attempt_deadlock_freedom :
  ?max_runs:int ->
  program:Ir.t ->
  tree:Exec_tree.t ->
  deadlock_observations:int ->
  lock_cycles:int list list ->
  make_env:(unit -> Env.t) ->
  hooks:Interp.hooks ->
  epoch:int ->
  unit ->
  proof option
(** Deadlock freedom: [Proved] when the program takes no locks at all
    or runs a single thread; otherwise bounded schedule exploration
    evidence yields [Tested] — unless a deadlock was observed or a
    lock-order cycle exists, in which case no proof is produced. *)

val invalidate : proof list -> current_epoch:int -> int
(** Mark proofs established against an older fix epoch invalid;
    returns how many were invalidated. *)

val write_proof : Softborg_util.Codec.Writer.t -> proof -> unit
(** Checkpoint codec for a proof record.  The process-local [id] is
    not serialized: checkpoint bytes stay a pure function of the
    evidence even when a restored hive re-derives its proofs. *)

val read_proof : Softborg_util.Codec.Reader.t -> proof
(** Inverse of {!write_proof}; mints a fresh id for the restored
    proof.
    @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)
