(* Scoring the Fixgen/Prover/Isolate loop against the versioned bug
   corpus.  See the .mli for the metric definitions; everything here
   is deterministic in [config.seed] (the corpus instances themselves
   are deterministic in their own seeds). *)

module Rng = Softborg_util.Rng
module Ir = Softborg_prog.Ir
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Engine = Softborg_exec.Engine
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Sampling = Softborg_trace.Sampling
module Exec_tree = Softborg_tree.Exec_tree
module Corpus_bench = Softborg_corpus.Corpus_bench

type config = {
  engine : Engine.t;
  runs : int;
  trigger_every : int;
  isolation_top : int;
  input_hi : int;
  seed : int;
}

let default_config =
  { engine = Engine.Vm; runs = 80; trigger_every = 8; isolation_top = 3; input_hi = 191; seed = 9 }

type instance_score = {
  name : string;
  family : string;
  threaded : bool;
  executions : int;
  failures_seen : int;
  time_to_isolation : int option;
  proposed : int;
  correct : int;
  patch_candidates : int;
  fix_kinds : string list;
  localized : bool;
  averted : bool;
  proof_coverage : float;
  proof_strength : string option;
}

type family_score = {
  family : string;
  version : int;
  instances : int;
  precision : float;
  recall : float;
  isolated : int;
  mean_time_to_isolation : float;
  averted_rate : float;
  mean_proof_coverage : float;
}

(* Drive [config.runs] executions of [program] into [know]: natural
   runs (uniform inputs resampled off the trigger predicate, no
   faults, random schedules for threaded programs) with the instance's
   certified trigger recipe injected every [trigger_every]-th run.
   This is the pod traffic of a miniature deployment. *)
let drive ~config ~(inst : Corpus_bench.instance) ~program ~know ~on_run =
  let digest = Ir.digest program in
  let rng = Rng.create (config.seed lxor Hashtbl.hash (inst.Corpus_bench.name, Ir.digest program)) in
  let conc = Corpus_bench.concurrent inst in
  let n_inputs = program.Ir.n_inputs in
  let hint = Option.value ~default:[] inst.Corpus_bench.schedule_hint in
  for i = 1 to config.runs do
    let is_trigger = i mod config.trigger_every = 0 in
    let inputs =
      if is_trigger then inst.Corpus_bench.trigger_inputs
      else begin
        let draw () = Array.init n_inputs (fun _ -> Rng.int rng (config.input_hi + 1)) in
        (* Keep natural traffic off the trigger so failures come only
           from scheduled trigger runs — time-to-isolation then counts
           evidence quality, not accidental luck. *)
        let rec go k a =
          if (not conc) && inst.Corpus_bench.trigger a && k < 32 then go (k + 1) (draw ())
          else a
        in
        go 0 (draw ())
      end
    in
    let fault_plan = if is_trigger then inst.Corpus_bench.fault_plan else Env.No_faults in
    let sched =
      if conc then
        if is_trigger then Sched.Replay hint else Sched.Random_sched (Rng.split rng)
      else Sched.Round_robin
    in
    let env = Env.make ~fault_plan ~seed:(Rng.int rng 1_000_000) ~inputs () in
    let r = Engine.run ~engine:config.engine ~program ~env ~sched () in
    let trace = Trace.of_result ~program_digest:digest ~pod:0 ~fix_epoch:0 r in
    (match Knowledge.ingest_trace know trace with Ok () -> () | Error _ -> ());
    on_run i r
  done

let correct_fix (inst : Corpus_bench.instance) (f : Fixgen.fix) =
  match f.Fixgen.kind with
  | Fixgen.Deadlock_immunity locks ->
    inst.Corpus_bench.bug_locks <> [] && List.sort compare locks = inst.Corpus_bench.bug_locks
  | Fixgen.Input_guard { site; _ } | Fixgen.Crash_suppression { site; _ } ->
    List.exists (Ir.site_equal site) inst.Corpus_bench.bug_sites
  | Fixgen.Patch_candidate _ -> false

(* Has statistical isolation localized the bug yet?  True when a
   predicate on the instance's certified failing path ranks within the
   top-k carrying failure evidence and a non-negative Increase score.
   (Boundary bugs have no purely discriminating branch predicate —
   passing runs cross the same loop/check branch — so their trigger
   predicate sits at Increase 0 and leads the ranking only via the
   failing-observation tie-break; demanding strictly positive score
   would declare CBI blind to an entire bug class it in fact ranks
   first.) *)
let isolated_now ~top know (inst : Corpus_bench.instance) =
  let on_path (r : Isolate.ranked) =
    r.Isolate.score >= 0.0
    && r.Isolate.failing_observations > 0
    && List.exists
         (fun (site, dir) ->
           Ir.site_equal site r.Isolate.predicate.Sampling.site
           && dir = r.Isolate.predicate.Sampling.direction)
         inst.Corpus_bench.trigger_path
  in
  let rec scan k = function
    | r :: rest when k > 0 -> on_path r || scan (k - 1) rest
    | _ -> false
  in
  scan top (Isolate.rank (Knowledge.isolate know))

let proof_of_fixed ~config (inst : Corpus_bench.instance) know_f =
  let program = inst.Corpus_bench.fixed in
  let tree = Knowledge.tree know_f in
  let (_ : int) =
    Prover.close_gaps
      ~cache:(Knowledge.verdict_cache know_f)
      ~memo:(Knowledge.gap_memo know_f) program tree
  in
  let coverage = Exec_tree.completeness tree in
  let crash_observations = Knowledge.failures_observed know_f in
  let strength =
    let proof =
      if Corpus_bench.concurrent inst then
        Prover.attempt_deadlock_freedom ~max_runs:64 ~program ~tree
          ~deadlock_observations:crash_observations
          ~lock_cycles:(Knowledge.deadlock_pattern_sets know_f)
          ~make_env:(fun () ->
            Env.make ~seed:config.seed ~inputs:inst.Corpus_bench.trigger_inputs ())
          ~hooks:Interp.no_hooks ~epoch:0 ()
      else
        Prover.attempt_assert_safety
          ~cache:(Knowledge.verdict_cache know_f)
          ~program ~tree ~crash_observations ~epoch:0 ()
    in
    Option.map (fun (p : Prover.proof) -> Prover.strength_name p.Prover.strength) proof
  in
  (coverage, strength)

let score_instance ?(config = default_config) (inst : Corpus_bench.instance) =
  let conc = Corpus_bench.concurrent inst in
  let know = Knowledge.create inst.Corpus_bench.buggy in
  let failures = ref 0 in
  let tti = ref None in
  drive ~config ~inst ~program:inst.Corpus_bench.buggy ~know ~on_run:(fun i r ->
      if Outcome.is_failure r.Interp.outcome then incr failures;
      if !tti = None then
        if conc then begin
          (* Schedule-triggered bugs are not input-discriminated (and a
             deadlock path may cross no branch at all): isolation here
             means the hive has its first manifested failure to mine. *)
          if Outcome.is_failure r.Interp.outcome then tti := Some i
        end
        else if !failures > 0 && isolated_now ~top:config.isolation_top know inst then
          tti := Some i);
  let fixes = Knowledge.analyze know in
  let deployable = List.filter Fixgen.is_deployable fixes in
  let correct = List.length (List.filter (correct_fix inst) deployable) in
  let averted =
    let hooks = Knowledge.current_hooks know in
    let sched =
      if conc then Sched.Replay (Option.value ~default:[] inst.Corpus_bench.schedule_hint)
      else Sched.Round_robin
    in
    let env =
      Env.make ~fault_plan:inst.Corpus_bench.fault_plan ~seed:11
        ~inputs:inst.Corpus_bench.trigger_inputs ()
    in
    let r =
      Engine.run ~hooks ~engine:config.engine ~program:inst.Corpus_bench.buggy ~env ~sched ()
    in
    not (Outcome.is_failure r.Interp.outcome)
  in
  let know_f = Knowledge.create inst.Corpus_bench.fixed in
  drive ~config ~inst ~program:inst.Corpus_bench.fixed ~know:know_f ~on_run:(fun _ _ -> ());
  let proof_coverage, proof_strength = proof_of_fixed ~config inst know_f in
  {
    name = inst.Corpus_bench.name;
    family = inst.Corpus_bench.family;
    threaded = conc;
    executions = config.runs;
    failures_seen = !failures;
    time_to_isolation = !tti;
    proposed = List.length deployable;
    correct;
    patch_candidates = List.length fixes - List.length deployable;
    fix_kinds = List.map (fun (f : Fixgen.fix) -> Fixgen.kind_name f.Fixgen.kind) fixes;
    localized = correct > 0;
    averted;
    proof_coverage;
    proof_strength;
  }

let fixed_variant_fixes ?(config = default_config) (inst : Corpus_bench.instance) =
  let know = Knowledge.create inst.Corpus_bench.fixed in
  drive ~config ~inst ~program:inst.Corpus_bench.fixed ~know ~on_run:(fun _ _ -> ());
  Knowledge.analyze know

let score_corpus ?(config = default_config) instances =
  let scores = List.map (score_instance ~config) instances in
  let family_order =
    List.fold_left
      (fun acc (i : Corpus_bench.instance) ->
        if List.mem_assoc i.Corpus_bench.family acc then acc
        else acc @ [ (i.Corpus_bench.family, i.Corpus_bench.version) ])
      [] instances
  in
  let families =
    List.map
      (fun (family, version) ->
        let fs = List.filter (fun (s : instance_score) -> s.family = family) scores in
        let n = List.length fs in
        let sum f = List.fold_left (fun acc s -> acc + f s) 0 fs in
        let proposed = sum (fun s -> s.proposed) in
        let correct = sum (fun s -> s.correct) in
        let isolated = List.filter (fun s -> s.time_to_isolation <> None) fs in
        let mean_tti =
          match isolated with
          | [] -> 0.0
          | _ ->
            float_of_int
              (List.fold_left
                 (fun acc s -> acc + Option.value ~default:0 s.time_to_isolation)
                 0 isolated)
            /. float_of_int (List.length isolated)
        in
        {
          family;
          version;
          instances = n;
          precision =
            (if proposed = 0 then 1.0 else float_of_int correct /. float_of_int proposed);
          recall =
            (if n = 0 then 0.0
             else
               float_of_int (List.length (List.filter (fun s -> s.localized) fs))
               /. float_of_int n);
          isolated = List.length isolated;
          mean_time_to_isolation = mean_tti;
          averted_rate =
            (if n = 0 then 0.0
             else
               float_of_int (List.length (List.filter (fun s -> s.averted) fs))
               /. float_of_int n);
          mean_proof_coverage =
            (if n = 0 then 0.0
             else
               List.fold_left (fun acc s -> acc +. s.proof_coverage) 0.0 fs /. float_of_int n);
        })
      family_order
  in
  (scores, families)
