module Ir = Softborg_prog.Ir
module Exec_tree = Softborg_tree.Exec_tree

let buf_add = Buffer.add_string

let section buffer title =
  buf_add buffer "\n";
  buf_add buffer title;
  buf_add buffer "\n";
  buf_add buffer (String.make (String.length title) '-');
  buf_add buffer "\n"

let render k =
  let buffer = Buffer.create 1024 in
  let program = Knowledge.program k in
  buf_add buffer (Printf.sprintf "SoftBorg reliability report: %s\n" program.Ir.name);
  buf_add buffer (Printf.sprintf "build digest: %s\n" (Knowledge.digest k));
  buf_add buffer
    (Printf.sprintf "fix epoch: %d | traces ingested: %d | failures observed: %d\n"
       (Knowledge.epoch k) (Knowledge.traces_ingested k) (Knowledge.failures_observed k));

  section buffer "Collective execution tree";
  let tree = Knowledge.tree k in
  buf_add buffer
    (Printf.sprintf "distinct paths: %d | nodes: %d | completeness: %.1f%% | open gaps: %d\n"
       (Exec_tree.n_distinct_paths tree) (Exec_tree.n_nodes tree)
       (100.0 *. Exec_tree.completeness tree)
       (Exec_tree.frontier_size tree));
  let store = Knowledge.store k in
  buf_add buffer
    (Printf.sprintf "trace store: %d distinct contents for %d uploads (dedup %.1fx)\n"
       (Trace_store.distinct store) (Trace_store.received store)
       (Trace_store.dedup_ratio store));

  section buffer "Failure buckets";
  (match Knowledge.bucket_counts k with
  | [] -> buf_add buffer "none observed\n"
  | buckets ->
    List.iter
      (fun (key, count) -> buf_add buffer (Printf.sprintf "%6d  %s\n" count key))
      buckets);

  section buffer "Fixes";
  (match Knowledge.fixes k with
  | [] -> buf_add buffer "none synthesized\n"
  | fixes ->
    List.iter
      (fun fix ->
        buf_add buffer
          (Printf.sprintf "%s %s\n"
             (if Fixgen.is_deployable fix then "[deployed] " else "[repair lab]")
             (Format.asprintf "%a" Fixgen.pp fix)))
      fixes);

  section buffer "Proofs";
  (match Knowledge.proofs k with
  | [] -> buf_add buffer "none attempted or established\n"
  | proofs ->
    List.iter
      (fun proof -> buf_add buffer (Format.asprintf "%a\n" Prover.pp proof))
      proofs);

  section buffer "Top bug predictors (statistical isolation)";
  (match Isolate.rank (Knowledge.isolate k) with
  | [] -> buf_add buffer "no predicate observations\n"
  | ranked ->
    List.iteri
      (fun i (r : Isolate.ranked) ->
        if i < 5 && r.Isolate.score > 0.0 then
          buf_add buffer
            (Printf.sprintf "%d. %s  score=%.2f (fail %d / pass %d)\n" (i + 1)
               (Format.asprintf "%a" Softborg_trace.Sampling.pp_predicate r.Isolate.predicate)
               r.Isolate.score r.Isolate.failing_observations r.Isolate.passing_observations))
      ranked;
    if List.for_all (fun (r : Isolate.ranked) -> r.Isolate.score <= 0.0) ranked then
      buf_add buffer "no positively-correlated predicates\n");
  Buffer.contents buffer

let summary_line k =
  Printf.sprintf "%-14s traces=%-6d failures=%-4d fixes=%-2d proofs=%d"
    (Knowledge.program k).Ir.name (Knowledge.traces_ingested k)
    (Knowledge.failures_observed k)
    (List.length (Knowledge.fixes k))
    (List.length (Knowledge.valid_proofs k))
