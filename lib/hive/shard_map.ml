module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec

type t = { n_shards : int; prefix_bits : int }

let max_prefix_bits = 20

let create ?(prefix_bits = 8) ~n_shards () =
  if n_shards < 1 then invalid_arg "Shard_map.create: n_shards must be >= 1";
  if prefix_bits < 1 || prefix_bits > max_prefix_bits then
    invalid_arg
      (Printf.sprintf "Shard_map.create: prefix_bits %d out of [1,%d]" prefix_bits
         max_prefix_bits);
  { n_shards; prefix_bits }

let n_shards t = t.n_shards
let prefix_bits t = t.prefix_bits
let equal a b = a.n_shards = b.n_shards && a.prefix_bits = b.prefix_bits

(* The key space is the first [prefix_bits] branch decisions of a path,
   read most-significant-first and zero-padded when the path is
   shorter.  The zero-pad is what makes short prefixes a rendezvous
   point: any path through a subtree rooted at prefix p extends p, and
   the subtree's *leftmost* extension (all-false) shares the owner of
   the padded prefix, so the owner of [prefix · 0^k] is a fixed,
   locally computable meeting shard for the LCA of any cross-shard
   paste — no negotiation round needed. *)
let scale t value = value * t.n_shards / (1 lsl t.prefix_bits)

let owner_of_key t key ~length ~bit =
  let value = ref 0 in
  for i = 0 to t.prefix_bits - 1 do
    let b = i < length && bit key i in
    value := (!value lsl 1) lor if b then 1 else 0
  done;
  scale t !value

let owner_of_bits t bits =
  owner_of_key t bits ~length:(Bitvec.length bits) ~bit:Bitvec.get

let owner_of_prefix t prefix =
  let arr = Array.of_list prefix in
  owner_of_key t arr ~length:(Array.length arr) ~bit:Array.get

(* Path-less work (sampled reports) routes by program digest via a
   seed-free FNV-1a fold, so every router instance — and a restarted
   one — agrees on the owner without shared state. *)
let owner_of_digest t digest =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    digest;
  let value = !h land ((1 lsl t.prefix_bits) - 1) in
  scale t value

(* Gap verdicts are path-independent: the solver's directed exploration
   (and both memo layers above it) key on (site, direction) alone, and a
   hot branch site recurs in every shard's subtree.  Owning verdicts by
   prefix would therefore make each shard re-derive nearly the full
   verdict set; hashing (program, site, direction) instead partitions
   the solver work itself. *)
let owner_of_verdict t ~program ~thread ~pc ~direction =
  owner_of_digest t
    (Printf.sprintf "%s/%d:%d:%c" program thread pc (if direction then 't' else 'f'))

let pp fmt t = Format.fprintf fmt "shard-map{n=%d bits=%d}" t.n_shards t.prefix_bits

(* ---- Wire format ---------------------------------------------------- *)

let write w t =
  Codec.Writer.varint w t.n_shards;
  Codec.Writer.varint w t.prefix_bits

let read r =
  let n_shards = Codec.Reader.varint r in
  let prefix_bits = Codec.Reader.varint r in
  if n_shards < 1 then raise (Codec.Malformed (Printf.sprintf "shard map n_shards %d" n_shards));
  if prefix_bits < 1 || prefix_bits > max_prefix_bits then
    raise (Codec.Malformed (Printf.sprintf "shard map prefix_bits %d" prefix_bits));
  { n_shards; prefix_bits }
