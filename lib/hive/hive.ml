module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome
module Env = Softborg_exec.Env
module Interp = Softborg_exec.Interp
module Wire = Softborg_trace.Wire
module Trace = Softborg_trace.Trace
module Bitvec = Softborg_util.Bitvec
module Ids = Softborg_util.Ids
module Exec_tree = Softborg_tree.Exec_tree
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport
module Sym_exec = Softborg_symexec.Sym_exec
module Pool = Softborg_util.Pool

let src = Logs.Src.create "softborg.hive" ~doc:"SoftBorg hive"

module Log = (val Logs.src_log src : Logs.LOG)

type mode =
  | Full
  | Wer
  | Cbi

let mode_name = function Full -> "softborg" | Wer -> "wer" | Cbi -> "cbi"

type shed_policy =
  | Drop_newest
  | Drop_oldest
  | Prefer_failures

type overload_config = {
  queue_bound : int;
  service_interval : float;
  shed_policy : shed_policy;
  caps : Wire.caps;
  quarantine_threshold : int;
  mute_cooldown : float;
}

let default_overload_config =
  {
    queue_bound = 64;
    service_interval = 0.02;
    shed_policy = Prefer_failures;
    caps = Wire.default_caps;
    quarantine_threshold = 5;
    mute_cooldown = 120.0;
  }

type config = {
  mode : mode;
  analysis_interval : float;
  guidance_max : int;
  human_fix_threshold : int;
  human_fix_delay : float;
  cbi_localization_speedup : float;
  prove : bool;
  symexec_config : Sym_exec.config option;
  pool_size : int;
  overload : overload_config option;
  synthesize : bool;
  announce_basis : bool;
  rollout : Fix_lifecycle.config option;
}

let default_config mode =
  {
    mode;
    analysis_interval = 30.0;
    guidance_max = 8;
    human_fix_threshold = 10;
    human_fix_delay = 2000.0;
    cbi_localization_speedup = 3.0;
    prove = (mode = Full);
    pool_size = 1;
    overload = None;
    synthesize = true;
    (* Off by default: announcing bases broadcasts extra frames, which
       would consume link RNG draws and perturb existing seeded runs. *)
    announce_basis = false;
    (* Off by default for the same reason: without a rollout config,
       fixes deploy fleet-wide instantly, exactly as before. *)
    rollout = None;
    symexec_config =
      (* The hive analyzes many programs per tick; bound each symbolic
         operation tightly and rely on repetition across ticks. *)
      Some
        {
          Sym_exec.default_config with
          Sym_exec.max_paths = 96;
          max_steps_per_path = 1500;
          solver_budget = 20_000;
        };
  }

type stats = {
  traces_received : int;
  messages_received : int;
  analysis_ticks : int;
  fixes_deployed : int;
  fix_updates_sent : int;
  guidance_sent : int;
  proofs_established : int;
  human_fixes_scheduled : int;
  checkpoints_taken : int;
  restores_completed : int;
  shed_success : int;
  shed_failure : int;
  quarantined_frames : int;
  pods_muted : int;
  muted_drops : int;
  pressure_updates_sent : int;
  peak_queue_depth : int;
  batch_frames_received : int;
  batch_records_received : int;
  basis_updates_sent : int;
  fix_promotions : int;
  fix_retractions : int;
  retracts_sent : int;
  quarantined_fix_traces : int;
}

(* A reconstruction precomputed on a decode worker, stamped with the
   fix-list value it was built against.  It is only usable while the
   program's fix list is still that exact value (physical equality —
   the list is replaced wholesale on every change) and the retracted
   set is unchanged (retraction mutates the retracted list without
   replacing the fixes), because replay hooks derive from both. *)
type precomputed = {
  pc_fixes : Fixgen.fix list;
  pc_retracted : int list;
  pc_recon : Interp.reconstruction;
}

(* One admitted-but-not-yet-processed upload.  The frame is decoded at
   admission (that is where poison is detected and the outcome class
   read), so the drain only has to ingest.  Traces carry their
   prepared canonical bytes (one encode at decode time serves the
   trace store, the replay cache key, and the federation tap) and,
   when they arrived in a batch decoded on the worker pool, a
   precomputed replay. *)
type work =
  | Trace_work of { prep : Trace_store.prepared; recon : precomputed option }
  | Sampled_work of { program_digest : string; report : Softborg_trace.Sampling.t }

type queued = {
  q_slot : int;  (* which pod attachment sent it *)
  q_failing : bool;  (* failure-class uploads are never shed first *)
  q_work : work;
}

type t = {
  sim : Sim.t;
  config : config;
  programs : (string, Knowledge.t) Hashtbl.t;
  mutable endpoints : Transport.endpoint list;
  mutable next_guidance_target : int;
  (* ---- Overload protection (all inert when [config.overload = None]) ----
     The ingest queue is kept in arrival order, oldest first; bounds are
     small (tens), so O(n) appends and eviction scans are fine. *)
  mutable queue : queued list;
  mutable queue_len : int;
  mutable busy_until : float;  (* service clock: when ingestion is free again *)
  mutable drain_armed : bool;
  mutable next_slot : int;
  occupancy : (int, int) Hashtbl.t;  (* pod slot -> queued items, fair-share *)
  quarantine_ledger : (int, int) Hashtbl.t;  (* pod slot -> malformed frames *)
  mute_until : (int, float) Hashtbl.t;
  mutable pressure_level : int;
  mutable shed_success : int;
  mutable shed_failure : int;
  mutable quarantined_frames : int;
  mutable pods_muted : int;
  mutable muted_drops : int;
  mutable pressure_updates_sent : int;
  mutable peak_queue_depth : int;
  (* ---- Fleet ingestion (delta/batch wire plane) ----
     Announced bases are a wire-plane accelerator, not knowledge: they
     are not checkpointed, and a restarted hive simply announces fresh
     ones.  [bases] keeps every basis this hive ever announced (keyed
     by id, so pods holding an older announcement still decode), with
     the fingerprint echoed back by batches. *)
  bases : (string * int, Trace.t * int) Hashtbl.t;  (* (digest, basis id) *)
  basis_candidates : (string, Trace_store.prepared) Hashtbl.t;
  announced_basis : (string, int) Hashtbl.t;  (* digest -> latest basis id *)
  mutable next_basis_id : int;
  mutable batch_frames_received : int;
  mutable batch_records_received : int;
  mutable basis_updates_sent : int;
  pending_human_fixes : (string, unit) Hashtbl.t;  (* bucket keys already scheduled *)
  (* Throttles: symbolic work is expensive, so gaps already issued to a
     pod are not re-planned, and proofs are only re-attempted when the
     knowledge actually changed.  The per-program issued set is a hash
     set so the planner's exclusion check is O(1) per gap. *)
  issued_guidance : (string, (Ir.site * bool, unit) Hashtbl.t) Hashtbl.t;
  proof_state : (string, int * int) Hashtbl.t;  (* tree version, epoch *)
  (* Worker pool for parallel symbolic gap solving; [None] when
     [config.pool_size <= 1] (the default — no domains spawned). *)
  pool : Pool.t option;
  (* Portfolio allocation of pool workers across programs (paper §4):
     per-program reward tasks fed with new-distinct-paths-per-tick,
     and the latest node shares.  Purely a performance dial — it sizes
     each program's speculative solve batch, never its output. *)
  alloc_tasks : (string, Allocate.task) Hashtbl.t;
  mutable next_alloc_task : int;
  last_alloc_paths : (string, int) Hashtbl.t;
  mutable allocation : (string * int) list;
  mutable traces_received : int;
  mutable messages_received : int;
  mutable analysis_ticks : int;
  mutable fixes_deployed : int;
  mutable fix_updates_sent : int;
  mutable fix_promotions : int;
  mutable fix_retractions : int;
  mutable retracts_sent : int;
  mutable guidance_sent : int;
  mutable proofs_established : int;
  mutable human_fixes_scheduled : int;
  (* Checkpoint infrastructure activity of *this* hive process; not
     part of the checkpointed state itself. *)
  mutable checkpoints_taken : int;
  mutable restores_completed : int;
  mutable shut_down : bool;
  (* Federation hook: observes the canonical re-encoding of every
     upload this hive actually ingests (post admission-control), so a
     shard's superstep delta is exactly its admitted work. *)
  mutable ingest_tap : (string -> unit) option;
}

let create ?config ~sim () =
  let config = Option.value ~default:(default_config Full) config in
  {
    sim;
    config;
    programs = Hashtbl.create 4;
    endpoints = [];
    next_guidance_target = 0;
    queue = [];
    queue_len = 0;
    busy_until = neg_infinity;
    drain_armed = false;
    next_slot = 0;
    occupancy = Hashtbl.create 8;
    quarantine_ledger = Hashtbl.create 8;
    mute_until = Hashtbl.create 8;
    pressure_level = 0;
    shed_success = 0;
    shed_failure = 0;
    quarantined_frames = 0;
    pods_muted = 0;
    muted_drops = 0;
    pressure_updates_sent = 0;
    peak_queue_depth = 0;
    bases = Hashtbl.create 8;
    basis_candidates = Hashtbl.create 8;
    announced_basis = Hashtbl.create 8;
    next_basis_id = 1;
    batch_frames_received = 0;
    batch_records_received = 0;
    basis_updates_sent = 0;
    pending_human_fixes = Hashtbl.create 16;
    issued_guidance = Hashtbl.create 8;
    proof_state = Hashtbl.create 8;
    pool = (if config.pool_size > 1 then Some (Pool.create ~size:config.pool_size) else None);
    alloc_tasks = Hashtbl.create 4;
    next_alloc_task = 0;
    last_alloc_paths = Hashtbl.create 4;
    allocation = [];
    traces_received = 0;
    messages_received = 0;
    analysis_ticks = 0;
    fixes_deployed = 0;
    fix_updates_sent = 0;
    fix_promotions = 0;
    fix_retractions = 0;
    retracts_sent = 0;
    guidance_sent = 0;
    proofs_established = 0;
    human_fixes_scheduled = 0;
    checkpoints_taken = 0;
    restores_completed = 0;
    shut_down = false;
    ingest_tap = None;
  }

let register_program t program =
  let digest = Ir.digest program in
  match Hashtbl.find_opt t.programs digest with
  | Some k -> k
  | None ->
    let k = Knowledge.create program in
    Knowledge.set_rollout k t.config.rollout;
    Hashtbl.replace t.programs digest k;
    k

let knowledge t ~digest = Hashtbl.find_opt t.programs digest
let knowledge_list t = Hashtbl.fold (fun _ k acc -> k :: acc) t.programs []

let adopt_fixes t ~digest ~fixes ~epoch ~retracted =
  match Hashtbl.find_opt t.programs digest with
  | None -> ()
  | Some k -> Knowledge.adopt_fixes k ~fixes ~epoch ~retracted

let broadcast t message =
  let payload = Protocol.encode message in
  List.iter (fun endpoint -> Transport.send endpoint payload) t.endpoints

let pressure_level t = t.pressure_level
let queue_length t = t.queue_len

let send_fix_update t k =
  let deployable = List.filter Fixgen.is_deployable (Knowledge.live_fixes k) in
  broadcast t
    (Protocol.Fix_update
       {
         program_digest = Knowledge.digest k;
         epoch = Knowledge.epoch k;
         fixes = deployable;
         canary = Knowledge.canary_ids k;
         canary_mils = Knowledge.canary_mils k;
         pressure = t.pressure_level;
       });
  t.fix_updates_sent <- t.fix_updates_sent + 1

let send_fix_retract t k =
  broadcast t
    (Protocol.Fix_retract
       {
         program_digest = Knowledge.digest k;
         epoch = Knowledge.epoch k;
         retracted = Knowledge.retracted_ids k;
         fixes = List.filter Fixgen.is_deployable (Knowledge.live_fixes k);
         canary = Knowledge.canary_ids k;
         canary_mils = Knowledge.canary_mils k;
         pressure = t.pressure_level;
       });
  t.retracts_sent <- t.retracts_sent + 1

(* An externally-decided fix lands exactly as a synthesized one would:
   minted into the knowledge (canary-staged when rollout is attached)
   and pushed downstream.  The chaos harness injects sabotaged fixes
   through this to prove the rollout machinery retracts them. *)
let inject_fix t ~digest kind =
  match Hashtbl.find_opt t.programs digest with
  | None -> ()
  | Some k ->
    ignore (Knowledge.add_fix k kind);
    t.fixes_deployed <- t.fixes_deployed + 1;
    send_fix_update t k

(* ---- Ingestion -------------------------------------------------------- *)

(* The tap sees the *canonical* encoding of the decoded work, not the
   pod's original frame: two shards ingesting equal content report
   byte-equal payloads no matter how the pods chose to frame them
   (single frames, batches, deltas).  For traces the canonical bytes
   were already produced once at decode time ([Trace_store.prepare]) —
   the tap reuses them instead of re-encoding per shard. *)
let canonical_payload = function
  | Trace_work { prep; _ } ->
    Protocol.encode (Protocol.Trace_upload prep.Trace_store.p_encoded)
  | Sampled_work { program_digest; report } ->
    Protocol.encode (Protocol.Sampled_report { program_digest; report })

let process_work t work =
  t.traces_received <- t.traces_received + 1;
  (match t.ingest_tap with None -> () | Some tap -> tap (canonical_payload work));
  match work with
  | Trace_work { prep; recon } -> (
    let trace = prep.Trace_store.p_trace in
    if
      t.config.announce_basis
      && Bitvec.length trace.Trace.bits > 0
      && not (Hashtbl.mem t.basis_candidates trace.Trace.program_digest)
    then Hashtbl.replace t.basis_candidates trace.Trace.program_digest prep;
    match Hashtbl.find_opt t.programs trace.Trace.program_digest with
    | None -> ()
    | Some k -> (
      match t.config.mode with
      | Full ->
        (* A precomputed replay is only trustworthy while the fix list
           is still the exact value the worker saw — hooks derive from
           it.  Stale precomputes fall back to the normal replay path
           (identical result, just slower). *)
        let reconstruction =
          match recon with
          | Some pc
            when pc.pc_fixes == Knowledge.fixes k
                 && pc.pc_retracted = Knowledge.retracted_ids k ->
            Some pc.pc_recon
          | _ -> None
        in
        ignore (Knowledge.ingest_trace ~prepared:prep ?reconstruction k trace)
      | Wer | Cbi -> Knowledge.ingest_outcome_only k trace))
  | Sampled_work { program_digest; report } -> (
    match Hashtbl.find_opt t.programs program_digest with
    | None -> ()
    | Some k -> Knowledge.ingest_sampled k report)

(* ---- Batched-frame decode ---------------------------------------------- *)

exception Bad_batch

(* Decode a whole batch to admission-ready work items, or reject it as
   one poison frame (any malformed record, basis mismatch, or blown
   total budget damns the whole batch — parse-then-commit, nothing
   partial is ingested).

   Records after the anchor are decoded, canonicalized, and optionally
   replay-precomputed on the worker pool; [Pool.map] preserves input
   order and every per-record function is pure, so the resulting work
   list — and therefore all downstream knowledge bytes — is identical
   for any pool size.  Trace ids are minted afterwards on this thread,
   in record order ([Ids] counters are plain refs, not domain-safe). *)
let decode_batch t ~caps ~program_digest ~basis_id ~basis_check records =
  t.batch_frames_received <- t.batch_frames_received + 1;
  match
    (* Total-budget pre-pass over declared sizes: a batch of records
       that each clear the per-frame bit cap must also jointly clear
       the batch budget, so splitting an attack across records cannot
       smuggle volume past quarantine accounting. *)
    (match caps with
    | None -> ()
    | Some c ->
      ignore
        (List.fold_left
           (fun acc s ->
             match Wire.declared_bits s with
             | Error _ -> raise Bad_batch
             | Ok n ->
               if n < 0 || n > c.Wire.max_batch_total_bits - acc then raise Bad_batch
               else acc + n)
           0 records));
    let basis =
      if basis_id = 0 then None
      else
        match Hashtbl.find_opt t.bases (program_digest, basis_id) with
        | Some (b, fp) when fp = basis_check -> Some b
        | Some _ | None -> raise Bad_batch
    in
    let knowledge = Hashtbl.find_opt t.programs program_digest in
    (* Precompute replays on the workers only when there is real
       parallelism to exploit; the snapshot gate in [process_work]
       keeps the result byte-identical either way. *)
    let precompute =
      match (knowledge, t.pool, t.config.mode) with
      | Some k, Some _, Full ->
        Some (Knowledge.program k, Knowledge.fixes k, Knowledge.retracted_ids k)
      | _ -> None
    in
    let decode_one ?basis s =
      match Wire.decode_record ?caps ?basis ~program_digest s with
      | Error _ -> raise Bad_batch
      | Ok trace ->
        let prep = Trace_store.prepare trace in
        let recon =
          match precompute with
          | Some (program, fixes, retracted)
            when not (trace.Trace.steps = 0 && trace.Trace.n_decisions = 0) -> (
            (* Mirror [Knowledge.replay_hooks] exactly: an attributed
               trace names its active fix set, an unattributed one gets
               the epoch approximation over the non-retracted fixes. *)
            let hooks =
              match trace.Trace.attribution with
              | Some a -> Fixgen.runtime_hooks_for_ids ~ids:a.Trace.active_fixes fixes
              | None ->
                let live =
                  if retracted = [] then fixes
                  else
                    List.filter (fun f -> not (List.mem f.Fixgen.id retracted)) fixes
                in
                Fixgen.runtime_hooks ~epoch:trace.Trace.fix_epoch live
            in
            match
              Interp.reconstruct ~hooks ~program ~bits:trace.Trace.bits
                ~schedule:trace.Trace.schedule ~total_decisions:trace.Trace.n_decisions
                ~total_steps:trace.Trace.steps ()
            with
            | Ok r -> Some { pc_fixes = fixes; pc_retracted = retracted; pc_recon = r }
            | Error _ -> None)
          | _ -> None
        in
        (prep, recon)
    in
    let par_map f xs =
      match t.pool with
      | Some pool when List.length xs > 1 -> Pool.map pool f xs
      | _ -> List.map f xs
    in
    let decoded =
      match basis with
      | Some b -> par_map (fun s -> decode_one ~basis:b s) records
      | None -> (
        match records with
        | [] -> []
        | first :: rest ->
          (* No announced basis: the leading record anchors the batch
             and must be full (a delta tag with no basis is malformed
             inside [decode_one]). *)
          let ((anchor_prep, _) as anchor) = decode_one first in
          anchor :: par_map (fun s -> decode_one ~basis:anchor_prep.Trace_store.p_trace s) rest)
    in
    t.batch_records_received <- t.batch_records_received + List.length decoded;
    List.map
      (fun (prep, recon) ->
        let trace =
          { prep.Trace_store.p_trace with Trace.trace_id = Ids.Trace_id.fresh () }
        in
        let prep = Trace_store.with_trace prep trace in
        (Outcome.is_failure trace.Trace.outcome, Trace_work { prep; recon }))
      decoded
  with
  | works -> Ok works
  | exception Bad_batch -> Error ()

(* Without overload protection, uploads are processed synchronously in
   the receive callback — the pre-existing behavior, kept byte-for-byte
   so seeded runs of existing configs are unperturbed. *)
let handle_message t payload =
  t.messages_received <- t.messages_received + 1;
  match Protocol.decode payload with
  | Error _ -> ()
  | Ok (Protocol.Trace_upload payload) -> (
    match Wire.decode payload with
    | Error _ -> ()
    | Ok trace ->
      process_work t (Trace_work { prep = Trace_store.prepare trace; recon = None }))
  | Ok (Protocol.Sampled_report { program_digest; report }) ->
    process_work t (Sampled_work { program_digest; report })
  | Ok (Protocol.Batch_upload { program_digest; basis_id; basis_check; records }) -> (
    match decode_batch t ~caps:None ~program_digest ~basis_id ~basis_check records with
    | Error () -> ()
    | Ok works -> List.iter (fun (_failing, work) -> process_work t work) works)
  | Ok
      ( Protocol.Fix_update _ | Protocol.Fix_retract _ | Protocol.Guidance_update _
      | Protocol.Pressure_update _ | Protocol.Shard_map_update _ | Protocol.Knowledge_delta _
      | Protocol.Frontier_summary _ | Protocol.Basis_update _ ) ->
    (* Downstream-only and federation-plane messages; ignore if echoed
       back.  A shard hive never ingests a Knowledge_delta directly —
       the federation coordinator unpacks deltas itself so commit
       order stays canonical. *)
    ()

(* Federation entry points: the merge coordinator commits a shard's
   delta payloads through the same synchronous path a directly
   attached pod would take, and a shard exposes its admitted work via
   the tap. *)
let ingest_payload = handle_message
let set_ingest_tap t tap = t.ingest_tap <- Some tap

(* ---- Overload protection ---------------------------------------------- *)

(* Load level 0–3 from queue occupancy quartiles; broadcast to pods only
   on change, so an unloaded hive (level pinned at 0) sends nothing. *)
let refresh_pressure t (oc : overload_config) =
  let level =
    if t.queue_len = 0 then 0 else min 3 (4 * t.queue_len / max 1 oc.queue_bound)
  in
  if level <> t.pressure_level then begin
    t.pressure_level <- level;
    t.pressure_updates_sent <- t.pressure_updates_sent + 1;
    Log.debug (fun m -> m "pressure -> %d (queue %d/%d)" level t.queue_len oc.queue_bound);
    broadcast t (Protocol.Pressure_update { level })
  end

let quarantine t (oc : overload_config) slot =
  t.quarantined_frames <- t.quarantined_frames + 1;
  let count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.quarantine_ledger slot) in
  if count >= oc.quarantine_threshold then begin
    Hashtbl.replace t.quarantine_ledger slot 0;
    Hashtbl.replace t.mute_until slot (Sim.now t.sim +. oc.mute_cooldown);
    t.pods_muted <- t.pods_muted + 1;
    Log.warn (fun m ->
        m "pod slot %d muted until t=%.0f after %d poison frames" slot
          (Sim.now t.sim +. oc.mute_cooldown) count)
  end
  else Hashtbl.replace t.quarantine_ledger slot count

let occupancy_of t slot = Option.value ~default:0 (Hashtbl.find_opt t.occupancy slot)

let bump_occupancy t slot delta =
  Hashtbl.replace t.occupancy slot (max 0 (occupancy_of t slot + delta))

let count_shed t item =
  if item.q_failing then t.shed_failure <- t.shed_failure + 1
  else t.shed_success <- t.shed_success + 1

(* Pick the success-class victim for [Prefer_failures]: an item from the
   pod hogging the most queue slots (fair share), oldest first, lowest
   slot on ties.  Returns its position, or [None] if the whole queue is
   failure-class. *)
let success_victim t =
  let best = ref None in
  List.iteri
    (fun i item ->
      if not item.q_failing then begin
        let occ = occupancy_of t item.q_slot in
        match !best with
        | None -> best := Some (occ, item.q_slot, i)
        | Some (bocc, bslot, _) ->
          if occ > bocc || (occ = bocc && item.q_slot < bslot) then
            best := Some (occ, item.q_slot, i)
      end)
    t.queue;
  Option.map (fun (_, _, i) -> i) !best

let remove_at t idx =
  let victim = ref None in
  t.queue <-
    List.filteri
      (fun i item ->
        if i = idx then begin
          victim := Some item;
          false
        end
        else true)
      t.queue;
  t.queue_len <- t.queue_len - 1;
  match !victim with
  | Some item ->
    bump_occupancy t item.q_slot (-1);
    item
  | None -> assert false

let push_back t item =
  t.queue <- t.queue @ [ item ];
  t.queue_len <- t.queue_len + 1;
  bump_occupancy t item.q_slot 1;
  if t.queue_len > t.peak_queue_depth then t.peak_queue_depth <- t.queue_len

(* Bounded enqueue: at capacity, shed per policy.  [Prefer_failures]
   never sheds a failure-class upload while a success-class one is
   queued — failures carry the debugging signal (paper §3). *)
let enqueue_or_shed t (oc : overload_config) item =
  if t.queue_len < oc.queue_bound then push_back t item
  else begin
    match oc.shed_policy with
    | Drop_newest -> count_shed t item
    | Drop_oldest ->
      count_shed t (remove_at t 0);
      push_back t item
    | Prefer_failures -> (
      match success_victim t with
      | Some idx ->
        count_shed t (remove_at t idx);
        push_back t item
      | None ->
        (* Queue is all failures; an incoming failure is the newest of
           equals, an incoming success loses to any failure. *)
        count_shed t item)
  end

let rec drain t (oc : overload_config) () =
  match t.queue with
  | [] -> t.drain_armed <- false
  | item :: rest ->
    t.queue <- rest;
    t.queue_len <- t.queue_len - 1;
    bump_occupancy t item.q_slot (-1);
    process_work t item.q_work;
    t.busy_until <- Sim.now t.sim +. oc.service_interval;
    if t.queue_len > 0 then Sim.schedule t.sim ~delay:oc.service_interval (drain t oc)
    else t.drain_armed <- false;
    refresh_pressure t oc

let offer t (oc : overload_config) item =
  let now = Sim.now t.sim in
  if t.queue_len = 0 && now >= t.busy_until then begin
    (* Uncontended: process synchronously in the receive callback, just
       like the legacy path — no extra events, no reordering. *)
    process_work t item.q_work;
    t.busy_until <- now +. oc.service_interval
  end
  else begin
    enqueue_or_shed t oc item;
    if (not t.drain_armed) && t.queue_len > 0 then begin
      t.drain_armed <- true;
      Sim.schedule t.sim ~delay:(Float.max 0.0 (t.busy_until -. now)) (drain t oc)
    end;
    refresh_pressure t oc
  end

let muted t slot = Sim.now t.sim < Option.value ~default:neg_infinity (Hashtbl.find_opt t.mute_until slot)

(* The admission-controlled receive path: resource-capped total decode,
   poison quarantine, mute enforcement, then bounded enqueue. *)
let admit t (oc : overload_config) slot payload =
  t.messages_received <- t.messages_received + 1;
  if muted t slot then t.muted_drops <- t.muted_drops + 1
  else
    match Protocol.decode ~caps:oc.caps payload with
    | Error _ -> quarantine t oc slot
    | Ok
        ( Protocol.Fix_update _ | Protocol.Fix_retract _ | Protocol.Guidance_update _
        | Protocol.Pressure_update _ | Protocol.Shard_map_update _
        | Protocol.Knowledge_delta _ | Protocol.Frontier_summary _ | Protocol.Basis_update _
          ) ->
      ()
    | Ok (Protocol.Trace_upload inner) -> (
      match Wire.decode ~caps:oc.caps inner with
      | Error _ -> quarantine t oc slot
      | Ok trace ->
        offer t oc
          {
            q_slot = slot;
            q_failing = Outcome.is_failure trace.Trace.outcome;
            q_work = Trace_work { prep = Trace_store.prepare trace; recon = None };
          })
    | Ok (Protocol.Batch_upload { program_digest; basis_id; basis_check; records }) -> (
      (* [Protocol.decode ~caps] already bounded the record count and
         frame size; the batch decode enforces the total bit budget and
         per-record caps.  One bad record poisons the whole batch. *)
      match decode_batch t ~caps:(Some oc.caps) ~program_digest ~basis_id ~basis_check records with
      | Error () -> quarantine t oc slot
      | Ok works ->
        List.iter
          (fun (failing, work) ->
            offer t oc { q_slot = slot; q_failing = failing; q_work = work })
          works)
    | Ok (Protocol.Sampled_report { program_digest; report }) ->
      offer t oc
        {
          q_slot = slot;
          q_failing = Outcome.is_failure report.Softborg_trace.Sampling.outcome;
          q_work = Sampled_work { program_digest; report };
        }

let attach_pod t endpoint =
  t.endpoints <- endpoint :: t.endpoints;
  match t.config.overload with
  | None -> Transport.on_receive endpoint (handle_message t)
  | Some oc ->
    let slot = t.next_slot in
    t.next_slot <- slot + 1;
    Transport.on_receive endpoint (admit t oc slot)

(* Transport-less injection for load harnesses: one encoded frame
   enters exactly the receive path an attached pod's frame would — the
   admission-controlled one when overload protection is on.  [slot]
   plays the role of the pod attachment slot for fair-share shedding
   and quarantine accounting. *)
let inject t ~slot payload =
  match t.config.overload with
  | None -> handle_message t payload
  | Some oc -> admit t oc slot payload

(* ---- Basis announcements ----------------------------------------------- *)

(* Announce one prefix basis per program that has produced a trace with
   branch bits: pods delta their future uploads against it.  The
   announced payload is the candidate's canonical wire encoding; both
   sides decode/encode from those exact bytes, so the XOR anchors
   agree.  Digest-sorted iteration keeps basis-id assignment
   deterministic across runs. *)
let announce_bases t =
  Hashtbl.fold (fun digest _ acc -> digest :: acc) t.basis_candidates []
  |> List.sort String.compare
  |> List.iter (fun digest ->
         if not (Hashtbl.mem t.announced_basis digest) then begin
           match Hashtbl.find_opt t.basis_candidates digest with
           | None -> ()
           | Some prep ->
             let basis_id = t.next_basis_id in
             t.next_basis_id <- basis_id + 1;
             let payload = prep.Trace_store.p_encoded in
             Hashtbl.replace t.bases (digest, basis_id)
               (prep.Trace_store.p_trace, Protocol.basis_fingerprint payload);
             Hashtbl.replace t.announced_basis digest basis_id;
             t.basis_updates_sent <- t.basis_updates_sent + 1;
             Log.debug (fun m -> m "announcing basis %d for %s" basis_id digest);
             broadcast t (Protocol.Basis_update { program_digest = digest; basis_id; payload })
         end)

(* ---- Human repair lab (Wer/Cbi modes) --------------------------------- *)

let human_delay t =
  match t.config.mode with
  | Cbi -> t.config.human_fix_delay /. t.config.cbi_localization_speedup
  | Wer | Full -> t.config.human_fix_delay

let schedule_human_fix t k bucket_key kind =
  if not (Hashtbl.mem t.pending_human_fixes bucket_key) then begin
    Hashtbl.replace t.pending_human_fixes bucket_key ();
    t.human_fixes_scheduled <- t.human_fixes_scheduled + 1;
    Log.info (fun m ->
        m "human fix for %s scheduled at t=%.0f (+%.0f)" bucket_key (Sim.now t.sim)
          (human_delay t));
    (* The closure re-fetches the knowledge by digest at fire time: a
       checkpoint restore replaces the knowledge object, and the fix
       must land on whichever one is current. *)
    let digest = Knowledge.digest k in
    Sim.schedule t.sim ~delay:(human_delay t) (fun () ->
        match Hashtbl.find_opt t.programs digest with
        | None -> ()
        | Some k ->
          ignore (Knowledge.add_fix k kind);
          t.fixes_deployed <- t.fixes_deployed + 1;
          send_fix_update t k)
  end

let human_tick t k =
  (* Crashes: once a bucket has enough reports, a developer fixes it
     (deployed as a suppression patch after the delay). *)
  List.iter
    (fun (ev : Fixgen.crash_evidence) ->
      if ev.Fixgen.count >= t.config.human_fix_threshold then
        schedule_human_fix t k ev.Fixgen.bucket
          (Fixgen.Crash_suppression
             { bucket = ev.Fixgen.bucket; site = ev.Fixgen.site; crash_kind = ev.Fixgen.crash_kind }))
    (Knowledge.crash_evidence k);
  (* Deadlocks: the human adds a lock-ordering fix for the cycle. *)
  List.iter
    (fun (bucket_key, locks, count) ->
      if count >= t.config.human_fix_threshold then
        schedule_human_fix t k bucket_key (Fixgen.Deadlock_immunity locks))
    (Knowledge.deadlock_bucket_info k)

(* ---- Proof attempts ---------------------------------------------------- *)

let has_valid_proof k property =
  List.exists
    (fun (p : Prover.proof) -> p.Prover.valid && p.Prover.property = property)
    (Knowledge.proofs k)

(* The tree version counts every knowledge-changing mutation (new
   distinct path, gap proven infeasible), so "did anything change since
   the last tick?" is two integer compares — no tree walk, no frontier
   materialization. *)
let knowledge_state k = (Exec_tree.version (Knowledge.tree k), Knowledge.epoch k)

let prove_tick t k =
  let program = Knowledge.program k in
  ignore
    (Prover.close_gaps ?config:t.config.symexec_config ~cache:(Knowledge.verdict_cache k)
       ~memo:(Knowledge.gap_memo k) program (Knowledge.tree k));
  if not (has_valid_proof k Prover.Assert_safety) then begin
    match
      Prover.attempt_assert_safety ?config:t.config.symexec_config
        ~cache:(Knowledge.verdict_cache k) ~program ~tree:(Knowledge.tree k)
        ~crash_observations:
          (List.fold_left (fun acc (e : Fixgen.crash_evidence) -> acc + e.Fixgen.count) 0
             (Knowledge.crash_evidence k))
        ~epoch:(Knowledge.epoch k) ()
    with
    | Some proof ->
      Knowledge.record_proof k proof;
      t.proofs_established <- t.proofs_established + 1
    | None -> ()
  end;
  if not (has_valid_proof k Prover.Deadlock_freedom) then begin
    let deadlock_observations =
      List.fold_left (fun acc (_, _, n) -> acc + n) 0 (Knowledge.deadlock_bucket_info k)
    in
    let make_env () = Env.make ~seed:7 ~inputs:(Array.make program.Ir.n_inputs 1) () in
    match
      Prover.attempt_deadlock_freedom ~program ~tree:(Knowledge.tree k)
        ~deadlock_observations ~lock_cycles:(Knowledge.deadlock_pattern_sets k) ~make_env
        ~hooks:(Knowledge.current_hooks k) ~epoch:(Knowledge.epoch k) ()
    with
    | Some proof ->
      Knowledge.record_proof k proof;
      t.proofs_established <- t.proofs_established + 1
    | None -> ()
  end

(* ---- Guidance ----------------------------------------------------------- *)

let issued_for t k =
  let digest = Knowledge.digest k in
  match Hashtbl.find_opt t.issued_guidance digest with
  | Some issued -> issued
  | None ->
    let issued = Hashtbl.create 16 in
    Hashtbl.replace t.issued_guidance digest issued;
    issued

(* Recompute the portfolio allocation of pool workers over programs
   (paper §4): each program is a task whose reward stream is the new
   distinct paths its tree gained since the last refresh.  Task ids
   are handed out in sorted-digest order on first sight, so the
   mapping is deterministic. *)
let refresh_allocation t =
  match t.pool with
  | None -> ()
  | Some pool ->
    let digests =
      Hashtbl.fold (fun digest _ acc -> digest :: acc) t.programs []
      |> List.sort String.compare
    in
    let tasks =
      List.map
        (fun digest ->
          let task =
            match Hashtbl.find_opt t.alloc_tasks digest with
            | Some task -> task
            | None ->
              t.next_alloc_task <- t.next_alloc_task + 1;
              let task = Allocate.task t.next_alloc_task in
              Hashtbl.replace t.alloc_tasks digest task;
              task
          in
          (match Hashtbl.find_opt t.programs digest with
          | None -> ()
          | Some k ->
            let paths = Exec_tree.n_distinct_paths (Knowledge.tree k) in
            let prev = Option.value ~default:0 (Hashtbl.find_opt t.last_alloc_paths digest) in
            Hashtbl.replace t.last_alloc_paths digest paths;
            Allocate.observe_reward task (float_of_int (paths - prev)));
          (digest, task))
        digests
    in
    if tasks <> [] then begin
      let shares =
        Allocate.allocate
          (Allocate.Mean_variance { risk_aversion = 0.5 })
          ~nodes:(Pool.size pool) (List.map snd tasks)
      in
      t.allocation <-
        List.map
          (fun (digest, task) ->
            let share =
              Option.value ~default:0 (List.assoc_opt task.Allocate.task_id shares)
            in
            (digest, share))
          tasks
    end

(* Speculative solve budget for one program: roughly [3 ×] its worker
   share — each worker is worth a few queued queries — and at least
   one, so no program's planning starves. *)
let speculate_for t k =
  match t.pool with
  | None -> None
  | Some _ ->
    let share =
      Option.value ~default:1 (List.assoc_opt (Knowledge.digest k) t.allocation)
    in
    Some (3 * max 1 share)

let guidance_tick t k =
  if t.endpoints <> [] then begin
    let issued = issued_for t k in
    let result =
      Guidance.plan ?config:t.config.symexec_config ~cache:(Knowledge.verdict_cache k)
        ~max_directives:t.config.guidance_max
        ~exclude:issued ~memo:(Knowledge.gap_memo k) ?pool:t.pool
        ?speculate:(speculate_for t k) (Knowledge.program k) (Knowledge.tree k)
    in
    (* Remember what was handed out (and what came back Unknown) so the
       next tick does not redo the symbolic work. *)
    List.iter
      (fun directive ->
        match directive with
        | Guidance.Cover_direction { site; direction; _ } ->
          Hashtbl.replace issued (site, direction) ()
        | Guidance.Probe_schedules _ -> ())
      result.Guidance.directives;
    if result.Guidance.gaps_unknown > 0 then
      Exec_tree.iter_open_dirs (Knowledge.tree k) (fun site missing ->
          Hashtbl.replace issued (site, missing) ());
    if result.Guidance.directives <> [] then begin
      (* Round-robin over pods: steering only needs *some* instances. *)
      let target =
        List.nth t.endpoints (t.next_guidance_target mod List.length t.endpoints)
      in
      t.next_guidance_target <- t.next_guidance_target + 1;
      Transport.send target
        (Protocol.encode
           (Protocol.Guidance_update
              {
                program_digest = Knowledge.digest k;
                directives = result.Guidance.directives;
                pressure = t.pressure_level;
              }));
      t.guidance_sent <- t.guidance_sent + List.length result.Guidance.directives
    end
  end

(* ---- The analysis tick --------------------------------------------------- *)

let tick t =
  t.analysis_ticks <- t.analysis_ticks + 1;
  if t.config.announce_basis then announce_bases t;
  (* Periodically forget the issued-guidance memory: directives can be
     lost with their pod, and a stale exclusion must not shadow a gap
     forever. *)
  if t.analysis_ticks mod 10 = 0 then Hashtbl.reset t.issued_guidance;
  if t.config.mode = Full then refresh_allocation t;
  Hashtbl.iter
    (fun digest k ->
      match t.config.mode with
      | Full ->
        (* Federation shards run with [synthesize = false]: proposing
           fixes from a shard's partial evidence would mint ids and
           epochs that diverge from the coordinator's, and only the
           merged knowledge sees whole-program evidence. *)
        if t.config.synthesize then begin
          (* Run the canary health court before proposing new fixes, so
             a fix synthesized this tick starts its canary hold at the
             next tick, never judged on zero evidence. *)
          let promoted, condemned = Knowledge.lifecycle_tick k in
          if condemned <> [] then begin
            t.fix_retractions <- t.fix_retractions + List.length condemned;
            List.iter
              (fun (fix_id, reason) ->
                Log.warn (fun m ->
                    m "retracting fix %d for %s: %s" fix_id (Knowledge.digest k) reason))
              condemned
          end;
          if promoted <> [] then t.fix_promotions <- t.fix_promotions + List.length promoted;
          (* One downstream push per verdict batch: a retraction frame
             already carries the surviving fix set, so promotion in the
             same tick rides along. *)
          if condemned <> [] then send_fix_retract t k
          else if promoted <> [] then send_fix_update t k;
          let new_fixes = Knowledge.analyze ?symexec_config:t.config.symexec_config k in
          let deployable = List.filter Fixgen.is_deployable new_fixes in
          if deployable <> [] then begin
            t.fixes_deployed <- t.fixes_deployed + List.length deployable;
            send_fix_update t k
          end
        end;
        (* Guidance and proofs involve symbolic exploration: only
           re-run them when this program's knowledge changed. *)
        let state = knowledge_state k in
        let changed =
          match Hashtbl.find_opt t.proof_state digest with
          | Some previous -> previous <> state
          | None -> true
        in
        if changed then begin
          guidance_tick t k;
          if t.config.prove then prove_tick t k;
          Hashtbl.replace t.proof_state digest (knowledge_state k)
        end
      | Wer | Cbi -> human_tick t k)
    t.programs

let rec arm t =
  Sim.schedule t.sim ~delay:t.config.analysis_interval (fun () ->
      tick t;
      arm t)

let start t = arm t

(* Idempotent: the federation supervisor calls this once per shard on
   teardown and again during chaos kill/restore cycles, so a second
   call must not attempt a second [Domain.join] on the pool workers. *)
let shutdown t =
  if not t.shut_down then begin
    t.shut_down <- true;
    Option.iter Pool.shutdown t.pool
  end

let stats t =
  {
    traces_received = t.traces_received;
    messages_received = t.messages_received;
    analysis_ticks = t.analysis_ticks;
    fixes_deployed = t.fixes_deployed;
    fix_updates_sent = t.fix_updates_sent;
    guidance_sent = t.guidance_sent;
    proofs_established = t.proofs_established;
    human_fixes_scheduled = t.human_fixes_scheduled;
    checkpoints_taken = t.checkpoints_taken;
    restores_completed = t.restores_completed;
    shed_success = t.shed_success;
    shed_failure = t.shed_failure;
    quarantined_frames = t.quarantined_frames;
    pods_muted = t.pods_muted;
    muted_drops = t.muted_drops;
    pressure_updates_sent = t.pressure_updates_sent;
    peak_queue_depth = t.peak_queue_depth;
    batch_frames_received = t.batch_frames_received;
    batch_records_received = t.batch_records_received;
    basis_updates_sent = t.basis_updates_sent;
    fix_promotions = t.fix_promotions;
    fix_retractions = t.fix_retractions;
    retracts_sent = t.retracts_sent;
    quarantined_fix_traces =
      Hashtbl.fold (fun _ k acc -> acc + Knowledge.quarantined_traces k) t.programs 0;
  }

(* ---- Checkpoint / restore ---------------------------------------------- *)

module Codec = Softborg_util.Codec

let checkpoint_magic = "SBHV"
let checkpoint_version = 2

let checkpoint t =
  let w = Codec.Writer.create () in
  String.iter (fun c -> Codec.Writer.byte w (Char.code c)) checkpoint_magic;
  Codec.Writer.varint w checkpoint_version;
  Codec.Writer.varint w t.next_guidance_target;
  Codec.Writer.varint w t.traces_received;
  Codec.Writer.varint w t.messages_received;
  Codec.Writer.varint w t.analysis_ticks;
  Codec.Writer.varint w t.fixes_deployed;
  Codec.Writer.varint w t.fix_updates_sent;
  Codec.Writer.varint w t.guidance_sent;
  Codec.Writer.varint w t.proofs_established;
  Codec.Writer.varint w t.human_fixes_scheduled;
  (* Throttle state travels with the knowledge: without it a restored
     hive would re-schedule human fixes and redo issued guidance.
     Hashtable-backed tables are written sorted by key so equal hive
     states checkpoint to equal bytes. *)
  Codec.Writer.list w (Codec.Writer.bytes w)
    (Hashtbl.fold (fun key () acc -> key :: acc) t.pending_human_fixes []
    |> List.sort String.compare);
  Codec.Writer.list w
    (fun (digest, issued) ->
      Codec.Writer.bytes w digest;
      Codec.Writer.list w
        (fun (site, direction) ->
          Fixgen.write_site w site;
          Codec.Writer.bool w direction)
        (* The set has no inherent order; write it sorted so equal
           states checkpoint to equal bytes. *)
        (Hashtbl.fold (fun key () acc -> key :: acc) issued []
        |> List.sort (fun (s1, d1) (s2, d2) ->
               match Ir.site_compare s1 s2 with 0 -> Bool.compare d1 d2 | c -> c)))
    (Hashtbl.fold (fun digest issued acc -> (digest, issued) :: acc) t.issued_guidance []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b));
  Codec.Writer.list w
    (fun (digest, (tree_version, epoch)) ->
      Codec.Writer.bytes w digest;
      Codec.Writer.varint w tree_version;
      Codec.Writer.varint w epoch)
    (Hashtbl.fold (fun digest state acc -> (digest, state) :: acc) t.proof_state []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b));
  Codec.Writer.bytes w (Checkpoint.encode (knowledge_list t));
  t.checkpoints_taken <- t.checkpoints_taken + 1;
  Codec.Writer.contents w

let restore ?replay_cache t data =
  let r = Codec.Reader.of_string data in
  match
    let seen =
      String.init (String.length checkpoint_magic) (fun _ -> Char.chr (Codec.Reader.byte r))
    in
    if seen <> checkpoint_magic then Error (Printf.sprintf "bad hive checkpoint magic %S" seen)
    else
      let version = Codec.Reader.varint r in
      if version <> checkpoint_version then
        Error (Printf.sprintf "unsupported hive checkpoint version %d" version)
      else begin
        let next_guidance_target = Codec.Reader.varint r in
        let traces_received = Codec.Reader.varint r in
        let messages_received = Codec.Reader.varint r in
        let analysis_ticks = Codec.Reader.varint r in
        let fixes_deployed = Codec.Reader.varint r in
        let fix_updates_sent = Codec.Reader.varint r in
        let guidance_sent = Codec.Reader.varint r in
        let proofs_established = Codec.Reader.varint r in
        let human_fixes_scheduled = Codec.Reader.varint r in
        let pending = Codec.Reader.list r Codec.Reader.bytes in
        let issued =
          Codec.Reader.list r (fun r ->
              let digest = Codec.Reader.bytes r in
              let directives =
                Codec.Reader.list r (fun r ->
                    let site = Fixgen.read_site r in
                    let direction = Codec.Reader.bool r in
                    (site, direction))
              in
              (digest, directives))
        in
        let proof_states =
          Codec.Reader.list r (fun r ->
              let digest = Codec.Reader.bytes r in
              let tree_version = Codec.Reader.varint r in
              let epoch = Codec.Reader.varint r in
              (digest, (tree_version, epoch)))
        in
        match Checkpoint.decode ?replay_cache (Codec.Reader.bytes r) with
        | Error msg -> Error msg
        | Ok restored ->
          (* Parse fully before mutating: a malformed checkpoint leaves
             the hive untouched. *)
          t.next_guidance_target <- next_guidance_target;
          t.traces_received <- traces_received;
          t.messages_received <- messages_received;
          t.analysis_ticks <- analysis_ticks;
          t.fixes_deployed <- fixes_deployed;
          t.fix_updates_sent <- fix_updates_sent;
          t.guidance_sent <- guidance_sent;
          t.proofs_established <- proofs_established;
          t.human_fixes_scheduled <- human_fixes_scheduled;
          Hashtbl.reset t.pending_human_fixes;
          List.iter (fun key -> Hashtbl.replace t.pending_human_fixes key ()) pending;
          Hashtbl.reset t.issued_guidance;
          List.iter
            (fun (digest, directives) ->
              let set = Hashtbl.create 16 in
              List.iter (fun key -> Hashtbl.replace set key ()) directives;
              Hashtbl.replace t.issued_guidance digest set)
            issued;
          Hashtbl.reset t.proof_state;
          List.iter (fun (digest, state) -> Hashtbl.replace t.proof_state digest state) proof_states;
          (* Hashtbl.replace on an existing key keeps its position in
             iteration order, so the analysis tick visits programs in
             the same order before and after a restore.  The rollout
             config is a runtime attachment (not checkpointed) — the
             restored knowledge re-inherits this hive's. *)
          List.iter
            (fun k ->
              Knowledge.set_rollout k t.config.rollout;
              Hashtbl.replace t.programs (Knowledge.digest k) k)
            restored;
          t.restores_completed <- t.restores_completed + 1;
          Ok (List.length restored)
      end
  with
  | result -> result
  | exception Codec.Truncated -> Error "truncated hive checkpoint"
  | exception Codec.Malformed msg -> Error (Printf.sprintf "malformed hive checkpoint: %s" msg)
