module Rng = Softborg_util.Rng
module Pool = Softborg_util.Pool
module Codec = Softborg_util.Codec
module Ir = Softborg_prog.Ir
module Wire = Softborg_trace.Wire
module Trace = Softborg_trace.Trace
module Exec_tree = Softborg_tree.Exec_tree
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport

let src = Logs.Src.create "softborg.federation" ~doc:"SoftBorg hive federation"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  shard_map : Shard_map.t;
  superstep_interval : float;
  synthesize : bool;
  shard_hive : Hive.config;
  merged_hive : Hive.config;
  transport : Transport.config;
  pool_size : int;
  gap_limit : int;
}

let default_config ~n_shards () =
  let base = Hive.default_config Hive.Full in
  {
    shard_map = Shard_map.create ~n_shards ();
    superstep_interval = base.Hive.analysis_interval;
    synthesize = true;
    (* Shards never mint fixes or whole-program proofs; see the
       [create]-time override below. *)
    shard_hive = { base with Hive.synthesize = false; prove = false };
    merged_hive = base;
    transport = Transport.default_config;
    pool_size = 1;
    gap_limit = 96;
  }

type shard = {
  s_index : int;
  s_hive : Hive.t;
  s_uplink : Transport.endpoint;  (* shard side of the link to the coordinator *)
  mutable s_ends : Transport.endpoint list;  (* hive-side pod attachments *)
  mutable s_pending : string list;  (* admitted canonical payloads, newest first *)
  mutable s_next_seq : int;
}

(* One pod's view of the federation: its connection terminates at the
   router, which holds a dedicated lossy link to every shard on the
   pod's behalf.  Per-pod shard links keep the shards' per-slot
   accounting (fair-share shedding, poison quarantine, mutes) exactly
   as meaningful as with a directly attached pod. *)
type attachment = {
  pod_link : Transport.endpoint;  (* router side of the pod connection *)
  to_shard : Transport.endpoint array;  (* router side toward each shard *)
}

type shard_stats = {
  shard : int;
  hive_stats : Hive.stats;
  pending : int;
  gap_memo_hits : int;
  gap_memo_misses : int;
  verdict_cache_hits : int;
  verdict_cache_misses : int;
}

type stats = {
  supersteps : int;
  deltas_sent : int;
  deltas_committed : int;
  payloads_merged : int;
  fix_updates_sent : int;
  retracts_sent : int;
  per_shard : shard_stats list;
}

type t = {
  sim : Sim.t;
  config : config;
  map : Shard_map.t;
  rng : Rng.t;
  shards : shard array;
  merged : Hive.t;
  downlinks : Transport.endpoint array;  (* coordinator side of each uplink *)
  (* Superstep inboxes: deltas received but not yet committed, keyed by
     sequence number per shard.  Commit drains them in (shard, seq)
     order — the fixed total order of the merge. *)
  inboxes : (int, string list) Hashtbl.t array;
  next_expected : int array;
  frontier : (string * int * int) list array;
  mutable attachments : attachment list;
  published_epoch : (string, int) Hashtbl.t;
  (* Retracted ids already pushed per digest: a retraction is decided
     only here at the coordinator, and the delta against this table
     picks Fix_retract over Fix_update for the downstream frame. *)
  published_retracted : (string, int list) Hashtbl.t;
  (* (shard, digest) -> knowledge state at the last compute phase, so
     unchanged shards skip re-running symbolic gap closing. *)
  compute_state : (int * string, int * int) Hashtbl.t;
  pool : Pool.t option;
  mutable supersteps : int;
  mutable deltas_sent : int;
  mutable deltas_committed : int;
  mutable payloads_merged : int;
  mutable fix_updates_sent : int;
  mutable retracts_sent : int;
}

(* ---- Coordinator receive path ----------------------------------------- *)

let stash t payload =
  match Protocol.decode payload with
  | Ok (Protocol.Knowledge_delta { shard; seq; payloads })
    when shard >= 0 && shard < Array.length t.shards ->
    (* The transport already suppresses link-level duplicates; the seq
       guard additionally drops a delta re-sent after a shard restore
       rewound its counter. *)
    if seq >= t.next_expected.(shard) && not (Hashtbl.mem t.inboxes.(shard) seq) then
      Hashtbl.replace t.inboxes.(shard) seq payloads
  | Ok (Protocol.Frontier_summary { shard; programs })
    when shard >= 0 && shard < Array.length t.shards ->
    t.frontier.(shard) <- programs
  | Ok _ | Error _ -> ()

let create ~config ~sim ~rng () =
  let n = Shard_map.n_shards config.shard_map in
  let shard_config = { config.shard_hive with Hive.synthesize = false } in
  let uplinks =
    Array.init n (fun _ ->
        Transport.endpoint_pair ~config:config.transport ~sim ~rng:(Rng.split rng) ())
  in
  let shards =
    Array.init n (fun i ->
        {
          s_index = i;
          s_hive = Hive.create ~config:shard_config ~sim ();
          s_uplink = fst uplinks.(i);
          s_ends = [];
          s_pending = [];
          s_next_seq = 0;
        })
  in
  Array.iter
    (fun s -> Hive.set_ingest_tap s.s_hive (fun payload -> s.s_pending <- payload :: s.s_pending))
    shards;
  let t =
    {
      sim;
      config;
      map = config.shard_map;
      rng;
      shards;
      merged = Hive.create ~config:config.merged_hive ~sim ();
      downlinks = Array.map snd uplinks;
      inboxes = Array.init n (fun _ -> Hashtbl.create 8);
      next_expected = Array.make n 0;
      frontier = Array.make n [];
      attachments = [];
      published_epoch = Hashtbl.create 4;
      published_retracted = Hashtbl.create 4;
      compute_state = Hashtbl.create 8;
      pool = (if config.pool_size > 1 then Some (Pool.create ~size:config.pool_size) else None);
      supersteps = 0;
      deltas_sent = 0;
      deltas_committed = 0;
      payloads_merged = 0;
      fix_updates_sent = 0;
      retracts_sent = 0;
    }
  in
  Array.iter (fun endpoint -> Transport.on_receive endpoint (stash t)) t.downlinks;
  t

let n_shards t = Array.length t.shards
let merged t = t.merged
let shard_hive t i = t.shards.(i).s_hive
let map t = t.map

let register_program t program =
  Array.iter (fun s -> ignore (Hive.register_program s.s_hive program)) t.shards;
  Hive.register_program t.merged program

(* ---- Pod routing -------------------------------------------------------- *)

let relay_down pod_link payload =
  match Protocol.decode payload with
  | Ok
      ( Protocol.Fix_update _ | Protocol.Fix_retract _ | Protocol.Guidance_update _
      | Protocol.Pressure_update _ | Protocol.Basis_update _ ) ->
    Transport.send pod_link payload
  | Ok _ | Error _ -> ()

let route t a payload =
  let owner =
    match Protocol.decode payload with
    | Ok (Protocol.Trace_upload inner) -> (
      match Wire.decode inner with
      | Ok trace -> Shard_map.owner_of_bits t.map trace.Trace.bits
      | Error _ ->
        (* Malformed inner frame: still deliver it (deterministically,
           by frame content) so the owning shard's poison quarantine
           sees it — the router must not silently launder poison. *)
        Shard_map.owner_of_digest t.map payload)
    | Ok (Protocol.Sampled_report { program_digest; _ }) ->
      Shard_map.owner_of_digest t.map program_digest
    | Ok (Protocol.Batch_upload { program_digest; _ }) ->
      (* A batch's records may cover many branch prefixes, and a delta
         record is only decodable next to its anchor — the whole frame
         goes to one shard, keyed by program. *)
      Shard_map.owner_of_digest t.map program_digest
    | Ok _ -> -1  (* downstream echoes stop at the router *)
    | Error _ -> Shard_map.owner_of_digest t.map payload
  in
  if owner >= 0 then Transport.send a.to_shard.(owner) payload

let attach_pod t pod_link =
  let to_shard =
    Array.map
      (fun s ->
        let router_end, shard_end =
          Transport.endpoint_pair ~config:t.config.transport ~sim:t.sim ~rng:(Rng.split t.rng)
            ()
        in
        Hive.attach_pod s.s_hive shard_end;
        s.s_ends <- shard_end :: s.s_ends;
        Transport.on_receive router_end (relay_down pod_link);
        router_end)
      t.shards
  in
  let a = { pod_link; to_shard } in
  t.attachments <- t.attachments @ [ a ];
  Transport.on_receive pod_link (route t a);
  (* Tell the pod which routing table its uploads will travel under;
     current pods ignore the frame, but it keeps the map on the wire
     (and under chaos) rather than implicit in router state. *)
  Transport.send pod_link (Protocol.encode (Protocol.Shard_map_update { map = t.map }))

(* ---- The superstep ------------------------------------------------------ *)

(* Compute phase: close symbolic gaps on every shard knowledge that
   changed since last time.  Jobs touch disjoint per-shard state and
   never the simulator, so they parallelize across the worker pool;
   verdicts land in each knowledge's gap memo, which the shard's own
   guidance tick then reads for free. *)
let compute_phase t =
  let jobs =
    Array.to_list t.shards
    |> List.concat_map (fun s ->
           Hive.knowledge_list s.s_hive
           |> List.filter_map (fun k ->
                  let key = (s.s_index, Knowledge.digest k) in
                  let state = (Exec_tree.version (Knowledge.tree k), Knowledge.epoch k) in
                  if Hashtbl.find_opt t.compute_state key = Some state then None
                  else Some (key, k)))
  in
  let close ((key, k) : (int * string) * Knowledge.t) =
    let shard, digest = key in
    (* Each shard closes only the verdicts it owns (see
       {!Shard_map.owner_of_verdict}): a gap verdict is keyed by
       (site, direction), not by the prefix it appears under, and hot
       sites recur in every shard's subtree — per-verdict ownership is
       what partitions the solver work instead of replicating it. *)
    let owned (gap : Exec_tree.gap) =
      Shard_map.owner_of_verdict t.map ~program:digest
        ~thread:gap.Exec_tree.site.Ir.thread ~pc:gap.Exec_tree.site.Ir.pc
        ~direction:gap.Exec_tree.missing
      = shard
    in
    ignore
      (Prover.close_gaps ?config:t.config.shard_hive.Hive.symexec_config
         ~cache:(Knowledge.verdict_cache k) ~memo:(Knowledge.gap_memo k) ~owned
         ~limit:t.config.gap_limit (Knowledge.program k) (Knowledge.tree k));
    (key, (Exec_tree.version (Knowledge.tree k), Knowledge.epoch k))
  in
  let results =
    match t.pool with Some pool -> Pool.map pool close jobs | None -> List.map close jobs
  in
  List.iter (fun (key, state) -> Hashtbl.replace t.compute_state key state) results

let frontier_of s =
  Hive.knowledge_list s.s_hive
  |> List.map (fun k ->
         ( Knowledge.digest k,
           Exec_tree.n_distinct_paths (Knowledge.tree k),
           Knowledge.traces_ingested k ))
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let flush t =
  Array.iter
    (fun s ->
      if s.s_pending <> [] then begin
        let payloads = List.rev s.s_pending in
        s.s_pending <- [];
        let seq = s.s_next_seq in
        s.s_next_seq <- seq + 1;
        Transport.send s.s_uplink
          (Protocol.encode (Protocol.Knowledge_delta { shard = s.s_index; seq; payloads }));
        Transport.send s.s_uplink
          (Protocol.encode
             (Protocol.Frontier_summary { shard = s.s_index; programs = frontier_of s }));
        t.deltas_sent <- t.deltas_sent + 1;
        Log.debug (fun m ->
            m "shard %d delta seq=%d payloads=%d" s.s_index seq (List.length payloads))
      end)
    t.shards

let commit t =
  let merged_now = ref 0 in
  Array.iteri
    (fun i inbox ->
      let rec drain () =
        match Hashtbl.find_opt inbox t.next_expected.(i) with
        | None -> ()
        | Some payloads ->
          Hashtbl.remove inbox t.next_expected.(i);
          t.next_expected.(i) <- t.next_expected.(i) + 1;
          t.deltas_committed <- t.deltas_committed + 1;
          List.iter
            (fun payload ->
              incr merged_now;
              Hive.ingest_payload t.merged payload)
            payloads;
          drain ()
      in
      drain ())
    t.inboxes;
  t.payloads_merged <- t.payloads_merged + !merged_now;
  !merged_now

(* Publish fixes the merged analysis deployed — or retracted — since
   the last superstep: shards adopt the full set plus the retracted ids
   (so their replay hooks and ingest quarantine for any epoch match the
   coordinator's), pods get the deployable subset exactly as a
   standalone hive would send it.  Retraction is decided only here at
   the coordinator; shards and pods learn of it in superstep order. *)
let publish t =
  Hive.knowledge_list t.merged
  |> List.sort (fun a b -> String.compare (Knowledge.digest a) (Knowledge.digest b))
  |> List.iter (fun k ->
         let digest = Knowledge.digest k in
         let epoch = Knowledge.epoch k in
         let prev = Option.value ~default:0 (Hashtbl.find_opt t.published_epoch digest) in
         if epoch > prev then begin
           Hashtbl.replace t.published_epoch digest epoch;
           let fixes = Knowledge.fixes k in
           let retracted = Knowledge.retracted_ids k in
           let prev_retracted =
             Option.value ~default:[] (Hashtbl.find_opt t.published_retracted digest)
           in
           Hashtbl.replace t.published_retracted digest retracted;
           Array.iter
             (fun s -> Hive.adopt_fixes s.s_hive ~digest ~fixes ~epoch ~retracted)
             t.shards;
           let deployable = List.filter Fixgen.is_deployable (Knowledge.live_fixes k) in
           let canary = Knowledge.canary_ids k in
           let canary_mils = Knowledge.canary_mils k in
           let payload =
             if retracted <> prev_retracted then begin
               t.retracts_sent <- t.retracts_sent + 1;
               Protocol.encode
                 (Protocol.Fix_retract
                    {
                      program_digest = digest;
                      epoch;
                      retracted;
                      fixes = deployable;
                      canary;
                      canary_mils;
                      pressure = 0;
                    })
             end
             else
               Protocol.encode
                 (Protocol.Fix_update
                    {
                      program_digest = digest;
                      epoch;
                      fixes = deployable;
                      canary;
                      canary_mils;
                      pressure = 0;
                    })
           in
           List.iter (fun a -> Transport.send a.pod_link payload) t.attachments;
           t.fix_updates_sent <- t.fix_updates_sent + 1
         end)

let superstep t =
  t.supersteps <- t.supersteps + 1;
  compute_phase t;
  flush t;
  ignore (commit t);
  if t.config.synthesize then begin
    Hive.tick t.merged;
    publish t
  end

let rec arm t =
  Sim.schedule t.sim ~delay:t.config.superstep_interval (fun () ->
      superstep t;
      arm t)

let start t =
  Array.iter (fun s -> Hive.start s.s_hive) t.shards;
  arm t

let shutdown t =
  Array.iter (fun s -> Hive.shutdown s.s_hive) t.shards;
  Hive.shutdown t.merged;
  Option.iter Pool.shutdown t.pool

(* ---- Observability ------------------------------------------------------ *)

let sum_cache f s =
  List.fold_left (fun acc k -> acc + f k) 0 (Hive.knowledge_list s.s_hive)

let stats t =
  {
    supersteps = t.supersteps;
    deltas_sent = t.deltas_sent;
    deltas_committed = t.deltas_committed;
    payloads_merged = t.payloads_merged;
    fix_updates_sent = t.fix_updates_sent;
    retracts_sent = t.retracts_sent;
    per_shard =
      Array.to_list t.shards
      |> List.map (fun s ->
             {
               shard = s.s_index;
               hive_stats = Hive.stats s.s_hive;
               pending = List.length s.s_pending;
               gap_memo_hits = sum_cache (fun k -> Gap_memo.hits (Knowledge.gap_memo k)) s;
               gap_memo_misses = sum_cache (fun k -> Gap_memo.misses (Knowledge.gap_memo k)) s;
               verdict_cache_hits =
                 sum_cache
                   (fun k -> Softborg_solver.Verdict_cache.hits (Knowledge.verdict_cache k))
                   s;
               verdict_cache_misses =
                 sum_cache
                   (fun k -> Softborg_solver.Verdict_cache.misses (Knowledge.verdict_cache k))
                   s;
             });
  }

let frontier t shard = t.frontier.(shard)

let links t =
  let endpoints =
    List.concat_map (fun a -> a.pod_link :: Array.to_list a.to_shard) t.attachments
    @ Array.to_list (Array.map (fun s -> s.s_uplink) t.shards)
    @ List.concat_map (fun s -> s.s_ends) (Array.to_list t.shards)
    @ Array.to_list t.downlinks
  in
  List.filter_map Transport.out_link endpoints

(* ---- Shard checkpoint / restore ----------------------------------------- *)

let checkpoint_magic = "SBFS"
let checkpoint_version = 1

(* A shard checkpoint wraps the hive checkpoint with the federation's
   shard-local transfer state (unsent pending payloads and the delta
   sequence counter), so a crash-restore cycle resumes exchange without
   losing admitted-but-unflushed work that the checkpoint saw. *)
let checkpoint_shard t i =
  let s = t.shards.(i) in
  let w = Codec.Writer.create () in
  String.iter (fun c -> Codec.Writer.byte w (Char.code c)) checkpoint_magic;
  Codec.Writer.varint w checkpoint_version;
  Codec.Writer.varint w s.s_next_seq;
  Codec.Writer.list w (Codec.Writer.bytes w) (List.rev s.s_pending);
  Codec.Writer.bytes w (Hive.checkpoint s.s_hive);
  Codec.Writer.contents w

let restore_shard t i data =
  let s = t.shards.(i) in
  let r = Codec.Reader.of_string data in
  match
    let seen =
      String.init (String.length checkpoint_magic) (fun _ -> Char.chr (Codec.Reader.byte r))
    in
    if seen <> checkpoint_magic then Error (Printf.sprintf "bad shard checkpoint magic %S" seen)
    else
      let version = Codec.Reader.varint r in
      if version <> checkpoint_version then
        Error (Printf.sprintf "unsupported shard checkpoint version %d" version)
      else
        let next_seq = Codec.Reader.varint r in
        let pending = Codec.Reader.list r Codec.Reader.bytes in
        match Hive.restore s.s_hive (Codec.Reader.bytes r) with
        | Error _ as e -> e
        | Ok n ->
          (* Never rewind the sequence counter: the coordinator has
             already committed (or holds) deltas up to the live value,
             and a reused seq would be dropped as a duplicate. *)
          s.s_next_seq <- max s.s_next_seq next_seq;
          s.s_pending <- List.rev pending;
          (* Catch the restored knowledge up with fixes published (and
             retracted) after the checkpoint was taken (no-op when none
             were — adoption is epoch-monotonic). *)
          List.iter
            (fun k ->
              Hive.adopt_fixes s.s_hive ~digest:(Knowledge.digest k)
                ~fixes:(Knowledge.fixes k) ~epoch:(Knowledge.epoch k)
                ~retracted:(Knowledge.retracted_ids k))
            (Hive.knowledge_list t.merged);
          Ok n
  with
  | result -> result
  | exception Codec.Truncated -> Error "truncated shard checkpoint"
  | exception Codec.Malformed msg -> Error (Printf.sprintf "malformed shard checkpoint: %s" msg)
