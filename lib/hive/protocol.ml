module Codec = Softborg_util.Codec
module Ir = Softborg_prog.Ir
module Sampling = Softborg_trace.Sampling
module Wire = Softborg_trace.Wire

type message =
  | Trace_upload of string
  | Sampled_report of { program_digest : string; report : Sampling.t }
  | Fix_update of {
      program_digest : string;
      epoch : int;
      fixes : Fixgen.fix list;
      canary : int list;
      canary_mils : int;
      pressure : int;
    }
  | Fix_retract of {
      program_digest : string;
      epoch : int;
      retracted : int list;
      fixes : Fixgen.fix list;
      canary : int list;
      canary_mils : int;
      pressure : int;
    }
  | Guidance_update of {
      program_digest : string;
      directives : Guidance.directive list;
      pressure : int;
    }
  | Pressure_update of { level : int }
  | Shard_map_update of { map : Shard_map.t }
  | Knowledge_delta of { shard : int; seq : int; payloads : string list }
  | Frontier_summary of { shard : int; programs : (string * int * int) list }
  | Batch_upload of {
      program_digest : string;
      basis_id : int;
      basis_check : int;
      records : string list;
    }
  | Basis_update of { program_digest : string; basis_id : int; payload : string }

(* FNV-1a over the basis payload bytes, masked non-negative so it
   travels as a plain varint.  Pods echo it in every delta batch; the
   hive refuses to XOR-decode against a basis whose fingerprint
   disagrees (a stale or colliding basis id would silently corrupt
   every decoded bit-vector otherwise). *)
let basis_fingerprint s =
  let fnv_prime = 0x100000001b3 in
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime land max_int)
    s;
  !h

let message_name = function
  | Trace_upload _ -> "trace-upload"
  | Sampled_report _ -> "sampled-report"
  | Fix_update _ -> "fix-update"
  | Fix_retract _ -> "fix-retract"
  | Guidance_update _ -> "guidance-update"
  | Pressure_update _ -> "pressure-update"
  | Shard_map_update _ -> "shard-map-update"
  | Knowledge_delta _ -> "knowledge-delta"
  | Frontier_summary _ -> "frontier-summary"
  | Batch_upload _ -> "batch-upload"
  | Basis_update _ -> "basis-update"

let pressure_of = function
  | Fix_update { pressure; _ } | Fix_retract { pressure; _ } | Guidance_update { pressure; _ }
    ->
    Some pressure
  | Pressure_update { level } -> Some level
  | Trace_upload _ | Sampled_report _ | Shard_map_update _ | Knowledge_delta _
  | Frontier_summary _ | Batch_upload _ | Basis_update _ ->
    None

let write_sampled w (report : Sampling.t) =
  Codec.Writer.varint w report.Sampling.rate;
  Codec.Writer.varint w report.Sampling.observed;
  Codec.Writer.varint w report.Sampling.total;
  Codec.Writer.list w
    (fun ((p : Sampling.predicate), count) ->
      Codec.Writer.varint w p.Sampling.site.Ir.thread;
      Codec.Writer.varint w p.Sampling.site.Ir.pc;
      Codec.Writer.bool w p.Sampling.direction;
      Codec.Writer.varint w count)
    report.Sampling.counts;
  Wire.encode_outcome w report.Sampling.outcome

let read_sampled ?caps r =
  let rate = Codec.Reader.varint r in
  let observed = Codec.Reader.varint r in
  let total = Codec.Reader.varint r in
  let counts =
    Codec.Reader.list r (fun r ->
        let thread = Codec.Reader.varint r in
        let pc = Codec.Reader.varint r in
        let direction = Codec.Reader.bool r in
        let count = Codec.Reader.varint r in
        ({ Sampling.site = { Ir.thread; pc }; direction }, count))
  in
  (match caps with
  | Some c when List.length counts > c.Wire.max_predicates ->
    raise
      (Codec.Malformed
         (Printf.sprintf "predicate rows %d exceed cap %d" (List.length counts)
            c.Wire.max_predicates))
  | _ -> ());
  let outcome = Wire.decode_outcome ?caps r in
  { Sampling.rate; counts; observed; total; outcome }

let encode message =
  let w = Codec.Writer.create () in
  (match message with
  | Trace_upload payload ->
    Codec.Writer.byte w 0;
    Codec.Writer.bytes w payload
  | Sampled_report { program_digest; report } ->
    Codec.Writer.byte w 1;
    Codec.Writer.bytes w program_digest;
    write_sampled w report
  | Fix_update { program_digest; epoch; fixes; canary; canary_mils; pressure } ->
    Codec.Writer.byte w 2;
    Codec.Writer.bytes w program_digest;
    Codec.Writer.varint w epoch;
    Codec.Writer.varint w pressure;
    Codec.Writer.list w (Fixgen.write_fix w) fixes;
    Codec.Writer.list w (Codec.Writer.varint w) canary;
    Codec.Writer.varint w canary_mils
  | Fix_retract { program_digest; epoch; retracted; fixes; canary; canary_mils; pressure } ->
    Codec.Writer.byte w 10;
    Codec.Writer.bytes w program_digest;
    Codec.Writer.varint w epoch;
    Codec.Writer.varint w pressure;
    Codec.Writer.list w (Codec.Writer.varint w) retracted;
    Codec.Writer.list w (Fixgen.write_fix w) fixes;
    Codec.Writer.list w (Codec.Writer.varint w) canary;
    Codec.Writer.varint w canary_mils
  | Guidance_update { program_digest; directives; pressure } ->
    Codec.Writer.byte w 3;
    Codec.Writer.bytes w program_digest;
    Codec.Writer.varint w pressure;
    Codec.Writer.list w (Guidance.write_directive w) directives
  | Pressure_update { level } ->
    Codec.Writer.byte w 4;
    Codec.Writer.varint w level
  | Shard_map_update { map } ->
    Codec.Writer.byte w 5;
    Shard_map.write w map
  | Knowledge_delta { shard; seq; payloads } ->
    Codec.Writer.byte w 6;
    Codec.Writer.varint w shard;
    Codec.Writer.varint w seq;
    Codec.Writer.list w (Codec.Writer.bytes w) payloads
  | Frontier_summary { shard; programs } ->
    Codec.Writer.byte w 7;
    Codec.Writer.varint w shard;
    Codec.Writer.list w
      (fun (digest, paths, traces) ->
        Codec.Writer.bytes w digest;
        Codec.Writer.varint w paths;
        Codec.Writer.varint w traces)
      programs
  | Batch_upload { program_digest; basis_id; basis_check; records } ->
    Codec.Writer.byte w 8;
    Codec.Writer.bytes w program_digest;
    Codec.Writer.varint w basis_id;
    Codec.Writer.varint w basis_check;
    Codec.Writer.list w (Codec.Writer.bytes w) records
  | Basis_update { program_digest; basis_id; payload } ->
    Codec.Writer.byte w 9;
    Codec.Writer.bytes w program_digest;
    Codec.Writer.varint w basis_id;
    Codec.Writer.bytes w payload);
  Codec.Writer.contents w

(* Inter-hive frames share the pod-facing row cap: a Knowledge_delta's
   payload count (and a Frontier_summary's program rows) are bounded
   like sampled-report predicate rows, so a poison frame on the uplink
   cannot force unbounded allocation either. *)
let check_rows ?caps ~what n =
  match caps with
  | Some c when n > c.Wire.max_predicates ->
    raise (Codec.Malformed (Printf.sprintf "%s %d exceed cap %d" what n c.Wire.max_predicates))
  | _ -> ()

let decode ?caps s =
  match
    (match caps with
    | Some c when String.length s > c.Wire.max_message_bytes ->
      raise
        (Codec.Malformed
           (Printf.sprintf "frame of %d bytes exceeds cap %d" (String.length s)
              c.Wire.max_message_bytes))
    | _ -> ());
    let r = Codec.Reader.of_string s in
    match Codec.Reader.byte r with
    | 0 -> Trace_upload (Codec.Reader.bytes r)
    | 1 ->
      let program_digest = Codec.Reader.bytes r in
      let report = read_sampled ?caps r in
      Sampled_report { program_digest; report }
    | 2 ->
      let program_digest = Codec.Reader.bytes r in
      let epoch = Codec.Reader.varint r in
      let pressure = Codec.Reader.varint r in
      let fixes = Codec.Reader.list r Fixgen.read_fix in
      let canary = Codec.Reader.list r Codec.Reader.varint in
      check_rows ?caps ~what:"canary ids" (List.length canary);
      let canary_mils = Codec.Reader.varint r in
      Fix_update { program_digest; epoch; fixes; canary; canary_mils; pressure }
    | 3 ->
      let program_digest = Codec.Reader.bytes r in
      let pressure = Codec.Reader.varint r in
      let directives = Codec.Reader.list r Guidance.read_directive in
      Guidance_update { program_digest; directives; pressure }
    | 4 -> Pressure_update { level = Codec.Reader.varint r }
    | 5 -> Shard_map_update { map = Shard_map.read r }
    | 6 ->
      let shard = Codec.Reader.varint r in
      let seq = Codec.Reader.varint r in
      let payloads = Codec.Reader.list r Codec.Reader.bytes in
      check_rows ?caps ~what:"delta payloads" (List.length payloads);
      Knowledge_delta { shard; seq; payloads }
    | 7 ->
      let shard = Codec.Reader.varint r in
      let programs =
        Codec.Reader.list r (fun r ->
            let digest = Codec.Reader.bytes r in
            let paths = Codec.Reader.varint r in
            let traces = Codec.Reader.varint r in
            (digest, paths, traces))
      in
      check_rows ?caps ~what:"frontier rows" (List.length programs);
      Frontier_summary { shard; programs }
    | 8 ->
      let program_digest = Codec.Reader.bytes r in
      let basis_id = Codec.Reader.varint r in
      let basis_check = Codec.Reader.varint r in
      let records = Codec.Reader.list r Codec.Reader.bytes in
      (match caps with
      | Some c when List.length records > c.Wire.max_batch_records ->
        raise
          (Codec.Malformed
             (Printf.sprintf "batch records %d exceed cap %d" (List.length records)
                c.Wire.max_batch_records))
      | _ -> ());
      Batch_upload { program_digest; basis_id; basis_check; records }
    | 9 ->
      let program_digest = Codec.Reader.bytes r in
      let basis_id = Codec.Reader.varint r in
      let payload = Codec.Reader.bytes r in
      Basis_update { program_digest; basis_id; payload }
    | 10 ->
      let program_digest = Codec.Reader.bytes r in
      let epoch = Codec.Reader.varint r in
      let pressure = Codec.Reader.varint r in
      let retracted = Codec.Reader.list r Codec.Reader.varint in
      check_rows ?caps ~what:"retracted ids" (List.length retracted);
      let fixes = Codec.Reader.list r Fixgen.read_fix in
      let canary = Codec.Reader.list r Codec.Reader.varint in
      check_rows ?caps ~what:"canary ids" (List.length canary);
      let canary_mils = Codec.Reader.varint r in
      Fix_retract { program_digest; epoch; retracted; fixes; canary; canary_mils; pressure }
    | n -> raise (Codec.Malformed (Printf.sprintf "message tag %d" n))
  with
  | message -> Ok message
  | exception Codec.Truncated -> Error "truncated message"
  | exception Codec.Malformed msg -> Error msg
