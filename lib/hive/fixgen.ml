module Ir = Softborg_prog.Ir
module Ir_codec = Softborg_prog.Ir_codec
module Corpus_bench = Softborg_corpus.Corpus_bench
module Outcome = Softborg_exec.Outcome
module Path_cond = Softborg_solver.Path_cond
module Codec = Softborg_util.Codec
module Sym_exec = Softborg_symexec.Sym_exec
module Consistency = Softborg_symexec.Consistency

type kind =
  | Deadlock_immunity of int list
  | Input_guard of {
      bucket : string;
      condition : Path_cond.t;
      site : Ir.site;
      crash_kind : Outcome.crash_kind;
    }
  | Crash_suppression of { bucket : string; site : Ir.site; crash_kind : Outcome.crash_kind }
  | Patch_candidate of { bucket : string; site : Ir.site; description : string }

type fix = {
  id : int;
  epoch : int;
  kind : kind;
}

let is_deployable fix =
  match fix.kind with
  | Deadlock_immunity _ | Input_guard _ | Crash_suppression _ -> true
  | Patch_candidate _ -> false

let kind_name = function
  | Deadlock_immunity _ -> "deadlock-immunity"
  | Input_guard _ -> "input-guard"
  | Crash_suppression _ -> "crash-suppression"
  | Patch_candidate _ -> "patch-candidate"

let pp fmt fix =
  match fix.kind with
  | Deadlock_immunity locks ->
    Format.fprintf fmt "fix#%d@e%d immunity{%s}" fix.id fix.epoch
      (String.concat "," (List.map string_of_int locks))
  | Input_guard { bucket; condition; _ } ->
    Format.fprintf fmt "fix#%d@e%d guard[%s]{%a}" fix.id fix.epoch bucket Path_cond.pp condition
  | Crash_suppression { bucket; site; _ } ->
    Format.fprintf fmt "fix#%d@e%d suppress[%s]@%a" fix.id fix.epoch bucket Ir.pp_site site
  | Patch_candidate { bucket; site; description } ->
    Format.fprintf fmt "fix#%d@e%d candidate[%s]@%a: %s" fix.id fix.epoch bucket Ir.pp_site
      site description

type crash_evidence = {
  site : Ir.site;
  crash_kind : Outcome.crash_kind;
  bucket : string;
  count : int;
}

(* Fix ids continue from the highest id already deployed on the same
   knowledge, not from a process-global counter: two hives proposing
   over equal evidence and equal existing fixes must mint equal ids,
   or a federated merge could never be byte-identical to the
   single-hive baseline. *)
let next_id_over existing = 1 + List.fold_left (fun m fix -> max m fix.id) 0 existing

let covers_deadlock existing locks =
  List.exists
    (fun fix -> match fix.kind with Deadlock_immunity l -> l = locks | _ -> false)
    existing

let covers_bucket existing bucket =
  List.exists
    (fun fix ->
      match fix.kind with
      | Input_guard g -> String.equal g.bucket bucket
      | Crash_suppression s -> String.equal s.bucket bucket
      | Deadlock_immunity _ | Patch_candidate _ -> false)
    existing

let has_candidate existing bucket =
  List.exists
    (fun fix ->
      match fix.kind with
      | Patch_candidate c -> String.equal c.bucket bucket
      | Deadlock_immunity _ | Input_guard _ | Crash_suppression _ -> false)
    existing

(* An input guard is only usable by a pod if it speaks about real
   program inputs (slots below n_inputs); syscall symbols are not
   observable before the run. *)
let input_only_condition ~n_inputs condition =
  condition <> []
  && List.for_all (fun i -> i < n_inputs) (Path_cond.inputs_used condition)

(* Find a feasible symbolic crash path matching the evidence, to derive
   an input guard from its path condition. *)
let guard_condition ?symexec_config ~program evidence =
  if Array.length program.Ir.threads > 1 then None
  else
    let report = Sym_exec.explore ?config:symexec_config program Consistency.Strict in
    List.find_map
      (fun (p : Sym_exec.path) ->
        match (p.Sym_exec.outcome, p.Sym_exec.solver_verdict) with
        | Sym_exec.Crashed { site; kind; _ }, `Sat
          when Ir.site_equal site evidence.site && kind = evidence.crash_kind ->
          if input_only_condition ~n_inputs:program.Ir.n_inputs p.Sym_exec.condition then
            Some p.Sym_exec.condition
          else None
        | _ -> None)
      report.Sym_exec.paths

let propose ?symexec_config ~program ~deadlock_patterns ~crashes ~existing ~next_epoch () =
  let fixes = ref [] in
  let next_id = ref (next_id_over existing) in
  let emit kind =
    let fix = { id = !next_id; epoch = next_epoch; kind } in
    incr next_id;
    fixes := fix :: !fixes
  in
  List.iter
    (fun locks ->
      let locks = List.sort_uniq Int.compare locks in
      if not (covers_deadlock existing locks) then emit (Deadlock_immunity locks))
    deadlock_patterns;
  List.iter
    (fun evidence ->
      if not (covers_bucket existing evidence.bucket) then begin
        (match guard_condition ?symexec_config ~program evidence with
        | Some condition ->
          emit
            (Input_guard
               {
                 bucket = evidence.bucket;
                 condition;
                 site = evidence.site;
                 crash_kind = evidence.crash_kind;
               })
        | None ->
          emit
            (Crash_suppression
               { bucket = evidence.bucket; site = evidence.site; crash_kind = evidence.crash_kind }));
        if not (has_candidate existing evidence.bucket) then
          emit
            (Patch_candidate
               {
                 bucket = evidence.bucket;
                 site = evidence.site;
                 description =
                   Printf.sprintf "handle %s at %s (seen %d times)"
                     (Outcome.crash_kind_name evidence.crash_kind)
                     (Format.asprintf "%a" Ir.pp_site evidence.site)
                     evidence.count;
               })
      end)
    crashes;
  List.rev !fixes

module Interp = Softborg_exec.Interp
module Immunity = Softborg_conc.Immunity

let runtime_hooks ?epoch fixes =
  let in_force fix = match epoch with None -> true | Some e -> fix.epoch <= e in
  let patterns =
    List.filter_map
      (fun fix ->
        match fix.kind with Deadlock_immunity locks when in_force fix -> Some locks | _ -> None)
      fixes
  in
  let suppressions =
    List.filter_map
      (fun fix ->
        match fix.kind with
        | Crash_suppression { site; crash_kind; _ } when in_force fix -> Some (site, crash_kind)
        | Input_guard { site; crash_kind; _ } when in_force fix ->
          (* The guard's site protection is unconditional so that hive
             replay under the same epoch reproduces pod behavior; the
             input condition itself is the pod's predictive flag. *)
          Some (site, crash_kind)
        | _ -> None)
      fixes
  in
  let immunity_hooks = Immunity.hooks (Immunity.create ~patterns) in
  {
    immunity_hooks with
    Interp.on_crash =
      (fun ~site ~kind ->
        if List.exists (fun (s, k) -> Ir.site_equal s site && k = kind) suppressions then
          `Suppress
        else `Propagate);
  }

let runtime_hooks_for_ids ~ids fixes =
  runtime_hooks (List.filter (fun fix -> List.mem fix.id ids) fixes)

(* ---- Saboteur fixes (fault injection) -------------------------------- *)

type sabotage =
  | Spin_immunity
  | Misplaced_guard
  | Misplaced_suppression

let sabotage_of_variant = function
  | 0 -> Spin_immunity
  | 1 -> Misplaced_guard
  | _ -> Misplaced_suppression

let sabotage_name = function
  | Spin_immunity -> "spin-immunity"
  | Misplaced_guard -> "misplaced-guard"
  | Misplaced_suppression -> "misplaced-suppression"

let sabotage_kind sab ~(program : Ir.t) =
  match sab with
  | Spin_immunity ->
    (* An over-broad immunity set: every lock but the highest.  A
       thread already inside a non-pattern critical section that then
       requests a pattern lock defers while the pattern's owner blocks
       on the lock the deferring thread holds — benign schedules
       livelock into [Hang]. *)
    let n = program.Ir.n_locks in
    let locks = if n >= 2 then List.init (n - 1) Fun.id else [ 0 ] in
    Deadlock_immunity locks
  | Misplaced_guard ->
    (* A guard whose input condition flags (practically) every run, at
       a site that never crashes: pure misfire telemetry. *)
    Input_guard
      {
        bucket = "sabotage:guard";
        condition = [ Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input 0, Ir.Const 0)) true ];
        site = { Ir.thread = 0; pc = 0 };
        crash_kind = Outcome.Assertion_failure;
      }
  | Misplaced_suppression ->
    (* A suppression parked at a site no failure ever reaches: inert
       rather than harmful — the health test should hold or promote
       it, not retract it. *)
    Crash_suppression
      {
        bucket = "sabotage:suppression";
        site = { Ir.thread = 0; pc = 0 };
        crash_kind = Outcome.Division_by_zero;
      }

(* Corpus-derived wrong-fix variants: the same sabotage shapes, but
   grounded in a certified benchmark instance instead of invented —
   a guard at a decoy site (on the failing path, not a ground-truth
   fix location) and an over-broad immunity set that serializes
   benign schedules. *)
let corpus_wrong_fixes (inst : Corpus_bench.instance) =
  let guards =
    match Corpus_bench.decoy_sites inst with
    | [] -> []
    | site :: _ ->
      [
        ( "decoy-guard",
          Input_guard
            {
              bucket = "wrong:decoy-guard";
              (* Flags every run: the decoy site correlates with the
                 failure but the condition repairs nothing, so benign
                 paths pay pure misfire telemetry. *)
              condition = [ Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input 0, Ir.Const 0)) true ];
              site;
              crash_kind = Outcome.Assertion_failure;
            } );
      ]
  in
  let immunities =
    match Corpus_bench.overbroad_lock_set inst with
    | None -> []
    | Some locks -> [ ("benign-serializer", Deadlock_immunity locks) ]
  in
  guards @ immunities

(* ---- Wire format ---------------------------------------------------- *)

let crash_kind_tag = function
  | Outcome.Assertion_failure -> 0
  | Outcome.Division_by_zero -> 1

let crash_kind_of_tag = function
  | 0 -> Outcome.Assertion_failure
  | 1 -> Outcome.Division_by_zero
  | n -> raise (Codec.Malformed (Printf.sprintf "crash kind tag %d" n))

let write_crash_kind w kind = Codec.Writer.byte w (crash_kind_tag kind)
let read_crash_kind r = crash_kind_of_tag (Codec.Reader.byte r)

let write_site w (site : Ir.site) =
  Codec.Writer.varint w site.Ir.thread;
  Codec.Writer.varint w site.Ir.pc

let read_site r =
  let thread = Codec.Reader.varint r in
  let pc = Codec.Reader.varint r in
  { Ir.thread; pc }

let write_condition w condition =
  Codec.Writer.list w
    (fun (atom : Path_cond.atom) ->
      Ir_codec.write_expr w atom.Path_cond.cond;
      Codec.Writer.bool w atom.Path_cond.expected)
    condition

let read_condition r =
  Codec.Reader.list r (fun r ->
      let cond = Ir_codec.read_expr r in
      let expected = Codec.Reader.bool r in
      Path_cond.atom cond expected)

let write_fix w fix =
  Codec.Writer.varint w fix.id;
  Codec.Writer.varint w fix.epoch;
  match fix.kind with
  | Deadlock_immunity locks ->
    Codec.Writer.byte w 0;
    Codec.Writer.list w (Codec.Writer.varint w) locks
  | Input_guard { bucket; condition; site; crash_kind } ->
    Codec.Writer.byte w 1;
    Codec.Writer.bytes w bucket;
    write_condition w condition;
    write_site w site;
    Codec.Writer.byte w (crash_kind_tag crash_kind)
  | Crash_suppression { bucket; site; crash_kind } ->
    Codec.Writer.byte w 2;
    Codec.Writer.bytes w bucket;
    write_site w site;
    Codec.Writer.byte w (crash_kind_tag crash_kind)
  | Patch_candidate { bucket; site; description } ->
    Codec.Writer.byte w 3;
    Codec.Writer.bytes w bucket;
    write_site w site;
    Codec.Writer.bytes w description

let read_fix r =
  let id = Codec.Reader.varint r in
  (* Id uniqueness after a restore is automatic: [propose] numbers
     from the highest id among the fixes it extends. *)
  let epoch = Codec.Reader.varint r in
  let kind =
    match Codec.Reader.byte r with
    | 0 -> Deadlock_immunity (Codec.Reader.list r Codec.Reader.varint)
    | 1 ->
      let bucket = Codec.Reader.bytes r in
      let condition = read_condition r in
      let site = read_site r in
      let crash_kind = crash_kind_of_tag (Codec.Reader.byte r) in
      Input_guard { bucket; condition; site; crash_kind }
    | 2 ->
      let bucket = Codec.Reader.bytes r in
      let site = read_site r in
      let crash_kind = crash_kind_of_tag (Codec.Reader.byte r) in
      Crash_suppression { bucket; site; crash_kind }
    | 3 ->
      let bucket = Codec.Reader.bytes r in
      let site = read_site r in
      let description = Codec.Reader.bytes r in
      Patch_candidate { bucket; site; description }
    | n -> raise (Codec.Malformed (Printf.sprintf "fix kind tag %d" n))
  in
  { id; epoch; kind }
