module Codec = Softborg_util.Codec

type stage = Candidate | Canary | Fleet | Retracted

let stage_name = function
  | Candidate -> "candidate"
  | Canary -> "canary"
  | Fleet -> "fleet"
  | Retracted -> "retracted"

type config = {
  canary_mils : int;
  min_exposed : int;
  min_control : int;
  harm_ratio_mils : int;
  harm_margin_mils : int;
  novel_bucket_k : int;
  misfire_mils : int;
  promote_after : int;
  max_hold_ticks : int;
}

let default_config =
  {
    canary_mils = 125;
    min_exposed = 8;
    min_control = 8;
    harm_ratio_mils = 1500;
    harm_margin_mils = 100;
    novel_bucket_k = 3;
    misfire_mils = 250;
    promote_after = 24;
    max_hold_ticks = 2;
  }

(* Same FNV-1a as [Protocol.basis_fingerprint]: seed-free, so cohort
   membership depends only on (cohort id, fix id) — never on pool
   size, shard count, or process-global pod-id allocation order. *)
let cohort_hash ~cohort ~fix_id =
  let h = ref 0x3bf29ce484222325 in
  let mix b = h := (!h lxor (b land 0xff)) * 0x100000001b3 land max_int in
  let mix_int v =
    for i = 0 to 7 do
      mix ((v lsr (8 * i)) land 0xff)
    done
  in
  mix_int cohort;
  mix_int fix_id;
  !h

let in_cohort ~cohort ~fix_id ~mils =
  if mils >= 1000 then true
  else if mils <= 0 then false
  else cohort_hash ~cohort ~fix_id mod 1000 < mils

type health = {
  mutable exposed_runs : int;
  mutable exposed_failures : int;
  mutable control_runs : int;
  mutable control_failures : int;
  mutable misfires : int;
  exposed_buckets : (string, int ref) Hashtbl.t;
  control_buckets : (string, int ref) Hashtbl.t;
}

let fresh_health () =
  {
    exposed_runs = 0;
    exposed_failures = 0;
    control_runs = 0;
    control_failures = 0;
    misfires = 0;
    exposed_buckets = Hashtbl.create 7;
    control_buckets = Hashtbl.create 7;
  }

type entry = {
  fix_id : int;
  mutable stage : stage;
  mutable retired_epoch : int;
  mutable ticks_held : int;
  health : health;
}

let create_entry ~fix_id ~stage =
  { fix_id; stage; retired_epoch = 0; ticks_held = 0; health = fresh_health () }

let bump_bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let observe entry ~exposed ~failed ~bucket ~hook_fires =
  let h = entry.health in
  if exposed then begin
    h.exposed_runs <- h.exposed_runs + 1;
    if failed then begin
      h.exposed_failures <- h.exposed_failures + 1;
      bump_bucket h.exposed_buckets bucket
    end
    else if hook_fires > 0 then h.misfires <- h.misfires + 1
  end
  else begin
    h.control_runs <- h.control_runs + 1;
    if failed then begin
      h.control_failures <- h.control_failures + 1;
      bump_bucket h.control_buckets bucket
    end
  end

type decision = Hold | Promote | Retract of string

(* Sorted so the reported reason is deterministic when several novel
   buckets cross the threshold at once. *)
let novel_bucket config h =
  Hashtbl.fold
    (fun key count acc ->
      if !count >= config.novel_bucket_k && not (Hashtbl.mem h.control_buckets key) then
        key :: acc
      else acc)
    h.exposed_buckets []
  |> List.sort String.compare
  |> function
  | [] -> None
  | key :: _ -> Some key

let decide config entry =
  match entry.stage with
  | Candidate | Fleet | Retracted -> Hold
  | Canary -> (
    let h = entry.health in
    let sampled = h.exposed_runs >= config.min_exposed && h.control_runs >= config.min_control in
    (* Integer form of  ef/er > (cf/cr)·ratio + margin  (rates in
       mils): cross-multiplied so the test is exact and replayable. *)
    let harmful =
      sampled
      && h.exposed_failures * h.control_runs * 1000
         > (h.control_failures * h.exposed_runs * config.harm_ratio_mils)
           + (h.exposed_runs * h.control_runs * config.harm_margin_mils)
    in
    (* Hooks firing on a workload the control cohort shows to be
       benign: a guard at the wrong site, or an immunity set that
       serializes schedules nobody needed serialized. *)
    let misfiring =
      sampled && h.control_failures = 0
      && h.misfires * 1000 > h.exposed_runs * config.misfire_mils
    in
    if harmful then Retract "failure-rate"
    else
      (* Novelty needs the same sample floor: with an empty control
         cohort every bucket is "novel", and the contract is no
         verdict of any kind before the minimums. *)
      match if sampled then novel_bucket config h else None with
      | Some key -> Retract ("novel-bucket:" ^ key)
      | None ->
        if misfiring then Retract "guard-misfire"
        else if h.exposed_runs >= config.promote_after || entry.ticks_held >= config.max_hold_ticks
        then Promote
        else Hold)

(* Codec — sorted, counts via sorted bindings, so serialized bytes are
   a pure function of the observed multiset. *)

let stage_tag = function Candidate -> 0 | Canary -> 1 | Fleet -> 2 | Retracted -> 3

let stage_of_tag = function
  | 0 -> Candidate
  | 1 -> Canary
  | 2 -> Fleet
  | 3 -> Retracted
  | n -> raise (Codec.Malformed (Printf.sprintf "fix_lifecycle: bad stage tag %d" n))

let sorted_buckets tbl =
  Hashtbl.fold (fun key count acc -> (key, !count) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let write_health w h =
  Codec.Writer.varint w h.exposed_runs;
  Codec.Writer.varint w h.exposed_failures;
  Codec.Writer.varint w h.control_runs;
  Codec.Writer.varint w h.control_failures;
  Codec.Writer.varint w h.misfires;
  Codec.Writer.list w
    (fun (key, count) ->
      Codec.Writer.bytes w key;
      Codec.Writer.varint w count)
    (sorted_buckets h.exposed_buckets);
  Codec.Writer.list w
    (fun (key, count) ->
      Codec.Writer.bytes w key;
      Codec.Writer.varint w count)
    (sorted_buckets h.control_buckets)

let read_buckets r =
  let tbl = Hashtbl.create 7 in
  let entries =
    Codec.Reader.list r (fun r ->
        let key = Codec.Reader.bytes r in
        let count = Codec.Reader.varint r in
        (key, count))
  in
  List.iter (fun (key, count) -> Hashtbl.replace tbl key (ref count)) entries;
  tbl

let read_health r =
  let exposed_runs = Codec.Reader.varint r in
  let exposed_failures = Codec.Reader.varint r in
  let control_runs = Codec.Reader.varint r in
  let control_failures = Codec.Reader.varint r in
  let misfires = Codec.Reader.varint r in
  let exposed_buckets = read_buckets r in
  let control_buckets = read_buckets r in
  {
    exposed_runs;
    exposed_failures;
    control_runs;
    control_failures;
    misfires;
    exposed_buckets;
    control_buckets;
  }

let write_entry w e =
  Codec.Writer.varint w e.fix_id;
  Codec.Writer.byte w (stage_tag e.stage);
  Codec.Writer.varint w e.retired_epoch;
  Codec.Writer.varint w e.ticks_held;
  write_health w e.health

let read_entry r =
  let fix_id = Codec.Reader.varint r in
  let stage = stage_of_tag (Codec.Reader.byte r) in
  let retired_epoch = Codec.Reader.varint r in
  let ticks_held = Codec.Reader.varint r in
  let health = read_health r in
  { fix_id; stage; retired_epoch; ticks_held; health }

let write_entries w entries =
  Codec.Writer.list w (write_entry w)
    (List.sort (fun a b -> Int.compare a.fix_id b.fix_id) entries)

let read_entries r = Codec.Reader.list r read_entry
