(** Cooperative symbolic execution (paper §4).

    "We parallelize symbolic execution and distribute the analysis of
    the execution tree to the hive's nodes (which could include as many
    as all machines running SoftBorg)."  The tree's shape is unknown
    until explored, so a static partition is undecidable; instead the
    coordinator partitions {e dynamically}: frontier gaps are jobs,
    worker nodes (reached over the unreliable network) run directed
    symbolic exploration on the gaps they are assigned, and the
    coordinator reallocates nodes between rounds using the
    portfolio-theoretic policy of {!Allocate} — subtrees are equities,
    workers are capital.

    Workers are assumed to hold the program binary (they are machines
    running SoftBorg pods); only gap coordinates, budgets, and results
    travel over the wire. *)

module Ir := Softborg_prog.Ir
module Sim := Softborg_net.Sim
module Transport := Softborg_net.Transport
module Exec_tree := Softborg_tree.Exec_tree
module Sym_exec := Softborg_symexec.Sym_exec
module Testgen := Softborg_symexec.Testgen

(** Wire messages between coordinator and workers. *)
type job = {
  job_id : int;
  gaps : (Ir.site * bool) list;  (** Directions to decide. *)
  budget_per_gap : int;  (** Solver-step budget per direction. *)
}

type gap_verdict =
  | Gap_feasible of Testgen.test_case
  | Gap_infeasible
  | Gap_unknown

type job_result = {
  job_id : int;
  verdicts : ((Ir.site * bool) * gap_verdict) list;
  steps_spent : int;
}

val encode_job : job -> string
val decode_job : string -> (job, string) result
val encode_result : job_result -> string
val decode_result : string -> (job_result, string) result

(** A worker node: answers exploration jobs for one program. *)
module Worker : sig
  type t

  val create : program:Ir.t -> endpoint:Transport.endpoint -> unit -> t
  (** Installs the receive handler; every incoming job is answered
      with a result message.  Each worker keeps a private
      {!Softborg_solver.Verdict_cache} across the jobs it serves —
      successive rounds re-query overlapping path conditions. *)

  val jobs_served : t -> int
  val steps_spent : t -> int
end

(** The coordinator: drives a tree's frontier to closure using a pool
    of workers. *)
module Coordinator : sig
  type config = {
    round_interval : float;  (** Seconds between allocation rounds. *)
    gaps_per_job : int;  (** Frontier gaps batched into one job. *)
    budget_per_gap : int;
    policy : Allocate.policy;
    engine : Softborg_exec.Engine.t;
        (** Engine for the central validation runs (default VM). *)
  }

  val default_config : config

  type t

  val create :
    ?config:config ->
    sim:Sim.t ->
    program:Ir.t ->
    tree:Exec_tree.t ->
    workers:Transport.endpoint list ->
    unit ->
    t
  (** [workers] are the coordinator-side endpoints of the worker
      connections.  The coordinator assigns jobs round-robin within
      the node counts chosen by the allocation policy. *)

  val start : t -> unit
  (** Begin periodic allocation rounds on the simulator. *)

  type progress = {
    rounds : int;
    jobs_sent : int;
    results_received : int;
    gaps_resolved : int;  (** Feasible or infeasible verdicts applied. *)
    tests_found : Testgen.test_case list;  (** Inputs covering feasible gaps. *)
    worker_steps : int;  (** Total solver/interpreter steps across workers. *)
  }

  val progress : t -> progress

  val done_ : t -> bool
  (** True when no open work remains: every frontier gap's direction
      has been covered, proven infeasible, or retired as unknown.
      (Node-level gaps whose direction was settled elsewhere in the
      tree are considered closed — the coordinator decides {e branch
      directions}, not individual prefix nodes.) *)
end
