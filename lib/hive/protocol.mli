(** The pod↔hive message protocol (paper Figure 1).

    Pods send by-products up; the hive sends fixes and guidance down.
    All messages are length-delimited binary strings carried by the
    reliable transport ({!Softborg_net.Transport}). *)

module Sampling := Softborg_trace.Sampling
module Wire := Softborg_trace.Wire

type message =
  | Trace_upload of string
      (** A {!Softborg_trace.Wire}-encoded trace (possibly anonymized
          by the pod before encoding). *)
  | Sampled_report of { program_digest : string; report : Sampling.t }
      (** CBI-mode upload: sparse predicate counts plus outcome. *)
  | Fix_update of {
      program_digest : string;
      epoch : int;
      fixes : Fixgen.fix list;
      canary : int list;
          (** Ids (within [fixes]) still in canary stage: a pod
              activates one only if its cohort hash says so. *)
      canary_mils : int;
          (** Canary cohort fraction in thousandths; [0] disables
              staging (every fix in [fixes] is fleet-wide). *)
      pressure : int;
          (** Hive load level (0 = unloaded), piggybacked on every
              downstream push so pods track backpressure without extra
              messages. *)
    }
      (** The hive's current deployable fix set for a program. *)
  | Fix_retract of {
      program_digest : string;
      epoch : int;  (** The post-retraction epoch (monotonic, like {!Fix_update}). *)
      retracted : int list;  (** All fix ids ever retracted for this program. *)
      fixes : Fixgen.fix list;  (** The surviving deployable set. *)
      canary : int list;
      canary_mils : int;
      pressure : int;
    }
      (** Rollback push: the canary health test condemned a fix.  Pods
          replace their fix set with [fixes] (the retracted ids are
          guaranteed absent) under the same monotonic-epoch guard as
          {!Fix_update}. *)
  | Guidance_update of {
      program_digest : string;
      directives : Guidance.directive list;
      pressure : int;  (** Piggybacked load level, as in {!Fix_update}. *)
    }
      (** Execution-steering directives for this pod. *)
  | Pressure_update of { level : int }
      (** Standalone backpressure broadcast, sent when the hive's load
          level changes and no other downstream push is imminent. *)
  | Shard_map_update of { map : Shard_map.t }
      (** Federation routing table push: which shard owns which
          path-prefix range.  Sent to routers/pods so upload routing
          is a pure function of the trace and the map. *)
  | Knowledge_delta of { shard : int; seq : int; payloads : string list }
      (** Superstep uplink from a shard to the merge coordinator:
          the canonical ingest payloads (encoded protocol frames)
          the shard admitted since its previous delta.  [seq] orders
          deltas from one shard; the coordinator commits rounds in
          (shard, seq) order. *)
  | Frontier_summary of { shard : int; programs : (string * int * int) list }
      (** Periodic shard telemetry: per program digest, distinct
          execution-tree paths and traces ingested. *)
  | Batch_upload of {
      program_digest : string;  (** Shared by every record in the batch. *)
      basis_id : int;
          (** The hive-announced basis the delta records anchor to, or
              0 when the anchor is the batch's own first record (which
              must then be a full record). *)
      basis_check : int;
          (** {!basis_fingerprint} of the anchor's wire payload when
              [basis_id > 0] (0 otherwise); the hive refuses to
              XOR-decode against a basis whose fingerprint disagrees. *)
      records : string list;
          (** Self-tagged {!Softborg_trace.Wire.encode_record} blobs;
              count capped by [caps.max_batch_records], summed declared
              bits capped by [caps.max_batch_total_bits]. *)
    }
      (** Multi-trace upload: one header, one digest, many records. *)
  | Basis_update of { program_digest : string; basis_id : int; payload : string }
      (** Hive→pod basis announcement: [payload] is a full
          {!Softborg_trace.Wire.encode}d trace whose branch bits pods
          should delta future uploads of [program_digest] against.
          [basis_id] increases monotonically per program. *)

val basis_fingerprint : string -> int
(** Non-negative FNV-1a fingerprint of a basis payload — pods echo it
    in {!Batch_upload}, the hive verifies before XOR-decoding. *)

val encode : message -> string

val decode : ?caps:Wire.caps -> string -> (message, string) result
(** Total: any byte string yields [Ok] or a human-readable [Error],
    never an exception.  With [caps], resource limits are enforced
    before allocation (frame size, predicate rows, and the embedded
    outcome's lock set) so a poison frame cannot exhaust the hive. *)

val message_name : message -> string

val pressure_of : message -> int option
(** The load level carried by a downstream message, if any. *)
