module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome
module Interp = Softborg_exec.Interp
module Trace = Softborg_trace.Trace
module Sampling = Softborg_trace.Sampling
module Exec_tree = Softborg_tree.Exec_tree
module Deadlock = Softborg_conc.Deadlock
module Immunity = Softborg_conc.Immunity
module Sym_exec = Softborg_symexec.Sym_exec
module Path_cond = Softborg_solver.Path_cond
module Lru = Softborg_util.Lru

type crash_bucket = {
  site : Ir.site;
  crash_kind : Outcome.crash_kind;
  mutable count : int;
}

type t = {
  program : Ir.t;
  digest : string;
  tree : Exec_tree.t;
  deadlocks : Deadlock.t;
  isolate : Isolate.t;
  store : Trace_store.t;
  crash_buckets : (string, crash_bucket) Hashtbl.t;
  deadlock_buckets : (string, int list * int ref) Hashtbl.t;  (* lock set, count *)
  other_buckets : (string, int ref) Hashtbl.t;  (* hang buckets *)
  mutable fixes : Fixgen.fix list;
  mutable epoch : int;
  (* Staged rollout: retracted fix ids (sorted; the fixes themselves
     stay in [fixes] so id minting never reuses a condemned id) and
     the per-fix lifecycle ledger.  Both are serialized — a restored
     hive must not resurrect a retracted fix.  The rollout config and
     the quarantine counter are runtime attachments: config comes from
     [Hive.config], and quarantined traces are by definition *not*
     evidence, so they must not influence knowledge bytes. *)
  mutable retracted : int list;
  mutable lifecycle : Fix_lifecycle.entry list;
  mutable rollout : Fix_lifecycle.config option;
  mutable quarantined : int;
  mutable traces_ingested : int;
  mutable failures : int;
  mutable replay_errors : int;
  mutable proofs : Prover.proof list;
  (* Decoded-trace cache: content key -> reconstruction.  Duplicate
     uploads (the common case at fleet scale) skip the replay. *)
  replay_cache : (string, Interp.reconstruction) Lru.t option;
  mutable replay_cache_hits : int;
  (* Symbolic gap verdicts, shared by guidance planning and gap
     closing; cleared with the replay cache on every epoch bump. *)
  gap_memo : Gap_memo.t;
  (* Path-condition solver verdicts, shared by every symbolic query
     the hive runs against this program; same clearing discipline. *)
  verdict_cache : Softborg_solver.Verdict_cache.t;
}

let create ?(replay_cache = 256) program =
  {
    program;
    digest = Ir.digest program;
    tree = Exec_tree.create ();
    deadlocks = Deadlock.create ();
    isolate = Isolate.create ();
    store = Trace_store.create ();
    crash_buckets = Hashtbl.create 8;
    deadlock_buckets = Hashtbl.create 8;
    other_buckets = Hashtbl.create 8;
    fixes = [];
    epoch = 0;
    retracted = [];
    lifecycle = [];
    rollout = None;
    quarantined = 0;
    traces_ingested = 0;
    failures = 0;
    replay_errors = 0;
    proofs = [];
    replay_cache = (if replay_cache <= 0 then None else Some (Lru.create replay_cache));
    replay_cache_hits = 0;
    gap_memo = Gap_memo.create ();
    verdict_cache = Softborg_solver.Verdict_cache.create ();
  }

let program t = t.program
let digest t = t.digest
let tree t = t.tree
let isolate t = t.isolate
let epoch t = t.epoch
let fixes t = t.fixes
let proofs t = t.proofs
let traces_ingested t = t.traces_ingested
let failures_observed t = t.failures
let replay_errors t = t.replay_errors
let replay_cache_hits t = t.replay_cache_hits
let gap_memo t = t.gap_memo
let verdict_cache t = t.verdict_cache

(* The fix set minus retractions — what deploys, replays, and guards.
   Retracted fixes are dead everywhere except id continuity. *)
let live_fixes t =
  match t.retracted with
  | [] -> t.fixes
  | retracted -> List.filter (fun fix -> not (List.mem fix.Fixgen.id retracted)) t.fixes

let retracted_ids t = t.retracted
let lifecycle t = t.lifecycle
let rollout t = t.rollout
let set_rollout t config = t.rollout <- config
let quarantined_traces t = t.quarantined

let canary_ids t =
  List.filter_map
    (fun (e : Fix_lifecycle.entry) ->
      if e.Fix_lifecycle.stage = Fix_lifecycle.Canary then Some e.Fix_lifecycle.fix_id else None)
    t.lifecycle
  |> List.sort Int.compare

let canary_mils t =
  match t.rollout with None -> 0 | Some c -> c.Fix_lifecycle.canary_mils

let hooks_for_epoch t target_epoch = Fixgen.runtime_hooks ~epoch:target_epoch (live_fixes t)

let current_hooks t = hooks_for_epoch t t.epoch

let input_guards t =
  List.filter_map
    (fun fix ->
      match fix.Fixgen.kind with Fixgen.Input_guard { condition; _ } -> Some condition | _ -> None)
    (live_fixes t)

let record_failure t (outcome : Outcome.t) =
  match outcome with
  | Outcome.Success -> ()
  | Outcome.Crash { site; kind; _ } ->
    t.failures <- t.failures + 1;
    let key = Outcome.bucket_key outcome in
    (match Hashtbl.find_opt t.crash_buckets key with
    | Some bucket -> bucket.count <- bucket.count + 1
    | None -> Hashtbl.replace t.crash_buckets key { site; crash_kind = kind; count = 1 })
  | Outcome.Deadlock { waiting } ->
    t.failures <- t.failures + 1;
    let key = Outcome.bucket_key outcome in
    let locks = List.map snd waiting |> List.sort_uniq Int.compare in
    (match Hashtbl.find_opt t.deadlock_buckets key with
    | Some (_, count) -> incr count
    | None -> Hashtbl.replace t.deadlock_buckets key (locks, ref 1))
  | Outcome.Hang ->
    t.failures <- t.failures + 1;
    let key = Outcome.bucket_key outcome in
    (match Hashtbl.find_opt t.other_buckets key with
    | Some count -> incr count
    | None -> Hashtbl.replace t.other_buckets key (ref 1))

let store t = t.store

let merge_reconstruction t (trace : Trace.t) ({ Interp.decisions; locks } : Interp.reconstruction) =
  ignore (Exec_tree.add_path t.tree decisions trace.Trace.outcome);
  Deadlock.observe t.deadlocks ~outcome:trace.Trace.outcome ~locks;
  Isolate.record_path t.isolate ~full_path:decisions ~outcome:trace.Trace.outcome

(* Quarantine test: evidence recorded under a since-retracted fix
   describes behavior the fleet no longer exhibits, and admitting it
   would make knowledge bytes depend on *when* the retraction landed
   rather than on the accepted-trace multiset alone. *)
let quarantines t (trace : Trace.t) =
  t.retracted <> []
  &&
  match trace.Trace.attribution with
  | None -> false
  | Some a -> List.exists (fun id -> List.mem id t.retracted) a.Trace.active_fixes

(* Canary health accounting: every attributed run is a sample — exposed
   for the canary fixes in its active set, control for the rest. *)
let observe_health t (trace : Trace.t) =
  match (t.rollout, trace.Trace.attribution) with
  | None, _ | _, None -> ()
  | Some _, Some a ->
    let failed = Outcome.is_failure trace.Trace.outcome in
    let bucket = Outcome.bucket_key trace.Trace.outcome in
    List.iter
      (fun (e : Fix_lifecycle.entry) ->
        if e.Fix_lifecycle.stage = Fix_lifecycle.Canary then
          Fix_lifecycle.observe e
            ~exposed:(List.mem e.Fix_lifecycle.fix_id a.Trace.active_fixes)
            ~failed ~bucket ~hook_fires:a.Trace.hook_fires)
      t.lifecycle

(* Replay hooks for one trace: an attributed trace names its exact
   active fix set (a canary pod runs a strict subset of its epoch's
   fixes), an unattributed one falls back to the epoch approximation. *)
let replay_hooks t (trace : Trace.t) =
  match trace.Trace.attribution with
  | Some a -> Fixgen.runtime_hooks_for_ids ~ids:a.Trace.active_fixes t.fixes
  | None -> hooks_for_epoch t trace.Trace.fix_epoch

let ingest_trace ?prepared ?reconstruction t (trace : Trace.t) =
  if quarantines t trace then begin
    t.quarantined <- t.quarantined + 1;
    Ok ()
  end
  else begin
    t.traces_ingested <- t.traces_ingested + 1;
    let content_key, _ = Trace_store.admit_keyed ?prepared t.store trace in
    record_failure t trace.Trace.outcome;
    observe_health t trace;
    if trace.Trace.steps = 0 && trace.Trace.n_decisions = 0 then
      (* Outcome-only disclosure: nothing to replay or merge. *)
      Ok ()
    else
      match Option.bind t.replay_cache (fun cache -> Lru.find cache content_key) with
      | Some reconstruction ->
        (* Same content already replayed: skip the wire/replay round-trip
           and merge the cached decision sequence directly. *)
        t.replay_cache_hits <- t.replay_cache_hits + 1;
        merge_reconstruction t trace reconstruction;
        Ok ()
      | None -> (
        match reconstruction with
        | Some reconstruction ->
          (* Precomputed off-thread (batch decode on the worker pool).
             The caller guarantees it was built against the current fix
             set, so it equals what the replay below would produce — the
             cache and merge behave exactly as in a sequential run. *)
          Option.iter (fun cache -> Lru.add cache content_key reconstruction) t.replay_cache;
          merge_reconstruction t trace reconstruction;
          Ok ()
        | None -> (
          let hooks = replay_hooks t trace in
          match
            Interp.reconstruct ~hooks ~program:t.program ~bits:trace.Trace.bits
              ~schedule:trace.Trace.schedule ~total_decisions:trace.Trace.n_decisions
              ~total_steps:trace.Trace.steps ()
          with
          | Ok reconstruction ->
            Option.iter (fun cache -> Lru.add cache content_key reconstruction) t.replay_cache;
            merge_reconstruction t trace reconstruction;
            Ok ()
          | Error msg ->
            t.replay_errors <- t.replay_errors + 1;
            Error msg))
  end

let ingest_sampled t sampled =
  t.traces_ingested <- t.traces_ingested + 1;
  record_failure t sampled.Sampling.outcome;
  Isolate.record t.isolate sampled

let ingest_outcome_only t (trace : Trace.t) =
  if quarantines t trace then t.quarantined <- t.quarantined + 1
  else begin
    t.traces_ingested <- t.traces_ingested + 1;
    record_failure t trace.Trace.outcome;
    observe_health t trace
  end

let crash_evidence t =
  Hashtbl.fold
    (fun key bucket acc ->
      { Fixgen.site = bucket.site; crash_kind = bucket.crash_kind; bucket = key; count = bucket.count }
      :: acc)
    t.crash_buckets []
  (* Ties broken by bucket key: the hashtable fold order depends on
     insertion history, and evidence order must not (fix proposal
     iterates it, and proposed-fix bytes must be ingestion-order
     independent). *)
  |> List.sort (fun (a : Fixgen.crash_evidence) b ->
         match Int.compare b.Fixgen.count a.Fixgen.count with
         | 0 -> String.compare a.Fixgen.bucket b.Fixgen.bucket
         | c -> c)

let deadlock_pattern_sets t =
  List.map (fun (p : Deadlock.pattern) -> p.Deadlock.locks) (Deadlock.patterns t.deadlocks)

let deadlock_bucket_info t =
  Hashtbl.fold (fun key (locks, count) acc -> (key, locks, !count) :: acc) t.deadlock_buckets []

let bucket_counts t =
  let crash = Hashtbl.fold (fun key b acc -> (key, b.count) :: acc) t.crash_buckets [] in
  let dl = Hashtbl.fold (fun key (_, n) acc -> (key, !n) :: acc) t.deadlock_buckets [] in
  let other = Hashtbl.fold (fun key n acc -> (key, !n) :: acc) t.other_buckets [] in
  List.sort
    (fun (k1, a) (k2, b) ->
      match Int.compare b a with 0 -> String.compare k1 k2 | c -> c)
    (crash @ dl @ other)

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  (* Replay depends on the hooks in force at a trace's fix epoch; a new
     epoch can change the hook set, so cached reconstructions are
     dropped rather than risked.  Same for the symbolic gap verdicts:
     a new fix set means a new analyzed behavior. *)
  Option.iter Lru.clear t.replay_cache;
  Gap_memo.clear t.gap_memo;
  Softborg_solver.Verdict_cache.clear t.verdict_cache;
  ignore (Prover.invalidate t.proofs ~current_epoch:t.epoch)

(* With rollout active, every newly deployed fix enters the ledger as
   a canary; without it, fixes ship fleet-wide instantly (the legacy —
   and the bench's "naive" — behavior). *)
let register_canaries t new_fixes =
  match t.rollout with
  | None -> ()
  | Some _ ->
    List.iter
      (fun (fix : Fixgen.fix) ->
        if
          Fixgen.is_deployable fix
          && not
               (List.exists
                  (fun (e : Fix_lifecycle.entry) -> e.Fix_lifecycle.fix_id = fix.id)
                  t.lifecycle)
        then
          t.lifecycle <-
            t.lifecycle @ [ Fix_lifecycle.create_entry ~fix_id:fix.id ~stage:Fix_lifecycle.Canary ])
      new_fixes

let analyze ?symexec_config t =
  let new_fixes =
    Fixgen.propose ?symexec_config ~program:t.program
      ~deadlock_patterns:(deadlock_pattern_sets t) ~crashes:(crash_evidence t)
      ~existing:t.fixes ~next_epoch:(t.epoch + 1) ()
  in
  let deployable = List.filter Fixgen.is_deployable new_fixes in
  if deployable <> [] then bump_epoch t;
  t.fixes <- t.fixes @ new_fixes;
  register_canaries t new_fixes;
  new_fixes

let add_fix t kind =
  let fix = { Fixgen.id = 0; epoch = t.epoch + 1; kind } in
  (* Re-number through Fixgen's private counter by proposing directly:
     simplest is to build the fix here with a locally unique id. *)
  let fix = { fix with Fixgen.id = 1_000_000 + List.length t.fixes } in
  bump_epoch t;
  t.fixes <- t.fixes @ [ fix ];
  register_canaries t [ fix ];
  fix

(* The sequential health test, run once per analysis tick.  Stage
   moves and the epoch bump happen together at the end, so one tick
   costs at most one epoch (one cache/proof invalidation) however many
   canaries move. *)
let lifecycle_tick t =
  match t.rollout with
  | None -> ([], [])
  | Some config ->
    let promoted = ref [] in
    let condemned = ref [] in
    List.iter
      (fun (e : Fix_lifecycle.entry) ->
        if e.Fix_lifecycle.stage = Fix_lifecycle.Canary then begin
          e.Fix_lifecycle.ticks_held <- e.Fix_lifecycle.ticks_held + 1;
          match Fix_lifecycle.decide config e with
          | Fix_lifecycle.Hold -> ()
          | Fix_lifecycle.Promote -> promoted := e :: !promoted
          | Fix_lifecycle.Retract reason -> condemned := (e, reason) :: !condemned
        end)
      (List.sort
         (fun (a : Fix_lifecycle.entry) b -> Int.compare a.Fix_lifecycle.fix_id b.Fix_lifecycle.fix_id)
         t.lifecycle);
    let promoted = List.rev !promoted in
    let condemned = List.rev !condemned in
    if promoted <> [] || condemned <> [] then begin
      List.iter (fun (e : Fix_lifecycle.entry) -> e.Fix_lifecycle.stage <- Fix_lifecycle.Fleet) promoted;
      List.iter
        (fun ((e : Fix_lifecycle.entry), _) -> e.Fix_lifecycle.stage <- Fix_lifecycle.Retracted)
        condemned;
      t.retracted <-
        List.sort_uniq Int.compare
          (List.map (fun ((e : Fix_lifecycle.entry), _) -> e.Fix_lifecycle.fix_id) condemned
          @ t.retracted);
      bump_epoch t;
      List.iter
        (fun ((e : Fix_lifecycle.entry), _) -> e.Fix_lifecycle.retired_epoch <- t.epoch)
        condemned
    end;
    ( List.map (fun (e : Fix_lifecycle.entry) -> e.Fix_lifecycle.fix_id) promoted,
      List.map (fun ((e : Fix_lifecycle.entry), reason) -> (e.Fix_lifecycle.fix_id, reason)) condemned
    )

(* Federation: a shard adopts the coordinator's deployed fix set
   wholesale, so its replay hooks for a given epoch match what the
   pods (and the merged knowledge) compute.  Invalidation mirrors
   [bump_epoch] — a new fix set means previously cached verdicts and
   reconstructions describe a different analyzed behavior.

   Monotonic: a stale or reordered adoption (epoch ≤ ours) is dropped,
   never applied — a duplicated/delayed [Fix_update] on a lossy link
   must not regress anyone to an older fix set (every legitimate
   change, including a retraction, bumps the epoch first). *)
let adopt_fixes t ~fixes ~epoch ~retracted =
  if epoch > t.epoch then begin
    t.fixes <- fixes;
    t.epoch <- epoch;
    t.retracted <- List.sort_uniq Int.compare retracted;
    Option.iter Lru.clear t.replay_cache;
    Gap_memo.clear t.gap_memo;
    Softborg_solver.Verdict_cache.clear t.verdict_cache;
    ignore (Prover.invalidate t.proofs ~current_epoch:t.epoch)
  end

let record_proof t proof = t.proofs <- proof :: t.proofs
let valid_proofs t = List.filter (fun (p : Prover.proof) -> p.Prover.valid) t.proofs

(* ---- Checkpoint codec -------------------------------------------------- *)

module Codec = Softborg_util.Codec
module Ir_codec = Softborg_prog.Ir_codec

let sorted_bindings table =
  Hashtbl.fold (fun key value acc -> (key, value) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Everything hashtable-backed is written in sorted key order and the
   two lists (fixes, proofs) verbatim, so equal knowledge bases always
   serialize to equal bytes — the round-trip property tests depend on
   it.  The replay cache is deliberately not persisted: it is a pure
   accelerator and restarts cold. *)
let write w t =
  Ir_codec.write_program w t.program;
  (* The digest is persisted, not recomputed on read: [Ir.digest] goes
     through [Marshal], whose output encodes structural sharing, so a
     decoded (sharing-free) program can hash differently from the
     original even though it is structurally equal.  The digest is the
     identity pods address their traces to — it must survive verbatim. *)
  Codec.Writer.bytes w t.digest;
  Codec.Writer.varint w t.epoch;
  Codec.Writer.varint w t.traces_ingested;
  Codec.Writer.varint w t.failures;
  Codec.Writer.varint w t.replay_errors;
  (* [replay_cache_hits] is deliberately not serialized: it depends on
     LRU arrival order (a process-local accident, like the cache
     itself), and knowledge bytes must be a pure function of the
     ingested evidence for the federation's merge-equality check. *)
  Exec_tree.write w t.tree;
  Trace_store.write w t.store;
  Isolate.write w t.isolate;
  Deadlock.write w t.deadlocks;
  Codec.Writer.list w
    (fun (key, bucket) ->
      Codec.Writer.bytes w key;
      Fixgen.write_site w bucket.site;
      Fixgen.write_crash_kind w bucket.crash_kind;
      Codec.Writer.varint w bucket.count)
    (sorted_bindings t.crash_buckets);
  Codec.Writer.list w
    (fun (key, (locks, count)) ->
      Codec.Writer.bytes w key;
      Codec.Writer.list w (Codec.Writer.varint w) locks;
      Codec.Writer.varint w !count)
    (sorted_bindings t.deadlock_buckets);
  Codec.Writer.list w
    (fun (key, count) ->
      Codec.Writer.bytes w key;
      Codec.Writer.varint w !count)
    (sorted_bindings t.other_buckets);
  Codec.Writer.list w (Fixgen.write_fix w) t.fixes;
  Codec.Writer.list w (Prover.write_proof w) t.proofs;
  (* Rollout state rides at the end (checkpoint format v3): sorted
     retracted ids, then the lifecycle ledger.  A restored hive can
     therefore never resurrect a retracted fix. *)
  Codec.Writer.list w (Codec.Writer.varint w) t.retracted;
  Fix_lifecycle.write_entries w t.lifecycle

let read ?(replay_cache = 256) r =
  let program = Ir_codec.read_program r in
  let digest = Codec.Reader.bytes r in
  let epoch = Codec.Reader.varint r in
  let traces_ingested = Codec.Reader.varint r in
  let failures = Codec.Reader.varint r in
  let replay_errors = Codec.Reader.varint r in
  let tree = Exec_tree.read r in
  let store = Trace_store.read r in
  let isolate = Isolate.read r in
  let deadlocks = Deadlock.read r in
  let fill n decode =
    let table = Hashtbl.create n in
    List.iter (fun (key, value) -> Hashtbl.replace table key value) (Codec.Reader.list r decode);
    table
  in
  let crash_buckets =
    fill 8 (fun r ->
        let key = Codec.Reader.bytes r in
        let site = Fixgen.read_site r in
        let crash_kind = Fixgen.read_crash_kind r in
        let count = Codec.Reader.varint r in
        (key, { site; crash_kind; count }))
  in
  let deadlock_buckets =
    fill 8 (fun r ->
        let key = Codec.Reader.bytes r in
        let locks = Codec.Reader.list r Codec.Reader.varint in
        let count = Codec.Reader.varint r in
        (key, (locks, ref count)))
  in
  let other_buckets =
    fill 8 (fun r ->
        let key = Codec.Reader.bytes r in
        let count = Codec.Reader.varint r in
        (key, ref count))
  in
  let fixes = Codec.Reader.list r (fun r -> Fixgen.read_fix r) in
  let proofs = Codec.Reader.list r (fun r -> Prover.read_proof r) in
  let retracted = Codec.Reader.list r Codec.Reader.varint in
  let lifecycle = Fix_lifecycle.read_entries r in
  {
    program;
    digest;
    tree;
    deadlocks;
    isolate;
    store;
    crash_buckets;
    deadlock_buckets;
    other_buckets;
    fixes;
    epoch;
    retracted;
    lifecycle;
    rollout = None;
    quarantined = 0;
    traces_ingested;
    failures;
    replay_errors;
    proofs;
    replay_cache = (if replay_cache <= 0 then None else Some (Lru.create replay_cache));
    replay_cache_hits = 0;
    gap_memo = Gap_memo.create ();
    verdict_cache = Softborg_solver.Verdict_cache.create ();
  }
