(** N-shard hive federation with a deterministic superstep merge.

    The execution-tree key space is partitioned across shard hives by
    {!Shard_map} path-prefix ranges.  Pods connect to a router, which
    holds a dedicated lossy link to every shard on each pod's behalf —
    per-slot admission control, fair-share shedding, and poison
    quarantine at the shards keep working exactly as with directly
    attached pods, and chaos fault plans apply to every federation
    link.

    Knowledge exchange follows a bulk-synchronous superstep: during a
    round, each shard ingests its routed uploads and buffers their
    canonical re-encodings (the hive's ingest tap); at the superstep
    boundary the buffers travel to the merge coordinator as
    {!Protocol.Knowledge_delta} frames, and the coordinator commits
    complete deltas atomically in (shard index, sequence) order — the
    fixed total order of the merge.  Because knowledge checkpoint
    bytes are a pure function of the ingested evidence multiset, the
    merged knowledge is byte-identical to a single hive fed the same
    traces, for any shard count and any delivery interleaving the
    reliable transport produces.

    Fix synthesis and whole-program proofs run only on the merged
    knowledge (a shard's partial subtree could prove an unsound
    whole-program property); deployed fixes are adopted by every shard
    and broadcast to the pods.  Shard compute (symbolic gap closing
    over each shard's fraction of the frontier) parallelizes across a
    worker pool, which is where the federation's throughput scaling
    comes from. *)

module Rng := Softborg_util.Rng
module Sim := Softborg_net.Sim
module Link := Softborg_net.Link
module Transport := Softborg_net.Transport
module Ir := Softborg_prog.Ir

type config = {
  shard_map : Shard_map.t;
  superstep_interval : float;  (** Seconds between superstep boundaries. *)
  synthesize : bool;
      (** Run the merged analysis (fix synthesis, proofs) after each
          commit.  [false] gives a pure-ingestion federation — the
          vehicle for merge-equality properties. *)
  shard_hive : Hive.config;
      (** Per-shard hive configuration.  [synthesize] is forced off;
          overload protection, pool size, and caps apply per shard. *)
  merged_hive : Hive.config;
  transport : Transport.config;  (** Applied to every federation link. *)
  pool_size : int;
      (** Worker domains for the cross-shard compute phase (default 1:
          inline, no domains). *)
  gap_limit : int;
      (** Frontier gaps each shard may close per compute phase (default
          96), counted after the {!Shard_map.owner_of_verdict} filter —
          each shard derives only the verdicts it owns. *)
}

val default_config : n_shards:int -> unit -> config

type shard_stats = {
  shard : int;
  hive_stats : Hive.stats;
  pending : int;  (** Payloads buffered for the next delta. *)
  gap_memo_hits : int;
  gap_memo_misses : int;
  verdict_cache_hits : int;
  verdict_cache_misses : int;
}

type stats = {
  supersteps : int;
  deltas_sent : int;
  deltas_committed : int;
  payloads_merged : int;
  fix_updates_sent : int;  (** Fix broadcasts from the coordinator. *)
  retracts_sent : int;  (** {!Protocol.Fix_retract} broadcasts (coordinator only). *)
  per_shard : shard_stats list;
}

type t

val create : config:config -> sim:Sim.t -> rng:Rng.t -> unit -> t

val n_shards : t -> int
val merged : t -> Hive.t
val shard_hive : t -> int -> Hive.t
val map : t -> Shard_map.t

val register_program : t -> Ir.t -> Knowledge.t
(** Register on every shard and the coordinator; returns the merged
    knowledge. *)

val attach_pod : t -> Transport.endpoint -> unit
(** Wire the router side of one pod's connection: uploads route to
    their owning shard, downstream pushes (fixes, guidance, pressure)
    relay back to the pod. *)

val start : t -> unit
(** Start every shard's analysis tick and the superstep schedule. *)

val superstep : t -> unit
(** Run one superstep immediately: compute phase, delta flush, ordered
    commit, then (if configured) merged analysis and fix publication.
    Also called by the schedule. *)

val flush : t -> unit
(** Send each shard's pending payloads as a {!Protocol.Knowledge_delta}
    (with a {!Protocol.Frontier_summary} alongside); no-op for shards
    with nothing pending.  Exposed for deterministic test driving. *)

val commit : t -> int
(** Drain complete inbox deltas into the merged hive in (shard, seq)
    order; returns the number of payloads merged. *)

val shutdown : t -> unit
(** Shut down every shard, the coordinator, and the compute pool.
    Idempotent. *)

val stats : t -> stats

val frontier : t -> int -> (string * int * int) list
(** Latest {!Protocol.Frontier_summary} rows received from a shard:
    program digest, distinct paths, traces ingested. *)

val links : t -> Link.t list
(** Every federation link (pod↔router, router↔shard, shard↔coordinator)
    for chaos harnesses to degrade. *)

val checkpoint_shard : t -> int -> string
(** Serialize one shard: its unflushed payload buffer, delta sequence
    counter, and full hive checkpoint. *)

val restore_shard : t -> int -> string -> (int, string) result
(** Restore a shard from {!checkpoint_shard} bytes, as after a crash:
    parse-then-commit, never rewinding the delta sequence counter, and
    re-adopting fixes published since the checkpoint.  Returns the
    number of programs restored. *)
