module Ir = Softborg_prog.Ir
module Sampling = Softborg_trace.Sampling
module Outcome = Softborg_exec.Outcome

module Pred_map = Map.Make (struct
  type t = Sampling.predicate

  let compare = Sampling.predicate_compare
end)

module Site_map = Map.Make (struct
  type t = Ir.site

  let compare = Ir.site_compare
end)

(* Per predicate: number of failing / passing runs in which it was
   observed at least once. *)
type counts = { mutable failing : int; mutable passing : int }

type t = {
  mutable predicates : counts Pred_map.t;
  mutable sites : counts Site_map.t;
  mutable runs : int;
  mutable failing_runs : int;
}

let create () =
  { predicates = Pred_map.empty; sites = Site_map.empty; runs = 0; failing_runs = 0 }

let counts_for t predicate =
  match Pred_map.find_opt predicate t.predicates with
  | Some c -> c
  | None ->
    let c = { failing = 0; passing = 0 } in
    t.predicates <- Pred_map.add predicate c t.predicates;
    c

let site_counts_for t site =
  match Site_map.find_opt site t.sites with
  | Some c -> c
  | None ->
    let c = { failing = 0; passing = 0 } in
    t.sites <- Site_map.add site c t.sites;
    c

let record_observations t ~failed observed =
  t.runs <- t.runs + 1;
  if failed then t.failing_runs <- t.failing_runs + 1;
  let seen_sites = Hashtbl.create 8 in
  List.iter
    (fun (predicate : Sampling.predicate) ->
      let c = counts_for t predicate in
      if failed then c.failing <- c.failing + 1 else c.passing <- c.passing + 1;
      if not (Hashtbl.mem seen_sites predicate.Sampling.site) then begin
        Hashtbl.replace seen_sites predicate.Sampling.site ();
        let sc = site_counts_for t predicate.Sampling.site in
        if failed then sc.failing <- sc.failing + 1 else sc.passing <- sc.passing + 1
      end)
    observed

let record t (sampled : Sampling.t) =
  let observed = List.map fst sampled.Sampling.counts in
  record_observations t ~failed:(Outcome.is_failure sampled.Sampling.outcome) observed

let record_path t ~full_path ~outcome =
  let observed =
    List.sort_uniq Sampling.predicate_compare
      (List.map (fun (site, direction) -> { Sampling.site; direction }) full_path)
  in
  record_observations t ~failed:(Outcome.is_failure outcome) observed

let runs t = t.runs
let failing_runs t = t.failing_runs

type ranked = {
  predicate : Sampling.predicate;
  score : float;
  failure_ratio : float;
  context_ratio : float;
  failing_observations : int;
  passing_observations : int;
}

let ratio f s = if f + s = 0 then 0.0 else float_of_int f /. float_of_int (f + s)

let rank t =
  Pred_map.fold
    (fun predicate c acc ->
      let site_c = site_counts_for t predicate.Sampling.site in
      let failure_ratio = ratio c.failing c.passing in
      let context_ratio = ratio site_c.failing site_c.passing in
      {
        predicate;
        score = failure_ratio -. context_ratio;
        failure_ratio;
        context_ratio;
        failing_observations = c.failing;
        passing_observations = c.passing;
      }
      :: acc)
    t.predicates []
  |> List.sort (fun a b ->
         match Float.compare b.score a.score with
         | 0 -> Int.compare b.failing_observations a.failing_observations
         | c -> c)

let top_predicate t =
  match rank t with
  | best :: _ when best.score > 0.0 -> Some best
  | _ -> None

let localization_rank t ~target =
  let ranking = rank t in
  let rec find i = function
    | [] -> None
    | r :: rest ->
      if Sampling.predicate_equal r.predicate target then Some i else find (i + 1) rest
  in
  find 1 ranking

module Codec = Softborg_util.Codec

let write_site w (site : Ir.site) =
  Codec.Writer.varint w site.Ir.thread;
  Codec.Writer.varint w site.Ir.pc

let read_site r =
  let thread = Codec.Reader.varint r in
  let pc = Codec.Reader.varint r in
  { Ir.thread; pc }

let write_counts w (c : counts) =
  Codec.Writer.varint w c.failing;
  Codec.Writer.varint w c.passing

let read_counts r =
  let failing = Codec.Reader.varint r in
  let passing = Codec.Reader.varint r in
  { failing; passing }

let write w t =
  Codec.Writer.varint w t.runs;
  Codec.Writer.varint w t.failing_runs;
  Codec.Writer.list w
    (fun ((predicate : Sampling.predicate), c) ->
      write_site w predicate.Sampling.site;
      Codec.Writer.bool w predicate.Sampling.direction;
      write_counts w c)
    (Pred_map.bindings t.predicates);
  Codec.Writer.list w
    (fun (site, c) ->
      write_site w site;
      write_counts w c)
    (Site_map.bindings t.sites)

let read r =
  let runs = Codec.Reader.varint r in
  let failing_runs = Codec.Reader.varint r in
  let predicates =
    List.fold_left
      (fun acc (predicate, c) -> Pred_map.add predicate c acc)
      Pred_map.empty
      (Codec.Reader.list r (fun r ->
           let site = read_site r in
           let direction = Codec.Reader.bool r in
           let c = read_counts r in
           ({ Sampling.site; direction }, c)))
  in
  let sites =
    List.fold_left
      (fun acc (site, c) -> Site_map.add site c acc)
      Site_map.empty
      (Codec.Reader.list r (fun r ->
           let site = read_site r in
           let c = read_counts r in
           (site, c)))
  in
  { predicates; sites; runs; failing_runs }
