module Ir = Softborg_prog.Ir
module Testgen = Softborg_symexec.Testgen

type verdict =
  [ `Test of Testgen.test_case
  | `Infeasible
  | `Unknown
  ]

type t = {
  table : (Ir.site * bool, verdict) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0 }

let find t ~site ~direction =
  match Hashtbl.find_opt t.table (site, direction) with
  | Some _ as found ->
    t.hits <- t.hits + 1;
    found
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t ~site ~direction = Hashtbl.mem t.table (site, direction)

let add t ~site ~direction verdict = Hashtbl.replace t.table (site, direction) verdict

let clear t = Hashtbl.reset t.table

let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
