module Ir = Softborg_prog.Ir
module Codec = Softborg_util.Codec
module Sim = Softborg_net.Sim
module Transport = Softborg_net.Transport
module Exec_tree = Softborg_tree.Exec_tree
module Sym_exec = Softborg_symexec.Sym_exec
module Testgen = Softborg_symexec.Testgen
module Env = Softborg_exec.Env

type job = {
  job_id : int;
  gaps : (Ir.site * bool) list;
  budget_per_gap : int;
}

type gap_verdict =
  | Gap_feasible of Testgen.test_case
  | Gap_infeasible
  | Gap_unknown

type job_result = {
  job_id : int;
  verdicts : ((Ir.site * bool) * gap_verdict) list;
  steps_spent : int;
}

(* ---- Wire format ------------------------------------------------------ *)

let write_gap w (site, direction) =
  Codec.Writer.varint w site.Ir.thread;
  Codec.Writer.varint w site.Ir.pc;
  Codec.Writer.bool w direction

let read_gap r =
  let thread = Codec.Reader.varint r in
  let pc = Codec.Reader.varint r in
  let direction = Codec.Reader.bool r in
  ({ Ir.thread; pc }, direction)

let write_fault_plan w = function
  | Env.No_faults -> Codec.Writer.byte w 0
  | Env.Random_faults p ->
    Codec.Writer.byte w 1;
    Codec.Writer.float w p
  | Env.Targeted indices ->
    Codec.Writer.byte w 2;
    Codec.Writer.list w (Codec.Writer.varint w) indices

let read_fault_plan r =
  match Codec.Reader.byte r with
  | 0 -> Env.No_faults
  | 1 -> Env.Random_faults (Codec.Reader.float r)
  | 2 -> Env.Targeted (Codec.Reader.list r Codec.Reader.varint)
  | n -> raise (Codec.Malformed (Printf.sprintf "fault plan tag %d" n))

let encode_job (job : job) =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w job.job_id;
  Codec.Writer.varint w job.budget_per_gap;
  Codec.Writer.list w (write_gap w) job.gaps;
  Codec.Writer.contents w

let decode_job s =
  match
    let r = Codec.Reader.of_string s in
    let job_id = Codec.Reader.varint r in
    let budget_per_gap = Codec.Reader.varint r in
    let gaps = Codec.Reader.list r read_gap in
    { job_id; gaps; budget_per_gap }
  with
  | job -> Ok job
  | exception Codec.Truncated -> Error "truncated job"
  | exception Codec.Malformed msg -> Error msg

let encode_result (result : job_result) =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w result.job_id;
  Codec.Writer.varint w result.steps_spent;
  Codec.Writer.list w
    (fun (gap, verdict) ->
      write_gap w gap;
      match verdict with
      | Gap_feasible test ->
        Codec.Writer.byte w 0;
        Codec.Writer.list w (Codec.Writer.zigzag w) (Array.to_list test.Testgen.inputs);
        write_fault_plan w test.Testgen.fault_plan
      | Gap_infeasible -> Codec.Writer.byte w 1
      | Gap_unknown -> Codec.Writer.byte w 2)
    result.verdicts;
  Codec.Writer.contents w

let decode_result s =
  match
    let r = Codec.Reader.of_string s in
    let job_id = Codec.Reader.varint r in
    let steps_spent = Codec.Reader.varint r in
    let verdicts =
      Codec.Reader.list r (fun r ->
          let gap = read_gap r in
          let verdict =
            match Codec.Reader.byte r with
            | 0 ->
              let inputs = Array.of_list (Codec.Reader.list r Codec.Reader.zigzag) in
              let fault_plan = read_fault_plan r in
              Gap_feasible { Testgen.inputs; fault_plan }
            | 1 -> Gap_infeasible
            | 2 -> Gap_unknown
            | n -> raise (Codec.Malformed (Printf.sprintf "verdict tag %d" n))
          in
          (gap, verdict))
    in
    { job_id; verdicts; steps_spent }
  with
  | result -> Ok result
  | exception Codec.Truncated -> Error "truncated result"
  | exception Codec.Malformed msg -> Error msg

(* ---- Worker ------------------------------------------------------------ *)

module Worker = struct
  type t = {
    program : Ir.t;
    endpoint : Transport.endpoint;
    (* Jobs from successive rounds overlap heavily in path conditions
       (gaps share prefixes, retried gaps recur verbatim); each worker
       keeps its own verdict cache across the jobs it serves. *)
    cache : Softborg_solver.Verdict_cache.t;
    mutable jobs_served : int;
    mutable steps_spent : int;
  }

  let answer t job =
    let before_total = ref 0 in
    let verdicts =
      List.map
        (fun (site, direction) ->
          let config =
            {
              Sym_exec.default_config with
              Sym_exec.solver_budget = job.budget_per_gap;
              max_paths = 128;
              max_steps_per_path = 2000;
            }
          in
          let verdict =
            match Testgen.for_direction ~config ~cache:t.cache t.program ~site ~direction with
            | `Test test -> Gap_feasible test
            | `Infeasible -> Gap_infeasible
            | `Unknown -> Gap_unknown
          in
          (* Account steps coarsely: one budget unit per gap tried. *)
          before_total := !before_total + job.budget_per_gap;
          ((site, direction), verdict))
        job.gaps
    in
    t.jobs_served <- t.jobs_served + 1;
    t.steps_spent <- t.steps_spent + !before_total;
    { job_id = job.job_id; verdicts; steps_spent = !before_total }

  let create ~program ~endpoint () =
    let t =
      {
        program;
        endpoint;
        cache = Softborg_solver.Verdict_cache.create ();
        jobs_served = 0;
        steps_spent = 0;
      }
    in
    Transport.on_receive endpoint (fun payload ->
        match decode_job payload with
        | Error _ -> ()
        | Ok job -> Transport.send endpoint (encode_result (answer t job)));
    t

  let jobs_served t = t.jobs_served
  let steps_spent t = t.steps_spent
end

(* ---- Coordinator --------------------------------------------------------- *)

module Coordinator = struct
  type config = {
    round_interval : float;
    gaps_per_job : int;
    budget_per_gap : int;
    policy : Allocate.policy;
    engine : Softborg_exec.Engine.t;
  }

  let default_config =
    {
      round_interval = 5.0;
      gaps_per_job = 4;
      budget_per_gap = 20_000;
      policy = Allocate.Mean_variance { risk_aversion = 0.5 };
      engine = Softborg_exec.Engine.Vm;
    }

  type progress = {
    rounds : int;
    jobs_sent : int;
    results_received : int;
    gaps_resolved : int;
    tests_found : Testgen.test_case list;
    worker_steps : int;
  }

  (* Gaps are grouped into "subtrees" by their top-level branch site —
     the coordinator's dynamic partition of the execution tree.  Each
     subtree is an Allocate task whose reward is gaps resolved per
     job. *)
  type t = {
    config : config;
    sim : Sim.t;
    program : Ir.t;
    tree : Exec_tree.t;
    workers : Transport.endpoint list;
    mutable tasks : (int * Allocate.task) list;  (* subtree key -> task *)
    mutable next_job : int;
    mutable next_worker : int;
    mutable in_flight : (int, int) Hashtbl.t;  (* job id -> subtree key *)
    mutable given_up : (Ir.site * bool) list;  (* unknown gaps, retired *)
    mutable decided : (Ir.site * bool) list;  (* directions already settled *)
    mutable rounds : int;
    mutable jobs_sent : int;
    mutable results_received : int;
    mutable gaps_resolved : int;
    mutable tests_found : Testgen.test_case list;
    mutable worker_steps : int;
  }

  let subtree_key (gap : Exec_tree.gap) =
    match gap.Exec_tree.prefix with
    | [] -> gap.Exec_tree.site.Ir.pc
    | (site, _) :: _ -> site.Ir.pc

  let task_for t key =
    match List.assoc_opt key t.tasks with
    | Some task -> task
    | None ->
      let task = Allocate.task key in
      t.tasks <- (key, task) :: t.tasks;
      task

  let direction_in list site direction =
    List.exists (fun (s, d) -> Ir.site_equal s site && d = direction) list

  let open_gaps t =
    List.filter
      (fun (gap : Exec_tree.gap) ->
        (not (direction_in t.given_up gap.Exec_tree.site gap.Exec_tree.missing))
        && not (direction_in t.decided gap.Exec_tree.site gap.Exec_tree.missing))
      (Exec_tree.frontier t.tree)

  let handle_result t payload =
    match decode_result payload with
    | Error _ -> ()
    | Ok result ->
      t.results_received <- t.results_received + 1;
      t.worker_steps <- t.worker_steps + result.steps_spent;
      let resolved_here = ref 0 in
      List.iter
        (fun ((site, direction), verdict) ->
          match verdict with
          | Gap_feasible test when not (direction_in t.decided site direction) ->
            incr resolved_here;
            t.gaps_resolved <- t.gaps_resolved + 1;
            t.tests_found <- test :: t.tests_found;
            (* Cover the direction in the tree by running the test
               centrally (the coordinator validates worker results —
               workers are untrusted end-user machines). *)
            let env =
              Env.make ~fault_plan:test.Testgen.fault_plan ~seed:1 ~inputs:test.Testgen.inputs
                ()
            in
            let r =
              Softborg_exec.Engine.run ~engine:t.config.engine ~program:t.program ~env
                ~sched:Softborg_exec.Sched.Round_robin ()
            in
            let covers =
              List.exists
                (fun (s, d) -> Ir.site_equal s site && d = direction)
                r.Softborg_exec.Interp.full_path
            in
            if covers then begin
              ignore
                (Exec_tree.add_path t.tree r.Softborg_exec.Interp.full_path
                   r.Softborg_exec.Interp.outcome);
              t.decided <- (site, direction) :: t.decided
            end
            else
              (* A bogus result: retire the gap as unknown rather than
                 trusting the worker. *)
              t.given_up <- (site, direction) :: t.given_up
          | Gap_feasible _ -> ()  (* already settled by an earlier result *)
          | Gap_infeasible when direction_in t.decided site direction -> ()
          | Gap_infeasible ->
            incr resolved_here;
            t.gaps_resolved <- t.gaps_resolved + 1;
            List.iter
              (fun (gap : Exec_tree.gap) ->
                if
                  Ir.site_equal gap.Exec_tree.site site && gap.Exec_tree.missing = direction
                then
                  ignore
                    (Exec_tree.mark_infeasible t.tree ~prefix:gap.Exec_tree.prefix
                       ~site:gap.Exec_tree.site ~direction:gap.Exec_tree.missing))
              (Exec_tree.frontier t.tree);
            t.decided <- (site, direction) :: t.decided
          | Gap_unknown -> t.given_up <- (site, direction) :: t.given_up)
        result.verdicts;
      (* Reward the subtree this job belonged to. *)
      (match Hashtbl.find_opt t.in_flight result.job_id with
      | Some key ->
        Hashtbl.remove t.in_flight result.job_id;
        Allocate.observe_reward (task_for t key) (float_of_int !resolved_here)
      | None -> ())

  let create ?(config = default_config) ~sim ~program ~tree ~workers () =
    let t =
      {
        config;
        sim;
        program;
        tree;
        workers;
        tasks = [];
        next_job = 0;
        next_worker = 0;
        in_flight = Hashtbl.create 16;
        given_up = [];
        decided = [];
        rounds = 0;
        jobs_sent = 0;
        results_received = 0;
        gaps_resolved = 0;
        tests_found = [];
        worker_steps = 0;
      }
    in
    List.iter (fun endpoint -> Transport.on_receive endpoint (handle_result t)) workers;
    t

  let send_job t key gaps =
    let job_id = t.next_job in
    t.next_job <- job_id + 1;
    let job = { job_id; gaps; budget_per_gap = t.config.budget_per_gap } in
    Hashtbl.replace t.in_flight job_id key;
    let worker = List.nth t.workers (t.next_worker mod List.length t.workers) in
    t.next_worker <- t.next_worker + 1;
    t.jobs_sent <- t.jobs_sent + 1;
    Transport.send worker (encode_job job)

  let round t =
    t.rounds <- t.rounds + 1;
    let gaps = open_gaps t in
    if gaps <> [] && t.workers <> [] then begin
      (* Group gaps by subtree and allocate workers across subtrees. *)
      let by_subtree = Hashtbl.create 8 in
      List.iter
        (fun gap ->
          let key = subtree_key gap in
          ignore (task_for t key);
          Hashtbl.replace by_subtree key
            ((gap.Exec_tree.site, gap.Exec_tree.missing)
            :: Option.value ~default:[] (Hashtbl.find_opt by_subtree key)))
        gaps;
      let tasks = List.map snd t.tasks in
      let live_tasks =
        List.filter (fun task -> Hashtbl.mem by_subtree task.Allocate.task_id) tasks
      in
      if live_tasks <> [] then begin
        let allocation =
          Allocate.allocate t.config.policy ~nodes:(List.length t.workers) live_tasks
        in
        List.iter
          (fun (key, n_workers) ->
            if n_workers > 0 then begin
              let gaps =
                List.sort_uniq compare
                  (Option.value ~default:[] (Hashtbl.find_opt by_subtree key))
              in
              (* One job per allocated worker, splitting the subtree's
                 gaps between them. *)
              let chunks = max 1 n_workers in
              let per_chunk = max 1 (min t.config.gaps_per_job ((List.length gaps + chunks - 1) / chunks)) in
              let rec split gaps sent =
                match gaps with
                | [] -> ()
                | _ when sent >= chunks -> ()
                | gaps ->
                  let batch = List.filteri (fun i _ -> i < per_chunk) gaps in
                  let rest = List.filteri (fun i _ -> i >= per_chunk) gaps in
                  send_job t key batch;
                  split rest (sent + 1)
              in
              split gaps 0
            end)
          allocation
      end
    end

  let rec arm t =
    Sim.schedule t.sim ~delay:t.config.round_interval (fun () ->
        round t;
        arm t)

  let start t = arm t

  let progress t =
    {
      rounds = t.rounds;
      jobs_sent = t.jobs_sent;
      results_received = t.results_received;
      gaps_resolved = t.gaps_resolved;
      tests_found = t.tests_found;
      worker_steps = t.worker_steps;
    }

  let done_ t = open_gaps t = []
end
