module Ir = Softborg_prog.Ir
module Env = Softborg_exec.Env
module Interp = Softborg_exec.Interp
module Exec_tree = Softborg_tree.Exec_tree
module Sym_exec = Softborg_symexec.Sym_exec
module Schedule_explore = Softborg_conc.Schedule_explore

type property =
  | Assert_safety
  | Deadlock_freedom

type strength =
  | Proved of { domain : int * int }
  | Tested of { executions : int; schedules : int }

type proof = {
  id : int;
  property : property;
  strength : strength;
  epoch : int;
  distinct_paths : int;
  mutable valid : bool;
}

let property_name = function
  | Assert_safety -> "assert-safety"
  | Deadlock_freedom -> "deadlock-freedom"

let strength_name = function
  | Proved _ -> "proved"
  | Tested _ -> "tested"

let pp fmt proof =
  Format.fprintf fmt "proof#%d %s (%s, paths=%d, epoch=%d%s)" proof.id
    (property_name proof.property) (strength_name proof.strength) proof.distinct_paths
    proof.epoch
    (if proof.valid then "" else ", INVALID")

let next_proof_id = ref 0

let make_proof property strength epoch distinct_paths =
  incr next_proof_id;
  { id = !next_proof_id; property; strength; epoch; distinct_paths; valid = true }

let close_gaps ?config ?cache ?memo ?owned ?(limit = 24) program tree =
  let closed = ref 0 in
  let verdict_for site direction =
    (* Solving through [Testgen.for_direction] (rather than
       [Sym_exec.direction_feasible] directly) classifies identically
       and lets the prover share one memo table with the planner. *)
    let solve () = Softborg_symexec.Testgen.for_direction ?config ?cache program ~site ~direction in
    match memo with
    | None -> solve ()
    | Some memo -> (
      match Gap_memo.find memo ~site ~direction with
      | Some verdict -> verdict
      | None ->
        let verdict = solve () in
        Gap_memo.add memo ~site ~direction verdict;
        verdict)
  in
  (* Only the hottest [limit] gaps are pulled from the index; the
     frontier is never materialized in full. *)
  Exec_tree.frontier_seq tree
  |> (match owned with None -> Fun.id | Some owned -> Seq.filter owned)
  |> Seq.take (max 0 limit)
  |> Seq.iter (fun (gap : Exec_tree.gap) ->
         match verdict_for gap.Exec_tree.site gap.Exec_tree.missing with
         | `Infeasible ->
           if
             Exec_tree.mark_infeasible tree ~prefix:gap.Exec_tree.prefix
               ~site:gap.Exec_tree.site ~direction:gap.Exec_tree.missing
           then incr closed
         | `Test _ | `Unknown -> ());
  !closed

let attempt_assert_safety ?config ?cache ~program ~tree ~crash_observations ~epoch () =
  if crash_observations > 0 then None
  else begin
    let cfg = Option.value ~default:Sym_exec.default_config config in
    let single_threaded = Array.length program.Ir.threads <= 1 in
    if single_threaded then begin
      let report = Sym_exec.explore ?config ?cache program Softborg_symexec.Consistency.Strict in
      let fully_solved =
        List.for_all
          (fun (p : Sym_exec.path) ->
            match p.Sym_exec.solver_verdict with `Sat | `Unsat -> true | `Timeout | `Unsolved -> false)
          report.Sym_exec.paths
      in
      let feasible_crash =
        List.exists
          (fun (p : Sym_exec.path) ->
            match (p.Sym_exec.outcome, p.Sym_exec.solver_verdict) with
            | Sym_exec.Crashed _, `Sat -> true
            | _ -> false)
          report.Sym_exec.paths
      in
      let clean_paths_terminate =
        List.for_all
          (fun (p : Sym_exec.path) ->
            match (p.Sym_exec.outcome, p.Sym_exec.solver_verdict) with
            | _, `Unsat -> true
            | (Sym_exec.Completed | Sym_exec.Path_deadlock), _ -> true
            | Sym_exec.Crashed _, _ -> false
            | Sym_exec.Step_limit, _ -> false)
          report.Sym_exec.paths
      in
      if
        (not report.Sym_exec.truncated)
        && fully_solved && (not feasible_crash) && clean_paths_terminate
      then
        Some
          (make_proof Assert_safety
             (Proved { domain = cfg.Sym_exec.domain })
             epoch
             (Exec_tree.n_distinct_paths tree))
      else if Exec_tree.n_executions tree > 0 then
        Some
          (make_proof Assert_safety
             (Tested { executions = Exec_tree.n_executions tree; schedules = 1 })
             epoch
             (Exec_tree.n_distinct_paths tree))
      else None
    end
    else if Exec_tree.n_executions tree > 0 then
      Some
        (make_proof Assert_safety
           (Tested { executions = Exec_tree.n_executions tree; schedules = 0 })
           epoch
           (Exec_tree.n_distinct_paths tree))
    else None
  end

let attempt_deadlock_freedom ?(max_runs = 100) ~program ~tree ~deadlock_observations
    ~lock_cycles ~make_env ~hooks ~epoch () =
  if deadlock_observations > 0 || lock_cycles <> [] then None
  else begin
    let takes_locks = Ir.lock_sites program <> [] in
    let single_threaded = Array.length program.Ir.threads <= 1 in
    if (not takes_locks) || single_threaded then
      (* A single thread can still self-deadlock by re-acquiring; but
         that is a lock-order self-cycle, excluded above only if
         observed.  Conservatively require no locks for Proved when
         single-threaded-with-locks hasn't been explored. *)
      if not takes_locks then
        Some
          (make_proof Deadlock_freedom
             (Proved { domain = Sym_exec.default_config.Sym_exec.domain })
             epoch
             (Exec_tree.n_distinct_paths tree))
      else
        Some
          (make_proof Deadlock_freedom
             (Tested { executions = Exec_tree.n_executions tree; schedules = 1 })
             epoch
             (Exec_tree.n_distinct_paths tree))
    else begin
      let result = Schedule_explore.explore ~max_runs ~hooks ~program ~make_env () in
      let deadlocked =
        List.exists
          (fun (o, _) ->
            match o with Softborg_exec.Outcome.Deadlock _ -> true | _ -> false)
          result.Schedule_explore.outcomes
      in
      if deadlocked then None
      else
        Some
          (make_proof Deadlock_freedom
             (Tested
                {
                  executions = Exec_tree.n_executions tree;
                  schedules = result.Schedule_explore.distinct_schedules;
                })
             epoch
             (Exec_tree.n_distinct_paths tree))
    end
  end

let invalidate proofs ~current_epoch =
  List.fold_left
    (fun acc proof ->
      if proof.valid && proof.epoch < current_epoch then begin
        proof.valid <- false;
        acc + 1
      end
      else acc)
    0 proofs

module Codec = Softborg_util.Codec

(* The id is a process-local ticket (like the replay-cache hit count):
   a hive that restores a checkpoint and re-derives the same proofs
   mints different ids, and checkpoint bytes must stay a pure function
   of the evidence.  So it is not serialized; readers mint a fresh
   one. *)
let write_proof w proof =
  Codec.Writer.byte w (match proof.property with Assert_safety -> 0 | Deadlock_freedom -> 1);
  (match proof.strength with
  | Proved { domain = lo, hi } ->
    Codec.Writer.byte w 0;
    Codec.Writer.zigzag w lo;
    Codec.Writer.zigzag w hi
  | Tested { executions; schedules } ->
    Codec.Writer.byte w 1;
    Codec.Writer.varint w executions;
    Codec.Writer.varint w schedules);
  Codec.Writer.varint w proof.epoch;
  Codec.Writer.varint w proof.distinct_paths;
  Codec.Writer.bool w proof.valid

let read_proof r =
  let property =
    match Codec.Reader.byte r with
    | 0 -> Assert_safety
    | 1 -> Deadlock_freedom
    | n -> raise (Codec.Malformed (Printf.sprintf "proof property tag %d" n))
  in
  let strength =
    match Codec.Reader.byte r with
    | 0 ->
      let lo = Codec.Reader.zigzag r in
      let hi = Codec.Reader.zigzag r in
      Proved { domain = (lo, hi) }
    | 1 ->
      let executions = Codec.Reader.varint r in
      let schedules = Codec.Reader.varint r in
      Tested { executions; schedules }
    | n -> raise (Codec.Malformed (Printf.sprintf "proof strength tag %d" n))
  in
  let epoch = Codec.Reader.varint r in
  let distinct_paths = Codec.Reader.varint r in
  let valid = Codec.Reader.bool r in
  incr next_proof_id;
  { id = !next_proof_id; property; strength; epoch; distinct_paths; valid }
