(** The hive service (paper §3, Figure 1).

    The hive sits at the center of the platform: it receives by-product
    uploads from pods over the simulated network, folds them into
    per-program {!Knowledge}, runs a periodic analysis tick that
    synthesizes fixes and plans guidance, pushes both back to the pods,
    and attempts cumulative proofs.

    Three operating modes make the paper's §5 comparison a switch, not
    a separate codebase:

    - [Full]: the SoftBorg loop — automatic fix synthesis, guidance,
      proofs;
    - [Wer]: WER-style crash reporting — outcome buckets only; a
      simulated human fixes a bucket once it has enough reports, after
      a development delay;
    - [Cbi]: cooperative bug isolation — sampled predicate reports;
      the human acts faster because statistical isolation localizes
      the bug first. *)

module Ir := Softborg_prog.Ir
module Sim := Softborg_net.Sim
module Transport := Softborg_net.Transport
module Sym_exec := Softborg_symexec.Sym_exec

type mode =
  | Full
  | Wer
  | Cbi

val mode_name : mode -> string

type config = {
  mode : mode;
  analysis_interval : float;  (** Seconds between analysis ticks. *)
  guidance_max : int;  (** Directives per program per tick. *)
  human_fix_threshold : int;  (** Reports before the human acts (Wer/Cbi). *)
  human_fix_delay : float;  (** Seconds from threshold to deployed fix. *)
  cbi_localization_speedup : float;
      (** Cbi human delay = [human_fix_delay /. cbi_localization_speedup]
          — statistical localization shortens debugging. *)
  prove : bool;  (** Attempt cumulative proofs on each tick (Full only). *)
  symexec_config : Sym_exec.config option;
  pool_size : int;
      (** Worker domains for parallel symbolic gap solving (default 1 =
          no domains, fully sequential).  Results are merged in
          deterministic gap order, so any pool size produces the same
          analysis output — only wall-clock time changes.  [Allocate]'s
          portfolio weights split these workers across programs. *)
}

val default_config : mode -> config

type stats = {
  traces_received : int;
  messages_received : int;
  analysis_ticks : int;
  fixes_deployed : int;
  fix_updates_sent : int;
  guidance_sent : int;
  proofs_established : int;
  human_fixes_scheduled : int;
  checkpoints_taken : int;  (** {!checkpoint} calls by this hive process. *)
  restores_completed : int;  (** Successful {!restore} calls. *)
}

type t

val create : ?config:config -> sim:Sim.t -> unit -> t

val register_program : t -> Ir.t -> Knowledge.t
(** Tell the hive about a program build (idempotent per digest). *)

val knowledge : t -> digest:string -> Knowledge.t option
val knowledge_list : t -> Knowledge.t list

val attach_pod : t -> Transport.endpoint -> unit
(** Wire up the hive side of one pod's connection. *)

val start : t -> unit
(** Schedule the periodic analysis tick on the simulator. *)

val tick : t -> unit
(** Run one analysis tick immediately (also called by the schedule). *)

val shutdown : t -> unit
(** Join the worker pool's domains, if any.  Idempotent; a hive with
    the default [pool_size = 1] shuts down as a no-op.  The hive's
    knowledge stays readable afterwards — only parallel solving
    capacity is released. *)

val stats : t -> stats

val checkpoint : t -> string
(** Serialize the hive's durable state: every program's {!Knowledge}
    (via {!Checkpoint}), the stats counters, and the analysis throttle
    state (pending human fixes, issued guidance, per-program proof
    state).  Equal hive states checkpoint to equal bytes.  Endpoints
    and the simulator are deliberately excluded — a restored hive
    reattaches to whatever pods are alive. *)

val restore : ?replay_cache:int -> t -> string -> (int, string) result
(** Replace the hive's durable state with a checkpoint's, as after a
    crash and restart.  Returns the number of programs restored.  A
    malformed or truncated checkpoint returns [Error] and leaves the
    hive untouched.  Programs registered after the checkpoint was
    taken are kept. *)
