(** The hive service (paper §3, Figure 1).

    The hive sits at the center of the platform: it receives by-product
    uploads from pods over the simulated network, folds them into
    per-program {!Knowledge}, runs a periodic analysis tick that
    synthesizes fixes and plans guidance, pushes both back to the pods,
    and attempts cumulative proofs.

    Three operating modes make the paper's §5 comparison a switch, not
    a separate codebase:

    - [Full]: the SoftBorg loop — automatic fix synthesis, guidance,
      proofs;
    - [Wer]: WER-style crash reporting — outcome buckets only; a
      simulated human fixes a bucket once it has enough reports, after
      a development delay;
    - [Cbi]: cooperative bug isolation — sampled predicate reports;
      the human acts faster because statistical isolation localizes
      the bug first. *)

module Ir := Softborg_prog.Ir
module Sim := Softborg_net.Sim
module Transport := Softborg_net.Transport
module Sym_exec := Softborg_symexec.Sym_exec
module Wire := Softborg_trace.Wire

type mode =
  | Full
  | Wer
  | Cbi

val mode_name : mode -> string

(** What to do when an upload arrives and the ingest queue is full. *)
type shed_policy =
  | Drop_newest  (** Shed the arriving upload. *)
  | Drop_oldest  (** Evict the head of the queue to admit the arrival. *)
  | Prefer_failures
      (** Class-aware fair-share shedding: evict a success-class upload
          from the pod occupying the most queue slots (oldest first,
          lowest slot on ties).  A failure-class upload is never shed
          while any success-class upload is queued — failures carry the
          debugging signal. *)

type overload_config = {
  queue_bound : int;  (** Max queued uploads; the hard bound Q. *)
  service_interval : float;
      (** Seconds of hive ingest capacity one upload consumes.  Arrival
          faster than this builds backlog; backlog builds pressure. *)
  shed_policy : shed_policy;
  caps : Wire.caps;  (** Resource caps enforced on every decoded frame. *)
  quarantine_threshold : int;
      (** Malformed frames from one pod before it is muted. *)
  mute_cooldown : float;  (** Seconds a misbehaving pod stays muted. *)
}

val default_overload_config : overload_config
(** Bound 64, 20ms service, [Prefer_failures], {!Wire.default_caps},
    mute after 5 poison frames for 120s. *)

type config = {
  mode : mode;
  analysis_interval : float;  (** Seconds between analysis ticks. *)
  guidance_max : int;  (** Directives per program per tick. *)
  human_fix_threshold : int;  (** Reports before the human acts (Wer/Cbi). *)
  human_fix_delay : float;  (** Seconds from threshold to deployed fix. *)
  cbi_localization_speedup : float;
      (** Cbi human delay = [human_fix_delay /. cbi_localization_speedup]
          — statistical localization shortens debugging. *)
  prove : bool;  (** Attempt cumulative proofs on each tick (Full only). *)
  symexec_config : Sym_exec.config option;
  pool_size : int;
      (** Worker domains for parallel symbolic gap solving (default 1 =
          no domains, fully sequential).  Results are merged in
          deterministic gap order, so any pool size produces the same
          analysis output — only wall-clock time changes.  [Allocate]'s
          portfolio weights split these workers across programs. *)
  overload : overload_config option;
      (** [None] (the default) keeps the legacy unbounded synchronous
          ingest path, byte-identical to builds without overload
          protection.  [Some _] enables admission control, bounded
          queueing with shedding, pod backpressure signalling, and
          poison-trace quarantine. *)
  synthesize : bool;
      (** [true] (the default) lets the analysis tick propose and
          deploy fixes.  Federation shards run with [false]: fix ids
          and epochs are minted only by the merge coordinator, whose
          knowledge sees whole-program evidence. *)
  announce_basis : bool;
      (** [true] makes the analysis tick broadcast one
          {!Protocol.Basis_update} per program (the first trace seen
          with branch bits), so pods can delta-encode uploads against a
          shared prefix basis.  Default [false]: the extra broadcasts
          would perturb seeded runs.  Bases are a wire-plane
          accelerator and are not checkpointed. *)
  rollout : Fix_lifecycle.config option;
      (** [Some _] stages every new fix through a canary cohort with
          health-verdict promotion/retraction (see {!Fix_lifecycle}).
          Default [None]: fixes deploy fleet-wide instantly,
          byte-identical to builds without staged rollout. *)
}

val default_config : mode -> config

type stats = {
  traces_received : int;
  messages_received : int;
  analysis_ticks : int;
  fixes_deployed : int;
  fix_updates_sent : int;
  guidance_sent : int;
  proofs_established : int;
  human_fixes_scheduled : int;
  checkpoints_taken : int;  (** {!checkpoint} calls by this hive process. *)
  restores_completed : int;  (** Successful {!restore} calls. *)
  shed_success : int;  (** Success-class uploads shed under overload. *)
  shed_failure : int;  (** Failure-class uploads shed (last resort). *)
  quarantined_frames : int;  (** Malformed frames rejected at the boundary. *)
  pods_muted : int;  (** Mute episodes triggered by the quarantine ledger. *)
  muted_drops : int;  (** Messages dropped because their pod was muted. *)
  pressure_updates_sent : int;  (** Standalone pressure broadcasts. *)
  peak_queue_depth : int;  (** High-water mark of the ingest queue. *)
  batch_frames_received : int;  (** {!Protocol.Batch_upload} frames decoded. *)
  batch_records_received : int;  (** Trace records across all batches. *)
  basis_updates_sent : int;  (** {!Protocol.Basis_update} broadcasts. *)
  fix_promotions : int;  (** Canary fixes promoted fleet-wide. *)
  fix_retractions : int;  (** Canary fixes condemned by the health test. *)
  retracts_sent : int;  (** {!Protocol.Fix_retract} broadcasts. *)
  quarantined_fix_traces : int;
      (** Uploads rejected because their attribution named a retracted
          fix (summed over programs; runtime-only, not checkpointed). *)
}

type t

val create : ?config:config -> sim:Sim.t -> unit -> t

val register_program : t -> Ir.t -> Knowledge.t
(** Tell the hive about a program build (idempotent per digest). *)

val knowledge : t -> digest:string -> Knowledge.t option
val knowledge_list : t -> Knowledge.t list

val adopt_fixes :
  t -> digest:string -> fixes:Fixgen.fix list -> epoch:int -> retracted:int list -> unit
(** Replace a program's fix set, epoch, and retracted set with the
    federation coordinator's (no-op for an unknown digest or a
    non-advancing epoch).  See {!Knowledge.adopt_fixes}. *)

val inject_fix : t -> digest:string -> Fixgen.kind -> unit
(** Install an externally-decided fix (no-op for an unknown digest):
    minted via {!Knowledge.add_fix} — canary-staged when a rollout
    config is attached — and broadcast downstream.  The chaos
    harness's bad-fix saboteur enters here. *)

val ingest_payload : t -> string -> unit
(** Process one encoded protocol frame synchronously, exactly as the
    legacy receive path would — the federation coordinator commits
    shard delta payloads through this. *)

val set_ingest_tap : t -> (string -> unit) -> unit
(** Observe the canonical re-encoding of every upload this hive
    ingests (after admission control and poison rejection).  A
    federation shard's superstep delta is the tap's output since the
    previous flush. *)

val attach_pod : t -> Transport.endpoint -> unit
(** Wire up the hive side of one pod's connection.  With overload
    protection enabled, each attachment gets a slot in the quarantine
    ledger and fair-share accounting. *)

val inject : t -> slot:int -> string -> unit
(** Feed one encoded protocol frame through the real receive path
    without a transport — the admission-controlled path when overload
    protection is on, the legacy synchronous path otherwise.  [slot]
    stands in for the pod attachment slot (fair-share shedding,
    quarantine ledger).  Load harnesses use this to simulate fleets
    far larger than the endpoint table. *)

val announce_bases : t -> unit
(** Broadcast a {!Protocol.Basis_update} for every program that has a
    basis candidate but no announced basis yet (normally done by the
    analysis tick when [config.announce_basis] is set; exposed so
    tests and benches can force announcement deterministically). *)

val pressure_level : t -> int
(** Current load level (0–3; always 0 without overload protection). *)

val queue_length : t -> int
(** Uploads admitted but not yet ingested (always 0 without overload
    protection). *)

val start : t -> unit
(** Schedule the periodic analysis tick on the simulator. *)

val tick : t -> unit
(** Run one analysis tick immediately (also called by the schedule). *)

val shutdown : t -> unit
(** Join the worker pool's domains, if any.  Idempotent; a hive with
    the default [pool_size = 1] shuts down as a no-op.  The hive's
    knowledge stays readable afterwards — only parallel solving
    capacity is released. *)

val stats : t -> stats

val checkpoint : t -> string
(** Serialize the hive's durable state: every program's {!Knowledge}
    (via {!Checkpoint}), the stats counters, and the analysis throttle
    state (pending human fixes, issued guidance, per-program proof
    state).  Equal hive states checkpoint to equal bytes.  Endpoints
    and the simulator are deliberately excluded — a restored hive
    reattaches to whatever pods are alive. *)

val restore : ?replay_cache:int -> t -> string -> (int, string) result
(** Replace the hive's durable state with a checkpoint's, as after a
    crash and restart.  Returns the number of programs restored.  A
    malformed or truncated checkpoint returns [Error] and leaves the
    hive untouched.  Programs registered after the checkpoint was
    taken are kept. *)
