(** Deterministic partition of the execution-tree key space across
    federation shards.

    A shard map assigns every branch-decision path to exactly one shard
    by interpreting the first [prefix_bits] decisions as an unsigned
    value (most-significant-first, zero-padded for shorter paths) and
    scaling it into [n_shards] contiguous ranges.  Contiguity keeps
    each shard's subtrees path-prefix-coherent; the zero-padding makes
    the owner of a short prefix the rendezvous shard for the LCA of any
    cross-shard path paste.  The map is a pure value — two routers (or
    a router before and after a restart) holding equal maps route
    identically, which the federation's determinism proof relies on. *)

module Bitvec := Softborg_util.Bitvec
module Codec := Softborg_util.Codec

type t

val create : ?prefix_bits:int -> n_shards:int -> unit -> t
(** [prefix_bits] defaults to 8 (256 ranges).  Raises [Invalid_argument]
    unless [n_shards >= 1] and [1 <= prefix_bits <= 20]. *)

val n_shards : t -> int
val prefix_bits : t -> int
val equal : t -> t -> bool

val owner_of_bits : t -> Bitvec.t -> int
(** Owner of a full branch-decision vector (a trace's path). *)

val owner_of_prefix : t -> bool list -> int
(** Owner of a (possibly short) path prefix under zero-padding — the
    rendezvous owner for the subtree rooted at that prefix. *)

val owner_of_digest : t -> string -> int
(** Owner for path-less work (sampled reports), by a deterministic
    seed-free hash of the program digest. *)

val owner_of_verdict :
  t -> program:string -> thread:int -> pc:int -> direction:bool -> int
(** Owner of one frontier-gap verdict.  Verdicts are path-independent —
    the solver keys its directed exploration by (site, direction), not
    by the prefix the gap appears under — and a hot site recurs in
    every shard's subtree, so verdict work is partitioned by a hash of
    (program digest, site, direction) rather than by path range:
    each distinct verdict is derived on exactly one shard. *)

val pp : Format.formatter -> t -> unit

val write : Codec.Writer.t -> t -> unit

val read : Codec.Reader.t -> t
(** Raises {!Softborg_util.Codec.Malformed} on out-of-range fields. *)
