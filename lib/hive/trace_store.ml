module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec

type entry = {
  mutable count : int;
  size : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable received : int;
  mutable bytes_received : int;
  mutable bytes_stored : int;
  (* Admissions that had to re-encode because the caller did not hand
     over prepared canonical bytes.  The hive's serving paths prepare
     every trace exactly once at decode time, so this stays 0 there —
     a regression guard against the double-encode creeping back in.
     Not checkpointed: knowledge bytes are a pure function of the
     ingested evidence, not of which code path delivered it. *)
  mutable fallback_encodes : int;
}

let create () =
  {
    entries = Hashtbl.create 64;
    received = 0;
    bytes_received = 0;
    bytes_stored = 0;
    fallback_encodes = 0;
  }

(* Content digest input: everything except the per-upload identifiers
   (trace id and reporting pod) — two pods reporting the same execution
   content deduplicate. *)
let encode_content (trace : Trace.t) =
  Wire.encode { trace with Trace.trace_id = Softborg_util.Ids.Trace_id.of_int 0; pod = 0 }

let content_key trace = Digest.to_hex (Digest.string (encode_content trace))

type prepared = {
  p_trace : Trace.t;
  p_encoded : string;
  p_key : string;
  p_size : int;
}

(* One encode serves everything downstream: the canonical wire bytes
   (federation superstep deltas re-ship them verbatim), the content
   digest, and the byte accounting.  The content buffer differs from
   the real encoding only in the pod varint — spliced to a single zero
   byte instead of encoding the whole trace a second time.  Pure:
   safe to run on worker domains. *)
let prepare (trace : Trace.t) =
  let encoded = Wire.encode trace in
  let dlen = String.length trace.Trace.program_digest in
  let off = Codec.varint_len dlen + dlen in
  let plen = Codec.varint_len trace.Trace.pod in
  let content =
    String.concat ""
      [
        String.sub encoded 0 off;
        "\x00";
        String.sub encoded (off + plen) (String.length encoded - off - plen);
      ]
  in
  {
    p_trace = trace;
    p_encoded = encoded;
    p_key = Digest.to_hex (Digest.string content);
    p_size = String.length encoded;
  }

let with_trace prepared trace = { prepared with p_trace = trace }

type admission =
  | Novel
  | Duplicate of int

let record t key size =
  t.received <- t.received + 1;
  t.bytes_received <- t.bytes_received + size;
  match Hashtbl.find_opt t.entries key with
  | Some entry ->
    entry.count <- entry.count + 1;
    (key, Duplicate entry.count)
  | None ->
    Hashtbl.replace t.entries key { count = 1; size };
    t.bytes_stored <- t.bytes_stored + size;
    (key, Novel)

let admit_keyed ?prepared t (trace : Trace.t) =
  match prepared with
  | Some p -> record t p.p_key p.p_size
  | None ->
    (* No prepared bytes: encode here.  The canonical buffer differs
       from the pod's actual upload only in the pod varint (a zero, one
       byte), so the wire size is recovered arithmetically instead of
       encoding the trace a second time. *)
    t.fallback_encodes <- t.fallback_encodes + 1;
    let encoded = encode_content trace in
    let key = Digest.to_hex (Digest.string encoded) in
    let size = String.length encoded - 1 + Codec.varint_len trace.Trace.pod in
    record t key size

let admit t trace = snd (admit_keyed t trace)
let fallback_encodes t = t.fallback_encodes

let distinct t = Hashtbl.length t.entries
let received t = t.received
let bytes_received t = t.bytes_received
let bytes_stored t = t.bytes_stored

let dedup_ratio t =
  if t.bytes_stored = 0 then 1.0
  else float_of_int t.bytes_received /. float_of_int t.bytes_stored

let multiplicity t trace =
  match Hashtbl.find_opt t.entries (content_key trace) with
  | Some entry -> entry.count
  | None -> 0

let heaviest t ~n =
  Hashtbl.fold (fun key entry acc -> (key, entry.count) :: acc) t.entries []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  |> List.filteri (fun i _ -> i < n)

(* Entries sorted by digest so equal stores serialize to equal bytes
   regardless of hashtable history. *)
let write w t =
  Codec.Writer.varint w t.received;
  Codec.Writer.varint w t.bytes_received;
  Codec.Writer.varint w t.bytes_stored;
  Codec.Writer.list w
    (fun (key, entry) ->
      Codec.Writer.bytes w key;
      Codec.Writer.varint w entry.count;
      Codec.Writer.varint w entry.size)
    (Hashtbl.fold (fun key entry acc -> (key, entry) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let read r =
  let received = Codec.Reader.varint r in
  let bytes_received = Codec.Reader.varint r in
  let bytes_stored = Codec.Reader.varint r in
  let entries = Hashtbl.create 64 in
  List.iter
    (fun (key, entry) -> Hashtbl.replace entries key entry)
    (Codec.Reader.list r (fun r ->
         let key = Codec.Reader.bytes r in
         let count = Codec.Reader.varint r in
         let size = Codec.Reader.varint r in
         (key, { count; size })));
  { entries; received; bytes_received; bytes_stored; fallback_encodes = 0 }
