module Ir = Softborg_prog.Ir
module Codec = Softborg_util.Codec
module Pool = Softborg_util.Pool
module Env = Softborg_exec.Env
module Exec_tree = Softborg_tree.Exec_tree
module Sym_exec = Softborg_symexec.Sym_exec
module Testgen = Softborg_symexec.Testgen

type directive =
  | Cover_direction of {
      site : Ir.site;
      direction : bool;
      test : Testgen.test_case;
    }
  | Probe_schedules of {
      inputs : int array;
      seeds : int list;
    }

let pp_directive fmt = function
  | Cover_direction { site; direction; test } ->
    Format.fprintf fmt "cover %a=%c inputs=[%s]%s" Ir.pp_site site
      (if direction then 'T' else 'F')
      (String.concat ";" (Array.to_list (Array.map string_of_int test.Testgen.inputs)))
      (match test.Testgen.fault_plan with
      | Env.Targeted faults ->
        Printf.sprintf " faults=[%s]" (String.concat ";" (List.map string_of_int faults))
      | Env.No_faults | Env.Random_faults _ -> "")
  | Probe_schedules { inputs; seeds } ->
    Format.fprintf fmt "probe-schedules inputs=[%s] seeds=%d"
      (String.concat ";" (Array.to_list (Array.map string_of_int inputs)))
      (List.length seeds)

type plan_result = {
  directives : directive list;
  gaps_considered : int;
  gaps_closed_infeasible : int;
  gaps_unknown : int;
}

let plan ?config ?cache ?(max_directives = 8) ?(schedule_probe_seeds = [ 101; 202; 303; 404 ])
    ?exclude ?memo ?pool ?speculate program tree =
  let multi_threaded = Array.length program.Ir.threads > 1 in
  let excluded site direction =
    match exclude with None -> false | Some set -> Hashtbl.mem set (site, direction)
  in
  (* Each gap costs a directed symbolic exploration; bound the total
     work per planning call, not just the directives handed out. *)
  let max_considered = 3 * max_directives in
  (* The first [max_considered] non-excluded gaps, hottest first,
     pulled lazily from the tree's frontier index — the frontier is
     never materialized or sorted in full. *)
  let candidates =
    if max_considered <= 0 then []
    else
      Exec_tree.frontier_seq tree
      |> Seq.filter (fun (gap : Exec_tree.gap) ->
             not (excluded gap.Exec_tree.site gap.Exec_tree.missing))
      |> Seq.take max_considered
      |> List.of_seq
  in
  (* The verdict cache is mutex-guarded, so sharing it with the
     speculative pool workers below is safe; cached answers equal
     recomputed ones, so hits change no output. *)
  let solve site direction = Testgen.for_direction ?config ?cache program ~site ~direction in
  let memoized site direction =
    match memo with
    | None -> solve site direction
    | Some memo -> (
      match Gap_memo.find memo ~site ~direction with
      | Some verdict -> verdict
      | None ->
        let verdict = solve site direction in
        Gap_memo.add memo ~site ~direction verdict;
        verdict)
  in
  (* Speculative parallel solving: with a real pool, the distinct
     un-memoized (site, direction) queries among the candidates are
     solved on worker domains up front.  [Testgen.for_direction] is a
     pure function of (program, site, direction, config), so the only
     observable difference is wall-clock time: the decision fold below
     replays the exact sequential logic over the precomputed verdicts,
     making the output identical for every pool size. *)
  let precomputed : (Ir.site * bool, Gap_memo.verdict) Hashtbl.t = Hashtbl.create 8 in
  (match pool with
  | Some pool when Pool.size pool > 1 && candidates <> [] ->
    let budget = Option.value ~default:(List.length candidates) speculate in
    let seen = Hashtbl.create 8 in
    let jobs =
      List.filter_map
        (fun (gap : Exec_tree.gap) ->
          let site = gap.Exec_tree.site and direction = gap.Exec_tree.missing in
          let known =
            Hashtbl.mem seen (site, direction)
            || (match memo with Some m -> Gap_memo.mem m ~site ~direction | None -> false)
          in
          if known then None
          else begin
            Hashtbl.replace seen (site, direction) ();
            Some (site, direction)
          end)
        candidates
      |> List.filteri (fun i _ -> i < budget)
    in
    let verdicts = Pool.map pool (fun (site, direction) -> solve site direction) jobs in
    List.iter2
      (fun (site, direction) verdict ->
        Hashtbl.replace precomputed (site, direction) verdict;
        match memo with
        | Some memo -> Gap_memo.add memo ~site ~direction verdict
        | None -> ())
      jobs verdicts
  | Some _ | None -> ());
  let directives = ref [] in
  let n_directives = ref 0 in
  let considered = ref 0 in
  let closed = ref 0 in
  let unknown = ref 0 in
  List.iter
    (fun (gap : Exec_tree.gap) ->
      if !n_directives < max_directives && !considered < max_considered then begin
        incr considered;
        let verdict =
          match Hashtbl.find_opt precomputed (gap.Exec_tree.site, gap.Exec_tree.missing) with
          | Some verdict -> verdict
          | None -> memoized gap.Exec_tree.site gap.Exec_tree.missing
        in
        match verdict with
        | `Test test ->
          directives :=
            Cover_direction
              { site = gap.Exec_tree.site; direction = gap.Exec_tree.missing; test }
            :: !directives;
          incr n_directives
        | `Infeasible ->
          if
            Exec_tree.mark_infeasible tree ~prefix:gap.Exec_tree.prefix
              ~site:gap.Exec_tree.site ~direction:gap.Exec_tree.missing
          then incr closed
        | `Unknown -> incr unknown
      end)
    candidates;
  (* Rare interleavings "might be hiding bugs": steer some pods toward
     unexplored schedules (paper §3.3). *)
  if multi_threaded && !unknown > 0 && !n_directives < max_directives then
    directives :=
      Probe_schedules
        { inputs = Array.make program.Ir.n_inputs 0; seeds = schedule_probe_seeds }
      :: !directives;
  {
    directives = List.rev !directives;
    gaps_considered = !considered;
    gaps_closed_infeasible = !closed;
    gaps_unknown = !unknown;
  }

(* ---- Wire format ------------------------------------------------------ *)

let write_fault_plan w = function
  | Env.No_faults -> Codec.Writer.byte w 0
  | Env.Random_faults p ->
    Codec.Writer.byte w 1;
    Codec.Writer.float w p
  | Env.Targeted indices ->
    Codec.Writer.byte w 2;
    Codec.Writer.list w (Codec.Writer.varint w) indices

let read_fault_plan r =
  match Codec.Reader.byte r with
  | 0 -> Env.No_faults
  | 1 -> Env.Random_faults (Codec.Reader.float r)
  | 2 -> Env.Targeted (Codec.Reader.list r Codec.Reader.varint)
  | n -> raise (Codec.Malformed (Printf.sprintf "fault plan tag %d" n))

let write_inputs w inputs =
  Codec.Writer.list w (Codec.Writer.zigzag w) (Array.to_list inputs)

let read_inputs r = Array.of_list (Codec.Reader.list r Codec.Reader.zigzag)

let write_directive w = function
  | Cover_direction { site; direction; test } ->
    Codec.Writer.byte w 0;
    Codec.Writer.varint w site.Ir.thread;
    Codec.Writer.varint w site.Ir.pc;
    Codec.Writer.bool w direction;
    write_inputs w test.Testgen.inputs;
    write_fault_plan w test.Testgen.fault_plan
  | Probe_schedules { inputs; seeds } ->
    Codec.Writer.byte w 1;
    write_inputs w inputs;
    Codec.Writer.list w (Codec.Writer.varint w) seeds

let read_directive r =
  match Codec.Reader.byte r with
  | 0 ->
    let thread = Codec.Reader.varint r in
    let pc = Codec.Reader.varint r in
    let direction = Codec.Reader.bool r in
    let inputs = read_inputs r in
    let fault_plan = read_fault_plan r in
    Cover_direction
      { site = { Ir.thread; pc }; direction; test = { Testgen.inputs; fault_plan } }
  | 1 ->
    let inputs = read_inputs r in
    let seeds = Codec.Reader.list r Codec.Reader.varint in
    Probe_schedules { inputs; seeds }
  | n -> raise (Codec.Malformed (Printf.sprintf "directive tag %d" n))
