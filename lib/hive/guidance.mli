(** Execution guidance (paper §3.3).

    "Instead of waiting for the tree to become complete, SoftBorg uses
    symbolic analysis to identify directions toward which to guide the
    pods to fill in the gaps."  The planner walks the tree frontier in
    most-reached-first order, asks the symbolic engine for concrete
    inputs (and syscall faults) covering each gap, marks infeasible
    gaps so they stop counting against completeness, and packages the
    rest as directives for pods.  Multi-threaded programs additionally
    get schedule probes: instructions to re-run fixed inputs under
    fresh interleavings. *)

module Ir := Softborg_prog.Ir
module Codec := Softborg_util.Codec
module Pool := Softborg_util.Pool
module Exec_tree := Softborg_tree.Exec_tree
module Sym_exec := Softborg_symexec.Sym_exec
module Testgen := Softborg_symexec.Testgen

type directive =
  | Cover_direction of {
      site : Ir.site;
      direction : bool;
      test : Testgen.test_case;  (** Inputs + syscall faults to inject. *)
    }
  | Probe_schedules of {
      inputs : int array;  (** Fixed inputs; vary only the interleaving. *)
      seeds : int list;  (** Scheduler seeds to try. *)
    }

val pp_directive : Format.formatter -> directive -> unit

type plan_result = {
  directives : directive list;
  gaps_considered : int;
  gaps_closed_infeasible : int;  (** Marked infeasible in the tree. *)
  gaps_unknown : int;
}

val plan :
  ?config:Sym_exec.config ->
  ?cache:Softborg_solver.Verdict_cache.t ->
  ?max_directives:int ->
  ?schedule_probe_seeds:int list ->
  ?exclude:(Ir.site * bool, unit) Hashtbl.t ->
  ?memo:Gap_memo.t ->
  ?pool:Pool.t ->
  ?speculate:int ->
  Ir.t ->
  Exec_tree.t ->
  plan_result
(** Produce up to [max_directives] (default 8) directives for the
    tree's most valuable gaps.  Candidates are pulled lazily from
    {!Exec_tree.frontier_seq}, so a planning call touches O(k) gaps
    regardless of tree size.  Gaps whose [(site, direction)] is in the
    [exclude] set (already issued to a pod and not yet covered) are
    skipped in O(1) each.  [memo] caches symbolic verdicts across
    calls (see {!Gap_memo}); [cache] additionally memoizes the
    underlying path-condition solver queries (shared across provers
    and safe to hand to pool workers).  With a [pool] of size > 1, the distinct
    un-memoized queries among the candidates — at most [speculate] of
    them, default all — are solved speculatively on worker domains;
    the decision fold then replays sequentially over the precomputed
    verdicts, so the result is identical for every pool size.
    Multi-threaded programs whose gaps come back [Unknown] yield one
    [Probe_schedules] directive. *)

val write_directive : Codec.Writer.t -> directive -> unit
val read_directive : Codec.Reader.t -> directive
(** @raise Softborg_util.Codec.Malformed on invalid input. *)
