(** Fix synthesis (paper §3.3).

    From the hive's aggregated evidence, synthesize fixes that avert
    future failures and push them to pods:

    - {b deadlock immunity}: a lock-order cycle becomes avoidance
      instrumentation (after Jula et al. [16]);
    - {b input guards}: a crash whose symbolic path condition mentions
      only real program inputs becomes a predicate the pod checks
      before running — the run is flagged and protected;
    - {b crash suppression}: a crash site becomes a runtime patch that
      skips the failing instruction (after Perkins et al. [24]);
    - {b patch candidates}: every bug also yields a repair-lab entry
      for a human developer ("we provision for a repair lab that
      suggests plausible fixes to developers", §3.3).

    Fixes are serializable: they travel from hive to pods over the
    simulated network. *)

module Ir := Softborg_prog.Ir
module Outcome := Softborg_exec.Outcome
module Path_cond := Softborg_solver.Path_cond
module Codec := Softborg_util.Codec
module Sym_exec := Softborg_symexec.Sym_exec

type kind =
  | Deadlock_immunity of int list  (** Lock set to serialize entry to. *)
  | Input_guard of {
      bucket : string;
      condition : Path_cond.t;
      site : Ir.site;  (** Crash site the guard protects. *)
      crash_kind : Outcome.crash_kind;
    }
  | Crash_suppression of { bucket : string; site : Ir.site; crash_kind : Outcome.crash_kind }
  | Patch_candidate of { bucket : string; site : Ir.site; description : string }

type fix = {
  id : int;
  epoch : int;  (** Fix-set version this fix first appears in. *)
  kind : kind;
}

val is_deployable : fix -> bool
(** Patch candidates await a human; everything else deploys
    automatically. *)

val kind_name : kind -> string
val pp : Format.formatter -> fix -> unit

type crash_evidence = {
  site : Ir.site;
  crash_kind : Outcome.crash_kind;
  bucket : string;
  count : int;
}

val propose :
  ?symexec_config:Sym_exec.config ->
  program:Ir.t ->
  deadlock_patterns:int list list ->
  crashes:crash_evidence list ->
  existing:fix list ->
  next_epoch:int ->
  unit ->
  fix list
(** Synthesize fixes for evidence not yet covered by [existing] ones.
    Each crash bucket yields one deployable fix (an input guard when
    the bucket's path condition is input-only, otherwise a crash
    suppression) plus one repair-lab patch candidate. *)

module Interp := Softborg_exec.Interp

val runtime_hooks : ?epoch:int -> fix list -> Interp.hooks
(** The runtime instrumentation a fix list induces: deadlock-immunity
    lock hooks plus crash-suppression hooks.  With [epoch], only fixes
    at or below that epoch are in force (used by the hive to replay a
    trace exactly as the recording pod ran it). *)

val write_fix : Codec.Writer.t -> fix -> unit
val read_fix : Codec.Reader.t -> fix
(** @raise Softborg_util.Codec.Malformed on invalid input. *)

val write_site : Codec.Writer.t -> Ir.site -> unit
val read_site : Codec.Reader.t -> Ir.site
val write_crash_kind : Codec.Writer.t -> Outcome.crash_kind -> unit
val read_crash_kind : Codec.Reader.t -> Outcome.crash_kind
(** Shared field codecs, also used by hive checkpoints.
    @raise Softborg_util.Codec.Malformed on invalid input. *)
