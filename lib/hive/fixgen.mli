(** Fix synthesis (paper §3.3).

    From the hive's aggregated evidence, synthesize fixes that avert
    future failures and push them to pods:

    - {b deadlock immunity}: a lock-order cycle becomes avoidance
      instrumentation (after Jula et al. [16]);
    - {b input guards}: a crash whose symbolic path condition mentions
      only real program inputs becomes a predicate the pod checks
      before running — the run is flagged and protected;
    - {b crash suppression}: a crash site becomes a runtime patch that
      skips the failing instruction (after Perkins et al. [24]);
    - {b patch candidates}: every bug also yields a repair-lab entry
      for a human developer ("we provision for a repair lab that
      suggests plausible fixes to developers", §3.3).

    Fixes are serializable: they travel from hive to pods over the
    simulated network. *)

module Ir := Softborg_prog.Ir
module Outcome := Softborg_exec.Outcome
module Path_cond := Softborg_solver.Path_cond
module Codec := Softborg_util.Codec
module Sym_exec := Softborg_symexec.Sym_exec

type kind =
  | Deadlock_immunity of int list  (** Lock set to serialize entry to. *)
  | Input_guard of {
      bucket : string;
      condition : Path_cond.t;
      site : Ir.site;  (** Crash site the guard protects. *)
      crash_kind : Outcome.crash_kind;
    }
  | Crash_suppression of { bucket : string; site : Ir.site; crash_kind : Outcome.crash_kind }
  | Patch_candidate of { bucket : string; site : Ir.site; description : string }

type fix = {
  id : int;
  epoch : int;  (** Fix-set version this fix first appears in. *)
  kind : kind;
}

val is_deployable : fix -> bool
(** Patch candidates await a human; everything else deploys
    automatically. *)

val kind_name : kind -> string
val pp : Format.formatter -> fix -> unit

type crash_evidence = {
  site : Ir.site;
  crash_kind : Outcome.crash_kind;
  bucket : string;
  count : int;
}

val propose :
  ?symexec_config:Sym_exec.config ->
  program:Ir.t ->
  deadlock_patterns:int list list ->
  crashes:crash_evidence list ->
  existing:fix list ->
  next_epoch:int ->
  unit ->
  fix list
(** Synthesize fixes for evidence not yet covered by [existing] ones.
    Each crash bucket yields one deployable fix (an input guard when
    the bucket's path condition is input-only, otherwise a crash
    suppression) plus one repair-lab patch candidate. *)

module Interp := Softborg_exec.Interp

val runtime_hooks : ?epoch:int -> fix list -> Interp.hooks
(** The runtime instrumentation a fix list induces: deadlock-immunity
    lock hooks plus crash-suppression hooks.  With [epoch], only fixes
    at or below that epoch are in force (used by the hive to replay a
    trace exactly as the recording pod ran it). *)

val runtime_hooks_for_ids : ids:int list -> fix list -> Interp.hooks
(** Hooks for exactly the fixes whose ids are listed — how the hive
    replays a fix-attributed trace: the recording pod's active set, not
    an epoch approximation (a canary pod's hooks are a strict subset of
    its epoch's fixes). *)

type sabotage =
  | Spin_immunity  (** Over-broad immunity set that livelocks benign schedules. *)
  | Misplaced_guard  (** Always-true input guard at a never-crashing site. *)
  | Misplaced_suppression  (** Inert suppression at a never-crashing site. *)

val sabotage_of_variant : int -> sabotage
(** Map a {!Softborg_net.Fault_plan.Bad_fix} variant code (0/1/2+) to
    a sabotage shape — the fault plan is data-only and cannot name hive
    types. *)

val sabotage_name : sabotage -> string

val sabotage_kind : sabotage -> program:Ir.t -> kind
(** Construct the wrong fix against a concrete program (lock universe,
    sites).  Deployable by construction — the point is to watch the
    rollout health test catch or clear it. *)

val corpus_wrong_fixes : Softborg_corpus.Corpus_bench.instance -> (string * kind) list
(** Corpus-derived wrong-fix variants for a certified benchmark
    instance, each labelled: a guard at a decoy site (on the failing
    path, not a ground-truth fix location —
    {!Softborg_corpus.Corpus_bench.decoy_sites}) and an over-broad
    immunity set that serializes benign schedules
    ({!Softborg_corpus.Corpus_bench.overbroad_lock_set}).  Empty when
    the instance offers neither ingredient. *)

val write_fix : Codec.Writer.t -> fix -> unit
val read_fix : Codec.Reader.t -> fix
(** @raise Softborg_util.Codec.Malformed on invalid input. *)

val write_site : Codec.Writer.t -> Ir.site -> unit
val read_site : Codec.Reader.t -> Ir.site
val write_crash_kind : Codec.Writer.t -> Outcome.crash_kind -> unit
val read_crash_kind : Codec.Reader.t -> Outcome.crash_kind
(** Shared field codecs, also used by hive checkpoints.
    @raise Softborg_util.Codec.Malformed on invalid input. *)
