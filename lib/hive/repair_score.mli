(** Benchmark-style scoring of the repair loop against the versioned
    bug corpus ({!Softborg_corpus.Corpus_bench}).

    For each corpus instance the harness plays a miniature deployment:
    a stream of executions of the {e buggy} program — mostly natural
    (random inputs, no faults) with the instance's certified trigger
    recipe injected every [trigger_every]-th run — is ingested into a
    fresh {!Knowledge.t}, exactly as pod traces would be.  The
    knowledge is then asked to {!Knowledge.analyze}, and the proposals
    are scored against the instance's ground truth:

    - {b fix precision} — of the deployable fixes proposed, the
      fraction that are correct.  A guard/suppression fix is correct
      iff its site is one of the instance's [bug_sites] (the crash
      site or the branch the fixed version corrects); a
      deadlock-immunity fix is correct iff it serializes exactly
      [bug_locks].  Vacuously 1.0 when nothing is proposed.
    - {b fix recall} (localization) — whether at least one correct
      deployable fix was proposed for the instance; per family, the
      fraction of instances localized.  One planted bug per instance
      makes recall a per-instance boolean.
    - {b time-to-isolation} — the 1-based index of the first
      execution after which the evidence localizes the bug: for
      single-threaded instances, when some failing run has been seen
      {e and} a predicate on the instance's certified failing path
      ranks in the top-[isolation_top] of {!Isolate.rank} carrying
      failure evidence and a non-negative Increase score (boundary
      bugs sit at Increase 0 — the same branch passes in benign runs —
      and lead the ranking via the failing-observation tie-break); for
      multi-threaded instances (whose failure is
      schedule-, not input-, discriminated, and whose failing path may
      cross no branch at all) when the first manifested failure is
      ingested.  [None] if never within the run budget.
    - {b averted} — whether re-running the certified trigger recipe
      under {!Knowledge.current_hooks} (the deployed fixes) no longer
      fails.
    - {b proof coverage} — the same execution stream driven at the
      {e fixed} program into its own knowledge, frontier gaps closed
      symbolically ({!Prover.close_gaps}), reported as
      {!Softborg_tree.Exec_tree.completeness} of the fixed program's
      tree, plus the strength of the proof the prover will grant
      ([Proved]/[Tested] assert safety for single-threaded instances,
      deadlock freedom for threaded ones).

    Scoring runs on one {!Softborg_exec.Engine.t}; the corpus
    certifies both engines agree on every instance, and the
    equivalence tests cover the harness programs, so the choice only
    affects speed. *)

module Engine := Softborg_exec.Engine
module Corpus_bench := Softborg_corpus.Corpus_bench

type config = {
  engine : Engine.t;
  runs : int;  (** Executions driven per instance (buggy and fixed). *)
  trigger_every : int;  (** Every n-th run uses the certified trigger recipe. *)
  isolation_top : int;  (** Rank window for time-to-isolation. *)
  input_hi : int;  (** Natural inputs are uniform over [0, input_hi]. *)
  seed : int;  (** Root of all randomness; scoring is deterministic in it. *)
}

val default_config : config
(** VM engine, 80 runs, trigger every 8th, top-3 isolation window,
    inputs over [0, 191] (the workload/solver default domain), seed 9. *)

type instance_score = {
  name : string;
  family : string;
  threaded : bool;
  executions : int;
  failures_seen : int;
  time_to_isolation : int option;
  proposed : int;  (** Deployable fixes proposed. *)
  correct : int;  (** Of those, correct against the ground truth. *)
  patch_candidates : int;  (** Repair-lab (non-deployable) proposals. *)
  fix_kinds : string list;  (** Kind names of every proposal, for reporting. *)
  localized : bool;  (** [correct > 0]. *)
  averted : bool;
  proof_coverage : float;
  proof_strength : string option;
}

type family_score = {
  family : string;
  version : int;
  instances : int;
  precision : float;  (** Micro-averaged over proposals; 1.0 if none. *)
  recall : float;  (** Fraction of instances localized. *)
  isolated : int;  (** Instances with [time_to_isolation = Some _]. *)
  mean_time_to_isolation : float;  (** Over isolated instances; 0.0 if none. *)
  averted_rate : float;
  mean_proof_coverage : float;
}

val score_instance : ?config:config -> Corpus_bench.instance -> instance_score

val score_corpus :
  ?config:config -> Corpus_bench.instance list -> instance_score list * family_score list
(** Scores every instance and aggregates per family (families in
    corpus order). *)

val fixed_variant_fixes : ?config:config -> Corpus_bench.instance -> Fixgen.fix list
(** Drive the same execution stream (trigger recipe included) at the
    instance's {e fixed} program and return everything [analyze]
    proposes.  The Fixgen false-positive guard: this must be empty —
    a fixed program yields no failures, hence no evidence, hence no
    fixes. *)
