(** Memoized symbolic gap verdicts.

    [Sym_exec.direction_feasible] is a pure function of the program,
    the target [(site, direction)] and the symexec configuration — it
    does not depend on which tree node exposed the gap.  The hive asks
    the same questions every tick (guidance planning and gap closing
    both walk the frontier), so one per-knowledge table keyed by
    [(site, direction)] removes all repeat solving.

    The cache is semantics-transparent as long as it is cleared
    whenever the program's analyzed behavior could change — i.e. on
    every fix-epoch bump ({!Knowledge} wires this up) — and as long as
    all users of one table pass the same symexec configuration (the
    hive uses [config.symexec_config] for both planner and prover).
    Like the replay cache, it is a pure accelerator: never serialized
    into checkpoints, restarts cold. *)

module Ir := Softborg_prog.Ir
module Testgen := Softborg_symexec.Testgen

type verdict =
  [ `Test of Testgen.test_case
  | `Infeasible
  | `Unknown
  ]
(** Exactly {!Testgen.for_direction}'s result, so the planner can
    reuse entries the prover created and vice versa. *)

type t

val create : unit -> t

val find : t -> site:Ir.site -> direction:bool -> verdict option
(** Cached verdict, if any; updates the hit/miss counters. *)

val mem : t -> site:Ir.site -> direction:bool -> bool
(** Membership without touching the counters (used when sizing a
    speculative parallel batch). *)

val add : t -> site:Ir.site -> direction:bool -> verdict -> unit
val clear : t -> unit

val length : t -> int
val hits : t -> int
val misses : t -> int
