(** Statistical bug isolation, after Cooperative Bug Isolation
    (Liblit et al.; paper §3.1 and §5).

    The hive aggregates (possibly sparsely sampled) branch-predicate
    observations across the user community, labelled by run outcome,
    and ranks predicates by how much being observed {e increases} the
    probability of failure.  The top-ranked predicates localize the
    bug: for an input-triggered crash, the branch guarding the buggy
    path scores highest. *)

module Ir := Softborg_prog.Ir
module Sampling := Softborg_trace.Sampling
module Outcome := Softborg_exec.Outcome

type t

val create : unit -> t

val record : t -> Sampling.t -> unit
(** Fold one run's sampled predicate observations in. *)

val record_path : t -> full_path:(Ir.site * bool) list -> outcome:Outcome.t -> unit
(** Convenience for unsampled traces: record every decision. *)

val runs : t -> int
val failing_runs : t -> int

type ranked = {
  predicate : Sampling.predicate;
  score : float;  (** Increase(P) = Failure(P) − Context(P). *)
  failure_ratio : float;  (** F(P) / (F(P) + S(P)). *)
  context_ratio : float;  (** Failure ratio of the site regardless of direction. *)
  failing_observations : int;
  passing_observations : int;
}

val rank : t -> ranked list
(** Predicates by decreasing score; ties by failing observations. *)

val top_predicate : t -> ranked option
(** Highest-ranked predicate with a positive score, if any. *)

val localization_rank : t -> target:Sampling.predicate -> int option
(** 1-based position of [target] in the ranking (quality metric for
    experiment E5); [None] if never observed. *)

val write : Softborg_util.Codec.Writer.t -> t -> unit
(** Checkpoint codec: run counters plus predicate and site tallies in
    canonical map order, so equal isolators serialize to equal bytes. *)

val read : Softborg_util.Codec.Reader.t -> t
(** @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)
