module Codec = Softborg_util.Codec

let magic = "SBCP"

(* v2: Exec_tree node ids and Knowledge.replay_cache_hits left the wire
   — knowledge bytes became a pure function of the ingested evidence
   (the federation merge-equality invariant).
   v3: staged-rollout state appended to each knowledge base (retracted
   fix ids + the fix-lifecycle ledger), so a restored hive cannot
   resurrect a retracted fix. *)
let format_version = 3

let encode_knowledge knowledge =
  let w = Codec.Writer.create () in
  Knowledge.write w knowledge;
  Codec.Writer.contents w

let decode_knowledge ?replay_cache data =
  match Knowledge.read ?replay_cache (Codec.Reader.of_string data) with
  | knowledge -> Ok knowledge
  | exception Codec.Truncated -> Error "truncated knowledge snapshot"
  | exception Codec.Malformed msg -> Error (Printf.sprintf "malformed knowledge snapshot: %s" msg)

(* Knowledge bases sorted by program digest, so the checkpoint bytes do
   not depend on the hive's hashtable iteration history. *)
let encode knowledge_list =
  let w = Codec.Writer.create () in
  String.iter (fun c -> Codec.Writer.byte w (Char.code c)) magic;
  Codec.Writer.varint w format_version;
  Codec.Writer.list w
    (Knowledge.write w)
    (List.sort
       (fun a b -> String.compare (Knowledge.digest a) (Knowledge.digest b))
       knowledge_list);
  Codec.Writer.contents w

let read_magic r = String.init (String.length magic) (fun _ -> Char.chr (Codec.Reader.byte r))

let decode ?replay_cache data =
  let r = Codec.Reader.of_string data in
  match
    let seen = read_magic r in
    if seen <> magic then Error (Printf.sprintf "bad checkpoint magic %S" seen)
    else
      let version = Codec.Reader.varint r in
      if version <> format_version then
        Error (Printf.sprintf "unsupported checkpoint version %d" version)
      else Ok (Codec.Reader.list r (fun r -> Knowledge.read ?replay_cache r))
  with
  | result -> result
  | exception Codec.Truncated -> Error "truncated checkpoint"
  | exception Codec.Malformed msg -> Error (Printf.sprintf "malformed checkpoint: %s" msg)
