(** Hive checkpoint framing.

    The hive's collective knowledge is irreplaceable — it aggregates
    what millions of pod executions taught it (paper §3) — so it must
    survive hive restarts.  A checkpoint is a magic-tagged, versioned
    frame around the {!Knowledge} codec: the full set of per-program
    knowledge bases, sorted by program digest so equal hive states
    produce byte-identical checkpoints.

    Decoding never raises: malformed or truncated input comes back as
    [Error] with a reason, so a corrupt checkpoint degrades to a cold
    start rather than a crash. *)

val magic : string
(** ["SBCP"]. *)

val format_version : int

val encode : Knowledge.t list -> string
(** Serialize a set of knowledge bases (sorted internally by digest). *)

val decode : ?replay_cache:int -> string -> (Knowledge.t list, string) result
(** Inverse of {!encode}.  [replay_cache] sizes each restored
    knowledge base's decoded-trace cache (which always restarts
    cold). *)

val encode_knowledge : Knowledge.t -> string
(** One knowledge base, unframed — the unit the property tests
    round-trip. *)

val decode_knowledge : ?replay_cache:int -> string -> (Knowledge.t, string) result
