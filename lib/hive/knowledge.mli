(** The hive's per-program knowledge base.

    "The hive merges information extracted from by-products with its
    existing knowledge of P, identifies misbehaviors in P, synthesizes
    fixes, and distributes these fixes back to the pods" (paper §3).
    One [Knowledge.t] holds everything the hive knows about one program
    build: the collective execution tree, the deadlock miner, the
    statistical bug isolator, the failure buckets, the synthesized
    fixes (versioned by epoch), and the proofs established so far. *)

module Ir := Softborg_prog.Ir
module Interp := Softborg_exec.Interp
module Trace := Softborg_trace.Trace
module Sampling := Softborg_trace.Sampling
module Exec_tree := Softborg_tree.Exec_tree
module Sym_exec := Softborg_symexec.Sym_exec
module Path_cond := Softborg_solver.Path_cond

type t

val create : ?replay_cache:int -> Ir.t -> t
(** [replay_cache] (default 256) bounds the decoded-trace LRU that
    lets {!ingest_trace} skip the replay for content the hive has
    already reconstructed; pass 0 to disable caching entirely. *)

val program : t -> Ir.t
val digest : t -> string
val tree : t -> Exec_tree.t
val isolate : t -> Isolate.t

val epoch : t -> int
(** Current fix-set version; pods at an older epoch get an update. *)

val fixes : t -> Fixgen.fix list
(** Every fix ever minted, retracted ones included (id continuity). *)

val live_fixes : t -> Fixgen.fix list
(** {!fixes} minus retractions — the set that deploys and replays. *)

val retracted_ids : t -> int list
(** Sorted ids of every fix ever retracted for this program. *)

val lifecycle : t -> Fix_lifecycle.entry list
(** The per-fix rollout ledger (persisted in checkpoints). *)

val rollout : t -> Fix_lifecycle.config option
val set_rollout : t -> Fix_lifecycle.config option -> unit
(** Attach/detach the staged-rollout config.  A runtime attachment,
    not persisted: the owning hive re-attaches it after a restore. *)

val canary_ids : t -> int list
(** Sorted ids of fixes currently in canary stage. *)

val canary_mils : t -> int
(** The attached config's cohort fraction; [0] without rollout. *)

val quarantined_traces : t -> int
(** Arrivals rejected because their attribution named a retracted fix.
    Runtime-only: quarantined traces are not evidence and never touch
    knowledge bytes. *)

val proofs : t -> Prover.proof list
val traces_ingested : t -> int
val failures_observed : t -> int
val replay_errors : t -> int

val replay_cache_hits : t -> int
(** Ingestions that skipped {!Softborg_exec.Interp.reconstruct} because
    the decoded-trace cache already held the reconstruction. *)

val gap_memo : t -> Gap_memo.t
(** Memoized symbolic gap verdicts for this program, shared by
    guidance planning and the prover's gap closing; cleared whenever
    the fix epoch bumps.  Not persisted in checkpoints. *)

val verdict_cache : t -> Softborg_solver.Verdict_cache.t
(** Memoized path-condition solver verdicts for this program, shared
    by every symbolic query the hive runs (guidance, gap closing,
    proof attempts, cooperating provers); cleared whenever the fix
    epoch bumps.  Not persisted in checkpoints. *)

val hooks_for_epoch : t -> int -> Interp.hooks
(** The runtime instrumentation (deadlock immunity + crash
    suppression) in force at a given epoch — used both by pods and by
    the hive when replaying a trace recorded under that epoch. *)

val current_hooks : t -> Interp.hooks

val input_guards : t -> Path_cond.t list
(** Deployed input-guard conditions. *)

val store : t -> Trace_store.t
(** The content-addressed store backing full-trace ingestion; exposes
    dedup/storage accounting. *)

val ingest_trace :
  ?prepared:Trace_store.prepared ->
  ?reconstruction:Interp.reconstruction ->
  t ->
  Trace.t ->
  (unit, string) result
(** Full ingestion: replay the by-products, merge the path into the
    tree, feed the deadlock miner and the isolator, bucket failures.
    [prepared] skips re-encoding at admission (see
    {!Trace_store.prepare}); [reconstruction] skips the replay on a
    cache miss — the caller must guarantee it was computed against the
    current fix set, or knowledge bytes would diverge from a
    sequential ingest. *)

val ingest_sampled : t -> Sampling.t -> unit
(** CBI-mode ingestion: sparse predicate counts and an outcome label;
    no tree merge (there is no full path to merge). *)

val ingest_outcome_only : t -> Trace.t -> unit
(** WER-mode ingestion: bucket the outcome, nothing else. *)

val crash_evidence : t -> Fixgen.crash_evidence list
val deadlock_pattern_sets : t -> int list list

val deadlock_bucket_info : t -> (string * int list * int) list
(** Manifested deadlock buckets: key, lock set, count — what a human
    in WER mode has to go on. *)

val bucket_counts : t -> (string * int) list

val analyze : ?symexec_config:Sym_exec.config -> t -> Fixgen.fix list
(** Synthesize fixes for uncovered evidence.  Deploying fixes bumps
    the epoch and invalidates proofs established against older
    epochs.  Returns the newly created fixes (including repair-lab
    candidates, which do not deploy and do not bump the epoch). *)

val add_fix : t -> Fixgen.kind -> Fixgen.fix
(** Install an externally-decided fix (the human repair lab of WER
    mode, or an injected saboteur fix); bumps the epoch and
    invalidates stale proofs.  With rollout attached the new fix
    enters canary stage, otherwise it deploys fleet-wide instantly. *)

val lifecycle_tick : t -> int list * (int * string) list
(** Run the sequential health test over every canary entry (one held
    tick each) and apply the verdicts: returns (promoted fix ids,
    (retracted fix id, reason) pairs).  Any movement bumps the epoch
    exactly once; retraction also extends {!retracted_ids}.  ([[], []]
    without an attached rollout config.) *)

val adopt_fixes : t -> fixes:Fixgen.fix list -> epoch:int -> retracted:int list -> unit
(** Replace the fix set, epoch, and retracted set wholesale with the
    federation coordinator's, so replay hooks computed here for any
    epoch match the merged knowledge's.  Clears the replay/memo/verdict
    caches and invalidates stale proofs (as {!analyze} would).
    {b Monotonic}: adoptions at an epoch ≤ the current one are dropped
    — a duplicated or reordered update can never regress the fix set. *)

val record_proof : t -> Prover.proof -> unit
val valid_proofs : t -> Prover.proof list

val write : Softborg_util.Codec.Writer.t -> t -> unit
(** Checkpoint codec: serializes the whole knowledge base — program,
    counters, execution tree, trace store, isolator, deadlock miner,
    failure buckets, fixes, proofs.  Hashtable-backed collections are
    written in sorted key order, so equal knowledge bases serialize to
    equal bytes.  The replay cache is not persisted (it restarts
    cold). *)

val read : ?replay_cache:int -> Softborg_util.Codec.Reader.t -> t
(** Inverse of {!write}: the restored value is observationally
    identical to the original (same tree version and epoch, same
    subsequent ingest/analyze behaviour).
    @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)
