(** Staged fix rollout: lifecycle stages, deterministic canary
    cohorts, and the sequential canary-vs-control health test.

    Every synthesized fix moves Candidate → Canary → Fleet, or is
    pulled back with {!Retracted} when the canary cohort's
    fix-attributed telemetry shows it does harm.  All decisions are
    integer tests over commutative counters, so the outcome is a pure
    function of the observed run multiset — identical for any decode
    pool size or shard count, and replayable from a checkpoint. *)

type stage = Candidate | Canary | Fleet | Retracted

val stage_name : stage -> string

type config = {
  canary_mils : int;  (** Canary cohort fraction, in thousandths of the fleet. *)
  min_exposed : int;  (** Minimum exposed runs before any verdict. *)
  min_control : int;  (** Minimum control runs before any verdict. *)
  harm_ratio_mils : int;
      (** Retract when the exposed failure rate exceeds
          [control rate × harm_ratio_mils/1000 + harm_margin_mils/1000]. *)
  harm_margin_mils : int;
  novel_bucket_k : int;
      (** Retract when a failure bucket is seen [novel_bucket_k]+ times
          under the fix but never in the control cohort. *)
  misfire_mils : int;
      (** Retract when, on a workload the control cohort shows benign
          (zero control failures), more than [misfire_mils/1000] of
          exposed runs fire the fix's hooks. *)
  promote_after : int;  (** Exposed runs that trigger early promotion. *)
  max_hold_ticks : int;
      (** Analysis ticks after which a not-harmful canary promotes
          regardless of sample size — bounds time-to-fleet for good
          fixes. *)
}

val default_config : config

val cohort_hash : cohort:int -> fix_id:int -> int
(** Seed-free FNV-1a over (cohort id, fix id) — the same construction
    as {!Protocol.basis_fingerprint}.  Non-negative. *)

val in_cohort : cohort:int -> fix_id:int -> mils:int -> bool
(** Rendezvous canary membership: replayable anywhere from the pod's
    stable cohort id and the fix id alone. *)

type health = {
  mutable exposed_runs : int;
  mutable exposed_failures : int;
  mutable control_runs : int;
  mutable control_failures : int;
  mutable misfires : int;  (** Successful exposed runs that fired hooks. *)
  exposed_buckets : (string, int ref) Hashtbl.t;
      (** Failure counts per {!Softborg_exec.Outcome.bucket_key}. *)
  control_buckets : (string, int ref) Hashtbl.t;
}

type entry = {
  fix_id : int;
  mutable stage : stage;
  mutable retired_epoch : int;
      (** Epoch at which the retraction took effect; [0] while live. *)
  mutable ticks_held : int;
  health : health;
}

val create_entry : fix_id:int -> stage:stage -> entry

val observe : entry -> exposed:bool -> failed:bool -> bucket:string -> hook_fires:int -> unit
(** Account one attributed run.  [bucket] is only recorded for failed
    runs; [hook_fires] only feeds the misfire counter on successful
    exposed runs. *)

type decision = Hold | Promote | Retract of string

val decide : config -> entry -> decision
(** The sequential health test.  Only {!Canary} entries ever promote
    or retract; the retract reason is deterministic (sorted bucket
    keys break ties). *)

val write_entry : Softborg_util.Codec.Writer.t -> entry -> unit
val read_entry : Softborg_util.Codec.Reader.t -> entry

val write_entries : Softborg_util.Codec.Writer.t -> entry list -> unit
(** Sorted by fix id, so checkpoint bytes stay canonical. *)

val read_entries : Softborg_util.Codec.Reader.t -> entry list
