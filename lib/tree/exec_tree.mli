(** Collective execution trees (paper §3.2, Figures 2 and 3).

    Every program encodes a decision tree; every execution materializes
    one root-to-leaf path.  The hive reconstructs the tree {e
    dynamically} by merging naturally-occurring paths: find the lowest
    common ancestor of the incoming path and the existing tree (the
    shared decision prefix) and paste the divergent suffix.  Because
    each path came from a real execution it is feasible by
    construction, so no constraint solving happens at ingestion.

    Nodes are decision-sequence prefixes; edges are labeled with the
    branch site and direction taken.  Under multi-threaded programs the
    same prefix can be followed by different branch sites (the schedule
    weaves different executions, §3.2), so a node may carry edges for
    more than one site.

    All per-tick analytics ({!n_edges}, {!depth}, {!outcome_buckets},
    {!frontier_size}, {!completeness}, {!is_complete}) are answered
    from aggregates maintained incrementally inside {!add_path} and
    {!mark_infeasible} — they never walk the tree.  Each query has a
    [*_recompute] twin that {e does} walk the tree; the twins are the
    test oracles for the incremental bookkeeping and are O(nodes). *)

module Ir := Softborg_prog.Ir
module Outcome := Softborg_exec.Outcome

type t

val create : unit -> t

type merge_stats = {
  shared_depth : int;  (** Length of the prefix shared with the tree (the LCA depth). *)
  new_nodes : int;  (** Nodes created to paste the suffix. *)
  new_path : bool;  (** True if this exact path had never been seen. *)
}

val add_path : t -> (Ir.site * bool) list -> Outcome.t -> merge_stats
(** Merge one execution path (its full decision sequence, in order)
    ending with the given outcome. *)

val n_nodes : t -> int
val n_executions : t -> int
(** Total paths merged (with multiplicity). *)

val n_distinct_paths : t -> int
val n_edges : t -> int

val version : t -> int
(** Monotonic change counter: bumped whenever the tree's knowledge
    changes — a new distinct path is merged or a gap is closed by
    {!mark_infeasible}.  Duplicate paths do {e not} bump it, so "did
    anything change since the last tick?" is one integer compare. *)

val outcome_buckets : t -> (string * int) list
(** WER-style bucket key → execution count, over all merged paths.
    Sorted by count descending, ties by key. *)

(** A gap in the tree: a node reached [hits] times whose branch [site]
    has only been observed going one way.  [prefix] is the decision
    sequence leading to the node; taking [(site, missing)] next would
    cover the gap.  These are the targets execution guidance steers
    pods toward (paper §3.3). *)
type gap = {
  prefix : (Ir.site * bool) list;
  site : Ir.site;
  missing : bool;
  hits : int;
}

val frontier : t -> gap list
(** All gaps, most-frequently-reached nodes first.  Gaps proven
    infeasible by symbolic analysis are excluded.  O(gaps) with no
    sorting: read off the incrementally-maintained priority index,
    which {!add_path} and {!mark_infeasible} keep ordered by exactly
    this order. *)

val frontier_top : t -> int -> gap list
(** [frontier_top t k] is the first [k] gaps of [frontier t] (all of
    them if fewer exist) in O(k log gaps + k·depth) — the per-tick
    planning read, independent of tree size. *)

val frontier_seq : t -> gap Seq.t
(** The frontier as a lazy sequence in the same order, materializing
    one gap record per element forced.  The sequence snapshots the
    index at the call: closing gaps while consuming it (as planning
    does) still walks the frontier as of the call, exactly like
    iterating a pre-built list. *)

val frontier_size : t -> int
(** [List.length (frontier t)] in O(1). *)

val iter_open_dirs : t -> (Ir.site -> bool -> unit) -> unit
(** Iterate the [(site, missing)] labels of all open gaps without
    materializing prefixes; order unspecified, and a label is repeated
    if several nodes share the same open direction.  For callers that
    only need direction membership (e.g. exclusion sets). *)

val gaps_sorted : t -> int
(** Cumulative count of gap records passed through a sort — only the
    {!frontier_recompute} oracle sorts, so a hive tick must leave this
    unchanged (pinned by a regression test). *)

val gaps_materialized : t -> int
(** Cumulative count of gap records materialized (prefix rebuilt) by
    {!frontier}, {!frontier_top} and {!frontier_seq}. *)

val mark_infeasible : t -> prefix:(Ir.site * bool) list -> site:Ir.site -> direction:bool -> bool
(** Record that symbolic analysis proved the given gap infeasible,
    removing it from the frontier and from completeness accounting.
    Returns false if the prefix does not denote a tree node. *)

val is_complete : t -> bool
(** True when every observed branch site in the tree has both
    directions explored or proven infeasible — the "complete tree"
    precondition for a cumulative proof (paper §3.3). *)

val completeness : t -> float
(** Fraction of (node, site) direction pairs that are explored or
    proven infeasible; 1.0 iff {!is_complete} (1.0 on an empty tree). *)

val path_outcomes : t -> ((Ir.site * bool) list * string * int) list
(** Every distinct terminal path with its outcome bucket and count. *)

val depth : t -> int
(** Length of the longest path. *)

(** {2 Recompute oracles}

    Full-walk implementations of the queries above, kept as test
    oracles for the incremental aggregates (and as the honest baseline
    for the [micro-ingest] benchmark).  Each returns exactly what its
    incremental twin returns, including sort order. *)

val frontier_recompute : t -> gap list
val completeness_recompute : t -> float
val is_complete_recompute : t -> bool
val n_edges_recompute : t -> int
val outcome_buckets_recompute : t -> (string * int) list
val depth_recompute : t -> int

(** {2 Checkpoint codec}

    Structural serialization for hive checkpoints.  Nodes are written
    in preorder with children in ascending edge order, and every
    collection in canonical (map/set) order, so equal trees produce
    equal bytes: snapshot → restore → snapshot round-trips
    byte-identically.  The incremental aggregates are {e not} stored;
    {!read} rebuilds them with the same walk the recompute oracles use,
    so a restored tree satisfies the aggregate invariants by
    construction. *)

val write : Softborg_util.Codec.Writer.t -> t -> unit

val read : Softborg_util.Codec.Reader.t -> t
(** @raise Softborg_util.Codec.Malformed on invalid input (including a
      node-count mismatch).
    @raise Softborg_util.Codec.Truncated on premature end. *)
