module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome

(* Edge keys: (site, direction). *)
module Edge_key = struct
  type t = Ir.site * bool

  let compare (s1, d1) (s2, d2) =
    match Ir.site_compare s1 s2 with 0 -> Bool.compare d1 d2 | c -> c
end

module Edge_map = Map.Make (Edge_key)
module Edge_set = Set.Make (Edge_key)

module Site_key = struct
  type t = Ir.site

  let compare = Ir.site_compare
end

module Site_set = Set.Make (Site_key)
module Bucket_map = Map.Make (String)

type node = {
  id : int;  (* per-tree identity; keys the open-gap table *)
  depth : int;
  parent : (node * Edge_map.key) option;  (* [None] only for the root *)
  mutable edges : (node * int ref) Edge_map.t;  (* child, traversal count *)
  mutable infeasible : Edge_set.t;  (* directions proven infeasible *)
  mutable hits : int;
  mutable terminal : int Bucket_map.t;  (* outcome bucket -> count *)
  mutable open_dirs : Edge_set.t;  (* this node's entries in the open-gap index *)
}

type gap_key = int * Ir.site * bool  (* node id, site, missing direction *)

(* Priority index over open gaps, ordered exactly like [gap_order]
   below: hottest node first, ties broken by the gap record's
   structural order (prefix, then site, then direction).  Keys freeze
   the node's hit count at insertion time — [node.hits] is mutable and
   a map key must never change under the map — so every hit-count bump
   re-keys the node's open gaps (see [bump_hits]). *)
module Gap_index_key = struct
  type t = {
    k_hits : int;
    k_node : node;
    k_site : Ir.site;
    k_missing : bool;
  }

  (* [Stdlib.compare] on one (site, direction) decision. *)
  let compare_decision ((s1 : Ir.site), (d1 : bool)) (s2, d2) =
    match Ir.site_compare s1 s2 with 0 -> Bool.compare d1 d2 | c -> c

  let rec ancestor_at node depth =
    if node.depth <= depth then node
    else match node.parent with Some (p, _) -> ancestor_at p depth | None -> node

  (* Compare the root-to-node decision sequences of two nodes at equal
     depth, front to back (the recursion bottoms out at the roots and
     compares decisions while unwinding). *)
  let rec compare_lineage a b =
    if a == b then 0
    else
      match (a.parent, b.parent) with
      | None, None -> 0
      | Some (pa, da), Some (pb, db) -> (
        match compare_lineage pa pb with 0 -> compare_decision da db | c -> c)
      | None, Some _ | Some _, None -> 0 (* unreachable at equal depths *)

  (* [Stdlib.compare (prefix_of a) (prefix_of b)] without materializing
     either list: lexicographic over the aligned ancestor prefixes,
     with a proper prefix ordered before its extensions (as [] sorts
     before any cons). *)
  let compare_prefix a b =
    if a == b then 0
    else if a.depth = b.depth then compare_lineage a b
    else if a.depth < b.depth then
      match compare_lineage a (ancestor_at b a.depth) with 0 -> -1 | c -> c
    else
      match compare_lineage (ancestor_at a b.depth) b with 0 -> 1 | c -> c

  let compare ka kb =
    match Int.compare kb.k_hits ka.k_hits with
    | 0 -> (
      match compare_prefix ka.k_node kb.k_node with
      | 0 -> (
        match Ir.site_compare ka.k_site kb.k_site with
        | 0 -> Bool.compare ka.k_missing kb.k_missing
        | c -> c)
      | c -> c)
    | c -> c
end

module Gap_map = Map.Make (Gap_index_key)

type t = {
  root : node;
  mutable nodes : int;
  mutable executions : int;
  mutable distinct_paths : int;
  mutable next_id : int;
  (* Incremental aggregates, maintained by add_path/mark_infeasible so
     the per-tick queries never walk the tree.  Invariants (checked
     against the *_recompute oracles by the property tests):
       edges       = sum over nodes of out-degree
       max_depth   = depth of the deepest node
       total_dirs  = 2 x number of (node, observed site) pairs
       closed_dirs = directions among those that are explored or
                     proven infeasible
       open_gaps   = exactly the (node, site, direction) triples with
                     the site observed at the node but that direction
                     neither explored nor infeasible
       bucket_totals = terminal counts summed over all nodes *)
  mutable edge_count : int;
  mutable max_depth : int;
  mutable closed_dirs : int;
  mutable total_dirs : int;
  bucket_totals : (string, int) Hashtbl.t;
  open_gaps : (gap_key, node) Hashtbl.t;
  (* Mirror of [open_gaps] as an ordered map, so the frontier's top-k
     is a prefix read instead of a full sort.  Invariant: contains
     exactly one key per open gap, with [k_hits] equal to the owning
     node's current hit count (each node's own entries are listed in
     its [open_dirs]). *)
  mutable gap_index : unit Gap_map.t;
  mutable version : int;  (* bumped on every knowledge-changing mutation *)
  (* Analysis-cost counters (not part of the knowledge, never
     serialized): how many gap records were sorted via the recompute
     path and how many were materialized as records.  Regression tests
     pin per-tick planning to O(k) materializations and zero sorts. *)
  mutable gaps_sorted : int;
  mutable gaps_materialized : int;
}

let new_node t parent decision =
  t.next_id <- t.next_id + 1;
  {
    id = t.next_id;
    depth = parent.depth + 1;
    parent = Some (parent, decision);
    edges = Edge_map.empty;
    infeasible = Edge_set.empty;
    hits = 0;
    terminal = Bucket_map.empty;
    open_dirs = Edge_set.empty;
  }

let create () =
  {
    root =
      {
        id = 0;
        depth = 0;
        parent = None;
        edges = Edge_map.empty;
        infeasible = Edge_set.empty;
        hits = 0;
        terminal = Bucket_map.empty;
        open_dirs = Edge_set.empty;
      };
    nodes = 1;
    executions = 0;
    distinct_paths = 0;
    next_id = 0;
    edge_count = 0;
    max_depth = 0;
    closed_dirs = 0;
    total_dirs = 0;
    bucket_totals = Hashtbl.create 16;
    open_gaps = Hashtbl.create 64;
    gap_index = Gap_map.empty;
    version = 0;
    gaps_sorted = 0;
    gaps_materialized = 0;
  }

type merge_stats = {
  shared_depth : int;
  new_nodes : int;
  new_path : bool;
}

(* Open/close one gap in both the hash table and the priority index.
   [node.hits] must already be the node's current count — the index
   key freezes it, and [bump_hits] keeps the frozen copies current. *)
let gap_open t node site missing =
  Hashtbl.replace t.open_gaps (node.id, site, missing) node;
  node.open_dirs <- Edge_set.add (site, missing) node.open_dirs;
  t.gap_index <-
    Gap_map.add
      { Gap_index_key.k_hits = node.hits; k_node = node; k_site = site; k_missing = missing }
      () t.gap_index

let gap_close t node site missing =
  Hashtbl.remove t.open_gaps (node.id, site, missing);
  node.open_dirs <- Edge_set.remove (site, missing) node.open_dirs;
  t.gap_index <-
    Gap_map.remove
      { Gap_index_key.k_hits = node.hits; k_node = node; k_site = site; k_missing = missing }
      t.gap_index

(* A hit-count bump changes the priority of every open gap at the
   node, so its index entries are re-keyed around the mutation. *)
let bump_hits t node =
  if Edge_set.is_empty node.open_dirs then node.hits <- node.hits + 1
  else begin
    Edge_set.iter
      (fun (site, missing) ->
        t.gap_index <-
          Gap_map.remove
            { Gap_index_key.k_hits = node.hits; k_node = node; k_site = site; k_missing = missing }
            t.gap_index)
      node.open_dirs;
    node.hits <- node.hits + 1;
    Edge_set.iter
      (fun (site, missing) ->
        t.gap_index <-
          Gap_map.add
            { Gap_index_key.k_hits = node.hits; k_node = node; k_site = site; k_missing = missing }
            () t.gap_index)
      node.open_dirs
  end

(* Aggregate bookkeeping for a brand-new edge [(site, dir)] out of
   [node], called before the edge is inserted.  Every new edge closes
   its own direction; the first edge of a site additionally opens the
   opposite direction as a gap — unless that direction was already
   proven infeasible, in which case it starts closed. *)
let account_new_edge t node ((site, dir) : Edge_map.key) =
  t.edge_count <- t.edge_count + 1;
  if Edge_map.mem (site, not dir) node.edges then begin
    (* Site already observed here: this direction was the open half
       (or was infeasible, in which case it is already closed). *)
    if not (Edge_set.mem (site, dir) node.infeasible) then begin
      t.closed_dirs <- t.closed_dirs + 1;
      gap_close t node site dir
    end
  end
  else begin
    (* First observation of this site at this node. *)
    t.total_dirs <- t.total_dirs + 2;
    t.closed_dirs <- t.closed_dirs + 1;
    if Edge_set.mem (site, not dir) node.infeasible then
      t.closed_dirs <- t.closed_dirs + 1
    else gap_open t node site (not dir)
  end

let add_path t path outcome =
  t.executions <- t.executions + 1;
  let rec walk node remaining shared created =
    bump_hits t node;
    match remaining with
    | [] ->
      let bucket = Outcome.bucket_key outcome in
      let fresh_terminal = not (Bucket_map.mem bucket node.terminal) in
      node.terminal <-
        Bucket_map.update bucket
          (fun c -> Some (1 + Option.value ~default:0 c))
          node.terminal;
      Hashtbl.replace t.bucket_totals bucket
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.bucket_totals bucket));
      if node.depth > t.max_depth then t.max_depth <- node.depth;
      let new_path = created > 0 || fresh_terminal in
      if new_path then begin
        t.distinct_paths <- t.distinct_paths + 1;
        t.version <- t.version + 1
      end;
      { shared_depth = shared; new_nodes = created; new_path }
    | decision :: rest -> (
      match Edge_map.find_opt decision node.edges with
      | Some (child, count) ->
        incr count;
        walk child rest (if created = 0 then shared + 1 else shared) created
      | None ->
        account_new_edge t node decision;
        let child = new_node t node decision in
        t.nodes <- t.nodes + 1;
        node.edges <- Edge_map.add decision (child, ref 1) node.edges;
        walk child rest shared (created + 1))
  in
  walk t.root path 0 0

let n_nodes t = t.nodes
let n_executions t = t.executions
let n_distinct_paths t = t.distinct_paths
let n_edges t = t.edge_count
let depth t = t.max_depth
let version t = t.version

(* Depth-first fold over all nodes via an explicit worklist, so deep
   trees cannot blow the stack.  Visit order is unspecified. *)
let fold_nodes f acc root =
  let rec go acc = function
    | [] -> acc
    | node :: stack ->
      let stack =
        Edge_map.fold (fun _ (child, _) stack -> child :: stack) node.edges stack
      in
      go (f acc node) stack
  in
  go acc [ root ]

let n_edges_recompute t =
  fold_nodes (fun acc node -> acc + Edge_map.cardinal node.edges) 0 t.root

let depth_recompute t =
  let rec go acc = function
    | [] -> acc
    | (node, d) :: stack ->
      let stack =
        Edge_map.fold (fun _ (child, _) stack -> (child, d + 1) :: stack) node.edges stack
      in
      go (max acc d) stack
  in
  go 0 [ (t.root, 0) ]

(* Buckets sorted by count (descending), ties by key, so the
   incremental and recompute versions agree exactly. *)
let bucket_order (k1, n1) (k2, n2) =
  match Int.compare n2 n1 with 0 -> String.compare k1 k2 | c -> c

let outcome_buckets t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.bucket_totals []
  |> List.sort bucket_order

let outcome_buckets_recompute t =
  let table = Hashtbl.create 16 in
  fold_nodes
    (fun () node ->
      Bucket_map.iter
        (fun bucket count ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt table bucket) in
          Hashtbl.replace table bucket (prev + count))
        node.terminal)
    () t.root;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort bucket_order

type gap = {
  prefix : (Ir.site * bool) list;
  site : Ir.site;
  missing : bool;
  hits : int;
}

(* The branch sites observed at a node, from its outgoing edges. *)
let sites_at node =
  Edge_map.fold (fun (site, _) _ acc -> Site_set.add site acc) node.edges Site_set.empty

let has_edge node site direction = Edge_map.mem (site, direction) node.edges

let marked_infeasible node site direction = Edge_set.mem (site, direction) node.infeasible

(* Root-to-node decision sequence, reconstructed from parent links. *)
let prefix_of node =
  let rec up node acc =
    match node.parent with None -> acc | Some (p, decision) -> up p (decision :: acc)
  in
  up node []

(* Hottest nodes first; ties broken structurally so the order is a
   deterministic total order (and oracle comparison is exact).
   [Gap_index_key.compare] implements exactly this order on index
   keys, which is what lets the index replace the sort: distinct gaps
   always differ structurally, so the order has no ties and a prefix
   of the index is a prefix of the sorted list. *)
let gap_order (a : gap) (b : gap) =
  match Int.compare b.hits a.hits with 0 -> Stdlib.compare a b | c -> c

let gap_of_index_key t (key : Gap_index_key.t) =
  t.gaps_materialized <- t.gaps_materialized + 1;
  {
    prefix = prefix_of key.Gap_index_key.k_node;
    site = key.Gap_index_key.k_site;
    missing = key.Gap_index_key.k_missing;
    hits = key.Gap_index_key.k_hits;
  }

let frontier t =
  List.rev (Gap_map.fold (fun key () acc -> gap_of_index_key t key :: acc) t.gap_index [])

let frontier_seq t =
  (* [to_seq] on the persistent map snapshots it: mutating the tree
     while consuming the sequence (as gap closing during planning
     does) walks the frontier as of this call, exactly like iterating
     a materialized list. *)
  let snapshot = Gap_map.to_seq t.gap_index in
  Seq.map (fun (key, ()) -> gap_of_index_key t key) snapshot

let frontier_top t k =
  if k <= 0 then [] else List.of_seq (Seq.take k (frontier_seq t))

let frontier_size t = Hashtbl.length t.open_gaps

let gaps_sorted t = t.gaps_sorted
let gaps_materialized t = t.gaps_materialized

let iter_open_dirs t f = Hashtbl.iter (fun (_, site, missing) _ -> f site missing) t.open_gaps

(* Gaps at one node, consed onto [acc] (accumulator-first: no list
   append anywhere on this path). *)
let gaps_into node acc =
  let sites = sites_at node in
  if Site_set.is_empty sites then acc
  else
    let prefix = prefix_of node in
    Site_set.fold
      (fun site acc ->
        let missing direction =
          (not (has_edge node site direction)) && not (marked_infeasible node site direction)
        in
        let acc =
          if missing true then { prefix; site; missing = true; hits = node.hits } :: acc
          else acc
        in
        if missing false then { prefix; site; missing = false; hits = node.hits } :: acc
        else acc)
      sites acc

let frontier_recompute t =
  let gaps = fold_nodes (fun acc node -> gaps_into node acc) [] t.root in
  t.gaps_sorted <- t.gaps_sorted + List.length gaps;
  List.sort gap_order gaps

let find_node t prefix =
  let rec walk node = function
    | [] -> Some node
    | decision :: rest -> (
      match Edge_map.find_opt decision node.edges with
      | Some (child, _) -> walk child rest
      | None -> None)
  in
  walk t.root prefix

let mark_infeasible t ~prefix ~site ~direction =
  match find_node t prefix with
  | None -> false
  | Some node ->
    if not (Edge_set.mem (site, direction) node.infeasible) then begin
      node.infeasible <- Edge_set.add (site, direction) node.infeasible;
      (* The mark only closes a direction pair if the site is already
         observed at this node and the direction unexplored; marks on
         unobserved sites take effect when the site gains an edge. *)
      let site_observed =
        Edge_map.mem (site, true) node.edges || Edge_map.mem (site, false) node.edges
      in
      if site_observed && not (Edge_map.mem (site, direction) node.edges) then begin
        t.closed_dirs <- t.closed_dirs + 1;
        gap_close t node site direction;
        t.version <- t.version + 1
      end
    end;
    true

let completeness t =
  if t.total_dirs = 0 then 1.0
  else float_of_int t.closed_dirs /. float_of_int t.total_dirs

let is_complete t = t.closed_dirs = t.total_dirs

(* Direction-pair accounting by full walk: for every (node, observed
   site), each of the two directions is "closed" if explored or proven
   infeasible. *)
let direction_pairs_recompute t =
  fold_nodes
    (fun (closed, total) node ->
      Site_set.fold
        (fun site (closed, total) ->
          let closed_dir direction =
            has_edge node site direction || marked_infeasible node site direction
          in
          let closed =
            closed + (if closed_dir true then 1 else 0) + if closed_dir false then 1 else 0
          in
          (closed, total + 2))
        (sites_at node) (closed, total))
    (0, 0) t.root

let completeness_recompute t =
  let closed, total = direction_pairs_recompute t in
  if total = 0 then 1.0 else float_of_int closed /. float_of_int total

let is_complete_recompute t =
  let closed, total = direction_pairs_recompute t in
  closed = total

let path_outcomes t =
  fold_nodes
    (fun acc node ->
      if Bucket_map.is_empty node.terminal then acc
      else
        let prefix = prefix_of node in
        Bucket_map.fold (fun bucket count acc -> (prefix, bucket, count) :: acc) node.terminal acc)
    [] t.root

(* ---- Checkpoint codec -------------------------------------------------- *)

module Codec = Softborg_util.Codec

let write_site w (site : Ir.site) =
  Codec.Writer.varint w site.Ir.thread;
  Codec.Writer.varint w site.Ir.pc

let read_site r =
  let thread = Codec.Reader.varint r in
  let pc = Codec.Reader.varint r in
  { Ir.thread; pc }

let write_dir w ((site, direction) : Edge_map.key) =
  write_site w site;
  Codec.Writer.bool w direction

let read_dir r =
  let site = read_site r in
  let direction = Codec.Reader.bool r in
  (site, direction)

(* One node record: hits, terminal buckets, infeasibility marks, and
   the labeled out-edges with their traversal counts.  All collections
   are emitted in their map/set order, and node ids — which encode
   creation order, an artifact of ingestion order — are NOT written
   (the reader re-assigns them in preorder).  Equal trees therefore
   always serialize to equal bytes, *regardless of the order their
   paths arrived in* — the byte-level merge-equality of the shard
   federation rests on this.  Child records follow the parent in edge
   order (preorder). *)
let write_node_record w (node : node) =
  Codec.Writer.varint w node.hits;
  Codec.Writer.list w
    (fun (bucket, count) ->
      Codec.Writer.bytes w bucket;
      Codec.Writer.varint w count)
    (Bucket_map.bindings node.terminal);
  Codec.Writer.list w (write_dir w) (Edge_set.elements node.infeasible);
  Codec.Writer.list w
    (fun (key, count) ->
      write_dir w key;
      Codec.Writer.varint w count)
    (List.rev (Edge_map.fold (fun key (_, count) acc -> (key, !count) :: acc) node.edges []))

let write w t =
  Codec.Writer.varint w t.nodes;
  Codec.Writer.varint w t.executions;
  Codec.Writer.varint w t.distinct_paths;
  Codec.Writer.varint w t.version;
  (* Preorder via an explicit stack; children pushed in ascending edge
     order so they pop (and serialize) in that order. *)
  let rec emit = function
    | [] -> ()
    | node :: stack ->
      write_node_record w node;
      let children = Edge_map.fold (fun _ (child, _) acc -> child :: acc) node.edges [] in
      emit (List.rev_append children stack)
  in
  emit [ t.root ]

type node_record = {
  r_hits : int;
  r_terminal : int Bucket_map.t;
  r_infeasible : Edge_set.t;
  r_edges : (Edge_map.key * int) list;  (* ascending; children follow in this order *)
}

let read_node_record r =
  let r_hits = Codec.Reader.varint r in
  let r_terminal =
    List.fold_left
      (fun acc (bucket, count) -> Bucket_map.add bucket count acc)
      Bucket_map.empty
      (Codec.Reader.list r (fun r ->
           let bucket = Codec.Reader.bytes r in
           let count = Codec.Reader.varint r in
           (bucket, count)))
  in
  let r_infeasible = Edge_set.of_list (Codec.Reader.list r read_dir) in
  let r_edges =
    Codec.Reader.list r (fun r ->
        let key = read_dir r in
        let count = Codec.Reader.varint r in
        (key, count))
  in
  { r_hits; r_terminal; r_infeasible; r_edges }

(* Rebuild the incremental aggregates from the restored structure.  By
   construction this walk computes exactly what the *_recompute oracles
   compute, so a restored tree satisfies the aggregate invariants. *)
let rebuild_aggregates t =
  t.edge_count <- 0;
  t.max_depth <- 0;
  t.closed_dirs <- 0;
  t.total_dirs <- 0;
  Hashtbl.reset t.bucket_totals;
  Hashtbl.reset t.open_gaps;
  t.gap_index <- Gap_map.empty;
  fold_nodes
    (fun () node ->
      node.open_dirs <- Edge_set.empty;
      t.edge_count <- t.edge_count + Edge_map.cardinal node.edges;
      if node.depth > t.max_depth then t.max_depth <- node.depth;
      Bucket_map.iter
        (fun bucket count ->
          Hashtbl.replace t.bucket_totals bucket
            (count + Option.value ~default:0 (Hashtbl.find_opt t.bucket_totals bucket)))
        node.terminal;
      Site_set.iter
        (fun site ->
          t.total_dirs <- t.total_dirs + 2;
          let account direction =
            if has_edge node site direction || marked_infeasible node site direction then
              t.closed_dirs <- t.closed_dirs + 1
            else gap_open t node site direction
          in
          account true;
          account false)
        (sites_at node))
    () t.root

let read r =
  let nodes = Codec.Reader.varint r in
  let executions = Codec.Reader.varint r in
  let distinct_paths = Codec.Reader.varint r in
  let version = Codec.Reader.varint r in
  (* Ids are assigned in record (= preorder) order: they only key the
     open-gap table and must merely be distinct, so the serialized form
     can stay independent of the original creation order. *)
  let next_restored_id = ref (-1) in
  let fresh_id () =
    incr next_restored_id;
    !next_restored_id
  in
  let node_of_record ~depth ~parent rec_ =
    {
      id = fresh_id ();
      depth;
      parent;
      edges = Edge_map.empty;
      infeasible = rec_.r_infeasible;
      hits = rec_.r_hits;
      terminal = rec_.r_terminal;
      open_dirs = Edge_set.empty;
    }
  in
  let root_record = read_node_record r in
  let root = node_of_record ~depth:0 ~parent:None root_record in
  let restored = ref 1 in
  (* Reattach preorder records: the stack holds nodes whose child
     records are still pending, with the edge specs left to fill. *)
  let rec fill = function
    | [] -> ()
    | (_, []) :: stack -> fill stack
    | (node, (key, count) :: specs) :: stack ->
      let child_record = read_node_record r in
      let child = node_of_record ~depth:(node.depth + 1) ~parent:(Some (node, key)) child_record in
      node.edges <- Edge_map.add key (child, ref count) node.edges;
      incr restored;
      fill ((child, child_record.r_edges) :: (node, specs) :: stack)
  in
  fill [ (root, root_record.r_edges) ];
  if !restored <> nodes then
    raise (Codec.Malformed (Printf.sprintf "tree node count: header %d, records %d" nodes !restored));
  let t =
    {
      root;
      nodes;
      executions;
      distinct_paths;
      next_id = !next_restored_id;
      edge_count = 0;
      max_depth = 0;
      closed_dirs = 0;
      total_dirs = 0;
      bucket_totals = Hashtbl.create 16;
      open_gaps = Hashtbl.create 64;
      gap_index = Gap_map.empty;
      version;
      gaps_sorted = 0;
      gaps_materialized = 0;
    }
  in
  rebuild_aggregates t;
  t
