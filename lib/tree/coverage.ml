type snapshot = {
  executions : int;
  distinct_paths : int;
  nodes : int;
  frontier_size : int;
  completeness : float;
}

type t = { mutable snaps : snapshot list (* reversed *) }

let create () = { snaps = [] }

let observe t tree =
  let snap =
    {
      executions = Exec_tree.n_executions tree;
      distinct_paths = Exec_tree.n_distinct_paths tree;
      nodes = Exec_tree.n_nodes tree;
      frontier_size = Exec_tree.frontier_size tree;
      completeness = Exec_tree.completeness tree;
    }
  in
  t.snaps <- snap :: t.snaps

let snapshots t = List.rev t.snaps

let executions_to_reach t ~paths =
  List.find_opt (fun s -> s.distinct_paths >= paths) (snapshots t)
  |> Option.map (fun s -> s.executions)

let pp_series fmt t =
  List.iter
    (fun s ->
      Format.fprintf fmt "execs=%-6d paths=%-5d nodes=%-6d frontier=%-4d complete=%.2f@."
        s.executions s.distinct_paths s.nodes s.frontier_size s.completeness)
    (snapshots t)
