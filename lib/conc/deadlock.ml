module Outcome = Softborg_exec.Outcome
module Interp = Softborg_exec.Interp

type pattern = {
  locks : int list;
  manifested : int;
  predicted : bool;
}

type t = {
  graph : Lock_graph.t;
  mutable manifested : (int list * int) list;  (* lock set -> deadlock count *)
}

let create () = { graph = Lock_graph.create (); manifested = [] }

let bump assoc key =
  let rec loop = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest when k = key -> (k, n + 1) :: rest
    | pair :: rest -> pair :: loop rest
  in
  loop assoc

let observe t ~outcome ~locks =
  Lock_graph.add_events t.graph locks;
  match outcome with
  | Outcome.Deadlock { waiting } ->
    let lock_set = List.map snd waiting |> List.sort_uniq Int.compare in
    t.manifested <- bump t.manifested lock_set
  | Outcome.Success | Outcome.Crash _ | Outcome.Hang -> ()

let patterns t =
  let cycles = Lock_graph.cycles t.graph in
  let manifested_sets = List.map fst t.manifested in
  let all_sets = List.sort_uniq compare (cycles @ manifested_sets) in
  List.map
    (fun locks ->
      {
        locks;
        manifested = Option.value ~default:0 (List.assoc_opt locks t.manifested);
        predicted = List.mem locks cycles;
      })
    all_sets
  |> List.sort (fun (a : pattern) (b : pattern) -> Int.compare b.manifested a.manifested)

let pattern_count t = List.length (patterns t)

let pp_pattern fmt p =
  Format.fprintf fmt "{locks=%s manifested=%d predicted=%b}"
    (String.concat "," (List.map string_of_int p.locks))
    p.manifested p.predicted

module Codec = Softborg_util.Codec

(* [manifested] is kept as an insertion-ordered assoc list in memory,
   but serialized sorted by lock set: the bytes must be independent of
   observation order (pattern reporting already canonicalizes through
   [patterns]' sort, so the restored order is behaviorally invisible). *)
let write w t =
  Lock_graph.write w t.graph;
  Codec.Writer.list w
    (fun (locks, count) ->
      Codec.Writer.list w (Codec.Writer.varint w) locks;
      Codec.Writer.varint w count)
    (List.sort compare t.manifested)

let read r =
  let graph = Lock_graph.read r in
  let manifested =
    Codec.Reader.list r (fun r ->
        let locks = Codec.Reader.list r Codec.Reader.varint in
        let count = Codec.Reader.varint r in
        (locks, count))
  in
  { graph; manifested }
