module Ir = Softborg_prog.Ir
module Env = Softborg_exec.Env
module Outcome = Softborg_exec.Outcome
module Interp = Softborg_exec.Interp
module Engine = Softborg_exec.Engine
module Sched = Softborg_exec.Sched

type result = {
  runs : int;
  distinct_schedules : int;
  outcomes : (Outcome.t * int list) list;
  failures : (Outcome.t * int list) list;
}

let explore ?(max_runs = 200) ?hooks ?(engine = Engine.Vm) ~program ~make_env () =
  let n_threads = Array.length program.Ir.threads in
  let seen_schedules = Hashtbl.create 64 in
  let outcomes = ref [] in
  let runs = ref 0 in
  let run_with prefix =
    incr runs;
    let r =
      Engine.run ?hooks ~engine ~program ~env:(make_env ()) ~sched:(Sched.Replay prefix) ()
    in
    (r.Interp.outcome, r.Interp.schedule)
  in
  (* Depth-first branching over contended choices: take an observed
     schedule, and for each position try every other thread there. *)
  let queue = Queue.create () in
  Queue.add [] queue;
  while (not (Queue.is_empty queue)) && !runs < max_runs do
    let prefix = Queue.pop queue in
    let outcome, schedule = run_with prefix in
    if not (Hashtbl.mem seen_schedules schedule) then begin
      Hashtbl.replace seen_schedules schedule ();
      outcomes := (outcome, schedule) :: !outcomes;
      (* Branch: flip each contended choice at or after the prefix. *)
      let arr = Array.of_list schedule in
      for i = List.length prefix to Array.length arr - 1 do
        for t = 0 to n_threads - 1 do
          if t <> arr.(i) then begin
            let branched = Array.to_list (Array.sub arr 0 i) @ [ t ] in
            Queue.add branched queue
          end
        done
      done
    end
  done;
  let distinct = List.rev !outcomes in
  {
    runs = !runs;
    distinct_schedules = List.length distinct;
    outcomes = distinct;
    failures = List.filter (fun (o, _) -> Outcome.is_failure o) distinct;
  }
