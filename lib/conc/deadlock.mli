(** Deadlock-pattern mining.

    The hive identifies deadlock patterns two ways: directly, from
    traces whose outcome is a manifested deadlock (the wait-for cycle
    names the locks), and predictively, from lock-order cycles observed
    across {e successful} runs — a lock inversion is dangerous even
    before any user hits the unlucky interleaving.  A pattern is the
    set of locks involved; it is what deadlock-immunity instrumentation
    ({!Immunity}) consumes. *)

module Outcome := Softborg_exec.Outcome
module Interp := Softborg_exec.Interp

type pattern = {
  locks : int list;  (** Sorted, deduplicated lock set. *)
  manifested : int;  (** Executions that actually deadlocked on it. *)
  predicted : bool;  (** Also (or only) found as a lock-order cycle. *)
}

type t

val create : unit -> t

val observe : t -> outcome:Outcome.t -> locks:Interp.lock_event list -> unit
(** Fold one execution's evidence into the miner. *)

val patterns : t -> pattern list
(** Current patterns, most-manifested first. *)

val pattern_count : t -> int

val pp_pattern : Format.formatter -> pattern -> unit

val write : Softborg_util.Codec.Writer.t -> t -> unit
(** Checkpoint codec: lock-order graph plus the manifested-pattern list
    in its original (insertion) order. *)

val read : Softborg_util.Codec.Reader.t -> t
(** @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)
