(** Bounded systematic schedule exploration.

    The hive "may guide P in exploring previously unseen thread
    schedules" (paper §1, §3.3).  This module enumerates interleavings
    of a program on fixed inputs by branching on the recorded
    contended-point choices: re-run with each prefix of an observed
    schedule extended by a different thread, depth-first, up to a run
    budget.  It is the tool that turns a latent lock inversion into a
    {e manifested} deadlock the fix generator can learn from. *)

module Ir := Softborg_prog.Ir
module Env := Softborg_exec.Env
module Outcome := Softborg_exec.Outcome
module Interp := Softborg_exec.Interp

type result = {
  runs : int;  (** Executions performed. *)
  distinct_schedules : int;
  outcomes : (Outcome.t * int list) list;
      (** Distinct (outcome, schedule) pairs discovered. *)
  failures : (Outcome.t * int list) list;
      (** The failing subset, with the schedule that triggers each. *)
}

val explore :
  ?max_runs:int ->
  ?hooks:Interp.hooks ->
  ?engine:Softborg_exec.Engine.t ->
  program:Ir.t ->
  make_env:(unit -> Env.t) ->
  unit ->
  result
(** Systematically explore interleavings (default [max_runs] 200,
    default engine the bytecode VM — exploration is embarrassingly
    execution-bound).  [make_env] must build identical environments
    (same inputs, seed, and fault plan) so that runs differ only in
    scheduling. *)
