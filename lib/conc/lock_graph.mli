(** Lock-order graphs.

    "Traces of lock acquisitions/releases in a program's threads can be
    used to reason about the presence/absence of deadlocks" (paper §2).
    The graph has one node per lock and an edge a→b for every
    observation of a thread acquiring [b] while holding [a]; a cycle is
    a {e potential} deadlock even if no execution has deadlocked yet.
    Graphs from many traces merge monotonically at the hive. *)

module Interp := Softborg_exec.Interp

type t

val create : unit -> t

val add_events : t -> Interp.lock_event list -> unit
(** Fold one execution's lock events into the graph. *)

val merge : t -> t -> unit
(** [merge dst src] adds all of [src]'s observations into [dst]. *)

val edge_count : t -> int -> int -> int
(** How often "held [a], acquired [b]" was observed. *)

val edges : t -> (int * int * int) list
(** All [(held, acquired, count)] edges. *)

val locks : t -> int list
(** Locks that appear in the graph, ascending. *)

val cycles : t -> int list list
(** Simple cycles, each as a sorted deduplicated lock list (the cycle's
    lock set).  Distinct lock sets only. *)

val pp : Format.formatter -> t -> unit

val write : Softborg_util.Codec.Writer.t -> t -> unit
(** Checkpoint codec: edges in ascending (held, acquired) order, so
    equal graphs serialize to equal bytes. *)

val read : Softborg_util.Codec.Reader.t -> t
(** @raise Softborg_util.Codec.Malformed on invalid input.
    @raise Softborg_util.Codec.Truncated on premature end. *)
