module Interp = Softborg_exec.Interp

module Pair = struct
  type t = int * int

  let compare = compare
end

module Pair_map = Map.Make (Pair)
module Int_set = Set.Make (Int)

type t = { mutable edge_counts : int Pair_map.t }

let create () = { edge_counts = Pair_map.empty }

let add_edge t held acquired =
  t.edge_counts <-
    Pair_map.update (held, acquired)
      (function None -> Some 1 | Some n -> Some (n + 1))
      t.edge_counts

let add_events t events =
  (* Track the held set per thread through the event sequence. *)
  let held : (int, Int_set.t) Hashtbl.t = Hashtbl.create 4 in
  let held_of thread = Option.value ~default:Int_set.empty (Hashtbl.find_opt held thread) in
  List.iter
    (fun event ->
      match event with
      | Interp.Acquired { thread; lock; _ } ->
        let h = held_of thread in
        Int_set.iter (fun other -> add_edge t other lock) h;
        Hashtbl.replace held thread (Int_set.add lock h)
      | Interp.Released { thread; lock; _ } ->
        Hashtbl.replace held thread (Int_set.remove lock (held_of thread)))
    events

let merge dst src =
  Pair_map.iter
    (fun (a, b) count ->
      dst.edge_counts <-
        Pair_map.update (a, b)
          (function None -> Some count | Some n -> Some (n + count))
          dst.edge_counts)
    src.edge_counts

let edge_count t a b = Option.value ~default:0 (Pair_map.find_opt (a, b) t.edge_counts)

let edges t = Pair_map.fold (fun (a, b) count acc -> (a, b, count) :: acc) t.edge_counts []

let locks t =
  Pair_map.fold (fun (a, b) _ acc -> Int_set.add a (Int_set.add b acc)) t.edge_counts Int_set.empty
  |> Int_set.elements

let successors t a =
  Pair_map.fold
    (fun (x, y) _ acc -> if x = a then Int_set.add y acc else acc)
    t.edge_counts Int_set.empty

(* Enumerate simple cycles by DFS from each lock; report each cycle's
   lock set once.  Lock counts are tiny (programs have a handful of
   mutexes), so the simple algorithm is fine. *)
let cycles t =
  let all = locks t in
  let found = ref [] in
  let add_cycle path =
    let key = List.sort_uniq Int.compare path in
    if not (List.mem key !found) then found := key :: !found
  in
  let rec dfs start path node =
    Int_set.iter
      (fun next ->
        if next = start then add_cycle path
        else if (not (List.mem next path)) && next > start then
          (* Only visit locks above [start] so each cycle is found from
             its smallest member exactly once. *)
          dfs start (next :: path) next)
      (successors t node)
  in
  List.iter (fun start -> dfs start [ start ] start) all;
  List.rev !found

let pp fmt t =
  List.iter (fun (a, b, count) -> Format.fprintf fmt "l%d->l%d x%d@." a b count) (edges t)

module Codec = Softborg_util.Codec

let write w t =
  Codec.Writer.list w
    (fun ((a, b), count) ->
      Codec.Writer.varint w a;
      Codec.Writer.varint w b;
      Codec.Writer.varint w count)
    (Pair_map.bindings t.edge_counts)

let read r =
  let edge_counts =
    List.fold_left
      (fun acc (key, count) -> Pair_map.add key count acc)
      Pair_map.empty
      (Codec.Reader.list r (fun r ->
           let a = Codec.Reader.varint r in
           let b = Codec.Reader.varint r in
           let count = Codec.Reader.varint r in
           ((a, b), count)))
  in
  { edge_counts }
