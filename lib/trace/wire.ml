module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec
module Ids = Softborg_util.Ids
module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome

type decode_error =
  | Truncated
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated"
  | Malformed msg -> Format.fprintf fmt "malformed: %s" msg

(* ---- Resource caps ----------------------------------------------------- *)

type caps = {
  max_message_bytes : int;
  max_branch_bits : int;
  max_schedule_events : int;
  max_lock_events : int;
  max_predicates : int;
  max_batch_records : int;
  max_batch_total_bits : int;
}

(* Generous for any honest trace the interpreter can produce (branch
   bits are bounded by the pod's step watchdog), tight enough that an
   adversarial upload cannot make the hive materialize gigabytes from a
   few RLE bytes.  A batch gets the same total bit budget as a single
   frame: batching is a framing optimization, not a cap escape hatch. *)
let default_caps =
  {
    max_message_bytes = 1 lsl 20;
    max_branch_bits = 1 lsl 20;
    max_schedule_events = 1 lsl 20;
    max_lock_events = 4096;
    max_predicates = 1 lsl 16;
    max_batch_records = 256;
    max_batch_total_bits = 1 lsl 20;
  }

(* [check caps what n field] raises [Codec.Malformed] when [n] exceeds
   the cap; with no caps it accepts anything (trusted input, e.g. a
   checkpoint the hive wrote itself). *)
let check caps what n field =
  match caps with
  | None -> ()
  | Some c ->
    let limit = field c in
    if n > limit then
      raise (Codec.Malformed (Printf.sprintf "%s %d exceeds cap %d" what n limit))

let syscall_tag = function
  | Ir.Sys_read -> 0
  | Ir.Sys_open -> 1
  | Ir.Sys_write -> 2
  | Ir.Sys_net -> 3
  | Ir.Sys_time -> 4

let syscall_of_tag = function
  | 0 -> Ir.Sys_read
  | 1 -> Ir.Sys_open
  | 2 -> Ir.Sys_write
  | 3 -> Ir.Sys_net
  | 4 -> Ir.Sys_time
  | n -> raise (Codec.Malformed (Printf.sprintf "syscall tag %d" n))

let crash_tag = function
  | Outcome.Assertion_failure -> 0
  | Outcome.Division_by_zero -> 1

let crash_of_tag = function
  | 0 -> Outcome.Assertion_failure
  | 1 -> Outcome.Division_by_zero
  | n -> raise (Codec.Malformed (Printf.sprintf "crash tag %d" n))

let encode_outcome w = function
  | Outcome.Success -> Codec.Writer.byte w 0
  | Outcome.Crash { site; kind; message } ->
    Codec.Writer.byte w 1;
    Codec.Writer.varint w site.Ir.thread;
    Codec.Writer.varint w site.Ir.pc;
    Codec.Writer.byte w (crash_tag kind);
    Codec.Writer.bytes w message
  | Outcome.Deadlock { waiting } ->
    Codec.Writer.byte w 2;
    Codec.Writer.list w
      (fun (thread, lock) ->
        Codec.Writer.varint w thread;
        Codec.Writer.varint w lock)
      waiting
  | Outcome.Hang -> Codec.Writer.byte w 3

let decode_outcome ?caps r =
  match Codec.Reader.byte r with
  | 0 -> Outcome.Success
  | 1 ->
    let thread = Codec.Reader.varint r in
    let pc = Codec.Reader.varint r in
    let kind = crash_of_tag (Codec.Reader.byte r) in
    let message = Codec.Reader.bytes r in
    Outcome.Crash { site = { Ir.thread; pc }; kind; message }
  | 2 ->
    let waiting =
      Codec.Reader.list r (fun r ->
          let thread = Codec.Reader.varint r in
          let lock = Codec.Reader.varint r in
          (thread, lock))
    in
    check caps "lock events" (List.length waiting) (fun c -> c.max_lock_events);
    Outcome.Deadlock { waiting }
  | 3 -> Outcome.Hang
  | n -> raise (Codec.Malformed (Printf.sprintf "outcome tag %d" n))

(* ---- Shared body pieces ------------------------------------------------ *)

(* Branch bits: declared length, then packed or RLE, whichever is
   smaller.  Shared between the full body and the delta body (where the
   vector written is the XOR against the basis — long shared prefixes
   become one long zero run, which is exactly what RLE eats). *)
let write_bits w bits =
  let n_bits = Bitvec.length bits in
  Codec.Writer.varint w n_bits;
  let packed = Bitvec.to_bytes bits in
  let runs = Compress.bit_runs bits in
  let rle = Compress.encode_runs runs in
  if String.length rle < String.length packed then begin
    Codec.Writer.byte w 1;
    Codec.Writer.bytes w rle
  end
  else begin
    Codec.Writer.byte w 0;
    Codec.Writer.bytes w packed
  end

let read_bits ?caps r =
  let n_bits = Codec.Reader.varint r in
  (* Caps are enforced on the *declared* sizes before any expansion:
     a few adversarial RLE bytes must not make the hive materialize a
     multi-gigabyte bit-vector. *)
  check caps "branch bits" n_bits (fun c -> c.max_branch_bits);
  match Codec.Reader.byte r with
  | 0 -> Bitvec.of_bytes (Codec.Reader.bytes r) n_bits
  | 1 ->
    let runs = Compress.decode_runs (Codec.Reader.bytes r) in
    (* Running-sum check: every prefix must stay under the declared
       bit count, so a crafted run length can neither overflow the
       accumulator nor trigger a huge allocation in expansion. *)
    let declared =
      List.fold_left
        (fun acc (_, n) ->
          if n < 0 || n > n_bits - acc then
            raise (Codec.Malformed "RLE bit count mismatch")
          else acc + n)
        0 runs
    in
    if declared <> n_bits then raise (Codec.Malformed "RLE bit count mismatch");
    let bits = Compress.runs_to_bits runs in
    if Bitvec.length bits <> n_bits then raise (Codec.Malformed "RLE bit count mismatch");
    bits
  | n -> raise (Codec.Malformed (Printf.sprintf "bits encoding tag %d" n))

(* Fix attribution: one varint 0 for [None] (the pre-rollout wire,
   byte-for-byte plus that single zero), else the id count + 1, the
   sorted ids, and the hook-fire count.  It sits at the very end of
   both body shapes so [declared_bits]'s fixed skip-prefix and the
   trace store's pod-varint splice offsets are unaffected. *)
let write_attribution w (a : Trace.attribution option) =
  match a with
  | None -> Codec.Writer.varint w 0
  | Some a ->
    Codec.Writer.varint w (List.length a.active_fixes + 1);
    List.iter (Codec.Writer.varint w) a.active_fixes;
    Codec.Writer.varint w a.hook_fires

let read_attribution ?caps r =
  match Codec.Reader.varint r with
  | 0 -> None
  | n ->
    let n_ids = n - 1 in
    check caps "attributed fixes" n_ids (fun c -> c.max_predicates);
    let active_fixes = List.init n_ids (fun _ -> Codec.Reader.varint r) in
    let hook_fires = Codec.Reader.varint r in
    Some { Trace.active_fixes; hook_fires }

let write_tail w (t : Trace.t) =
  (* Schedule: RLE of thread runs. *)
  Codec.Writer.list w
    (fun (thread, run) ->
      Codec.Writer.varint w thread;
      Codec.Writer.varint w run)
    (Compress.int_runs t.schedule);
  Codec.Writer.list w
    (fun (kind, result) ->
      Codec.Writer.byte w (syscall_tag kind);
      Codec.Writer.zigzag w result)
    t.syscalls;
  encode_outcome w t.outcome;
  write_attribution w t.attribution

let read_tail ?caps r =
  let schedule_runs =
    Codec.Reader.list r (fun r ->
        let thread = Codec.Reader.varint r in
        let run = Codec.Reader.varint r in
        (thread, run))
  in
  (match caps with
  | None -> ()
  | Some c ->
    (* Prefix-sum guard, for the same no-amplification reason as the
       branch-bit runs. *)
    ignore
      (List.fold_left
         (fun acc (_, n) ->
           if n < 0 || n > c.max_schedule_events - acc then
             raise
               (Codec.Malformed
                  (Printf.sprintf "schedule events exceed cap %d" c.max_schedule_events))
           else acc + n)
         0 schedule_runs));
  let schedule = Compress.expand_int_runs schedule_runs in
  let syscalls =
    Codec.Reader.list r (fun r ->
        let kind = syscall_of_tag (Codec.Reader.byte r) in
        let result = Codec.Reader.zigzag r in
        (kind, result))
  in
  let outcome = decode_outcome ?caps r in
  let attribution = read_attribution ?caps r in
  (schedule, syscalls, outcome, attribution)

(* ---- Full frame -------------------------------------------------------- *)

(* Everything after the program digest; the single-frame codec and the
   batch-record codec both use it, so the canonical bytes the hive
   stores are identical whichever path a trace arrived by. *)
let write_body w (t : Trace.t) =
  Codec.Writer.varint w t.pod;
  Codec.Writer.varint w t.fix_epoch;
  Codec.Writer.varint w t.steps;
  Codec.Writer.varint w t.n_decisions;
  write_bits w t.bits;
  write_tail w t

let read_body ?caps r ~program_digest ~trace_id =
  let pod = Codec.Reader.varint r in
  let fix_epoch = Codec.Reader.varint r in
  let steps = Codec.Reader.varint r in
  let n_decisions = Codec.Reader.varint r in
  let bits = read_bits ?caps r in
  let schedule, syscalls, outcome, attribution = read_tail ?caps r in
  {
    Trace.trace_id;
    program_digest;
    pod;
    bits;
    n_decisions;
    schedule;
    syscalls;
    outcome;
    steps;
    fix_epoch;
    attribution;
  }

let encode (t : Trace.t) =
  let w = Codec.Writer.create () in
  Codec.Writer.bytes w t.program_digest;
  write_body w t;
  Codec.Writer.contents w

let check_frame_size caps s =
  match caps with
  | Some c when String.length s > c.max_message_bytes ->
    raise
      (Codec.Malformed
         (Printf.sprintf "message of %d bytes exceeds cap %d" (String.length s)
            c.max_message_bytes))
  | _ -> ()

let decode ?caps s =
  match
    check_frame_size caps s;
    let r = Codec.Reader.of_string s in
    let program_digest = Codec.Reader.bytes r in
    read_body ?caps r ~program_digest ~trace_id:(Ids.Trace_id.fresh ())
  with
  | trace -> Ok trace
  | exception Codec.Truncated -> Error Truncated
  | exception Codec.Malformed msg -> Error (Malformed msg)
  | exception Invalid_argument msg -> Error (Malformed msg)

(* ---- Delta records (batched frames) ------------------------------------ *)

(* A batch member is a self-tagged record blob: one tag byte, then
   either a full body (tag 0) or a delta body (tag 1).  The program
   digest lives in the batch header, never in the record.  Delta bodies
   delta everything bulky against a shared anchor trace: steps and
   decision counts as zigzag differences, branch bits as the XOR
   against the anchor's bits (a shared prefix XORs to a zero run that
   RLE collapses to a few bytes).  The schedule, syscalls, and outcome
   travel as in the full body — they are small and rarely shared.

   [encode_record] builds both candidates and ships whichever is
   smaller, so a delta record is never worse than a full one (the
   basis-mismatch / divergent-execution fallback the pods rely on). *)

let record_full = 0
let record_delta = 1

let write_delta_body w ~(basis : Trace.t) (t : Trace.t) =
  Codec.Writer.varint w t.pod;
  Codec.Writer.varint w t.fix_epoch;
  Codec.Writer.zigzag w (t.steps - basis.steps);
  Codec.Writer.zigzag w (t.n_decisions - basis.n_decisions);
  write_bits w (Bitvec.xor t.bits basis.bits);
  write_tail w t

let read_delta_body ?caps r ~(basis : Trace.t) ~program_digest ~trace_id =
  let pod = Codec.Reader.varint r in
  let fix_epoch = Codec.Reader.varint r in
  let steps = basis.steps + Codec.Reader.zigzag r in
  let n_decisions = basis.n_decisions + Codec.Reader.zigzag r in
  if steps < 0 || n_decisions < 0 then
    raise (Codec.Malformed "delta record: negative steps or decisions");
  let x = read_bits ?caps r in
  let bits = Bitvec.xor x basis.bits in
  let schedule, syscalls, outcome, attribution = read_tail ?caps r in
  {
    Trace.trace_id;
    program_digest;
    pod;
    bits;
    n_decisions;
    schedule;
    syscalls;
    outcome;
    steps;
    fix_epoch;
    attribution;
  }

let encode_record ?basis (t : Trace.t) =
  let full =
    let w = Codec.Writer.create () in
    Codec.Writer.byte w record_full;
    write_body w t;
    Codec.Writer.contents w
  in
  match basis with
  | None -> full
  | Some (b : Trace.t) when not (String.equal b.program_digest t.program_digest) -> full
  | Some b ->
    let w = Codec.Writer.create () in
    Codec.Writer.byte w record_delta;
    write_delta_body w ~basis:b t;
    let delta = Codec.Writer.contents w in
    if String.length delta < String.length full then delta else full

let decode_record ?caps ?basis ~program_digest s =
  match
    check_frame_size caps s;
    let r = Codec.Reader.of_string s in
    match Codec.Reader.byte r with
    | tag when tag = record_full -> read_body ?caps r ~program_digest ~trace_id:(Ids.Trace_id.of_int 0)
    | tag when tag = record_delta -> begin
      match basis with
      | None -> raise (Codec.Malformed "delta record without a basis")
      | Some (b : Trace.t) ->
        if not (String.equal b.program_digest program_digest) then
          raise (Codec.Malformed "delta record: basis digest mismatch");
        read_delta_body ?caps r ~basis:b ~program_digest ~trace_id:(Ids.Trace_id.of_int 0)
    end
    | n -> raise (Codec.Malformed (Printf.sprintf "record tag %d" n))
  with
  | trace -> Ok trace
  | exception Codec.Truncated -> Error Truncated
  | exception Codec.Malformed msg -> Error (Malformed msg)
  | exception Invalid_argument msg -> Error (Malformed msg)

let declared_bits s =
  match
    let r = Codec.Reader.of_string s in
    let tag = Codec.Reader.byte r in
    if tag <> record_full && tag <> record_delta then
      raise (Codec.Malformed (Printf.sprintf "record tag %d" tag));
    ignore (Codec.Reader.varint r);
    (* pod *)
    ignore (Codec.Reader.varint r);
    (* fix_epoch *)
    (* steps / n_decisions: plain varints in full bodies, zigzags in
       delta bodies — same byte shape either way, skipped unread. *)
    ignore (Codec.Reader.varint r);
    ignore (Codec.Reader.varint r);
    Codec.Reader.varint r
  with
  | n -> Ok n
  | exception Codec.Truncated -> Error Truncated
  | exception Codec.Malformed msg -> Error (Malformed msg)
