module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec
module Ids = Softborg_util.Ids
module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome

type decode_error =
  | Truncated
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated"
  | Malformed msg -> Format.fprintf fmt "malformed: %s" msg

(* ---- Resource caps ----------------------------------------------------- *)

type caps = {
  max_message_bytes : int;
  max_branch_bits : int;
  max_schedule_events : int;
  max_lock_events : int;
  max_predicates : int;
}

(* Generous for any honest trace the interpreter can produce (branch
   bits are bounded by the pod's step watchdog), tight enough that an
   adversarial upload cannot make the hive materialize gigabytes from a
   few RLE bytes. *)
let default_caps =
  {
    max_message_bytes = 1 lsl 20;
    max_branch_bits = 1 lsl 20;
    max_schedule_events = 1 lsl 20;
    max_lock_events = 4096;
    max_predicates = 1 lsl 16;
  }

(* [check caps what n field] raises [Codec.Malformed] when [n] exceeds
   the cap; with no caps it accepts anything (trusted input, e.g. a
   checkpoint the hive wrote itself). *)
let check caps what n field =
  match caps with
  | None -> ()
  | Some c ->
    let limit = field c in
    if n > limit then
      raise (Codec.Malformed (Printf.sprintf "%s %d exceeds cap %d" what n limit))

let syscall_tag = function
  | Ir.Sys_read -> 0
  | Ir.Sys_open -> 1
  | Ir.Sys_write -> 2
  | Ir.Sys_net -> 3
  | Ir.Sys_time -> 4

let syscall_of_tag = function
  | 0 -> Ir.Sys_read
  | 1 -> Ir.Sys_open
  | 2 -> Ir.Sys_write
  | 3 -> Ir.Sys_net
  | 4 -> Ir.Sys_time
  | n -> raise (Codec.Malformed (Printf.sprintf "syscall tag %d" n))

let crash_tag = function
  | Outcome.Assertion_failure -> 0
  | Outcome.Division_by_zero -> 1

let crash_of_tag = function
  | 0 -> Outcome.Assertion_failure
  | 1 -> Outcome.Division_by_zero
  | n -> raise (Codec.Malformed (Printf.sprintf "crash tag %d" n))

let encode_outcome w = function
  | Outcome.Success -> Codec.Writer.byte w 0
  | Outcome.Crash { site; kind; message } ->
    Codec.Writer.byte w 1;
    Codec.Writer.varint w site.Ir.thread;
    Codec.Writer.varint w site.Ir.pc;
    Codec.Writer.byte w (crash_tag kind);
    Codec.Writer.bytes w message
  | Outcome.Deadlock { waiting } ->
    Codec.Writer.byte w 2;
    Codec.Writer.list w
      (fun (thread, lock) ->
        Codec.Writer.varint w thread;
        Codec.Writer.varint w lock)
      waiting
  | Outcome.Hang -> Codec.Writer.byte w 3

let decode_outcome ?caps r =
  match Codec.Reader.byte r with
  | 0 -> Outcome.Success
  | 1 ->
    let thread = Codec.Reader.varint r in
    let pc = Codec.Reader.varint r in
    let kind = crash_of_tag (Codec.Reader.byte r) in
    let message = Codec.Reader.bytes r in
    Outcome.Crash { site = { Ir.thread; pc }; kind; message }
  | 2 ->
    let waiting =
      Codec.Reader.list r (fun r ->
          let thread = Codec.Reader.varint r in
          let lock = Codec.Reader.varint r in
          (thread, lock))
    in
    check caps "lock events" (List.length waiting) (fun c -> c.max_lock_events);
    Outcome.Deadlock { waiting }
  | 3 -> Outcome.Hang
  | n -> raise (Codec.Malformed (Printf.sprintf "outcome tag %d" n))

let encode (t : Trace.t) =
  let w = Codec.Writer.create () in
  Codec.Writer.bytes w t.program_digest;
  Codec.Writer.varint w t.pod;
  Codec.Writer.varint w t.fix_epoch;
  Codec.Writer.varint w t.steps;
  Codec.Writer.varint w t.n_decisions;
  (* Branch bits: packed or RLE, whichever is smaller. *)
  let n_bits = Bitvec.length t.bits in
  Codec.Writer.varint w n_bits;
  let packed = Bitvec.to_bytes t.bits in
  let runs = Compress.bit_runs t.bits in
  let rle = Compress.encode_runs runs in
  if String.length rle < String.length packed then begin
    Codec.Writer.byte w 1;
    Codec.Writer.bytes w rle
  end
  else begin
    Codec.Writer.byte w 0;
    Codec.Writer.bytes w packed
  end;
  (* Schedule: RLE of thread runs. *)
  Codec.Writer.list w
    (fun (thread, run) ->
      Codec.Writer.varint w thread;
      Codec.Writer.varint w run)
    (Compress.int_runs t.schedule);
  Codec.Writer.list w
    (fun (kind, result) ->
      Codec.Writer.byte w (syscall_tag kind);
      Codec.Writer.zigzag w result)
    t.syscalls;
  encode_outcome w t.outcome;
  Codec.Writer.contents w

let decode ?caps s =
  match
    (match caps with
    | Some c when String.length s > c.max_message_bytes ->
      raise
        (Codec.Malformed
           (Printf.sprintf "message of %d bytes exceeds cap %d" (String.length s)
              c.max_message_bytes))
    | _ -> ());
    let r = Codec.Reader.of_string s in
    let program_digest = Codec.Reader.bytes r in
    let pod = Codec.Reader.varint r in
    let fix_epoch = Codec.Reader.varint r in
    let steps = Codec.Reader.varint r in
    let n_decisions = Codec.Reader.varint r in
    let n_bits = Codec.Reader.varint r in
    (* Caps are enforced on the *declared* sizes before any expansion:
       a few adversarial RLE bytes must not make the hive materialize a
       multi-gigabyte bit-vector. *)
    check caps "branch bits" n_bits (fun c -> c.max_branch_bits);
    let bits =
      match Codec.Reader.byte r with
      | 0 -> Bitvec.of_bytes (Codec.Reader.bytes r) n_bits
      | 1 ->
        let runs = Compress.decode_runs (Codec.Reader.bytes r) in
        (* Running-sum check: every prefix must stay under the declared
           bit count, so a crafted run length can neither overflow the
           accumulator nor trigger a huge allocation in expansion. *)
        let declared =
          List.fold_left
            (fun acc (_, n) ->
              if n < 0 || n > n_bits - acc then
                raise (Codec.Malformed "RLE bit count mismatch")
              else acc + n)
            0 runs
        in
        if declared <> n_bits then raise (Codec.Malformed "RLE bit count mismatch");
        let bits = Compress.runs_to_bits runs in
        if Bitvec.length bits <> n_bits then raise (Codec.Malformed "RLE bit count mismatch");
        bits
      | n -> raise (Codec.Malformed (Printf.sprintf "bits encoding tag %d" n))
    in
    let schedule_runs =
      Codec.Reader.list r (fun r ->
          let thread = Codec.Reader.varint r in
          let run = Codec.Reader.varint r in
          (thread, run))
    in
    (match caps with
    | None -> ()
    | Some c ->
      (* Prefix-sum guard, for the same no-amplification reason as the
         branch-bit runs. *)
      ignore
        (List.fold_left
           (fun acc (_, n) ->
             if n < 0 || n > c.max_schedule_events - acc then
               raise
                 (Codec.Malformed
                    (Printf.sprintf "schedule events exceed cap %d" c.max_schedule_events))
             else acc + n)
           0 schedule_runs));
    let schedule = Compress.expand_int_runs schedule_runs in
    let syscalls =
      Codec.Reader.list r (fun r ->
          let kind = syscall_of_tag (Codec.Reader.byte r) in
          let result = Codec.Reader.zigzag r in
          (kind, result))
    in
    let outcome = decode_outcome ?caps r in
    {
      Trace.trace_id = Ids.Trace_id.fresh ();
      program_digest;
      pod;
      bits;
      n_decisions;
      schedule;
      syscalls;
      outcome;
      steps;
      fix_epoch;
    }
  with
  | trace -> Ok trace
  | exception Codec.Truncated -> Error Truncated
  | exception Codec.Malformed msg -> Error (Malformed msg)
  | exception Invalid_argument msg -> Error (Malformed msg)
