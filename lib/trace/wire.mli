(** Wire format for traces.

    Capture and upload cost is a first-order concern (paper §3.1), so
    traces travel in a compact binary form: varint-framed fields, the
    branch bit-vector packed 8-per-byte or run-length encoded
    (whichever is smaller), and the schedule run-length encoded
    (threads run in long bursts under realistic schedulers). *)

type decode_error =
  | Truncated
  | Malformed of string

(** Hard resource caps for decoding untrusted uploads (poison-trace
    quarantine, DESIGN.md §9).  Every cap bounds what the decoder will
    {e materialize}, checked against declared sizes before any
    expansion — a few adversarial RLE bytes cannot make the hive
    allocate gigabytes.  Pass no caps for trusted input (checkpoints
    the hive wrote itself). *)
type caps = {
  max_message_bytes : int;  (** Raw encoded frame size. *)
  max_branch_bits : int;  (** Declared branch bit-vector length. *)
  max_schedule_events : int;  (** Expanded schedule length. *)
  max_lock_events : int;  (** Deadlock wait-for edges per outcome. *)
  max_predicates : int;  (** Sampled-report predicate rows
                             (enforced by {!Softborg_hive.Protocol}). *)
  max_batch_records : int;  (** Trace records per batched frame
                                (enforced by {!Softborg_hive.Protocol}). *)
  max_batch_total_bits : int;
      (** Sum of declared branch bits across a whole batch — a batch
          gets the same total bit budget as one frame, so batching
          cannot smuggle volume past per-frame quarantine accounting
          (enforced by the hive's batch admission). *)
}

val default_caps : caps
(** Generous for any honest trace (the pod's step watchdog bounds
    them), tight enough to stop amplification attacks. *)

val encode : Trace.t -> string

val decode : ?caps:caps -> string -> (Trace.t, decode_error) result
(** [decode (encode t)] re-creates [t] up to {!Trace.equal} (a fresh
    trace id is assigned).  Total: any input yields [Ok] or [Error],
    never an exception.  With [caps], oversized or amplifying inputs
    are rejected as [Malformed]. *)

val pp_error : Format.formatter -> decode_error -> unit

(** {2 Batch records}

    A batched upload carries the program digest once (in the
    {!Softborg_hive.Protocol.Batch_upload} header) and each member
    trace as a self-tagged {e record} blob: a full body, or a delta
    body against a shared anchor trace (the hive-announced basis, or
    the batch's leading full record).  Delta bodies encode steps and
    decision counts as signed differences and branch bits as the XOR
    against the anchor — shared path prefixes become one long zero run
    that the RLE stage collapses. *)

val encode_record : ?basis:Trace.t -> Trace.t -> string
(** [encode_record ?basis t] is the record blob for [t].  With a basis
    of the same program, both the full and the delta candidate are
    built and the smaller ships — a delta record is never larger than
    the full encoding plus its one tag byte.  Without a basis (or with
    a basis for another program) the record is always full. *)

val decode_record :
  ?caps:caps -> ?basis:Trace.t -> program_digest:string -> string -> (Trace.t, decode_error) result
(** Total inverse of {!encode_record}.  The returned trace has
    [trace_id = 0]; the hive assigns real ids on its single ingest
    thread (ids are minted from a domain-unsafe counter).  A delta
    record without a matching [basis] is [Malformed] — the pod should
    have fallen back to a full record. *)

val declared_bits : string -> (int, decode_error) result
(** Cheap header probe: the declared branch-bit count of a record blob,
    read without expanding anything.  The hive's batch admission sums
    these against [max_batch_total_bits] before spending any decode
    work. *)

module Codec := Softborg_util.Codec
module Outcome := Softborg_exec.Outcome

val encode_outcome : Codec.Writer.t -> Outcome.t -> unit
val decode_outcome : ?caps:caps -> Codec.Reader.t -> Outcome.t
(** Outcome sub-codec, shared with the hive↔pod message protocol.
    @raise Softborg_util.Codec.Malformed on invalid input. *)
