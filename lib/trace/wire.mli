(** Wire format for traces.

    Capture and upload cost is a first-order concern (paper §3.1), so
    traces travel in a compact binary form: varint-framed fields, the
    branch bit-vector packed 8-per-byte or run-length encoded
    (whichever is smaller), and the schedule run-length encoded
    (threads run in long bursts under realistic schedulers). *)

type decode_error =
  | Truncated
  | Malformed of string

(** Hard resource caps for decoding untrusted uploads (poison-trace
    quarantine, DESIGN.md §9).  Every cap bounds what the decoder will
    {e materialize}, checked against declared sizes before any
    expansion — a few adversarial RLE bytes cannot make the hive
    allocate gigabytes.  Pass no caps for trusted input (checkpoints
    the hive wrote itself). *)
type caps = {
  max_message_bytes : int;  (** Raw encoded frame size. *)
  max_branch_bits : int;  (** Declared branch bit-vector length. *)
  max_schedule_events : int;  (** Expanded schedule length. *)
  max_lock_events : int;  (** Deadlock wait-for edges per outcome. *)
  max_predicates : int;  (** Sampled-report predicate rows
                             (enforced by {!Softborg_hive.Protocol}). *)
}

val default_caps : caps
(** Generous for any honest trace (the pod's step watchdog bounds
    them), tight enough to stop amplification attacks. *)

val encode : Trace.t -> string

val decode : ?caps:caps -> string -> (Trace.t, decode_error) result
(** [decode (encode t)] re-creates [t] up to {!Trace.equal} (a fresh
    trace id is assigned).  Total: any input yields [Ok] or [Error],
    never an exception.  With [caps], oversized or amplifying inputs
    are rejected as [Malformed]. *)

val pp_error : Format.formatter -> decode_error -> unit

module Codec := Softborg_util.Codec
module Outcome := Softborg_exec.Outcome

val encode_outcome : Codec.Writer.t -> Outcome.t -> unit
val decode_outcome : ?caps:caps -> Codec.Reader.t -> Outcome.t
(** Outcome sub-codec, shared with the hive↔pod message protocol.
    @raise Softborg_util.Codec.Malformed on invalid input. *)
