(** Execution trace records: the by-product bundle a pod relays to the
    hive (paper §3.1).

    A trace is deliberately {e not} the program's inputs: control flow
    is captured as the input-dependent branch bit-vector, external
    effects as the syscall return-value summary, concurrency as the
    contended-point schedule.  Everything the hive does — tree
    merging, bug isolation, fix synthesis — consumes these fields. *)

module Bitvec := Softborg_util.Bitvec
module Ids := Softborg_util.Ids
module Ir := Softborg_prog.Ir
module Outcome := Softborg_exec.Outcome
module Interp := Softborg_exec.Interp

type attribution = {
  active_fixes : int list;
      (** Sorted ids of the fixes whose hooks were installed on this
          execution — the rollout health test's join key. *)
  hook_fires : int;
      (** Crash suppressions + deferred acquisitions those hooks
          performed (guard-misfire telemetry on benign paths). *)
}
(** Fix-attributed health telemetry: which deployed fixes shaped this
    execution.  [None] when the pod predates staged rollout or has
    attribution disabled. *)

type t = {
  trace_id : Ids.Trace_id.t;
  program_digest : string;  (** Keys hive knowledge to a program build. *)
  pod : int;  (** Reporting pod. *)
  bits : Bitvec.t;  (** Input-dependent branch decisions. *)
  n_decisions : int;  (** Full-path decision count (replay stop). *)
  schedule : int list;
  syscalls : (Ir.syscall_kind * int) list;
  outcome : Outcome.t;
  steps : int;
  fix_epoch : int;  (** Fix version active in the pod when recorded. *)
  attribution : attribution option;
}

val of_result :
  program_digest:string ->
  pod:int ->
  fix_epoch:int ->
  ?attribution:attribution ->
  Interp.result ->
  t
(** Package an interpreter result as a relayable trace. *)

val recorded_fraction : t -> float
(** Recorded bits / full-path decisions: the capture-saving from
    recording only input-dependent branches (1.0 when every branch
    was input-dependent; 0 when the path was fully deterministic). *)

val equal : t -> t -> bool
(** Equality on content (ignores [trace_id]). *)

val pp : Format.formatter -> t -> unit
