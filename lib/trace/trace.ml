module Bitvec = Softborg_util.Bitvec
module Ids = Softborg_util.Ids
module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome
module Interp = Softborg_exec.Interp

type attribution = { active_fixes : int list; hook_fires : int }

type t = {
  trace_id : Ids.Trace_id.t;
  program_digest : string;
  pod : int;
  bits : Bitvec.t;
  n_decisions : int;
  schedule : int list;
  syscalls : (Ir.syscall_kind * int) list;
  outcome : Outcome.t;
  steps : int;
  fix_epoch : int;
  attribution : attribution option;
}

let of_result ~program_digest ~pod ~fix_epoch ?attribution (r : Interp.result) =
  {
    trace_id = Ids.Trace_id.fresh ();
    program_digest;
    pod;
    bits = Bitvec.copy r.bits;
    n_decisions = List.length r.full_path;
    schedule = r.schedule;
    syscalls = r.syscalls;
    outcome = r.outcome;
    steps = r.steps;
    fix_epoch;
    attribution;
  }

let recorded_fraction t =
  if t.n_decisions = 0 then 0.0
  else float_of_int (Bitvec.length t.bits) /. float_of_int t.n_decisions

let attribution_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a.active_fixes = b.active_fixes && a.hook_fires = b.hook_fires
  | (None | Some _), _ -> false

let equal a b =
  String.equal a.program_digest b.program_digest
  && a.pod = b.pod
  && Bitvec.equal a.bits b.bits
  && a.n_decisions = b.n_decisions
  && a.schedule = b.schedule
  && a.syscalls = b.syscalls
  && Outcome.equal a.outcome b.outcome
  && a.steps = b.steps
  && a.fix_epoch = b.fix_epoch
  && attribution_equal a.attribution b.attribution

let pp fmt t =
  Format.fprintf fmt "trace{pod=%d bits=%d/%d sched=%d sys=%d outcome=%a%s}" t.pod
    (Bitvec.length t.bits) t.n_decisions (List.length t.schedule) (List.length t.syscalls)
    Outcome.pp t.outcome
    (match t.attribution with
    | None -> ""
    | Some a ->
      Printf.sprintf " fixes=[%s]%s"
        (String.concat "," (List.map string_of_int a.active_fixes))
        (if a.hook_fires > 0 then Printf.sprintf " fires=%d" a.hook_fires else ""))
