type snapshot = {
  time : float;
  sessions : int;
  guided_runs : int;
  user_failures : int;
  averted_crashes : int;
  deferred_acquisitions : int;
  guard_flags : int;
  traces_uploaded : int;
  fixes_deployed : int;
  proofs_valid : int;
  tree_paths : int;
  tree_completeness : float;
  checkpoints : int;
  restores : int;
  shed_uploads : int;
  quarantined_frames : int;
  pods_muted : int;
  peak_queue_depth : int;
  thinned_uploads : int;
  dead_letters : int;
  (* Wire-plane counters, summed over the pod-side endpoints: what the
     delta/batch encodings exist to shrink.  Data-only in the snapshot
     ([pp_snapshot] omits them; [Platform.pp_report] prints one wire
     line from the final snapshot instead). *)
  wire_bytes : int;
  wire_frames_sent : int;
  wire_frames_received : int;
  (* Cache-efficiency counters summed over the knowledge bases.  They
     are carried in the snapshot for programmatic access but are NOT
     printed by [pp_snapshot]: the hit/miss split legitimately varies
     with the speculative-solver pool size (speculation pre-fills the
     memo without a lookup), and snapshot lines are covered by the
     pool-size byte-identity invariant.  Federated runs print them
     per shard in the report's federation section, where per-shard
     planning is pool-free and the counts are deterministic. *)
  gap_memo_hits : int;
  gap_memo_misses : int;
  verdict_cache_hits : int;
  verdict_cache_misses : int;
  (* Staged-rollout counters; all zero (and silent in [pp_snapshot])
     when the run has no rollout config. *)
  canary_fixes : int;
  fix_promotions : int;
  fix_retractions : int;
  quarantined_fix_traces : int;
  pods_exposed : int;
}

let failure_rate s =
  if s.sessions = 0 then 0.0 else float_of_int s.user_failures /. float_of_int s.sessions

type window = {
  t_start : float;
  t_end : float;
  w_sessions : int;
  w_failures : int;
  w_averted : int;
  w_failure_rate : float;
}

let windows snapshots =
  let rec pair acc = function
    | a :: (b :: _ as rest) ->
      let w_sessions = b.sessions - a.sessions in
      let w_failures = b.user_failures - a.user_failures in
      let window =
        {
          t_start = a.time;
          t_end = b.time;
          w_sessions;
          w_failures;
          w_averted = b.averted_crashes - a.averted_crashes;
          w_failure_rate =
            (if w_sessions = 0 then 0.0 else float_of_int w_failures /. float_of_int w_sessions);
        }
      in
      pair (window :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  pair [] snapshots

(* Overload fields print only when non-zero: an unpressured run's
   snapshot lines stay byte-identical to builds without the overload
   layer (the byte-identity invariant tests rely on). *)
let pp_snapshot fmt s =
  Format.fprintf fmt
    "t=%-7.0f sessions=%-6d failures=%-5d averted=%-5d fixes=%-3d proofs=%-2d paths=%-5d%s%s%s%s%s%s%s%s"
    s.time s.sessions s.user_failures s.averted_crashes s.fixes_deployed s.proofs_valid
    s.tree_paths
    (if s.restores > 0 then Printf.sprintf " restores=%d" s.restores else "")
    (if s.shed_uploads > 0 then Printf.sprintf " shed=%d" s.shed_uploads else "")
    (if s.quarantined_frames > 0 then Printf.sprintf " quarantined=%d" s.quarantined_frames
     else "")
    (if s.pods_muted > 0 then Printf.sprintf " muted=%d" s.pods_muted else "")
    (if s.thinned_uploads > 0 then Printf.sprintf " thinned=%d" s.thinned_uploads else "")
    (if s.canary_fixes > 0 then Printf.sprintf " canary=%d" s.canary_fixes else "")
    (if s.fix_retractions > 0 then Printf.sprintf " retracted=%d" s.fix_retractions else "")
    (if s.pods_exposed > 0 then Printf.sprintf " exposed=%d" s.pods_exposed else "")

let pp_window fmt w =
  Format.fprintf fmt "[%6.0f,%6.0f) sessions=%-5d failures=%-4d rate=%.4f" w.t_start w.t_end
    w.w_sessions w.w_failures w.w_failure_rate
