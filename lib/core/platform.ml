module Rng = Softborg_util.Rng
module Ir = Softborg_prog.Ir
module Generator = Softborg_prog.Generator
module Sim = Softborg_net.Sim
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport
module Fault_plan = Softborg_net.Fault_plan
module Hive = Softborg_hive.Hive
module Knowledge = Softborg_hive.Knowledge
module Fixgen = Softborg_hive.Fixgen
module Prover = Softborg_hive.Prover
module Federation = Softborg_hive.Federation
module Shard_map = Softborg_hive.Shard_map
module Exec_tree = Softborg_tree.Exec_tree
module Pod = Softborg_pod.Pod

type config = {
  seed : int;
  n_pods : int;
  programs : Ir.t list;
  duration : float;
  sample_interval : float;
  pod_config : Pod.config;
  hive_config : Hive.config;
  transport_config : Transport.config;
  cbi_sampling_rate : int;
  chaos : Fault_plan.t option;
  checkpoint_interval : float;
  n_shards : int;
}

let default_programs seed =
  let rng = Rng.create seed in
  List.init 3 (fun i ->
      let bugs =
        match i with
        | 0 -> [ Generator.Rare_assert; Generator.Unchecked_syscall ]
        | 1 -> [ Generator.Div_by_zero ]
        | _ -> [ Generator.Deadlock_pair ]
      in
      fst (Generator.generate rng { Generator.default_params with Generator.bugs }))

let default_config ?(mode = Hive.Full) () =
  {
    seed = 42;
    n_pods = 8;
    programs = default_programs 42;
    duration = 600.0;
    sample_interval = 60.0;
    pod_config = Pod.default_config;
    hive_config = Hive.default_config mode;
    transport_config = Transport.default_config;
    cbi_sampling_rate = 100;
    chaos = None;
    checkpoint_interval = 120.0;
    n_shards = 1;
  }

type report = {
  snapshots : Metrics.snapshot list;
  final : Metrics.snapshot;
  hive_stats : Hive.stats;
  pod_metrics : Pod.metrics list;
  transport_stats : Transport.stats list;
  knowledge : Knowledge.t list;
  federation : Federation.stats option;
}

let upload_mode config =
  match config.hive_config.Hive.mode with
  | Hive.Full -> Pod.Full_traces
  | Hive.Wer -> Pod.Outcomes_only
  | Hive.Cbi -> Pod.Sampled_reports config.cbi_sampling_rate

(* The knowledge list is fetched fresh on every snapshot: a checkpoint
   restore replaces the hive's [Knowledge.t] objects, so a list captured
   at t=0 would silently keep reading the pre-restore ones. *)
let snapshot ~time ~pods ~endpoints ~hive =
  let knowledge_list = Hive.knowledge_list hive in
  let sum f = List.fold_left (fun acc pod -> acc + f (Pod.metrics pod)) 0 pods in
  let sum_wire f = List.fold_left (fun acc e -> acc + f (Transport.stats e)) 0 endpoints in
  let hive_stats = Hive.stats hive in
  let sum_knowledge f = List.fold_left (fun acc k -> acc + f k) 0 knowledge_list in
  let proofs_valid = sum_knowledge (fun k -> List.length (Knowledge.valid_proofs k)) in
  let tree_paths =
    List.fold_left (fun acc k -> acc + Exec_tree.n_distinct_paths (Knowledge.tree k)) 0 knowledge_list
  in
  let completeness =
    match knowledge_list with
    | [] -> 1.0
    | ks ->
      List.fold_left (fun acc k -> acc +. Exec_tree.completeness (Knowledge.tree k)) 0.0 ks
      /. float_of_int (List.length ks)
  in
  {
    Metrics.time;
    sessions = sum (fun m -> m.Pod.sessions);
    guided_runs = sum (fun m -> m.Pod.guided_runs);
    user_failures = sum (fun m -> m.Pod.user_failures);
    averted_crashes = sum (fun m -> m.Pod.averted_crashes);
    deferred_acquisitions = sum (fun m -> m.Pod.deferred_acquisitions);
    guard_flags = sum (fun m -> m.Pod.guard_flags);
    traces_uploaded = sum (fun m -> m.Pod.traces_uploaded);
    fixes_deployed = hive_stats.Hive.fixes_deployed;
    proofs_valid;
    tree_paths;
    tree_completeness = completeness;
    checkpoints = hive_stats.Hive.checkpoints_taken;
    restores = hive_stats.Hive.restores_completed;
    shed_uploads = hive_stats.Hive.shed_success + hive_stats.Hive.shed_failure;
    quarantined_frames = hive_stats.Hive.quarantined_frames;
    pods_muted = hive_stats.Hive.pods_muted;
    peak_queue_depth = hive_stats.Hive.peak_queue_depth;
    thinned_uploads = sum (fun m -> m.Pod.thinned_uploads);
    dead_letters = sum (fun m -> m.Pod.dead_letters);
    wire_bytes = sum_wire (fun s -> s.Transport.bytes_on_wire);
    wire_frames_sent = sum_wire (fun s -> s.Transport.messages_sent);
    wire_frames_received = sum_wire (fun s -> s.Transport.delivered);
    gap_memo_hits = sum_knowledge (fun k -> Softborg_hive.Gap_memo.hits (Knowledge.gap_memo k));
    gap_memo_misses =
      sum_knowledge (fun k -> Softborg_hive.Gap_memo.misses (Knowledge.gap_memo k));
    verdict_cache_hits =
      sum_knowledge (fun k ->
          Softborg_solver.Verdict_cache.hits (Knowledge.verdict_cache k));
    verdict_cache_misses =
      sum_knowledge (fun k ->
          Softborg_solver.Verdict_cache.misses (Knowledge.verdict_cache k));
    canary_fixes = sum_knowledge (fun k -> List.length (Knowledge.canary_ids k));
    fix_promotions = hive_stats.Hive.fix_promotions;
    fix_retractions = hive_stats.Hive.fix_retractions;
    quarantined_fix_traces = hive_stats.Hive.quarantined_fix_traces;
    pods_exposed = sum (fun m -> if m.Pod.canary_exposed then 1 else 0);
  }

(* Interpret the fault plan against a live fleet.  All chaos-side
   randomness (joining pods' streams, program choice) comes from
   [chaos_rng], which is derived from the seed but independent of the
   main fleet streams — a plan containing only Checkpoint events leaves
   a run byte-identical to its fault-free twin. *)
let install_chaos ~sim ~config ~hive ~chaos_rng ~pods ~pod_endpoints ~hive_endpoints
    ~last_checkpoint ~next_cohort plan =
  let pod_upload = upload_mode config in
  let all_links () =
    List.filter_map Transport.out_link (!pod_endpoints @ !hive_endpoints)
  in
  List.iter
    (fun event ->
      match event with
      | Fault_plan.Checkpoint { at } ->
        Sim.schedule_at sim ~time:at (fun () -> last_checkpoint := Hive.checkpoint hive)
      | Fault_plan.Hive_crash { at } ->
        (* Crash + restart collapse to one instant on the simulated
           clock: the knowledge reverts to the last checkpoint and the
           fleet keeps running against the restarted hive. *)
        Sim.schedule_at sim ~time:at (fun () ->
            match Hive.restore hive !last_checkpoint with Ok _ | Error _ -> ())
      | Fault_plan.Pod_leave { at; pod } ->
        Sim.schedule_at sim ~time:at (fun () ->
            match !pods with
            | [] -> ()
            | alive -> Pod.stop (List.nth alive (pod mod List.length alive)))
      | Fault_plan.Pod_join { at } ->
        Sim.schedule_at sim ~time:at (fun () ->
            let program =
              List.nth config.programs (Rng.int chaos_rng (List.length config.programs))
            in
            let pod_end, hive_end =
              Transport.endpoint_pair ~config:config.transport_config ~sim
                ~rng:(Rng.split chaos_rng) ()
            in
            Hive.attach_pod hive hive_end;
            let pod_config = { config.pod_config with Pod.upload = pod_upload } in
            let cohort = !next_cohort in
            next_cohort := cohort + 1;
            let pod =
              Pod.create ~config:pod_config ~cohort ~sim ~rng:(Rng.split chaos_rng) ~program
                ~endpoint:pod_end ()
            in
            Pod.start pod;
            pods := !pods @ [ pod ];
            pod_endpoints := !pod_endpoints @ [ pod_end ];
            hive_endpoints := !hive_endpoints @ [ hive_end ])
      | Fault_plan.Degrade { at; until_; link } ->
        Sim.schedule_at sim ~time:at (fun () ->
            List.iter (fun l -> Link.set_config l link) (all_links ()));
        Sim.schedule_at sim ~time:until_ (fun () ->
            List.iter
              (fun l -> Link.set_config l config.transport_config.Transport.link)
              (all_links ()))
      | Fault_plan.Bad_fix { at; program; variant } ->
        (* The saboteur: a plausible-but-wrong fix enters the hive as if
           synthesis (or a human) produced it.  With a rollout config it
           lands in a canary cohort and must be retracted; without one
           it deploys fleet-wide — exactly the hazard staging removes. *)
        Sim.schedule_at sim ~time:at (fun () ->
            let p = List.nth config.programs (program mod List.length config.programs) in
            let kind =
              Fixgen.sabotage_kind (Fixgen.sabotage_of_variant variant) ~program:p
            in
            Hive.inject_fix hive ~digest:(Ir.digest p) kind))
    (Fault_plan.events plan)

let run_single config =
  let sim = Sim.create () in
  let rng = Rng.create config.seed in
  let hive = Hive.create ~config:config.hive_config ~sim () in
  List.iter (fun program -> ignore (Hive.register_program hive program)) config.programs;
  let pod_upload = upload_mode config in
  let fleet =
    List.init config.n_pods (fun i ->
        let program = List.nth config.programs (i mod List.length config.programs) in
        let pod_end, hive_end =
          Transport.endpoint_pair ~config:config.transport_config ~sim ~rng:(Rng.split rng) ()
        in
        Hive.attach_pod hive hive_end;
        let pod_config = { config.pod_config with Pod.upload = pod_upload } in
        let pod =
          Pod.create ~config:pod_config ~cohort:i ~sim ~rng:(Rng.split rng) ~program
            ~endpoint:pod_end ()
        in
        (pod, pod_end, hive_end))
  in
  let pods = ref (List.map (fun (p, _, _) -> p) fleet) in
  let pod_endpoints = ref (List.map (fun (_, e, _) -> e) fleet) in
  let hive_endpoints = ref (List.map (fun (_, _, e) -> e) fleet) in
  Hive.start hive;
  List.iter Pod.start !pods;
  (match config.chaos with
  | None -> ()
  | Some plan ->
    let chaos_rng = Rng.create (config.seed lxor 0x6368616f73) in
    (* An initial checkpoint so a crash before the first scheduled one
       restores to the empty-but-registered state, not garbage. *)
    let last_checkpoint = ref (Hive.checkpoint hive) in
    if config.checkpoint_interval > 0.0 then begin
      let rec arm at =
        if at <= config.duration then
          Sim.schedule_at sim ~time:at (fun () ->
              last_checkpoint := Hive.checkpoint hive;
              arm (at +. config.checkpoint_interval))
      in
      arm config.checkpoint_interval
    end;
    install_chaos ~sim ~config ~hive ~chaos_rng ~pods ~pod_endpoints ~hive_endpoints
      ~last_checkpoint ~next_cohort:(ref config.n_pods) plan);
  let snapshots =
    ref [ snapshot ~time:0.0 ~pods:!pods ~endpoints:!pod_endpoints ~hive ]
  in
  let rec sample at =
    if at <= config.duration then
      Sim.schedule_at sim ~time:at (fun () ->
          snapshots :=
            snapshot ~time:at ~pods:!pods ~endpoints:!pod_endpoints ~hive :: !snapshots;
          sample (at +. config.sample_interval))
  in
  sample config.sample_interval;
  Sim.run ~until:config.duration sim;
  (* Join the gap-solver worker domains (no-op with pool_size 1). *)
  Hive.shutdown hive;
  let snapshots = List.rev !snapshots in
  let final = List.nth snapshots (List.length snapshots - 1) in
  {
    snapshots;
    final;
    hive_stats = Hive.stats hive;
    pod_metrics = List.map Pod.metrics !pods;
    transport_stats = List.map Transport.stats !pod_endpoints;
    knowledge = Hive.knowledge_list hive;
    federation = None;
  }

(* ---- Federated runs ----------------------------------------------------- *)

(* Fleet-level counters come from the merge coordinator (fixes, proofs,
   tree) and from summing the shard hives (checkpoints, restores,
   overload interventions, cache counters): the merged hive never faces
   pods directly, so shard totals are the platform-level truth. *)
let snapshot_fed ~time ~pods ~endpoints ~fed =
  let merged = Federation.merged fed in
  let knowledge_list = Hive.knowledge_list merged in
  let sum f = List.fold_left (fun acc pod -> acc + f (Pod.metrics pod)) 0 pods in
  let sum_wire f = List.fold_left (fun acc e -> acc + f (Transport.stats e)) 0 endpoints in
  let merged_stats = Hive.stats merged in
  let fs = Federation.stats fed in
  let shard_sum f =
    List.fold_left (fun acc ss -> acc + f ss) 0 fs.Federation.per_shard
  in
  let shard_hive_sum f = shard_sum (fun ss -> f ss.Federation.hive_stats) in
  let sum_knowledge f = List.fold_left (fun acc k -> acc + f k) 0 knowledge_list in
  let proofs_valid = sum_knowledge (fun k -> List.length (Knowledge.valid_proofs k)) in
  let tree_paths = sum_knowledge (fun k -> Exec_tree.n_distinct_paths (Knowledge.tree k)) in
  let completeness =
    match knowledge_list with
    | [] -> 1.0
    | ks ->
      List.fold_left (fun acc k -> acc +. Exec_tree.completeness (Knowledge.tree k)) 0.0 ks
      /. float_of_int (List.length ks)
  in
  {
    Metrics.time;
    sessions = sum (fun m -> m.Pod.sessions);
    guided_runs = sum (fun m -> m.Pod.guided_runs);
    user_failures = sum (fun m -> m.Pod.user_failures);
    averted_crashes = sum (fun m -> m.Pod.averted_crashes);
    deferred_acquisitions = sum (fun m -> m.Pod.deferred_acquisitions);
    guard_flags = sum (fun m -> m.Pod.guard_flags);
    traces_uploaded = sum (fun m -> m.Pod.traces_uploaded);
    fixes_deployed = merged_stats.Hive.fixes_deployed;
    proofs_valid;
    tree_paths;
    tree_completeness = completeness;
    checkpoints = shard_hive_sum (fun h -> h.Hive.checkpoints_taken);
    restores = shard_hive_sum (fun h -> h.Hive.restores_completed);
    shed_uploads = shard_hive_sum (fun h -> h.Hive.shed_success + h.Hive.shed_failure);
    quarantined_frames = shard_hive_sum (fun h -> h.Hive.quarantined_frames);
    pods_muted = shard_hive_sum (fun h -> h.Hive.pods_muted);
    peak_queue_depth =
      List.fold_left
        (fun acc ss -> max acc ss.Federation.hive_stats.Hive.peak_queue_depth)
        0 fs.Federation.per_shard;
    thinned_uploads = sum (fun m -> m.Pod.thinned_uploads);
    dead_letters = sum (fun m -> m.Pod.dead_letters);
    wire_bytes = sum_wire (fun s -> s.Transport.bytes_on_wire);
    wire_frames_sent = sum_wire (fun s -> s.Transport.messages_sent);
    wire_frames_received = sum_wire (fun s -> s.Transport.delivered);
    gap_memo_hits = shard_sum (fun ss -> ss.Federation.gap_memo_hits);
    gap_memo_misses = shard_sum (fun ss -> ss.Federation.gap_memo_misses);
    verdict_cache_hits = shard_sum (fun ss -> ss.Federation.verdict_cache_hits);
    verdict_cache_misses = shard_sum (fun ss -> ss.Federation.verdict_cache_misses);
    (* Rollout verdicts are decided only at the merge coordinator. *)
    canary_fixes = sum_knowledge (fun k -> List.length (Knowledge.canary_ids k));
    fix_promotions = merged_stats.Hive.fix_promotions;
    fix_retractions = merged_stats.Hive.fix_retractions;
    quarantined_fix_traces = merged_stats.Hive.quarantined_fix_traces;
    pods_exposed = sum (fun m -> if m.Pod.canary_exposed then 1 else 0);
  }

let install_chaos_fed ~sim ~config ~fed ~chaos_rng ~pods ~pod_endpoints ~last_checkpoints
    ~next_cohort plan =
  let pod_upload = upload_mode config in
  let n = Federation.n_shards fed in
  let take_checkpoints () =
    last_checkpoints := Array.init n (Federation.checkpoint_shard fed)
  in
  let crash_count = ref 0 in
  let all_links () =
    List.filter_map Transport.out_link !pod_endpoints @ Federation.links fed
  in
  List.iter
    (fun event ->
      match event with
      | Fault_plan.Checkpoint { at } -> Sim.schedule_at sim ~time:at take_checkpoints
      | Fault_plan.Hive_crash { at } ->
        (* One shard dies per crash event, round-robin, and restores
           from its side of the last federation-wide checkpoint — the
           coordinator and the other shards keep running. *)
        Sim.schedule_at sim ~time:at (fun () ->
            let shard = !crash_count mod n in
            incr crash_count;
            match Federation.restore_shard fed shard !last_checkpoints.(shard) with
            | Ok _ | Error _ -> ())
      | Fault_plan.Pod_leave { at; pod } ->
        Sim.schedule_at sim ~time:at (fun () ->
            match !pods with
            | [] -> ()
            | alive -> Pod.stop (List.nth alive (pod mod List.length alive)))
      | Fault_plan.Pod_join { at } ->
        Sim.schedule_at sim ~time:at (fun () ->
            let program =
              List.nth config.programs (Rng.int chaos_rng (List.length config.programs))
            in
            let pod_end, hive_end =
              Transport.endpoint_pair ~config:config.transport_config ~sim
                ~rng:(Rng.split chaos_rng) ()
            in
            Federation.attach_pod fed hive_end;
            let pod_config = { config.pod_config with Pod.upload = pod_upload } in
            let cohort = !next_cohort in
            next_cohort := cohort + 1;
            let pod =
              Pod.create ~config:pod_config ~cohort ~sim ~rng:(Rng.split chaos_rng) ~program
                ~endpoint:pod_end ()
            in
            Pod.start pod;
            pods := !pods @ [ pod ];
            pod_endpoints := !pod_endpoints @ [ pod_end ])
      | Fault_plan.Degrade { at; until_; link } ->
        Sim.schedule_at sim ~time:at (fun () ->
            List.iter (fun l -> Link.set_config l link) (all_links ()));
        Sim.schedule_at sim ~time:until_ (fun () ->
            List.iter
              (fun l -> Link.set_config l config.transport_config.Transport.link)
              (all_links ()))
      | Fault_plan.Bad_fix { at; program; variant } ->
        (* Injected at the merge coordinator only: retraction is a
           coordinator decision, and shards/pods learn the fix — and
           its eventual fate — in superstep order. *)
        Sim.schedule_at sim ~time:at (fun () ->
            let p = List.nth config.programs (program mod List.length config.programs) in
            let kind =
              Fixgen.sabotage_kind (Fixgen.sabotage_of_variant variant) ~program:p
            in
            Hive.inject_fix (Federation.merged fed) ~digest:(Ir.digest p) kind))
    (Fault_plan.events plan)

let run_federated config =
  let sim = Sim.create () in
  let rng = Rng.create config.seed in
  let base = config.hive_config in
  let fed_config =
    {
      (Federation.default_config ~n_shards:config.n_shards ()) with
      (* Half the analysis cadence: the coordinator serves no pods, and
         the faster merged analysis pays for the flush-then-commit hop
         a superstep merge inserts before evidence reaches it — keeping
         time-to-first-fix on par with the single hive. *)
      Federation.superstep_interval = base.Hive.analysis_interval /. 2.0;
      synthesize = true;
      (* The platform's pool budget goes to the federation's cross-shard
         compute phase; individual hives stay domain-free. *)
      shard_hive = { base with Hive.synthesize = false; prove = false; pool_size = 1 };
      merged_hive = { base with Hive.pool_size = 1; overload = None };
      transport = config.transport_config;
      pool_size = base.Hive.pool_size;
    }
  in
  let fed = Federation.create ~config:fed_config ~sim ~rng:(Rng.split rng) () in
  List.iter (fun program -> ignore (Federation.register_program fed program)) config.programs;
  let pod_upload = upload_mode config in
  let fleet =
    List.init config.n_pods (fun i ->
        let program = List.nth config.programs (i mod List.length config.programs) in
        let pod_end, hive_end =
          Transport.endpoint_pair ~config:config.transport_config ~sim ~rng:(Rng.split rng) ()
        in
        Federation.attach_pod fed hive_end;
        let pod_config = { config.pod_config with Pod.upload = pod_upload } in
        let pod =
          Pod.create ~config:pod_config ~cohort:i ~sim ~rng:(Rng.split rng) ~program
            ~endpoint:pod_end ()
        in
        (pod, pod_end))
  in
  let pods = ref (List.map fst fleet) in
  let pod_endpoints = ref (List.map snd fleet) in
  Federation.start fed;
  List.iter Pod.start !pods;
  (match config.chaos with
  | None -> ()
  | Some plan ->
    let chaos_rng = Rng.create (config.seed lxor 0x6368616f73) in
    let n = Federation.n_shards fed in
    let last_checkpoints = ref (Array.init n (Federation.checkpoint_shard fed)) in
    if config.checkpoint_interval > 0.0 then begin
      let rec arm at =
        if at <= config.duration then
          Sim.schedule_at sim ~time:at (fun () ->
              last_checkpoints := Array.init n (Federation.checkpoint_shard fed);
              arm (at +. config.checkpoint_interval))
      in
      arm config.checkpoint_interval
    end;
    install_chaos_fed ~sim ~config ~fed ~chaos_rng ~pods ~pod_endpoints ~last_checkpoints
      ~next_cohort:(ref config.n_pods) plan);
  let snapshots =
    ref [ snapshot_fed ~time:0.0 ~pods:!pods ~endpoints:!pod_endpoints ~fed ]
  in
  let rec sample at =
    if at <= config.duration then
      Sim.schedule_at sim ~time:at (fun () ->
          snapshots :=
            snapshot_fed ~time:at ~pods:!pods ~endpoints:!pod_endpoints ~fed :: !snapshots;
          sample (at +. config.sample_interval))
  in
  sample config.sample_interval;
  Sim.run ~until:config.duration sim;
  Federation.shutdown fed;
  let snapshots = List.rev !snapshots in
  let final = List.nth snapshots (List.length snapshots - 1) in
  {
    snapshots;
    final;
    hive_stats = Hive.stats (Federation.merged fed);
    pod_metrics = List.map Pod.metrics !pods;
    transport_stats = List.map Transport.stats !pod_endpoints;
    knowledge = Hive.knowledge_list (Federation.merged fed);
    federation = Some (Federation.stats fed);
  }

let run config = if config.n_shards <= 1 then run_single config else run_federated config

let pp_report fmt report =
  Format.fprintf fmt "snapshots:@.";
  List.iter (fun s -> Format.fprintf fmt "  %a@." Metrics.pp_snapshot s) report.snapshots;
  let h = report.hive_stats in
  Format.fprintf fmt
    "hive: traces=%d ticks=%d fixes=%d fix-updates=%d guidance=%d proofs=%d human-fixes=%d@."
    h.Hive.traces_received h.Hive.analysis_ticks h.Hive.fixes_deployed h.Hive.fix_updates_sent
    h.Hive.guidance_sent h.Hive.proofs_established h.Hive.human_fixes_scheduled;
  (* Wire-plane accounting from the final snapshot.  Batch/delta
     counters print only when batching actually ran, so legacy runs'
     reports gain one line whose numbers are a pure function of the
     traffic — identical across the byte-identity comparison pairs. *)
  (let f = report.final in
   if f.Metrics.wire_frames_sent > 0 then begin
     let sum_pod g = List.fold_left (fun acc m -> acc + g m) 0 report.pod_metrics in
     let batches = sum_pod (fun m -> m.Pod.batches_sent) in
     Format.fprintf fmt "wire: bytes=%d frames=%d/%d%s@." f.Metrics.wire_bytes
       f.Metrics.wire_frames_sent f.Metrics.wire_frames_received
       (if batches > 0 then
          Printf.sprintf " batches=%d delta-records=%d" batches
            (sum_pod (fun m -> m.Pod.delta_records))
        else "")
   end);
  (* Printed only when overload protection actually intervened, so an
     unpressured run's report is byte-identical to one without the
     overload layer. *)
  if
    h.Hive.shed_success + h.Hive.shed_failure + h.Hive.quarantined_frames + h.Hive.pods_muted
    + h.Hive.peak_queue_depth
    > 0
  then
    Format.fprintf fmt
      "overload: shed=%d+%d quarantined=%d muted=%d muted-drops=%d pressure-updates=%d peak-queue=%d@."
      h.Hive.shed_failure h.Hive.shed_success h.Hive.quarantined_frames h.Hive.pods_muted
      h.Hive.muted_drops h.Hive.pressure_updates_sent h.Hive.peak_queue_depth;
  (* Rollout accounting prints only when staging actually happened, so
     rollout-off runs' reports stay byte-identical to older builds. *)
  (let f = report.final in
   if
     h.Hive.fix_promotions + h.Hive.fix_retractions + h.Hive.retracts_sent
     + h.Hive.quarantined_fix_traces + f.Metrics.canary_fixes + f.Metrics.pods_exposed
     > 0
   then
     Format.fprintf fmt
       "rollout: canary=%d promoted=%d retracted=%d retract-frames=%d quarantined-traces=%d exposed-pods=%d@."
       f.Metrics.canary_fixes h.Hive.fix_promotions h.Hive.fix_retractions
       h.Hive.retracts_sent h.Hive.quarantined_fix_traces f.Metrics.pods_exposed);
  (* The federation section exists only for sharded runs, so printing
     per-shard cache efficiency here never perturbs the single-hive
     byte-identity invariants. *)
  (match report.federation with
  | None -> ()
  | Some fs ->
    Format.fprintf fmt
      "federation: shards=%d supersteps=%d deltas=%d/%d merged-payloads=%d fix-updates=%d@."
      (List.length fs.Federation.per_shard)
      fs.Federation.supersteps fs.Federation.deltas_committed fs.Federation.deltas_sent
      fs.Federation.payloads_merged fs.Federation.fix_updates_sent;
    List.iter
      (fun (ss : Federation.shard_stats) ->
        let sh = ss.Federation.hive_stats in
        Format.fprintf fmt "  shard %d: traces=%d memo=%d/%d vcache=%d/%d%s%s%s@."
          ss.Federation.shard sh.Hive.traces_received ss.Federation.gap_memo_hits
          ss.Federation.gap_memo_misses ss.Federation.verdict_cache_hits
          ss.Federation.verdict_cache_misses
          (if sh.Hive.restores_completed > 0 then
             Printf.sprintf " restores=%d" sh.Hive.restores_completed
           else "")
          (if sh.Hive.shed_success + sh.Hive.shed_failure > 0 then
             Printf.sprintf " shed=%d" (sh.Hive.shed_success + sh.Hive.shed_failure)
           else "")
          (if sh.Hive.quarantined_frames > 0 then
             Printf.sprintf " quarantined=%d" sh.Hive.quarantined_frames
           else ""))
      fs.Federation.per_shard);
  List.iter
    (fun k ->
      Format.fprintf fmt "program %s: traces=%d failures=%d paths=%d proofs=%d@."
        (Knowledge.program k).Ir.name (Knowledge.traces_ingested k)
        (Knowledge.failures_observed k)
        (Exec_tree.n_distinct_paths (Knowledge.tree k))
        (List.length (Knowledge.valid_proofs k)))
    report.knowledge
