module Rng = Softborg_util.Rng
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Link = Softborg_net.Link
module Transport = Softborg_net.Transport
module Fault_plan = Softborg_net.Fault_plan
module Hive = Softborg_hive.Hive
module Fix_lifecycle = Softborg_hive.Fix_lifecycle
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload
module Corpus_bench = Softborg_corpus.Corpus_bench

let single_program ?(mode = Hive.Full) ?(seed = 42) program =
  let base = Platform.default_config ~mode () in
  { base with Platform.seed; n_pods = 6; programs = [ program ] }

let buggy_population ?(mode = Hive.Full) ?(seed = 42) ?(n_programs = 4) ?(n_pods = 12)
    ?(bugs = [ Generator.Rare_assert; Generator.Unchecked_syscall; Generator.Div_by_zero ])
    () =
  let rng = Rng.create seed in
  let population =
    List.init n_programs (fun i ->
        (* Rotate one bug cocktail per program so the population covers
           all classes. *)
        let bug = List.nth bugs (i mod List.length bugs) in
        Generator.generate rng { Generator.default_params with Generator.bugs = [ bug ] })
  in
  let base = Platform.default_config ~mode () in
  let config =
    { base with Platform.seed; n_pods; programs = List.map fst population }
  in
  (config, population)

let lossy_network config =
  let link = { Link.drop_probability = 0.10; mean_latency = 0.2; min_latency = 0.02 } in
  {
    config with
    Platform.transport_config = { config.Platform.transport_config with Transport.link };
  }

let three_way_comparison ?(seed = 42) () =
  List.map
    (fun mode ->
      let config, _ = buggy_population ~mode ~seed () in
      (Hive.mode_name mode, config))
    [ Hive.Full; Hive.Wer; Hive.Cbi ]

let with_chaos ?(chaos_seed = 1337) ?(crash_rate = 1.0 /. 400.0)
    ?(churn_rate = 1.0 /. 250.0) ?(degrade_rate = 1.0 /. 300.0) config =
  let plan =
    Fault_plan.generate
      ~rng:(Rng.create chaos_seed)
      ~duration:config.Platform.duration ~n_pods:config.Platform.n_pods ~crash_rate
      ~churn_rate ~degrade_rate ()
  in
  { config with Platform.chaos = Some plan }

let with_shards n config = { config with Platform.n_shards = n }

(* Fleet-scale wire encoding: pods batch [batch] traces per frame and
   (unless [delta = false]) delta-encode records against the
   hive-announced prefix basis; the hive announces one basis per
   program on its analysis tick.  [batch = 1, delta = false] leaves the
   config untouched — the legacy one-frame-per-trace wire format. *)
let with_fleet_encoding ?(batch = 16) ?(delta = true) ?(linger = 5.0) config =
  if batch <= 1 && not delta then config
  else
    {
      config with
      Platform.pod_config =
        {
          config.Platform.pod_config with
          Pod.upload_batch = max 1 batch;
          delta_encode = delta;
          (* The default 0.25s linger suits failure-latency SLOs, but a
             batch only amortizes its header if it fills — give it a
             few inter-arrival times. *)
          batch_linger = linger;
        };
      hive_config = { config.Platform.hive_config with Hive.announce_basis = delta };
    }

(* Staged fix rollout: the hive holds every new fix in a canary cohort
   and judges it with the sequential health test before fleet-wide
   promotion (or retraction).  Pods attribute uploads with their active
   fix ids so the hive can split canary vs control evidence. *)
let with_rollout ?(rollout = Fix_lifecycle.default_config) config =
  {
    config with
    Platform.hive_config = { config.Platform.hive_config with Hive.rollout = Some rollout };
    pod_config = { config.Platform.pod_config with Pod.attribute_fixes = true };
  }

(* Script a saboteur: at [at], a plausible-but-wrong fix for
   [program] is injected straight into the hive, exactly as a bad
   synthesis (or bad human patch) would land.  Appended to any chaos
   plan already attached, like [overload_spike]. *)
let inject_bad_fix ?(at = 120.0) ?(program = 0) ?(variant = 0) config =
  let existing =
    match config.Platform.chaos with Some plan -> Fault_plan.events plan | None -> []
  in
  {
    config with
    Platform.chaos =
      Some (Fault_plan.create (existing @ [ Fault_plan.Bad_fix { at; program; variant } ]));
  }

let with_overload ?overload config =
  let overload = Option.value ~default:Hive.default_overload_config overload in
  {
    config with
    Platform.hive_config =
      { config.Platform.hive_config with Hive.overload = Some overload };
  }

(* An arrival spike ≥4× nominal: a burst of extra pods joins shortly
   after [spike_start] (staggered so the joins themselves don't collide)
   and leaves at [spike_end].  Joined pods are appended to the fleet, so
   with no other churn in the plan they sit at indices
   [n_pods .. n_pods + spike_pods - 1] and the leave events address
   exactly them. *)
let overload_spike ?(spike_pods = 24) ?(spike_start = 150.0) ?(spike_end = 300.0) config =
  let joins =
    List.init spike_pods (fun i ->
        Fault_plan.Pod_join { at = spike_start +. (0.25 *. float_of_int i) })
  in
  let leaves =
    List.init spike_pods (fun i ->
        Fault_plan.Pod_leave { at = spike_end; pod = config.Platform.n_pods + i })
  in
  let existing =
    match config.Platform.chaos with Some plan -> Fault_plan.events plan | None -> []
  in
  {
    config with
    Platform.chaos = Some (Fault_plan.create (existing @ joins @ leaves));
  }

(* A corpus-bench instance as a platform scenario: the fleet serves
   the buggy build under a uniform workload wide enough to cover the
   instance's trigger values, and — for error-path instances — an
   ambient fault rate high enough that the targeted syscall failure
   actually occurs in the field. *)
let repair_instance ?(mode = Hive.Full) ?(seed = 42) (inst : Corpus_bench.instance) =
  let base = single_program ~mode ~seed inst.Corpus_bench.buggy in
  let pod = base.Platform.pod_config in
  let hi = Array.fold_left max 191 inst.Corpus_bench.trigger_inputs in
  let fault_probability =
    match inst.Corpus_bench.fault_plan with
    | Env.No_faults -> pod.Pod.fault_probability
    | Env.Random_faults _ | Env.Targeted _ -> 0.05
  in
  {
    base with
    Platform.pod_config =
      { pod with Pod.workload = Workload.Uniform_inputs { lo = 0; hi }; fault_probability };
  }

let three_way_chaos ?seed ?chaos_seed ?crash_rate ?churn_rate ?degrade_rate () =
  (* Same chaos_seed across modes: every mode suffers the identical
     fault schedule, so the comparison stays apples-to-apples. *)
  List.map
    (fun (name, config) ->
      (name, with_chaos ?chaos_seed ?crash_rate ?churn_rate ?degrade_rate config))
    (three_way_comparison ?seed ())
