(** Canned platform scenarios.

    Each scenario is a ready-to-run {!Platform.config}; experiments and
    examples start from these and override what they sweep. *)

module Generator := Softborg_prog.Generator
module Hive := Softborg_hive.Hive
module Corpus_bench := Softborg_corpus.Corpus_bench

val single_program : ?mode:Hive.mode -> ?seed:int -> Softborg_prog.Ir.t -> Platform.config
(** A small fleet (6 pods) all running one program. *)

val buggy_population :
  ?mode:Hive.mode ->
  ?seed:int ->
  ?n_programs:int ->
  ?n_pods:int ->
  ?bugs:Generator.bug_kind list ->
  unit ->
  Platform.config * (Softborg_prog.Ir.t * Generator.planted list) list
(** A fleet over a population of generated buggy programs; also
    returns the planted-bug ground truth for scoring. *)

val repair_instance : ?mode:Hive.mode -> ?seed:int -> Corpus_bench.instance -> Platform.config
(** A small fleet serving a bug-benchmark instance's buggy build: the
    workload is widened to cover the instance's trigger values, and
    error-path instances get an ambient environment-fault rate so the
    targeted syscall failure occurs in the field. *)

val lossy_network : Platform.config -> Platform.config
(** Degrade the network: 10% packet loss, 200ms mean latency.  The
    reliable transport must still deliver every trace batch. *)

val three_way_comparison :
  ?seed:int -> unit -> (string * Platform.config) list
(** The §5 comparison: identical fleet and bug population under
    SoftBorg, WER, and CBI (experiment E7). *)

val with_chaos :
  ?chaos_seed:int ->
  ?crash_rate:float ->
  ?churn_rate:float ->
  ?degrade_rate:float ->
  Platform.config ->
  Platform.config
(** Attach a generated fault plan (hive crashes, pod churn, link
    degradation; rates in events/second, defaults roughly one fault
    family event per few hundred simulated seconds) to a config.  The
    plan is deterministic in [chaos_seed] and the config's duration and
    pod count. *)

val with_shards : int -> Platform.config -> Platform.config
(** Federate the hive across [n] path-prefix shards with a
    deterministic superstep merge ({!Softborg_hive.Federation});
    [with_shards 1] is the single-hive platform unchanged. *)

val with_fleet_encoding :
  ?batch:int -> ?delta:bool -> ?linger:float -> Platform.config -> Platform.config
(** Turn on the fleet-scale wire encoding: pods send
    {!Softborg_hive.Protocol.Batch_upload} frames of [batch] traces
    (default 16) and, with [delta] (default true), delta-encode the
    records against the hive-announced per-program prefix basis.
    [linger] (default 5s) bounds how long a partial batch waits.
    [~batch:1 ~delta:false] is the identity. *)

val with_rollout : ?rollout:Softborg_hive.Fix_lifecycle.config -> Platform.config -> Platform.config
(** Stage every new fix through a canary cohort with health-verdict
    promotion/retraction (defaults to
    {!Softborg_hive.Fix_lifecycle.default_config}), and turn on pod
    fix attribution so uploads carry their active fix ids. *)

val inject_bad_fix : ?at:float -> ?program:int -> ?variant:int -> Platform.config -> Platform.config
(** Append a {!Softborg_net.Fault_plan.Bad_fix} saboteur event to the
    scenario's chaos plan: at [at] (default 120s) a plausible-but-wrong
    fix for [program] (index into the scenario's program list) is
    injected into the hive.  [variant] selects the sabotage shape via
    {!Softborg_hive.Fixgen.sabotage_of_variant}. *)

val with_overload : ?overload:Hive.overload_config -> Platform.config -> Platform.config
(** Enable hive overload protection (admission control, shedding,
    backpressure, quarantine); defaults to
    {!Hive.default_overload_config}. *)

val overload_spike :
  ?spike_pods:int -> ?spike_start:float -> ?spike_end:float -> Platform.config -> Platform.config
(** Script an arrival spike: [spike_pods] extra pods (default 24 — ≥4×
    the default fleet) join staggered from [spike_start] and leave at
    [spike_end], appended to any chaos plan already attached.  The
    spike drives the hive's ingest queue into shedding and pressure
    signalling; after [spike_end] pressure decays back to 0. *)

val three_way_chaos :
  ?seed:int ->
  ?chaos_seed:int ->
  ?crash_rate:float ->
  ?churn_rate:float ->
  ?degrade_rate:float ->
  unit ->
  (string * Platform.config) list
(** The §5 comparison under faults (experiment E12): all three modes
    run the {e same} fault plan, so the question is purely whose
    failure-rate curve keeps decaying through crashes and churn. *)
