(** The SoftBorg platform: the whole of Figure 1 on one simulated
    clock.

    A platform run assembles a fleet of pods (each under one instance
    of a program), a hive, and the lossy network between them, then
    advances simulated time while user sessions execute, by-products
    flow up, and fixes, guidance, and proofs flow down.  The same
    driver runs the two §5 baselines by switching the hive mode and the
    pods' upload mode:

    - [Hive.Full] + full traces → SoftBorg;
    - [Hive.Wer] + outcome-only uploads → WER-style crash reporting;
    - [Hive.Cbi] + sampled predicate reports → Cooperative Bug
      Isolation. *)

module Ir := Softborg_prog.Ir
module Transport := Softborg_net.Transport
module Fault_plan := Softborg_net.Fault_plan
module Hive := Softborg_hive.Hive
module Knowledge := Softborg_hive.Knowledge
module Federation := Softborg_hive.Federation
module Pod := Softborg_pod.Pod

type config = {
  seed : int;
  n_pods : int;
  programs : Ir.t list;  (** Assigned to pods round-robin. *)
  duration : float;  (** Simulated seconds. *)
  sample_interval : float;  (** Metric snapshot period. *)
  pod_config : Pod.config;
      (** Base pod configuration; the upload mode is overridden to
          match [hive_config.mode]. *)
  hive_config : Hive.config;
  transport_config : Transport.config;
  cbi_sampling_rate : int;  (** Pod sampling rate in CBI mode. *)
  chaos : Fault_plan.t option;
      (** Fault schedule interpreted during the run ([None]: fault-free,
          and the run is byte-identical to builds without the harness).
          Chaos randomness is derived from [seed] but independent of
          the fleet streams, so a plan of only [Checkpoint] events
          leaves the trajectory untouched. *)
  checkpoint_interval : float;
      (** Seconds between automatic hive checkpoints when [chaos] is
          active ([<= 0.] disables; explicit [Checkpoint] events still
          apply).  A [Hive_crash] restores from the latest one. *)
  n_shards : int;
      (** [1] (the default) runs the single-hive platform, bit-for-bit
          as before.  [> 1] federates the hive: uploads route to
          path-prefix shards, knowledge merges at superstep boundaries
          ({!Softborg_hive.Federation}), and a chaos [Hive_crash]
          kills one shard per event instead of the whole hive. *)
}

val default_config : ?mode:Hive.mode -> unit -> config
(** 8 pods over the generated-program population defaults. *)

type report = {
  snapshots : Metrics.snapshot list;  (** Oldest first. *)
  final : Metrics.snapshot;
  hive_stats : Hive.stats;
  pod_metrics : Pod.metrics list;
  transport_stats : Transport.stats list;  (** Pod-side endpoints. *)
  knowledge : Knowledge.t list;
      (** Final hive knowledge, per program (the merge coordinator's in
          a federated run). *)
  federation : Federation.stats option;
      (** Present exactly when [config.n_shards > 1]; carries superstep
          and per-shard statistics, including the cache-efficiency
          counters printed in the report's federation section. *)
}

val run : config -> report
(** Execute one full platform simulation.  Deterministic in
    [config.seed]. *)

val pp_report : Format.formatter -> report -> unit
(** Snapshot series plus final totals, human-readable. *)
