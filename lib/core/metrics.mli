(** Platform-level metric time series.

    The paper's central hypothesis — "the more a program is used, the
    more reliable it should become" (§2) — is a statement about a
    trajectory, so the platform records periodic snapshots of the
    whole fleet and derives windowed rates from consecutive ones. *)

type snapshot = {
  time : float;  (** Simulation time of the snapshot. *)
  sessions : int;  (** Cumulative natural sessions across pods. *)
  guided_runs : int;
  user_failures : int;  (** Cumulative failures users experienced. *)
  averted_crashes : int;
  deferred_acquisitions : int;
  guard_flags : int;
  traces_uploaded : int;
  fixes_deployed : int;
  proofs_valid : int;
  tree_paths : int;  (** Distinct execution-tree paths at the hive. *)
  tree_completeness : float;
  checkpoints : int;  (** Hive checkpoints taken so far. *)
  restores : int;  (** Hive crash-restores completed so far. *)
  shed_uploads : int;  (** Uploads shed by hive admission control. *)
  quarantined_frames : int;  (** Poison frames rejected at the hive. *)
  pods_muted : int;  (** Quarantine mute episodes. *)
  peak_queue_depth : int;  (** Ingest-queue high-water mark. *)
  thinned_uploads : int;  (** Pod uploads downgraded under pressure. *)
  dead_letters : int;  (** Pod uploads the transport abandoned. *)
  wire_bytes : int;
      (** Packet bytes pushed onto the pod-side outgoing links (data +
          acks + retransmissions).  Data-only in the snapshot —
          [Platform.pp_report] prints one wire line from the final
          snapshot, zero-silent for the batch/delta counters. *)
  wire_frames_sent : int;  (** Upstream transport frames sent by pods. *)
  wire_frames_received : int;  (** Downstream frames delivered to pods. *)
  gap_memo_hits : int;  (** Guidance gap-memo hits over all knowledge. *)
  gap_memo_misses : int;
  verdict_cache_hits : int;  (** Solver verdict-cache hits likewise. *)
  verdict_cache_misses : int;
      (** The four cache counters are data-only in the snapshot:
          [pp_snapshot] omits them because the hit/miss split varies
          with the speculative-solver pool size, and snapshot lines
          are covered by pool-size byte-identity tests.  Federated
          runs print them per shard in the report's federation
          section. *)
  canary_fixes : int;  (** Fixes currently held in canary stage. *)
  fix_promotions : int;  (** Canary fixes promoted fleet-wide so far. *)
  fix_retractions : int;  (** Canary fixes condemned and retracted. *)
  quarantined_fix_traces : int;
      (** Uploads quarantined because their attribution named a
          retracted fix. *)
  pods_exposed : int;
      (** Pods that ever ran a session with a canary fix active.  All
          five rollout counters are zero — and silent in
          {!pp_snapshot} — when the run has no rollout config. *)
}

val failure_rate : snapshot -> float
(** Cumulative failures per session (0 when no sessions). *)

type window = {
  t_start : float;
  t_end : float;
  w_sessions : int;  (** Sessions within the window. *)
  w_failures : int;
  w_averted : int;
  w_failure_rate : float;  (** Failures per session within the window. *)
}

val windows : snapshot list -> window list
(** Consecutive-snapshot deltas (empty for fewer than two snapshots). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
val pp_window : Format.formatter -> window -> unit
