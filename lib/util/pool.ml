type t = {
  n : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a task was queued, or [stop] flipped *)
  settled : Condition.t;  (* a map call's last task finished *)
  mutable queue : (unit -> unit) list;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match t.queue with
    | task :: rest ->
      t.queue <- rest;
      Some task
    | [] ->
      if t.stop then None
      else begin
        Condition.wait t.work t.mutex;
        next ()
      end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    worker_loop t

let create ~size =
  let n = max 1 size in
  let t =
    {
      n;
      mutex = Mutex.create ();
      work = Condition.create ();
      settled = Condition.create ();
      queue = [];
      stop = false;
      workers = [];
    }
  in
  if n > 1 then t.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.n

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.workers = [] -> List.map f xs
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let remaining = ref n in
    (* Each task writes its own slot, then updates the shared countdown
       under the pool mutex; the caller's final read of [results] is
       ordered after every write by the same mutex. *)
    let task i () =
      let r = try Ok (f items.(i)) with e -> Error e in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.settled;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = n - 1 downto 0 do
      t.queue <- task i :: t.queue
    done;
    Condition.broadcast t.work;
    while !remaining > 0 do
      Condition.wait t.settled t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error e) -> raise e | None -> assert false)
         results)

module Race_cell = struct
  type t = int Atomic.t

  let create () = Atomic.make max_int

  let current = Atomic.get

  let rec propose t rank =
    let seen = Atomic.get t in
    if rank >= seen then false
    else if Atomic.compare_and_set t seen rank then true
    else propose t rank
end

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
