exception Truncated
exception Malformed of string

(* The one definition of "how many bytes does this varint take";
   accounting code (trace-store byte counters) must agree with the
   writer below byte-for-byte. *)
let varint_len v =
  if v < 0 then invalid_arg "Codec.varint_len: negative";
  let rec loop v acc = if v < 0x80 then acc else loop (v lsr 7) (acc + 1) in
  loop v 1

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let length = Buffer.length
  let byte t v = Buffer.add_char t (Char.chr (v land 0xff))

  let varint t v =
    if v < 0 then invalid_arg "Codec.Writer.varint: negative";
    let rec loop v =
      if v < 0x80 then byte t v
      else begin
        byte t (v land 0x7f lor 0x80);
        loop (v lsr 7)
      end
    in
    loop v

  (* Unsigned encoding of the raw bit pattern; [lsr] keeps the loop
     total even when the zigzag transform wraps into the sign bit. *)
  let uvarint t v =
    let rec loop v =
      if v land lnot 0x7f = 0 then byte t v
      else begin
        byte t (v land 0x7f lor 0x80);
        loop (v lsr 7)
      end
    in
    loop v

  let zigzag t v = uvarint t ((v lsl 1) lxor (v asr (Sys.int_size - 1)))
  let bool t b = byte t (if b then 1 else 0)

  let float t f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let bytes t s =
    varint t (String.length s);
    Buffer.add_string t s

  let list t f xs =
    varint t (List.length xs);
    List.iter f xs

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }
  let remaining t = String.length t.data - t.pos

  let byte t =
    if t.pos >= String.length t.data then raise Truncated;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec loop shift acc =
      if shift >= Sys.int_size then raise (Malformed "varint too long");
      let b = byte t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
    in
    loop 0 0

  let zigzag t =
    let v = varint t in
    (v lsr 1) lxor (-(v land 1))

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Malformed (Printf.sprintf "bool byte %d" n))

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let bytes t =
    let n = varint t in
    if remaining t < n then raise Truncated;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f t)
end
