(** Bounded least-recently-used cache.

    A polymorphic key/value cache that holds at most [capacity]
    entries; inserting into a full cache evicts the entry that was
    least recently found or added.  All operations are O(1) amortized
    (hash table plus intrusive doubly-linked recency list).

    Keys are compared with structural equality/hashing
    ([Hashtbl.hash]), so keys must not be functions or cyclic. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create capacity] makes an empty cache.  @raise Invalid_argument
    if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Look up a key, promoting it to most-recently-used on a hit.
    Updates the {!hits}/{!misses} counters. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without promotion or counter updates. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, promoting the key to most-recently-used.
    Evicts the least-recently-used entry if the cache is full. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit
(** Drop every entry (counters are kept). *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
