type ('k, 'v) entry = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) entry option;  (* toward most recent *)
  mutable next : ('k, 'v) entry option;  (* toward least recent *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable first : ('k, 'v) entry option;  (* most recently used *)
  mutable last : ('k, 'v) entry option;  (* least recently used *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create cap =
  if cap < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  {
    cap;
    table = Hashtbl.create (2 * cap);
    first = None;
    last = None;
    hit_count = 0;
    miss_count = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let hits t = t.hit_count
let misses t = t.miss_count
let mem t key = Hashtbl.mem t.table key

let unlink t entry =
  (match entry.prev with
  | Some p -> p.next <- entry.next
  | None -> t.first <- entry.next);
  (match entry.next with
  | Some n -> n.prev <- entry.prev
  | None -> t.last <- entry.prev);
  entry.prev <- None;
  entry.next <- None

let push_front t entry =
  entry.next <- t.first;
  entry.prev <- None;
  (match t.first with
  | Some f -> f.prev <- Some entry
  | None -> t.last <- Some entry);
  t.first <- Some entry

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    t.hit_count <- t.hit_count + 1;
    unlink t entry;
    push_front t entry;
    Some entry.value
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    entry.value <- value;
    unlink t entry;
    push_front t entry
  | None ->
    if Hashtbl.length t.table >= t.cap then
      Option.iter
        (fun oldest ->
          unlink t oldest;
          Hashtbl.remove t.table oldest.key)
        t.last;
    let entry = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key entry;
    push_front t entry

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    unlink t entry;
    Hashtbl.remove t.table key
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None
