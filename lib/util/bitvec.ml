type t = { mutable data : Bytes.t; mutable len : int }

let create () = { data = Bytes.make 8 '\000'; len = 0 }

let length t = t.len

let ensure_capacity t bits =
  let needed = (bits + 7) / 8 in
  if needed > Bytes.length t.data then begin
    let cap = max needed (2 * Bytes.length t.data) in
    let data = Bytes.make cap '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    t.data <- data
  end

let unsafe_get t i =
  let byte = Char.code (Bytes.unsafe_get t.data (i lsr 3)) in
  byte land (1 lsl (i land 7)) <> 0

let unsafe_set t i b =
  let idx = i lsr 3 in
  let mask = 1 lsl (i land 7) in
  let byte = Char.code (Bytes.unsafe_get t.data idx) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set t.data idx (Char.unsafe_chr byte)

let push t b =
  ensure_capacity t (t.len + 1);
  unsafe_set t t.len b;
  t.len <- t.len + 1

let of_bools bs =
  let t = create () in
  List.iter (push t) bs;
  t

let check_index t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of [0,%d)" op i t.len)

let get t i =
  check_index t i "get";
  unsafe_get t i

let set t i b =
  check_index t i "set";
  unsafe_set t i b

let copy t = { data = Bytes.copy t.data; len = t.len }

let append dst src =
  for i = 0 to src.len - 1 do
    push dst (unsafe_get src i)
  done

let truncate t n =
  if n < 0 || n > t.len then
    invalid_arg (Printf.sprintf "Bitvec.truncate: %d out of [0,%d]" n t.len);
  (* Clear the dropped tail so that to_bytes/equality stay canonical. *)
  for i = n to t.len - 1 do
    unsafe_set t i false
  done;
  t.len <- n

let pop_count t =
  let count = ref 0 in
  for i = 0 to t.len - 1 do
    if unsafe_get t i then incr count
  done;
  !count

let to_bool_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (unsafe_get t i :: acc) in
  loop (t.len - 1) []

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unsafe_get t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let equal a b =
  a.len = b.len
  &&
  let rec loop i = i >= a.len || (unsafe_get a i = unsafe_get b i && loop (i + 1)) in
  loop 0

let compare a b =
  let rec loop i =
    if i >= a.len && i >= b.len then 0
    else if i >= a.len then -1
    else if i >= b.len then 1
    else
      match (unsafe_get a i, unsafe_get b i) with
      | false, true -> -1
      | true, false -> 1
      | _ -> loop (i + 1)
  in
  loop 0

let common_prefix a b =
  let limit = min a.len b.len in
  let rec loop i = if i < limit && unsafe_get a i = unsafe_get b i then loop (i + 1) else i in
  loop 0

let is_prefix p t = p.len <= t.len && common_prefix p t = p.len

let to_bytes t = Bytes.sub_string t.data 0 ((t.len + 7) / 8)

let of_bytes s n =
  if n < 0 || String.length s < (n + 7) / 8 then
    invalid_arg "Bitvec.of_bytes: string too short";
  let t = create () in
  ensure_capacity t n;
  Bytes.blit_string s 0 t.data 0 ((n + 7) / 8);
  t.len <- n;
  (* Zero any padding bits so canonical equality holds. *)
  for i = n to (8 * ((n + 7) / 8)) - 1 do
    if i < 8 * Bytes.length t.data then unsafe_set t i false
  done;
  t

let to_string t = String.init t.len (fun i -> if unsafe_get t i then '1' else '0')

let of_string s =
  let t = create () in
  String.iter
    (function
      | '0' -> push t false
      | '1' -> push t true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %C" c))
    s;
  t

let xor a b =
  (* Result length follows [a]; [b] is zero-extended (or truncated) to
     match, so [xor (xor a b) b] = [a] for any basis [b] — the property
     delta wire decoding relies on. *)
  let r = create () in
  ensure_capacity r a.len;
  r.len <- a.len;
  let a_bytes = (a.len + 7) / 8 in
  let b_bytes = (b.len + 7) / 8 in
  for i = 0 to a_bytes - 1 do
    let av = Char.code (Bytes.unsafe_get a.data i) in
    let bv = if i < b_bytes then Char.code (Bytes.unsafe_get b.data i) else 0 in
    Bytes.unsafe_set r.data i (Char.unsafe_chr (av lxor bv))
  done;
  (* Zero padding bits that [b]'s tail byte may have leaked past
     [a.len], and any of [b]'s real bits beyond [a.len] inside the
     shared final byte. *)
  for i = a.len to (8 * a_bytes) - 1 do
    if i < 8 * Bytes.length r.data then unsafe_set r i false
  done;
  r

let hash t =
  let fnv_prime = 0x100000001b3 in
  let h = ref 0x3bf29ce484222325 in
  let mix x =
    h := !h lxor x;
    h := !h * fnv_prime land max_int
  in
  mix t.len;
  for i = 0 to (t.len + 7) / 8 - 1 do
    mix (Char.code (Bytes.get t.data i))
  done;
  !h

let pp fmt t = Format.pp_print_string fmt (to_string t)
