(** Fixed-size [Domain] worker pool.

    The hive's symbolic gap queries are pure (no shared mutable state),
    so they can be farmed out to OCaml 5 domains.  A pool owns its
    domains for its whole lifetime — spawning a domain costs far more
    than one solver call, so the workers are created once and fed
    through a queue.

    Determinism contract: {!map} preserves input order in its result
    list, so callers that fold over the results observe exactly the
    sequential order regardless of how the work was interleaved across
    domains.  The function itself must be deterministic and must not
    touch shared mutable state; under that contract a pool of any size
    computes the same value as [List.map]. *)

type t

val create : size:int -> t
(** A pool of [size] workers.  [size <= 1] creates an inert pool: no
    domains are spawned and {!map} runs inline on the caller — the
    zero-cost default. *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [f] runs on worker domains (inline
    when the pool is inert or the list is a singleton); the caller
    blocks until every element has settled.  If any application
    raises, the first exception in input order is re-raised after all
    tasks settle — no task is abandoned mid-flight. *)

val shutdown : t -> unit
(** Stop accepting work, drain the queue, and join the worker domains.
    Idempotent; an inert pool shuts down as a no-op. *)

(** Cooperative cancellation for racing tasks: a monotone minimum cell.

    A race assigns each potential finish a totally-ordered integer rank
    (for the solver portfolio, [round * n_members + member_index] — the
    position of that slice in the sequential round-robin schedule).  A
    task that decides {!propose}s its rank; every task polls {!current}
    at slice boundaries and abandons work ranked after the best known
    finish.  The cell only ever decreases, so a stale read can only
    delay cancellation, never cancel a slice the sequential schedule
    would have run — which is what makes the parallel race's outcome
    identical to the sequential one. *)
module Race_cell : sig
  type t

  val create : unit -> t
  (** No finish proposed yet: {!current} reads [max_int]. *)

  val current : t -> int
  (** Best (lowest) rank proposed so far. *)

  val propose : t -> int -> bool
  (** Atomically lower the cell to [rank] if it improves on the best
      known; returns whether it did. *)
end
