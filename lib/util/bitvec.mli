(** Growable bit vectors.

    SoftBorg encodes an execution of a program as a vector of branch
    decisions — one bit per input-dependent branch site traversed (paper
    §3.1).  This module provides the packed, append-oriented bit vector
    used throughout trace capture, wire encoding, and execution-tree
    merging. *)

type t
(** Mutable growable vector of bits.  Bits are indexed from 0 in append
    order. *)

val create : unit -> t
(** [create ()] is an empty bit vector. *)

val of_bools : bool list -> t
(** [of_bools bs] is the vector holding exactly [bs], in order. *)

val length : t -> int
(** Number of bits stored. *)

val push : t -> bool -> unit
(** [push t b] appends bit [b]. *)

val get : t -> int -> bool
(** [get t i] is bit [i].  @raise Invalid_argument if [i] is out of
    range. *)

val set : t -> int -> bool -> unit
(** [set t i b] overwrites bit [i].  @raise Invalid_argument if [i] is
    out of range. *)

val copy : t -> t
(** Independent copy. *)

val append : t -> t -> unit
(** [append dst src] appends all bits of [src] to [dst]. *)

val truncate : t -> int -> unit
(** [truncate t n] keeps only the first [n] bits.
    @raise Invalid_argument if [n] exceeds [length t]. *)

val pop_count : t -> int
(** Number of set bits. *)

val to_bool_list : t -> bool list
(** All bits, in index order. *)

val iteri : (int -> bool -> unit) -> t -> unit
(** [iteri f t] applies [f] to every index/bit pair in order. *)

val fold : ('a -> bool -> 'a) -> 'a -> t -> 'a
(** Left fold over bits in index order. *)

val equal : t -> t -> bool
(** Structural equality on length and contents. *)

val compare : t -> t -> int
(** Lexicographic order on bits, shorter vectors first on ties. *)

val common_prefix : t -> t -> int
(** [common_prefix a b] is the length of the longest shared prefix.
    This is the primitive behind lowest-common-ancestor path pasting
    (paper Fig. 3). *)

val is_prefix : t -> t -> bool
(** [is_prefix p t] is true iff [p] is a prefix of [t]. *)

val to_bytes : t -> string
(** Packed little-endian-bit representation (8 bits per byte, final
    byte zero-padded).  Pair with [length] for lossless round trips. *)

val of_bytes : string -> int -> t
(** [of_bytes s n] reconstructs a vector of [n] bits from [to_bytes]
    output.  @raise Invalid_argument if [s] is too short for [n]. *)

val to_string : t -> string
(** Human-readable ["0110…"] rendering. *)

val of_string : string -> t
(** Inverse of [to_string].  @raise Invalid_argument on characters
    other than ['0'] and ['1']. *)

val xor : t -> t -> t
(** [xor a b] is the bitwise XOR, with the result's length equal to
    [length a]; [b] is zero-extended or truncated as needed.  Since
    [xor (xor a b) b = a], this is the primitive behind delta wire
    encoding of branch vectors against a shared basis. *)

val hash : t -> int
(** FNV-1a hash of length and contents; equal vectors hash equally. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer, rendering as [to_string]. *)
