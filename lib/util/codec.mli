(** Binary wire codec.

    Pods relay trace by-products to the hive over the (simulated)
    Internet; the wire format must be compact because recording
    overhead and upload volume are first-order costs in the paper
    (§3.1).  This module provides an append-only writer and a cursor
    reader over LEB128 varints, raw bytes, and length-prefixed
    strings/lists. *)

exception Truncated
(** Raised by readers on premature end of input. *)

exception Malformed of string
(** Raised by readers on structurally invalid input (e.g. an
    over-long varint). *)

val varint_len : int -> int
(** Encoded size in bytes of [Writer.varint]'s output for the same
    value — the single definition shared by size accounting (e.g. the
    trace store's byte counters).
    @raise Invalid_argument on negative input. *)

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int

  val byte : t -> int -> unit
  (** Append one byte (low 8 bits of the argument). *)

  val varint : t -> int -> unit
  (** Append a non-negative integer as LEB128.
      @raise Invalid_argument on negative input. *)

  val zigzag : t -> int -> unit
  (** Append a possibly-negative integer, zigzag-encoded then LEB128. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit

  val bytes : t -> string -> unit
  (** Append raw bytes with a varint length prefix. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** [list w f xs] appends a varint count then each element via [f]. *)

  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : string -> t

  val remaining : t -> int
  (** Bytes left to read. *)

  val byte : t -> int
  val varint : t -> int
  val zigzag : t -> int
  val bool : t -> bool
  val float : t -> float
  val bytes : t -> string
  val list : t -> (t -> 'a) -> 'a list
end
