(* The SoftBorg command-line interface.

   Subcommands map onto the platform's main capabilities:

     softborg run       — execute a corpus program once and dump its by-products
     softborg simulate  — run a whole-fleet platform simulation
     softborg explore   — symbolically enumerate a program's paths
     softborg schedules — systematically explore thread interleavings
     softborg immunize  — demonstrate deadlock immunity on a program
     softborg prove     — attempt cumulative proofs for a program
     softborg solve     — race the SAT portfolio on random instances
     softborg list      — list corpus programs *)

module Rng = Softborg_util.Rng
module Tabular = Softborg_util.Tabular
module Bitvec = Softborg_util.Bitvec
module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Engine = Softborg_exec.Engine
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Exec_tree = Softborg_tree.Exec_tree
module Fault_plan = Softborg_net.Fault_plan
module Cnf = Softborg_solver.Cnf
module Portfolio = Softborg_solver.Portfolio
module Sym_exec = Softborg_symexec.Sym_exec
module Consistency = Softborg_symexec.Consistency
module Immunity = Softborg_conc.Immunity
module Schedule_explore = Softborg_conc.Schedule_explore
module Hive = Softborg_hive.Hive
module Fix_lifecycle = Softborg_hive.Fix_lifecycle
module Knowledge = Softborg_hive.Knowledge
module Fixgen = Softborg_hive.Fixgen
module Prover = Softborg_hive.Prover
module Pod = Softborg_pod.Pod
module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log hive decisions as they happen.")

let program_by_name name =
  match List.assoc_opt name Corpus.all with
  | Some program -> Ok program
  | None ->
    if String.length name >= 4 && String.sub name 0 4 = "gen:" then begin
      let seed = int_of_string_opt (String.sub name 4 (String.length name - 4)) in
      match seed with
      | Some seed ->
        let prog, _ =
          Generator.generate (Rng.create seed)
            { Generator.default_params with Generator.bugs = [ Generator.Rare_assert ] }
        in
        Ok prog
      | None -> Error (`Msg "gen:<seed> expects an integer seed")
    end
    else
      Error
        (`Msg
          (Printf.sprintf "unknown program %S; try `softborg list` or gen:<seed>" name))

let program_conv =
  let parse s = program_by_name s in
  let print fmt (p : Ir.t) = Format.pp_print_string fmt p.Ir.name in
  Arg.conv (parse, print)

let program_arg =
  Arg.(
    required
    & pos 0 (some program_conv) None
    & info [] ~docv:"PROGRAM" ~doc:"Corpus program name (see $(b,softborg list)) or gen:<seed>.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic random seed.")

let engine_conv = Arg.enum [ ("vm", Engine.Vm); ("tree", Engine.Tree) ]

let engine_arg =
  Arg.(
    value & opt engine_conv Engine.Vm
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,vm) (compiled bytecode, the default) or $(b,tree) (the \
           reference tree-walk interpreter).")

(* ---- list -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Tabular.print ~title:"corpus programs"
      [ Tabular.column "name"; Tabular.column ~align:Tabular.Right "threads";
        Tabular.column ~align:Tabular.Right "inputs"; Tabular.column ~align:Tabular.Right "locks";
        Tabular.column ~align:Tabular.Right "instrs" ]
      (List.map
         (fun (name, (p : Ir.t)) ->
           [
             name;
             string_of_int (Array.length p.Ir.threads);
             string_of_int p.Ir.n_inputs;
             string_of_int p.Ir.n_locks;
             string_of_int (Ir.instr_count p);
           ])
         Corpus.all)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the corpus programs.") Term.(const run $ const ())

(* ---- run --------------------------------------------------------------- *)

let inputs_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "inputs" ] ~docv:"N,N,..." ~doc:"Program input vector (missing slots are 0).")

let run_cmd =
  let run program inputs seed engine =
    let padded = Array.make program.Ir.n_inputs 0 in
    List.iteri (fun i v -> if i < Array.length padded then padded.(i) <- v) inputs;
    let env = Env.make ~seed ~inputs:padded () in
    let r = Engine.run ~engine ~program ~env ~sched:Sched.Round_robin () in
    Format.printf "program:  %s@." program.Ir.name;
    Format.printf "inputs:   [%s]@."
      (String.concat "; " (Array.to_list (Array.map string_of_int padded)));
    Format.printf "outcome:  %a@." Outcome.pp r.Interp.outcome;
    Format.printf "steps:    %d@." r.Interp.steps;
    Format.printf "decisions: %d (recorded bits: %d = %.0f%%)@."
      (List.length r.Interp.full_path)
      (Bitvec.length r.Interp.bits)
      (100.
      *. float_of_int (Bitvec.length r.Interp.bits)
      /. float_of_int (max 1 (List.length r.Interp.full_path)));
    Format.printf "schedule: %d contended choices@." (List.length r.Interp.schedule);
    Format.printf "syscalls: %d@." (List.length r.Interp.syscalls);
    let trace = Trace.of_result ~program_digest:(Ir.digest program) ~pod:0 ~fix_epoch:0 r in
    Format.printf "wire size: %d bytes@." (String.length (Wire.encode trace))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program once and show its by-products.")
    Term.(const run $ program_arg $ inputs_arg $ seed_arg $ engine_arg)

(* ---- simulate ----------------------------------------------------------- *)

let mode_conv =
  Arg.enum [ ("softborg", Hive.Full); ("wer", Hive.Wer); ("cbi", Hive.Cbi) ]

let simulate_cmd =
  let duration_arg =
    Arg.(value & opt float 600.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated time.")
  in
  let pods_arg = Arg.(value & opt int 6 & info [ "pods" ] ~docv:"N" ~doc:"Fleet size.") in
  let mode_arg =
    Arg.(
      value & opt mode_conv Hive.Full
      & info [ "mode" ] ~docv:"MODE" ~doc:"Platform mode: softborg, wer, or cbi.")
  in
  let chaos_flag =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Inject a generated fault plan: hive crashes restored from checkpoints, pod \
             churn, and link-degradation windows.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 1337
      & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed the fault plan is generated from.")
  in
  let overload_flag =
    Arg.(
      value & flag
      & info [ "overload" ]
          ~doc:
            "Enable hive overload protection and script an arrival spike: extra pods join \
             mid-run, driving the ingest queue into shedding and backpressure, then leave.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Federate the hive across $(docv) path-prefix shards with a deterministic \
             superstep merge; 1 (the default) runs the classic single hive.")
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Batch $(docv) traces per upload frame (delta-encoded against the \
             hive-announced prefix basis unless $(b,--no-delta)); 1 (the default) keeps \
             the classic one-frame-per-trace wire format.")
  in
  let no_delta_flag =
    Arg.(
      value & flag
      & info [ "no-delta" ]
          ~doc:"With $(b,--batch), send full records instead of delta-encoded ones.")
  in
  let rollout_conv = Arg.enum [ ("off", false); ("canary", true) ] in
  let rollout_arg =
    Arg.(
      value
      & opt rollout_conv false
      & info [ "rollout" ] ~docv:"MODE"
          ~doc:
            "Fix rollout policy: $(b,off) (the default — fixes deploy fleet-wide \
             instantly, byte-identical to builds without staged rollout) or $(b,canary) \
             (every new fix is staged through a canary cohort and promoted or retracted \
             by the hive's health test).")
  in
  let canary_fraction_arg =
    Arg.(
      value & opt float 0.125
      & info [ "canary-fraction" ] ~docv:"F"
          ~doc:"With $(b,--rollout canary), the fleet fraction in each fix's cohort.")
  in
  let run verbose program mode duration pods seed chaos chaos_seed overload shards batch
      no_delta rollout canary_fraction engine =
    setup_logs verbose;
    let config = Scenario.single_program ~mode ~seed program in
    let config =
      { config with Platform.duration; n_pods = pods; sample_interval = duration /. 10.0 }
    in
    let config =
      { config with Platform.pod_config = { config.Platform.pod_config with Pod.engine } }
    in
    let config = if chaos then Scenario.with_chaos ~chaos_seed config else config in
    let config =
      if overload then
        Scenario.overload_spike ~spike_start:(duration /. 4.0) ~spike_end:(duration /. 2.0)
          (Scenario.with_overload config)
      else config
    in
    let config = if shards > 1 then Scenario.with_shards shards config else config in
    let config =
      if batch > 1 then Scenario.with_fleet_encoding ~batch ~delta:(not no_delta) config
      else config
    in
    let config =
      if rollout then
        let mils = max 1 (min 1000 (int_of_float ((canary_fraction *. 1000.0) +. 0.5))) in
        Scenario.with_rollout
          ~rollout:{ Fix_lifecycle.default_config with Fix_lifecycle.canary_mils = mils }
          config
      else config
    in
    let report = Platform.run config in
    Format.printf "%a" Platform.pp_report report;
    let f = report.Platform.final in
    Format.printf "failure rate: %.5f (%d averted)@."
      (Metrics.failure_rate f) f.Metrics.averted_crashes;
    if overload then
      Format.printf "overload: shed=%d quarantined=%d muted=%d peak-queue=%d thinned=%d@."
        f.Metrics.shed_uploads f.Metrics.quarantined_frames f.Metrics.pods_muted
        f.Metrics.peak_queue_depth f.Metrics.thinned_uploads;
    if rollout then
      Format.printf "rollout: canary=%d promoted=%d retracted=%d quarantined=%d exposed=%d@."
        f.Metrics.canary_fixes f.Metrics.fix_promotions f.Metrics.fix_retractions
        f.Metrics.quarantined_fix_traces f.Metrics.pods_exposed;
    match config.Platform.chaos with
    | None -> ()
    | Some plan ->
      Format.printf "chaos: %d faults scheduled, %d checkpoints taken, %d restores@."
        (Fault_plan.length plan) f.Metrics.checkpoints f.Metrics.restores
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a whole-fleet platform simulation on one program.")
    Term.(
      const run $ verbose_flag $ program_arg $ mode_arg $ duration_arg $ pods_arg $ seed_arg
      $ chaos_flag $ chaos_seed_arg $ overload_flag $ shards_arg $ batch_arg $ no_delta_flag
      $ rollout_arg $ canary_fraction_arg $ engine_arg)

(* ---- explore -------------------------------------------------------------- *)

let explore_cmd =
  let local_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "local" ] ~docv:"THREAD"
          ~doc:"Use local (unit-level) consistency for the given thread instead of strict.")
  in
  let max_paths_arg =
    Arg.(value & opt int 256 & info [ "max-paths" ] ~docv:"N" ~doc:"Path budget.")
  in
  let run program local max_paths =
    let level =
      match local with None -> Consistency.Strict | Some thread -> Consistency.Local { thread }
    in
    let config = { Sym_exec.default_config with Sym_exec.max_paths } in
    let report = Sym_exec.explore ~config program level in
    Format.printf "consistency: %a@." Consistency.pp level;
    Format.printf "paths: %d (pruned %d infeasible forks%s)@."
      (List.length report.Sym_exec.paths)
      report.Sym_exec.pruned_infeasible
      (if report.Sym_exec.truncated then "; TRUNCATED" else "");
    List.iteri
      (fun i (p : Sym_exec.path) ->
        let verdict =
          match p.Sym_exec.solver_verdict with
          | `Sat -> "SAT"
          | `Unsat -> "UNSAT"
          | `Timeout -> "TIMEOUT"
          | `Unsolved -> "-"
        in
        let outcome =
          match p.Sym_exec.outcome with
          | Sym_exec.Completed -> "completed"
          | Sym_exec.Crashed { message; _ } -> Printf.sprintf "CRASH(%s)" message
          | Sym_exec.Path_deadlock -> "deadlock"
          | Sym_exec.Step_limit -> "step-limit"
        in
        Format.printf "  #%-3d %-9s %-24s %a@." i verdict outcome
          Softborg_solver.Path_cond.pp p.Sym_exec.condition)
      report.Sym_exec.paths
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Symbolically enumerate a program's execution paths.")
    Term.(const run $ program_arg $ local_arg $ max_paths_arg)

(* ---- schedules --------------------------------------------------------------- *)

let schedules_cmd =
  let max_runs_arg =
    Arg.(value & opt int 200 & info [ "max-runs" ] ~docv:"N" ~doc:"Execution budget.")
  in
  let run program inputs max_runs seed engine =
    let padded = Array.make program.Ir.n_inputs 0 in
    List.iteri (fun i v -> if i < Array.length padded then padded.(i) <- v) inputs;
    let make_env () = Env.make ~seed ~inputs:padded () in
    let result = Schedule_explore.explore ~max_runs ~engine ~program ~make_env () in
    Format.printf "runs: %d, distinct schedules: %d, failing: %d@." result.Schedule_explore.runs
      result.Schedule_explore.distinct_schedules
      (List.length result.Schedule_explore.failures);
    List.iter
      (fun (outcome, schedule) ->
        Format.printf "  %a via schedule [%s]@." Outcome.pp outcome
          (String.concat ";" (List.map string_of_int schedule)))
      result.Schedule_explore.failures
  in
  Cmd.v
    (Cmd.info "schedules" ~doc:"Systematically explore thread interleavings.")
    Term.(const run $ program_arg $ inputs_arg $ max_runs_arg $ seed_arg $ engine_arg)

(* ---- immunize ------------------------------------------------------------------ *)

let immunize_cmd =
  let run program inputs seed =
    let padded = Array.make program.Ir.n_inputs 0 in
    List.iteri (fun i v -> if i < Array.length padded then padded.(i) <- v) inputs;
    let make_env () = Env.make ~seed ~inputs:padded () in
    let before = Schedule_explore.explore ~max_runs:200 ~program ~make_env () in
    let deadlock_sets =
      List.filter_map
        (fun (o, _) ->
          match o with
          | Outcome.Deadlock { waiting } ->
            Some (List.sort_uniq Int.compare (List.map snd waiting))
          | _ -> None)
        before.Schedule_explore.outcomes
      |> List.sort_uniq compare
    in
    if deadlock_sets = [] then Format.printf "no deadlocks found in %d schedules@." before.Schedule_explore.runs
    else begin
      Format.printf "deadlock patterns found: %s@."
        (String.concat " "
           (List.map
              (fun locks -> "{" ^ String.concat "," (List.map string_of_int locks) ^ "}")
              deadlock_sets));
      let immunizer = Immunity.create ~patterns:deadlock_sets in
      let after =
        Schedule_explore.explore ~max_runs:200 ~hooks:(Immunity.hooks immunizer) ~program
          ~make_env ()
      in
      let count result =
        List.fold_left
          (fun acc (o, _) -> match o with Outcome.Deadlock _ -> acc + 1 | _ -> acc)
          0 result.Schedule_explore.outcomes
      in
      Format.printf "deadlocking schedules: %d before, %d after immunity@." (count before)
        (count after)
    end
  in
  Cmd.v
    (Cmd.info "immunize" ~doc:"Mine deadlock patterns and demonstrate immunity.")
    Term.(const run $ program_arg $ inputs_arg $ seed_arg)

(* ---- prove ---------------------------------------------------------------------- *)

let prove_cmd =
  let executions_arg =
    Arg.(value & opt int 300 & info [ "executions" ] ~docv:"N" ~doc:"Evidence executions.")
  in
  let run program executions seed =
    let k = Knowledge.create program in
    let rng = Rng.create seed in
    for i = 1 to executions do
      let inputs = Array.init program.Ir.n_inputs (fun _ -> Rng.int_in rng (-64) 255) in
      let env = Env.make ~seed:i ~inputs () in
      let r = Interp.run ~program ~env ~sched:(Sched.Random_sched (Rng.split rng)) () in
      ignore
        (Knowledge.ingest_trace k
           (Trace.of_result ~program_digest:(Knowledge.digest k) ~pod:0 ~fix_epoch:0 r))
    done;
    Format.printf "evidence: %d executions, %d distinct paths, completeness %.2f@." executions
      (Exec_tree.n_distinct_paths (Knowledge.tree k))
      (Exec_tree.completeness (Knowledge.tree k));
    let closed = Prover.close_gaps program (Knowledge.tree k) in
    Format.printf "symbolic closure: %d gaps proven infeasible (completeness now %.2f)@." closed
      (Exec_tree.completeness (Knowledge.tree k));
    let crash_observations =
      List.fold_left
        (fun acc (e : Fixgen.crash_evidence) -> acc + e.Fixgen.count)
        0 (Knowledge.crash_evidence k)
    in
    (match
       Prover.attempt_assert_safety ~program ~tree:(Knowledge.tree k) ~crash_observations
         ~epoch:0 ()
     with
    | Some proof -> Format.printf "assert-safety:    %a@." Prover.pp proof
    | None -> Format.printf "assert-safety:    no proof (crashes observed or feasible)@.");
    match
      Prover.attempt_deadlock_freedom ~program ~tree:(Knowledge.tree k)
        ~deadlock_observations:
          (List.fold_left (fun acc (_, _, n) -> acc + n) 0 (Knowledge.deadlock_bucket_info k))
        ~lock_cycles:(Knowledge.deadlock_pattern_sets k)
        ~make_env:(fun () -> Env.make ~seed ~inputs:(Array.make program.Ir.n_inputs 1) ())
        ~hooks:(Knowledge.current_hooks k) ~epoch:0 ()
    with
    | Some proof -> Format.printf "deadlock-freedom: %a@." Prover.pp proof
    | None -> Format.printf "deadlock-freedom: no proof (deadlock evidence exists)@."
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Attempt cumulative proofs from executions + symbolic closure.")
    Term.(const run $ program_arg $ executions_arg $ seed_arg)

(* ---- solve ----------------------------------------------------------------------- *)

let solve_cmd =
  let n_arg = Arg.(value & opt int 10 & info [ "instances" ] ~docv:"N" ~doc:"Instance count.") in
  let vars_arg = Arg.(value & opt int 40 & info [ "vars" ] ~docv:"N" ~doc:"Variables.") in
  let clauses_arg = Arg.(value & opt int 160 & info [ "clauses" ] ~docv:"N" ~doc:"Clauses.") in
  let run n vars clauses seed =
    let rng = Rng.create seed in
    let members = Portfolio.standard_three ~budget:3_000_000 ~seed in
    let rows =
      List.init n (fun i ->
          let clause () =
            List.init 3 (fun _ ->
                let v = 1 + Rng.int rng vars in
                if Rng.bool rng then v else -v)
          in
          let formula = Cnf.make ~n_vars:vars (List.init clauses (fun _ -> clause ())) in
          let race = Portfolio.race members formula in
          [
            string_of_int i;
            (match race.Portfolio.verdict with
            | Portfolio.V_sat -> "SAT"
            | Portfolio.V_unsat -> "UNSAT"
            | Portfolio.V_unknown -> "?");
            Option.value ~default:"-" race.Portfolio.winner;
            string_of_int race.Portfolio.wall_steps;
            string_of_int race.Portfolio.resource_steps;
          ])
    in
    Tabular.print
      ~title:(Printf.sprintf "portfolio races on random 3-SAT (%d vars, %d clauses)" vars clauses)
      [
        Tabular.column "instance"; Tabular.column "verdict"; Tabular.column "winner";
        Tabular.column ~align:Tabular.Right "wall steps";
        Tabular.column ~align:Tabular.Right "resource steps";
      ]
      rows
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Race the SAT-solver portfolio on random instances.")
    Term.(const run $ n_arg $ vars_arg $ clauses_arg $ seed_arg)

(* ---- report --------------------------------------------------------------------- *)

let report_cmd =
  let duration_arg =
    Arg.(value & opt float 600.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated time.")
  in
  let run program duration seed =
    let config = Scenario.single_program ~seed program in
    let config =
      { config with Platform.duration; sample_interval = duration /. 5.0 }
    in
    let result = Platform.run config in
    List.iter
      (fun k -> print_string (Softborg_hive.Report.render k))
      result.Platform.knowledge
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run a fleet simulation and publish the hive's reliability report.")
    Term.(const run $ program_arg $ duration_arg $ seed_arg)

let () =
  let info =
    Cmd.info "softborg" ~version:"1.0.0"
      ~doc:"Collective information recycling: every execution is a test run."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; simulate_cmd; explore_cmd; schedules_cmd; immunize_cmd;
            prove_cmd; solve_cmd; report_cmd;
          ]))
