(* Tests for the interpreter: concrete semantics, by-product capture,
   outcome classification, and the record→replay reconstruction
   property that underpins execution-tree merging (paper §3.2). *)

module Ir = Softborg_prog.Ir
module Build = Softborg_prog.Build
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Bitvec = Softborg_util.Bitvec
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let run_prog ?max_steps ?hooks ?(fault_plan = Env.No_faults) ?(seed = 1)
    ?(sched = Sched.Round_robin) prog inputs =
  let env = Env.make ~fault_plan ~seed ~inputs () in
  Interp.run ?max_steps ?hooks ~program:prog ~env ~sched ()

let is_success r = r.Interp.outcome = Outcome.Success

let is_crash r =
  match r.Interp.outcome with Outcome.Crash _ -> true | _ -> false

let is_deadlock r =
  match r.Interp.outcome with Outcome.Deadlock _ -> true | _ -> false

(* ---- Concrete semantics ------------------------------------------- *)

let test_fig2_small_p () =
  (* p = 5: takes p<MAX true, p>0 true. *)
  let r = run_prog Corpus.fig2_write [| 5 |] in
  checkb "success" true (is_success r);
  checki "two decisions" 2 (List.length r.Interp.full_path);
  checki "both input-dependent" 2 (Bitvec.length r.Interp.bits)

let test_fig2_large_p () =
  (* p = 200: p<MAX false, p>3 true -> close() syscall path. *)
  let r = run_prog Corpus.fig2_write [| 200 |] in
  checkb "success" true (is_success r);
  checki "one syscall on close path" 1 (List.length r.Interp.syscalls)

let test_fig2_distinct_paths () =
  (* With MAX=100, the (p>=MAX, p<=3) leaf is infeasible, so Figure 2
     has exactly three reachable leaves. *)
  let path p = (run_prog Corpus.fig2_write [| p |]).Interp.full_path in
  let paths = [ path 5; path (-1); path 200; path 101 ] in
  Alcotest.(check int) "3 distinct paths" 3 (List.length (List.sort_uniq compare paths))

let test_fig2_unreachable_leaf () =
  (* With MAX=100 the (p>=MAX, p<=3) leaf is infeasible: every >=100
     input satisfies p>3.  Check a sweep never reaches a 4th leaf. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let r = run_prog Corpus.fig2_write [| p |] in
      Hashtbl.replace seen r.Interp.full_path ())
    [ -50; -1; 0; 1; 50; 99; 100; 101; 1000 ];
  checki "three reachable leaves" 3 (Hashtbl.length seen)

let test_div_by_zero_crash () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"div0" ~n_inputs:1 [ [ assign (lvar "x") (const 10 /: input 0) ] ]
  in
  let r = run_prog prog [| 0 |] in
  (match r.Interp.outcome with
  | Outcome.Crash { kind = Outcome.Division_by_zero; _ } -> ()
  | o -> Alcotest.failf "expected div0 crash, got %a" Outcome.pp o);
  let r2 = run_prog prog [| 2 |] in
  checkb "no crash with nonzero divisor" true (is_success r2)

let test_assert_crash_site () =
  let open Build in
  let prog =
    program ~name:"assert-fail" ~n_inputs:0 [ [ assign (lvar "x") (const 1); assert_ (const 0) "boom" ] ]
  in
  let r = run_prog prog [||] in
  match r.Interp.outcome with
  | Outcome.Crash { site; kind = Outcome.Assertion_failure; message } ->
    checki "crash pc" 1 site.Ir.pc;
    Alcotest.(check string) "message" "boom" message
  | o -> Alcotest.failf "expected assert crash, got %a" Outcome.pp o

let test_parser_trigger () =
  let r = run_prog Corpus.parser Corpus.parser_trigger in
  checkb "trigger crashes" true (is_crash r);
  let r2 = run_prog Corpus.parser [| 1; 2; 3 |] in
  checkb "benign input passes" true (is_success r2)

let test_hang_detection () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"spin" ~n_inputs:0 [ [ while_ (const 1 >: const 0) [ yield ] ] ]
  in
  let r = run_prog ~max_steps:100 prog [||] in
  checkb "hang" true (r.Interp.outcome = Outcome.Hang);
  checki "stopped at budget" 100 r.Interp.steps

let test_deterministic_branch_not_recorded () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"det" ~n_inputs:1
      [
        [
          (* Deterministic branch: condition over constants. *)
          if_ (const 3 >: const 2) [ assign (lvar "a") (const 1) ] [];
          (* Input-dependent branch. *)
          if_ (input 0 >: const 5) [ assign (lvar "b") (const 1) ] [];
        ];
      ]
  in
  let r = run_prog prog [| 9 |] in
  checki "two decisions total" 2 (List.length r.Interp.full_path);
  checki "one recorded bit" 1 (Bitvec.length r.Interp.bits)

let test_taint_through_vars () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"taintflow" ~n_inputs:1
      [
        [
          assign (lvar "x") (input 0 +: const 1);
          assign (lvar "y") (local "x" *: const 2);
          if_ (local "y" >: const 10) [] [];
        ];
      ]
  in
  let r = run_prog prog [| 3 |] in
  checki "derived branch recorded" 1 (Bitvec.length r.Interp.bits)

let test_checksum_mostly_deterministic () =
  (* The 32-round mixing loop's branches are deterministic; only the
     two input predicates are recorded (paper §3.1's saving). *)
  let r = run_prog Corpus.checksum [| 42; 7 |] in
  checkb "success" true (is_success r);
  checkb "many decisions" true (List.length r.Interp.full_path > 60);
  checki "only two recorded bits" 2 (Bitvec.length r.Interp.bits);
  match
    Interp.reconstruct ~program:Corpus.checksum ~bits:r.Interp.bits ~schedule:r.Interp.schedule
      ~total_decisions:(List.length r.Interp.full_path) ~total_steps:r.Interp.steps ()
  with
  | Ok rec_ -> checkb "checksum reconstructs" true (rec_.Interp.decisions = r.Interp.full_path)
  | Error msg -> Alcotest.failf "reconstruct failed: %s" msg

let test_syscall_taints () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"sys-taint" ~n_inputs:0
      [ [ syscall Ir.Sys_read (lvar "n"); if_ (local "n" >: const 100) [] [] ] ]
  in
  let r = run_prog prog [||] in
  checki "syscall-dependent branch recorded" 1 (Bitvec.length r.Interp.bits);
  checki "syscall summarized" 1 (List.length r.Interp.syscalls)

let test_fault_injection_targeted () =
  let open Build in
  let open Build.Infix in
  let prog =
    program ~name:"faulty" ~n_inputs:0
      [
        [
          syscall Ir.Sys_open (lvar "fd");
          assign (lvar "x") (const 10 /: (local "fd" +: const 1));
        ];
      ]
  in
  (* Unfaulted: fd >= 3, no crash. *)
  let ok = run_prog prog [||] in
  checkb "no fault no crash" true (is_success ok);
  (* Fault syscall 0: fd = -1, fd+1 = 0, crash. *)
  let bad = run_prog ~fault_plan:(Env.Targeted [ 0 ]) prog [||] in
  checkb "fault crashes" true (is_crash bad)

(* ---- Concurrency --------------------------------------------------- *)

let test_worker_pool_deadlocks_under_some_schedule () =
  (* Search schedules: with the lock inversion armed (even input), some
     interleaving deadlocks. *)
  let deadlocked = ref false in
  for seed = 0 to 49 do
    let r =
      run_prog ~sched:(Sched.Random_sched (Rng.create seed)) Corpus.worker_pool [| 2 |]
    in
    if is_deadlock r then deadlocked := true
  done;
  checkb "some schedule deadlocks" true !deadlocked

let test_worker_pool_odd_input_safe () =
  (* Odd input disarms the guard: no thread touches the locks. *)
  for seed = 0 to 19 do
    let r =
      run_prog ~sched:(Sched.Random_sched (Rng.create seed)) Corpus.worker_pool [| 3 |]
    in
    checkb "odd input never deadlocks" true (not (is_deadlock r))
  done

let test_deadlock_wait_cycle_shape () =
  let rec find seed =
    if seed > 200 then Alcotest.fail "no deadlock found in 200 schedules"
    else
      let r =
        run_prog ~sched:(Sched.Random_sched (Rng.create seed)) Corpus.worker_pool [| 0 |]
      in
      match r.Interp.outcome with
      | Outcome.Deadlock { waiting } -> waiting
      | _ -> find (seed + 1)
  in
  let waiting = find 0 in
  checki "two waiters" 2 (List.length waiting);
  let locks = List.map snd waiting |> List.sort_uniq Int.compare in
  Alcotest.(check (list int)) "waiting on both locks" [ 0; 1 ] locks

let test_racy_counter_sometimes_fails () =
  let failures = ref 0 and successes = ref 0 in
  for seed = 0 to 99 do
    let r = run_prog ~sched:(Sched.Random_sched (Rng.create seed)) Corpus.racy_counter [||] in
    if is_crash r then incr failures else incr successes
  done;
  checkb "race manifests sometimes" true (!failures > 0);
  checkb "race passes sometimes" true (!successes > 0)

let test_lock_events_balanced () =
  let r = run_prog ~sched:Sched.Round_robin Corpus.worker_pool [| 1 |] in
  (* Odd input: guards false, no lock events at all. *)
  checki "no lock events when disarmed" 0 (List.length r.Interp.lock_events)

let test_schedule_replay_reproduces () =
  let run sched = run_prog ~sched Corpus.racy_counter [||] in
  let original = run (Sched.Random_sched (Rng.create 4242)) in
  let replayed = run (Sched.Replay original.Interp.schedule) in
  checkb "same outcome" true (Outcome.equal original.Interp.outcome replayed.Interp.outcome);
  Alcotest.(check (list (pair (pair int int) bool)))
    "same decisions"
    (List.map (fun (s, d) -> ((s.Ir.thread, s.Ir.pc), d)) original.Interp.full_path)
    (List.map (fun (s, d) -> ((s.Ir.thread, s.Ir.pc), d)) replayed.Interp.full_path)

let test_single_thread_schedule_empty () =
  let r = run_prog Corpus.fig2_write [| 7 |] in
  checki "no contended points" 0 (List.length r.Interp.schedule)

(* ---- Hooks (fix application mechanism) ------------------------------ *)

let test_defer_hook_counts () =
  (* A hook that defers the very first lock acquisition once. *)
  let deferred_once = ref false in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_lock_request =
        (fun ~thread:_ ~lock:_ ~holding:_ ~owner:_ ->
          if !deferred_once then `Proceed
          else begin
            deferred_once := true;
            `Defer
          end);
    }
  in
  let r = run_prog ~hooks Corpus.worker_pool [| 0 |] in
  checki "one deferral counted" 1 r.Interp.deferred_acquisitions;
  checkb "program still completes" true (not (r.Interp.outcome = Outcome.Hang))

(* ---- Record → replay reconstruction -------------------------------- *)

let reconstruct_matches ?hooks prog (r : Interp.result) =
  match
    Interp.reconstruct ?hooks ~program:prog ~bits:r.Interp.bits ~schedule:r.Interp.schedule
      ~total_decisions:(List.length r.Interp.full_path) ~total_steps:r.Interp.steps ()
  with
  | Ok rec_ -> rec_.Interp.decisions = r.Interp.full_path && rec_.Interp.locks = r.Interp.lock_events
  | Error _ -> false

let test_reconstruct_fig2 () =
  List.iter
    (fun p ->
      let r = run_prog Corpus.fig2_write [| p |] in
      checkb (Printf.sprintf "reconstruct p=%d" p) true (reconstruct_matches Corpus.fig2_write r))
    [ -10; 0; 5; 99; 100; 500 ]

let test_reconstruct_crash_path () =
  let r = run_prog Corpus.parser Corpus.parser_trigger in
  checkb "crashing path reconstructs" true (reconstruct_matches Corpus.parser r)

let test_reconstruct_multithreaded () =
  for seed = 0 to 30 do
    let r = run_prog ~sched:(Sched.Random_sched (Rng.create seed)) Corpus.racy_counter [||] in
    checkb (Printf.sprintf "racy seed %d" seed) true (reconstruct_matches Corpus.racy_counter r)
  done

let test_reconstruct_deadlock_path () =
  let rec find seed =
    if seed > 200 then Alcotest.fail "no deadlock found"
    else
      let r =
        run_prog ~sched:(Sched.Random_sched (Rng.create seed)) Corpus.worker_pool [| 0 |]
      in
      if is_deadlock r then r else find (seed + 1)
  in
  let r = find 0 in
  checkb "deadlocked path reconstructs" true (reconstruct_matches Corpus.worker_pool r)

let test_reconstruct_rejects_garbage_bits () =
  let r = run_prog Corpus.fig2_write [| 5 |] in
  let garbled = Bitvec.copy r.Interp.bits in
  Bitvec.truncate garbled (Bitvec.length garbled - 1);
  match
    Interp.reconstruct ~program:Corpus.fig2_write ~bits:garbled ~schedule:[]
      ~total_decisions:(List.length r.Interp.full_path) ~total_steps:r.Interp.steps ()
  with
  | Ok rec_ ->
    (* A flipped path may still be structurally valid but must not
       silently claim the original decision count if bits run dry. *)
    checki "decision count honored" (List.length r.Interp.full_path)
      (List.length rec_.Interp.decisions)
  | Error _ -> ()

let prop_reconstruct_random_programs =
  QCheck.Test.make ~name:"record->replay reconstructs full path (random programs)" ~count:120
    QCheck.(triple small_nat small_nat small_nat)
    (fun (pseed, iseed, sseed) ->
      let bugs =
        (* Rotate through bug cocktails, including concurrency. *)
        match pseed mod 4 with
        | 0 -> []
        | 1 -> [ Generator.Rare_assert; Generator.Div_by_zero ]
        | 2 -> [ Generator.Deadlock_pair ]
        | _ -> [ Generator.Atomicity_race; Generator.Unchecked_syscall ]
      in
      let prog, _ =
        Generator.generate (Rng.create (pseed + 1)) { Generator.default_params with Generator.bugs }
      in
      let input_rng = Rng.create (iseed + 10_000) in
      let inputs = Array.init prog.Ir.n_inputs (fun _ -> Rng.int_in input_rng (-100) 500) in
      let fault_plan =
        if iseed mod 3 = 0 then Env.Random_faults 0.2 else Env.No_faults
      in
      let env = Env.make ~fault_plan ~seed:(iseed + 5) ~inputs () in
      let r =
        Interp.run ~max_steps:3000 ~program:prog ~env
          ~sched:(Sched.Random_sched (Rng.create (sseed + 77)))
          ()
      in
      match
        Interp.reconstruct ~program:prog ~bits:r.Interp.bits ~schedule:r.Interp.schedule
          ~total_decisions:(List.length r.Interp.full_path) ~total_steps:r.Interp.steps ()
      with
      | Ok rec_ ->
        rec_.Interp.decisions = r.Interp.full_path && rec_.Interp.locks = r.Interp.lock_events
      | Error msg -> QCheck.Test.fail_reportf "reconstruct error: %s" msg)

let prop_recorded_fraction_bounded =
  QCheck.Test.make ~name:"recorded bits never exceed decisions" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (pseed, iseed) ->
      let prog, _ = Generator.generate (Rng.create (pseed + 1)) Generator.default_params in
      let input_rng = Rng.create (iseed + 1) in
      let inputs = Array.init prog.Ir.n_inputs (fun _ -> Rng.int_in input_rng (-50) 200) in
      let env = Env.make ~seed:3 ~inputs () in
      let r = Interp.run ~max_steps:3000 ~program:prog ~env ~sched:Sched.Round_robin () in
      Bitvec.length r.Interp.bits <= List.length r.Interp.full_path)

(* ---- Outcome ------------------------------------------------------- *)

let test_bucket_keys () =
  let site = { Ir.thread = 0; pc = 7 } in
  let crash = Outcome.Crash { site; kind = Outcome.Assertion_failure; message = "m" } in
  Alcotest.(check string) "crash bucket" "crash:assert:t0:7" (Outcome.bucket_key crash);
  Alcotest.(check string) "ok bucket" "ok" (Outcome.bucket_key Outcome.Success);
  let dl = Outcome.Deadlock { waiting = [ (1, 1); (2, 0) ] } in
  Alcotest.(check string) "deadlock bucket" "deadlock:0,1" (Outcome.bucket_key dl)

let test_bucket_same_site_same_key () =
  let site = { Ir.thread = 0; pc = 3 } in
  let a = Outcome.Crash { site; kind = Outcome.Division_by_zero; message = "x" } in
  let b = Outcome.Crash { site; kind = Outcome.Division_by_zero; message = "y" } in
  Alcotest.(check string) "messages don't split buckets" (Outcome.bucket_key a) (Outcome.bucket_key b)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_exec"
    [
      ( "semantics",
        [
          Alcotest.test_case "fig2 small p" `Quick test_fig2_small_p;
          Alcotest.test_case "fig2 large p" `Quick test_fig2_large_p;
          Alcotest.test_case "fig2 distinct paths" `Quick test_fig2_distinct_paths;
          Alcotest.test_case "fig2 unreachable leaf" `Quick test_fig2_unreachable_leaf;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_crash;
          Alcotest.test_case "assert crash site" `Quick test_assert_crash_site;
          Alcotest.test_case "parser trigger" `Quick test_parser_trigger;
          Alcotest.test_case "hang detection" `Quick test_hang_detection;
        ] );
      ( "byproducts",
        [
          Alcotest.test_case "deterministic branch unrecorded" `Quick
            test_deterministic_branch_not_recorded;
          Alcotest.test_case "taint through vars" `Quick test_taint_through_vars;
          Alcotest.test_case "checksum mostly deterministic" `Quick
            test_checksum_mostly_deterministic;
          Alcotest.test_case "syscall taints" `Quick test_syscall_taints;
          Alcotest.test_case "targeted fault injection" `Quick test_fault_injection_targeted;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "worker pool deadlocks" `Quick
            test_worker_pool_deadlocks_under_some_schedule;
          Alcotest.test_case "odd input safe" `Quick test_worker_pool_odd_input_safe;
          Alcotest.test_case "wait cycle shape" `Quick test_deadlock_wait_cycle_shape;
          Alcotest.test_case "racy counter flaky" `Quick test_racy_counter_sometimes_fails;
          Alcotest.test_case "lock events disarmed" `Quick test_lock_events_balanced;
          Alcotest.test_case "schedule replay" `Quick test_schedule_replay_reproduces;
          Alcotest.test_case "single thread empty schedule" `Quick
            test_single_thread_schedule_empty;
          Alcotest.test_case "defer hook" `Quick test_defer_hook_counts;
        ] );
      ( "reconstruction",
        [
          Alcotest.test_case "fig2" `Quick test_reconstruct_fig2;
          Alcotest.test_case "crash path" `Quick test_reconstruct_crash_path;
          Alcotest.test_case "multithreaded" `Quick test_reconstruct_multithreaded;
          Alcotest.test_case "deadlock path" `Quick test_reconstruct_deadlock_path;
          Alcotest.test_case "garbage bits" `Quick test_reconstruct_rejects_garbage_bits;
          q prop_reconstruct_random_programs;
          q prop_recorded_fraction_bounded;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "bucket keys" `Quick test_bucket_keys;
          Alcotest.test_case "bucket ignores message" `Quick test_bucket_same_site_same_key;
        ] );
    ]
