test/test_trace.ml: Alcotest Array List QCheck QCheck_alcotest Softborg_exec Softborg_prog Softborg_trace Softborg_util String
