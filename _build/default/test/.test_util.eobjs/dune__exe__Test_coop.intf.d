test/test_coop.mli:
