test/test_exec.ml: Alcotest Array Hashtbl Int List Printf QCheck QCheck_alcotest Softborg_exec Softborg_prog Softborg_util
