test/test_net.ml: Alcotest List Printf QCheck QCheck_alcotest Softborg_net Softborg_util
