test/test_util.ml: Alcotest Array Float Int List Printf QCheck QCheck_alcotest Softborg_util String
