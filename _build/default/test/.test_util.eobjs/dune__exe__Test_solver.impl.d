test/test_solver.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Softborg_prog Softborg_solver Softborg_util
