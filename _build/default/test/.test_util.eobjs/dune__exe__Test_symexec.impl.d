test/test_symexec.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Softborg_exec Softborg_prog Softborg_solver Softborg_symexec Softborg_util
