test/test_conc.ml: Alcotest Int List Printf Softborg_conc Softborg_exec Softborg_prog Softborg_util
