test/test_prog.ml: Alcotest Array List QCheck QCheck_alcotest Softborg_prog Softborg_util String
