test/test_platform.ml: Alcotest List Softborg Softborg_hive Softborg_net Softborg_pod Softborg_prog Softborg_tree
