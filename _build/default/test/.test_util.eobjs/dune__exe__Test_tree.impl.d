test/test_tree.ml: Alcotest List QCheck QCheck_alcotest Softborg_exec Softborg_prog Softborg_tree Softborg_util String
