test/test_hive.mli:
