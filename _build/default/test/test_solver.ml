(* Tests for the constraint-solver stack: CNF/Tseitin, DPLL vs brute
   force, WalkSAT soundness, the interval path-condition solver, and
   portfolio racing. *)

module Ir = Softborg_prog.Ir
module Cnf = Softborg_solver.Cnf
module Dpll = Softborg_solver.Dpll
module Walksat = Softborg_solver.Walksat
module Brute = Softborg_solver.Brute
module Path_cond = Softborg_solver.Path_cond
module Interval = Softborg_solver.Interval
module Portfolio = Softborg_solver.Portfolio
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---- CNF ----------------------------------------------------------- *)

let test_cnf_eval () =
  let f = Cnf.make ~n_vars:2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  let a = [| false; false; true |] in
  checkb "satisfied" true (Cnf.eval a f);
  let b = [| false; true; false |] in
  checkb "unsatisfied" false (Cnf.eval b f);
  checki "one unsatisfied clause" 1 (List.length (Cnf.unsatisfied b f))

let test_cnf_rejects_bad_literal () =
  Alcotest.check_raises "literal 0" (Invalid_argument "Cnf.make: literal 0 out of range (n_vars=1)")
    (fun () -> ignore (Cnf.make ~n_vars:1 [ [ 0 ] ]));
  checkb "out of range" true
    (try
       ignore (Cnf.make ~n_vars:1 [ [ 2 ] ]);
       false
     with Invalid_argument _ -> true)

let test_tseitin_equisatisfiable () =
  (* (x1 /\ x2) \/ ~x3 *)
  let e = Cnf.Or [ Cnf.And [ Cnf.Var 1; Cnf.Var 2 ]; Cnf.Not (Cnf.Var 3) ] in
  let f = Cnf.tseitin ~n_vars:3 e in
  (match Brute.solve f with
  | Brute.Sat a ->
    (* Check the model against the original expression. *)
    let v i = a.(i) in
    checkb "model satisfies source expr" true ((v 1 && v 2) || not (v 3))
  | Brute.Unsat -> Alcotest.fail "satisfiable expression became UNSAT");
  (* A contradiction must stay UNSAT. *)
  let contra = Cnf.And [ Cnf.Var 1; Cnf.Not (Cnf.Var 1) ] in
  match Brute.solve (Cnf.tseitin ~n_vars:1 contra) with
  | Brute.Unsat -> ()
  | Brute.Sat _ -> Alcotest.fail "contradiction became SAT"

let test_tseitin_constants () =
  (match Brute.solve (Cnf.tseitin ~n_vars:1 (Cnf.Const true)) with
  | Brute.Sat _ -> ()
  | Brute.Unsat -> Alcotest.fail "true is sat");
  match Brute.solve (Cnf.tseitin ~n_vars:1 (Cnf.Const false)) with
  | Brute.Unsat -> ()
  | Brute.Sat _ -> Alcotest.fail "false is unsat"

(* Random small formulas for oracle comparisons. *)
let random_formula rng ~n_vars ~n_clauses ~clause_len =
  let clause () =
    List.init clause_len (fun _ ->
        let v = 1 + Rng.int rng n_vars in
        if Rng.bool rng then v else -v)
  in
  Cnf.make ~n_vars (List.init n_clauses (fun _ -> clause ()))

(* ---- DPLL ----------------------------------------------------------- *)

let test_dpll_trivial () =
  let f = Cnf.make ~n_vars:1 [ [ 1 ] ] in
  (match (Dpll.solve f).Dpll.verdict with
  | Dpll.Sat a -> checkb "x1 true" true a.(1)
  | _ -> Alcotest.fail "expected SAT");
  let g = Cnf.make ~n_vars:1 [ [ 1 ]; [ -1 ] ] in
  match (Dpll.solve g).Dpll.verdict with
  | Dpll.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_dpll_empty_formula () =
  let f = Cnf.make ~n_vars:3 [] in
  match (Dpll.solve f).Dpll.verdict with
  | Dpll.Sat _ -> ()
  | _ -> Alcotest.fail "empty formula is SAT"

let test_dpll_timeout () =
  let rng = Rng.create 5 in
  let f = random_formula rng ~n_vars:30 ~n_clauses:128 ~clause_len:3 in
  match (Dpll.solve ~budget:5 f).Dpll.verdict with
  | Dpll.Timeout -> ()
  | _ -> Alcotest.fail "tiny budget should time out"

let dpll_agrees_with_brute heuristic =
  QCheck.Test.make
    ~name:(Printf.sprintf "dpll agrees with brute force")
    ~count:150 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n_vars = 3 + Rng.int rng 8 in
      let n_clauses = 2 + Rng.int rng 25 in
      let f = random_formula rng ~n_vars ~n_clauses ~clause_len:3 in
      let brute = Brute.solve f in
      match ((Dpll.solve ~heuristic f).Dpll.verdict, brute) with
      | Dpll.Sat a, Brute.Sat _ -> Cnf.eval a f
      | Dpll.Unsat, Brute.Unsat -> true
      | Dpll.Timeout, _ -> QCheck.Test.fail_report "unexpected timeout"
      | Dpll.Sat _, Brute.Unsat | Dpll.Unsat, Brute.Sat _ ->
        QCheck.Test.fail_report "verdict mismatch")

let prop_dpll_maxocc = dpll_agrees_with_brute Dpll.Max_occurrence
let prop_dpll_jw = dpll_agrees_with_brute Dpll.Jeroslow_wang

let prop_dpll_random_branch =
  QCheck.Test.make ~name:"dpll random-branch agrees with brute" ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 2) in
      let f = random_formula rng ~n_vars:8 ~n_clauses:20 ~clause_len:3 in
      let brute = Brute.solve f in
      match
        ((Dpll.solve ~heuristic:(Dpll.Random_branch (Rng.create seed)) f).Dpll.verdict, brute)
      with
      | Dpll.Sat a, Brute.Sat _ -> Cnf.eval a f
      | Dpll.Unsat, Brute.Unsat -> true
      | _ -> false)

(* ---- WalkSAT -------------------------------------------------------- *)

let test_walksat_finds_model () =
  let f = Cnf.make ~n_vars:4 [ [ 1; 2 ]; [ -1; 3 ]; [ -3; 4 ]; [ 2; -4 ] ] in
  match (Walksat.solve ~rng:(Rng.create 3) f).Walksat.verdict with
  | Walksat.Sat a -> checkb "model valid" true (Cnf.eval a f)
  | Walksat.Timeout -> Alcotest.fail "easy instance timed out"

let test_walksat_empty () =
  let f = Cnf.make ~n_vars:0 [] in
  match (Walksat.solve ~rng:(Rng.create 1) f).Walksat.verdict with
  | Walksat.Sat _ -> ()
  | Walksat.Timeout -> Alcotest.fail "empty formula"

let test_walksat_gives_up_on_unsat () =
  let f = Cnf.make ~n_vars:1 [ [ 1 ]; [ -1 ] ] in
  match (Walksat.solve ~budget:10_000 ~rng:(Rng.create 2) f).Walksat.verdict with
  | Walksat.Timeout -> ()
  | Walksat.Sat _ -> Alcotest.fail "found a model of an UNSAT formula"

let prop_walksat_models_valid =
  QCheck.Test.make ~name:"walksat models satisfy the formula" ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 3) in
      let f = random_formula rng ~n_vars:10 ~n_clauses:20 ~clause_len:3 in
      match (Walksat.solve ~budget:200_000 ~rng:(Rng.create seed) f).Walksat.verdict with
      | Walksat.Sat a -> Cnf.eval a f
      | Walksat.Timeout -> true)

(* ---- Path conditions -------------------------------------------------- *)

let atom_lt slot c = Path_cond.atom (Ir.Binop (Ir.Lt, Ir.Input slot, Ir.Const c)) true
let atom_mod_eq slot m r expected =
  Path_cond.atom
    (Ir.Binop (Ir.Eq, Ir.Binop (Ir.Mod, Ir.Input slot, Ir.Const m), Ir.Const r))
    expected

let test_path_cond_eval () =
  let pc = [ atom_lt 0 10; atom_mod_eq 1 4 2 true ] in
  checkb "satisfied" true (Path_cond.satisfied_by pc [| 5; 6 |]);
  checkb "violated first" false (Path_cond.satisfied_by pc [| 15; 6 |]);
  checkb "violated second" false (Path_cond.satisfied_by pc [| 5; 7 |])

let test_path_cond_metadata () =
  let pc = [ atom_lt 0 10; atom_mod_eq 2 64 13 true ] in
  Alcotest.(check (list int)) "inputs" [ 0; 2 ] (Path_cond.inputs_used pc);
  checkb "64 among moduli" true (List.mem 64 (Path_cond.moduli pc));
  checkb "13 among constants" true (List.mem 13 (Path_cond.constants pc));
  checkb "well formed" true (Path_cond.well_formed pc);
  checkb "var not well formed" false
    (Path_cond.well_formed [ Path_cond.atom (Ir.Var (Ir.Local "x")) true ])

let test_path_cond_div_zero_traps () =
  let pc = [ Path_cond.atom (Ir.Binop (Ir.Div, Ir.Const 10, Ir.Input 0)) true ] in
  checkb "div by zero fails the atom" false (Path_cond.satisfied_by pc [| 0 |]);
  checkb "nonzero ok" true (Path_cond.satisfied_by pc [| 2 |])

(* ---- Interval solver --------------------------------------------------- *)

let solve ?budget pc ~n = Interval.solve ?budget ~domain:(-64, 255) ~n_inputs:n pc

let test_interval_finds_rare_residue () =
  (* The generator's rare-bug shape: in[0] mod 64 = 13. *)
  let pc = [ atom_mod_eq 0 64 13 true ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Sat model -> checki "model residue" 13 (((model.(0) mod 64) + 64) mod 64)
  | _ -> Alcotest.fail "expected SAT"

let test_interval_unsat () =
  let pc = [ atom_lt 0 5; Path_cond.atom (Ir.Binop (Ir.Gt, Ir.Input 0, Ir.Const 10)) true ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Unsat -> ()
  | _ -> Alcotest.fail "contradictory bounds should be UNSAT"

let test_interval_multi_input () =
  let pc =
    [
      Path_cond.atom
        (Ir.Binop (Ir.Eq, Ir.Binop (Ir.Add, Ir.Input 0, Ir.Input 1), Ir.Const 100))
        true;
      atom_lt 0 3;
      Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input 0, Ir.Const 0)) true;
    ]
  in
  match (solve pc ~n:2).Interval.verdict with
  | Interval.Sat model ->
    checkb "sum is 100" true (model.(0) + model.(1) = 100);
    checkb "first small" true (model.(0) < 3 && model.(0) >= 0)
  | _ -> Alcotest.fail "expected SAT"

let test_interval_domain_restriction () =
  (* in[0] > 300 has no model in domain [-64, 255]. *)
  let pc = [ Path_cond.atom (Ir.Binop (Ir.Gt, Ir.Input 0, Ir.Const 300)) true ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Unsat -> ()
  | _ -> Alcotest.fail "outside domain should be UNSAT"

let test_interval_empty_condition () =
  match (solve [] ~n:2).Interval.verdict with
  | Interval.Sat _ -> ()
  | _ -> Alcotest.fail "empty condition is trivially SAT"

let test_interval_negated_atoms () =
  let pc = [ atom_mod_eq 0 4 1 false; atom_lt 0 2 ] in
  match (solve pc ~n:1).Interval.verdict with
  | Interval.Sat model ->
    (* IR mod is OCaml's truncated mod; the negated atom speaks that
       dialect, so check it the same way. *)
    checkb "respects negation" true (model.(0) mod 4 <> 1);
    checkb "respects bound" true (model.(0) < 2)
  | _ -> Alcotest.fail "expected SAT"

let test_interval_check_only () =
  let impossible =
    [ atom_lt 0 0; Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input 0, Ir.Const 0)) true ]
  in
  checkb "refutes impossible" true
    (Interval.check_interval_only ~domain:(-64, 255) ~n_inputs:1 impossible = `Infeasible);
  checkb "admits possible" true
    (Interval.check_interval_only ~domain:(-64, 255) ~n_inputs:1 [ atom_lt 0 10 ] = `Feasible)

let prop_interval_models_satisfy =
  QCheck.Test.make ~name:"interval SAT models satisfy the condition" ~count:150
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 11) in
      (* Random conjunctions of comparisons and residue constraints. *)
      let n = 1 + Rng.int rng 3 in
      let atoms =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let slot = Rng.int rng n in
            match Rng.int rng 3 with
            | 0 -> atom_lt slot (Rng.int_in rng (-10) 60)
            | 1 -> atom_mod_eq slot (2 + Rng.int rng 10) (Rng.int rng 5) (Rng.bool rng)
            | _ -> Path_cond.atom (Ir.Binop (Ir.Ge, Ir.Input slot, Ir.Const (Rng.int_in rng (-30) 30))) true)
      in
      match (solve atoms ~n).Interval.verdict with
      | Interval.Sat model -> Path_cond.satisfied_by atoms model
      | Interval.Unsat | Interval.Timeout -> true)

let prop_interval_unsat_means_no_model =
  QCheck.Test.make ~name:"interval UNSAT verified by sweep (1 input)" ~count:60
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 17) in
      let atoms =
        List.init 2 (fun _ ->
            match Rng.int rng 2 with
            | 0 -> atom_lt 0 (Rng.int_in rng (-20) 20)
            | _ -> atom_mod_eq 0 (2 + Rng.int rng 6) (Rng.int rng 4) (Rng.bool rng))
      in
      match (Interval.solve ~domain:(-20, 40) ~n_inputs:1 atoms).Interval.verdict with
      | Interval.Unsat ->
        (* Exhaustive check over the domain. *)
        not
          (List.exists
             (fun v -> Path_cond.satisfied_by atoms [| v |])
             (List.init 61 (fun k -> k - 20)))
      | Interval.Sat _ | Interval.Timeout -> true)

(* ---- Portfolio ---------------------------------------------------------- *)

let test_race_picks_fastest_decider () =
  let fake name steps verdict =
    { Portfolio.name; execute = (fun _ -> { Portfolio.solver = name; verdict; steps }) }
  in
  let f = Cnf.make ~n_vars:1 [ [ 1 ] ] in
  let result =
    Portfolio.race
      [
        fake "slow" 1000 Portfolio.V_sat;
        fake "fast" 10 Portfolio.V_sat;
        fake "lost" 5000 Portfolio.V_unknown;
      ]
      f
  in
  Alcotest.(check (option string)) "winner" (Some "fast") result.Portfolio.winner;
  checki "wall steps" 10 result.Portfolio.wall_steps;
  (* Resources: each member charged min(own, wall) = 10+10+10. *)
  checki "resource steps" 30 result.Portfolio.resource_steps

let test_race_all_unknown () =
  let fake name steps =
    {
      Portfolio.name;
      execute = (fun _ -> { Portfolio.solver = name; verdict = Portfolio.V_unknown; steps });
    }
  in
  let f = Cnf.make ~n_vars:1 [ [ 1 ] ] in
  let result = Portfolio.race [ fake "a" 100; fake "b" 50 ] f in
  checkb "no winner" true (result.Portfolio.winner = None);
  checki "wall is max" 100 result.Portfolio.wall_steps;
  checki "resources are sum" 150 result.Portfolio.resource_steps

let test_standard_three_correct () =
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let f = random_formula rng ~n_vars:8 ~n_clauses:18 ~clause_len:3 in
    let brute = Brute.solve f in
    let result = Portfolio.race (Portfolio.standard_three ~budget:2_000_000 ~seed:9) f in
    match (result.Portfolio.verdict, brute) with
    | Portfolio.V_sat, Brute.Sat _ -> ()
    | Portfolio.V_unsat, Brute.Unsat -> ()
    | Portfolio.V_unknown, _ -> ()
    | Portfolio.V_sat, Brute.Unsat -> Alcotest.fail "portfolio claimed SAT on UNSAT"
    | Portfolio.V_unsat, Brute.Sat _ -> Alcotest.fail "portfolio claimed UNSAT on SAT"
  done

let test_portfolio_never_slower_than_winner () =
  (* The race's own member runs define the single-solver costs (the
     stochastic members are stateful, so re-executing them would give
     different step counts). *)
  let rng = Rng.create 123 in
  for _ = 1 to 10 do
    let f = random_formula rng ~n_vars:12 ~n_clauses:40 ~clause_len:3 in
    let members = Portfolio.standard_three ~budget:2_000_000 ~seed:5 in
    let result = Portfolio.race members f in
    let deciders =
      List.filter
        (fun (r : Portfolio.run) -> r.Portfolio.verdict <> Portfolio.V_unknown)
        result.Portfolio.runs
    in
    match deciders with
    | [] -> ()
    | _ ->
      let best =
        List.fold_left (fun acc (r : Portfolio.run) -> min acc r.Portfolio.steps) max_int deciders
      in
      checki "wall = best single" best result.Portfolio.wall_steps
  done

let test_speedup_guard () =
  checkb "nan on zero" true (Float.is_nan (Portfolio.speedup ~single_steps:10.0 ~portfolio_steps:0.0));
  Alcotest.(check (float 1e-9)) "ratio" 2.0 (Portfolio.speedup ~single_steps:10.0 ~portfolio_steps:5.0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_solver"
    [
      ( "cnf",
        [
          Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "bad literal" `Quick test_cnf_rejects_bad_literal;
          Alcotest.test_case "tseitin equisat" `Quick test_tseitin_equisatisfiable;
          Alcotest.test_case "tseitin constants" `Quick test_tseitin_constants;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "trivial" `Quick test_dpll_trivial;
          Alcotest.test_case "empty" `Quick test_dpll_empty_formula;
          Alcotest.test_case "timeout" `Quick test_dpll_timeout;
          q prop_dpll_maxocc;
          q prop_dpll_jw;
          q prop_dpll_random_branch;
        ] );
      ( "walksat",
        [
          Alcotest.test_case "finds model" `Quick test_walksat_finds_model;
          Alcotest.test_case "empty" `Quick test_walksat_empty;
          Alcotest.test_case "gives up on unsat" `Quick test_walksat_gives_up_on_unsat;
          q prop_walksat_models_valid;
        ] );
      ( "path_cond",
        [
          Alcotest.test_case "eval" `Quick test_path_cond_eval;
          Alcotest.test_case "metadata" `Quick test_path_cond_metadata;
          Alcotest.test_case "div0 traps" `Quick test_path_cond_div_zero_traps;
        ] );
      ( "interval",
        [
          Alcotest.test_case "rare residue" `Quick test_interval_finds_rare_residue;
          Alcotest.test_case "unsat" `Quick test_interval_unsat;
          Alcotest.test_case "multi input" `Quick test_interval_multi_input;
          Alcotest.test_case "domain restriction" `Quick test_interval_domain_restriction;
          Alcotest.test_case "empty condition" `Quick test_interval_empty_condition;
          Alcotest.test_case "negated atoms" `Quick test_interval_negated_atoms;
          Alcotest.test_case "check only" `Quick test_interval_check_only;
          q prop_interval_models_satisfy;
          q prop_interval_unsat_means_no_model;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "picks fastest" `Quick test_race_picks_fastest_decider;
          Alcotest.test_case "all unknown" `Quick test_race_all_unknown;
          Alcotest.test_case "standard three correct" `Quick test_standard_three_correct;
          Alcotest.test_case "wall equals best" `Quick test_portfolio_never_slower_than_winner;
          Alcotest.test_case "speedup guard" `Quick test_speedup_guard;
        ] );
    ]
