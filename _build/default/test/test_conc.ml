(* Tests for concurrency analysis: lock graphs, deadlock mining,
   immunity, and schedule exploration. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Lock_graph = Softborg_conc.Lock_graph
module Deadlock = Softborg_conc.Deadlock
module Immunity = Softborg_conc.Immunity
module Schedule_explore = Softborg_conc.Schedule_explore
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let acquired thread lock step = Interp.Acquired { thread; lock; step }
let released thread lock step = Interp.Released { thread; lock; step }

(* ---- Lock graph ---------------------------------------------------- *)

let test_lock_graph_edges () =
  let g = Lock_graph.create () in
  Lock_graph.add_events g
    [ acquired 0 0 1; acquired 0 1 2; released 0 1 3; released 0 0 4 ];
  checki "edge 0->1" 1 (Lock_graph.edge_count g 0 1);
  checki "no reverse edge" 0 (Lock_graph.edge_count g 1 0);
  Alcotest.(check (list int)) "locks" [ 0; 1 ] (Lock_graph.locks g)

let test_lock_graph_no_edge_after_release () =
  let g = Lock_graph.create () in
  Lock_graph.add_events g
    [ acquired 0 0 1; released 0 0 2; acquired 0 1 3; released 0 1 4 ];
  checki "no edge" 0 (Lock_graph.edge_count g 0 1);
  checki "no edges at all" 0 (List.length (Lock_graph.edges g))

let test_lock_graph_cycle_detection () =
  let g = Lock_graph.create () in
  (* Thread 0: 0 then 1; thread 1: 1 then 0 — the classic inversion. *)
  Lock_graph.add_events g [ acquired 0 0 1; acquired 0 1 2 ];
  Lock_graph.add_events g [ acquired 1 1 1; acquired 1 0 2 ];
  Alcotest.(check (list (list int))) "one cycle {0,1}" [ [ 0; 1 ] ] (Lock_graph.cycles g)

let test_lock_graph_no_cycle_consistent_order () =
  let g = Lock_graph.create () in
  Lock_graph.add_events g [ acquired 0 0 1; acquired 0 1 2 ];
  Lock_graph.add_events g [ acquired 1 0 1; acquired 1 1 2 ];
  Alcotest.(check (list (list int))) "no cycles" [] (Lock_graph.cycles g)

let test_lock_graph_three_cycle () =
  let g = Lock_graph.create () in
  Lock_graph.add_events g [ acquired 0 0 1; acquired 0 1 2 ];
  Lock_graph.add_events g [ acquired 1 1 1; acquired 1 2 2 ];
  Lock_graph.add_events g [ acquired 2 2 1; acquired 2 0 2 ];
  Alcotest.(check (list (list int))) "three-cycle" [ [ 0; 1; 2 ] ] (Lock_graph.cycles g)

let test_lock_graph_merge () =
  let a = Lock_graph.create () in
  let b = Lock_graph.create () in
  Lock_graph.add_events a [ acquired 0 0 1; acquired 0 1 2 ];
  Lock_graph.add_events b [ acquired 0 0 1; acquired 0 1 2 ];
  Lock_graph.merge a b;
  checki "merged counts" 2 (Lock_graph.edge_count a 0 1)

let test_lock_graph_from_real_trace () =
  (* Let worker A run to completion first so it performs its nested
     acquisition (round-robin would interleave both workers straight
     into the deadlock, before any hold-while-acquire edge exists). *)
  let env = Env.make ~seed:1 ~inputs:[| 2 |] () in
  let r =
    Interp.run ~program:Corpus.worker_pool ~env
      ~sched:(Sched.Replay (List.init 20 (fun _ -> 1)))
      ()
  in
  let g = Lock_graph.create () in
  Lock_graph.add_events g r.Interp.lock_events;
  checki "worker A's 0->1 edge observed" 1 (Lock_graph.edge_count g 0 1)

(* ---- Deadlock mining ------------------------------------------------- *)

let test_deadlock_predicted_from_success () =
  (* Two successful runs with inverted orders predict the deadlock
     without ever manifesting it. *)
  let miner = Deadlock.create () in
  Deadlock.observe miner ~outcome:Outcome.Success
    ~locks:[ acquired 0 0 1; acquired 0 1 2; released 0 1 3; released 0 0 4 ];
  Deadlock.observe miner ~outcome:Outcome.Success
    ~locks:[ acquired 1 1 1; acquired 1 0 2; released 1 0 3; released 1 1 4 ];
  match Deadlock.patterns miner with
  | [ p ] ->
    Alcotest.(check (list int)) "lock set" [ 0; 1 ] p.Deadlock.locks;
    checkb "predicted" true p.Deadlock.predicted;
    checki "not manifested" 0 p.Deadlock.manifested
  | ps -> Alcotest.failf "expected one pattern, got %d" (List.length ps)

let test_deadlock_manifested () =
  let miner = Deadlock.create () in
  Deadlock.observe miner
    ~outcome:(Outcome.Deadlock { waiting = [ (0, 1); (1, 0) ] })
    ~locks:[ acquired 0 0 1; acquired 1 1 2 ];
  match Deadlock.patterns miner with
  | [ p ] ->
    Alcotest.(check (list int)) "lock set" [ 0; 1 ] p.Deadlock.locks;
    checki "manifested" 1 p.Deadlock.manifested
  | ps -> Alcotest.failf "expected one pattern, got %d" (List.length ps)

let test_deadlock_none_for_clean_runs () =
  let miner = Deadlock.create () in
  Deadlock.observe miner ~outcome:Outcome.Success
    ~locks:[ acquired 0 0 1; released 0 0 2; acquired 0 1 3; released 0 1 4 ];
  checki "no patterns" 0 (Deadlock.pattern_count miner)

(* ---- Immunity --------------------------------------------------------- *)

let run_worker_pool ?hooks seed =
  let env = Env.make ~seed:1 ~inputs:[| 0 |] () in
  Interp.run ?hooks ~program:Corpus.worker_pool ~env
    ~sched:(Sched.Random_sched (Rng.create seed))
    ()

let count_deadlocks ?hooks n =
  let count = ref 0 in
  for seed = 0 to n - 1 do
    match (run_worker_pool ?hooks seed).Interp.outcome with
    | Outcome.Deadlock _ -> incr count
    | _ -> ()
  done;
  !count

let test_immunity_eliminates_deadlocks () =
  let before = count_deadlocks 100 in
  checkb "deadlocks without immunity" true (before > 0);
  let immunizer = Immunity.create ~patterns:[ [ 0; 1 ] ] in
  let after = count_deadlocks ~hooks:(Immunity.hooks immunizer) 100 in
  checki "no deadlocks with immunity" 0 after

let test_immunity_preserves_results () =
  (* Under immunity, the protected runs still complete and compute. *)
  let immunizer = Immunity.create ~patterns:[ [ 0; 1 ] ] in
  for seed = 0 to 30 do
    let r = run_worker_pool ~hooks:(Immunity.hooks immunizer) seed in
    checkb
      (Printf.sprintf "seed %d completes" seed)
      true
      (r.Interp.outcome = Outcome.Success)
  done

let test_immunity_unrelated_locks_untouched () =
  let immunizer = Immunity.create ~patterns:[ [ 5; 6 ] ] in
  let hooks = Immunity.hooks immunizer in
  let decision =
    hooks.Interp.on_lock_request ~thread:0 ~lock:0 ~holding:[] ~owner:(fun _ -> None)
  in
  checkb "unrelated lock proceeds" true (decision = `Proceed)

let test_immunity_defer_logic () =
  let immunizer = Immunity.create ~patterns:[ [ 0; 1 ] ] in
  let hooks = Immunity.hooks immunizer in
  (* Thread 1 holds lock 1 (inside the pattern); thread 0 entering must
     defer. *)
  let owner l = if l = 1 then Some 1 else None in
  checkb "entry deferred while another is inside" true
    (hooks.Interp.on_lock_request ~thread:0 ~lock:0 ~holding:[] ~owner = `Defer);
  (* A thread already inside (holding lock 0) always proceeds. *)
  checkb "inside thread proceeds" true
    (hooks.Interp.on_lock_request ~thread:1 ~lock:0 ~holding:[ 1 ] ~owner = `Proceed)

let test_immunity_add_pattern_idempotent () =
  let immunizer = Immunity.create ~patterns:[] in
  Immunity.add_pattern immunizer [ 1; 0 ];
  Immunity.add_pattern immunizer [ 0; 1 ];
  checki "one normalized pattern" 1 (List.length (Immunity.patterns immunizer))

(* ---- Schedule exploration --------------------------------------------- *)

let test_explore_finds_deadlock () =
  let make_env () = Env.make ~seed:3 ~inputs:[| 0 |] () in
  let result =
    Schedule_explore.explore ~max_runs:150 ~program:Corpus.worker_pool ~make_env ()
  in
  checkb "found failing schedule" true (result.Schedule_explore.failures <> []);
  checkb "several distinct schedules" true (result.Schedule_explore.distinct_schedules > 3)

let test_explore_finds_race () =
  let make_env () = Env.make ~seed:3 ~inputs:[||] () in
  let result =
    Schedule_explore.explore ~max_runs:200 ~program:Corpus.racy_counter ~make_env ()
  in
  checkb "lost update found by exploration" true
    (List.exists
       (fun (o, _) -> match o with Outcome.Crash _ -> true | _ -> false)
       result.Schedule_explore.outcomes)

let test_explore_single_threaded_trivial () =
  let make_env () = Env.make ~seed:3 ~inputs:[| 5 |] () in
  let result =
    Schedule_explore.explore ~max_runs:50 ~program:Corpus.fig2_write ~make_env ()
  in
  checki "one schedule only" 1 result.Schedule_explore.distinct_schedules;
  checki "one run suffices" 1 result.Schedule_explore.runs

let test_explore_respects_budget () =
  let make_env () = Env.make ~seed:3 ~inputs:[| 0 |] () in
  let result =
    Schedule_explore.explore ~max_runs:10 ~program:Corpus.worker_pool ~make_env ()
  in
  checkb "at most 10 runs" true (result.Schedule_explore.runs <= 10)

let test_bank_transfer_three_cycle_mined_and_immunized () =
  (* Systematic exploration manifests the 0->1->2->0 deadlock; the
     mined three-lock pattern then immunizes it completely. *)
  let make_env () = Env.make ~seed:5 ~inputs:[| 1 |] () in
  let before =
    Schedule_explore.explore ~max_runs:250 ~program:Corpus.bank_transfer ~make_env ()
  in
  let deadlock_sets =
    List.filter_map
      (fun (o, _) ->
        match o with
        | Outcome.Deadlock { waiting } ->
          Some (List.sort_uniq Int.compare (List.map snd waiting))
        | _ -> None)
      before.Schedule_explore.outcomes
    |> List.sort_uniq compare
  in
  checkb "three-lock deadlock manifests" true (List.mem [ 0; 1; 2 ] deadlock_sets);
  (* The lock graph mined from successful runs predicts the cycle. *)
  let miner = Deadlock.create () in
  List.iter
    (fun (outcome, schedule) ->
      let r =
        Interp.run ~program:Corpus.bank_transfer ~env:(make_env ())
          ~sched:(Sched.Replay schedule) ()
      in
      ignore outcome;
      Deadlock.observe miner ~outcome:r.Interp.outcome ~locks:r.Interp.lock_events)
    before.Schedule_explore.outcomes;
  checkb "cycle {0,1,2} predicted" true
    (List.exists
       (fun (p : Deadlock.pattern) -> p.Deadlock.locks = [ 0; 1; 2 ])
       (Deadlock.patterns miner));
  let immunizer = Immunity.create ~patterns:[ [ 0; 1; 2 ] ] in
  let after =
    Schedule_explore.explore ~max_runs:250 ~hooks:(Immunity.hooks immunizer)
      ~program:Corpus.bank_transfer ~make_env ()
  in
  let deadlocks_after =
    List.length
      (List.filter
         (fun (o, _) -> match o with Outcome.Deadlock _ -> true | _ -> false)
         after.Schedule_explore.outcomes)
  in
  checki "no deadlocks under three-lock immunity" 0 deadlocks_after

let test_explore_failure_schedules_replay () =
  (* A failing schedule reported by exploration must reproduce the
     failure when replayed. *)
  let make_env () = Env.make ~seed:3 ~inputs:[| 0 |] () in
  let result =
    Schedule_explore.explore ~max_runs:150 ~program:Corpus.worker_pool ~make_env ()
  in
  match result.Schedule_explore.failures with
  | [] -> Alcotest.fail "no failures found"
  | (outcome, schedule) :: _ ->
    let r =
      Interp.run ~program:Corpus.worker_pool ~env:(make_env ())
        ~sched:(Sched.Replay schedule) ()
    in
    checkb "replayed failure matches" true (Outcome.equal outcome r.Interp.outcome)

let () =
  Alcotest.run "softborg_conc"
    [
      ( "lock_graph",
        [
          Alcotest.test_case "edges" `Quick test_lock_graph_edges;
          Alcotest.test_case "release clears held" `Quick test_lock_graph_no_edge_after_release;
          Alcotest.test_case "cycle detection" `Quick test_lock_graph_cycle_detection;
          Alcotest.test_case "consistent order no cycle" `Quick
            test_lock_graph_no_cycle_consistent_order;
          Alcotest.test_case "three cycle" `Quick test_lock_graph_three_cycle;
          Alcotest.test_case "merge" `Quick test_lock_graph_merge;
          Alcotest.test_case "from real trace" `Quick test_lock_graph_from_real_trace;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "predicted from success" `Quick test_deadlock_predicted_from_success;
          Alcotest.test_case "manifested" `Quick test_deadlock_manifested;
          Alcotest.test_case "clean runs" `Quick test_deadlock_none_for_clean_runs;
        ] );
      ( "immunity",
        [
          Alcotest.test_case "eliminates deadlocks" `Quick test_immunity_eliminates_deadlocks;
          Alcotest.test_case "preserves results" `Quick test_immunity_preserves_results;
          Alcotest.test_case "unrelated locks" `Quick test_immunity_unrelated_locks_untouched;
          Alcotest.test_case "defer logic" `Quick test_immunity_defer_logic;
          Alcotest.test_case "add pattern idempotent" `Quick test_immunity_add_pattern_idempotent;
        ] );
      ( "schedule_explore",
        [
          Alcotest.test_case "finds deadlock" `Quick test_explore_finds_deadlock;
          Alcotest.test_case "finds race" `Quick test_explore_finds_race;
          Alcotest.test_case "single thread trivial" `Quick test_explore_single_threaded_trivial;
          Alcotest.test_case "respects budget" `Quick test_explore_respects_budget;
          Alcotest.test_case "failure schedules replay" `Quick
            test_explore_failure_schedules_replay;
          Alcotest.test_case "bank transfer three-cycle" `Quick
            test_bank_transfer_three_cycle_mined_and_immunized;
        ] );
    ]
