(* Tests for symbolic execution: path enumeration against the concrete
   interpreter, consistency levels, directed search, and testgen. *)

module Ir = Softborg_prog.Ir
module Build = Softborg_prog.Build
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Sym_state = Softborg_symexec.Sym_state
module Sym_exec = Softborg_symexec.Sym_exec
module Consistency = Softborg_symexec.Consistency
module Testgen = Softborg_symexec.Testgen
module Path_cond = Softborg_solver.Path_cond
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---- Sym_state -------------------------------------------------------- *)

let test_constant_folding () =
  let open Sym_state in
  (match eval_binop Ir.Add (const 2) (const 3) with
  | Value (Concrete 5) -> ()
  | _ -> Alcotest.fail "2+3 <> 5");
  match eval_binop Ir.Div (const 1) (const 0) with
  | Trap Sym_div_by_zero -> ()
  | _ -> Alcotest.fail "1/0 should trap"

let test_symbolic_guard () =
  let open Sym_state in
  match eval_binop Ir.Div (const 10) (symbol 0) with
  | Guarded { on_zero = Sym_div_by_zero; _ } -> ()
  | _ -> Alcotest.fail "division by symbol must be guarded"

let test_simplification () =
  let open Sym_state in
  (match eval_binop Ir.Mul (symbol 0) (const 0) with
  | Value (Symbolic (Ir.Const 0)) -> ()
  | Value (Concrete 0) -> ()
  | _ -> Alcotest.fail "x*0 should fold to 0");
  match eval_binop Ir.Add (symbol 0) (const 0) with
  | Value (Symbolic (Ir.Input 0)) -> ()
  | _ -> Alcotest.fail "x+0 should fold to x"

(* ---- explore: fig2 ------------------------------------------------------ *)

let test_fig2_enumerates_all_feasible_paths () =
  let report = Sym_exec.explore Corpus.fig2_write Consistency.Strict in
  checkb "not truncated" false report.Sym_exec.truncated;
  (* Four syntactic leaves; one ((p>=100) and (p<=3)) is infeasible. *)
  let sat_paths =
    List.filter (fun p -> p.Sym_exec.solver_verdict = `Sat) report.Sym_exec.paths
  in
  checki "three feasible leaves" 3 (List.length sat_paths);
  (* The (p>=100, p<=3) leaf is refuted by interval propagation at the
     fork itself. *)
  checki "infeasible leaf pruned at fork" 1 report.Sym_exec.pruned_infeasible

let test_fig2_models_replay_concretely () =
  (* Each SAT model, run concretely, must follow exactly the symbolic
     path's decision sequence. *)
  let report = Sym_exec.explore Corpus.fig2_write Consistency.Strict in
  List.iter
    (fun (p : Sym_exec.path) ->
      match p.Sym_exec.model with
      | None -> ()
      | Some model ->
        let tc =
          Testgen.of_model ~n_inputs:Corpus.fig2_write.Ir.n_inputs ~model
            ~origins:p.Sym_exec.origins
        in
        let env = Env.make ~fault_plan:tc.Testgen.fault_plan ~seed:1 ~inputs:tc.Testgen.inputs () in
        let r = Interp.run ~program:Corpus.fig2_write ~env ~sched:Sched.Round_robin () in
        Alcotest.(check int)
          "same path length" (List.length p.Sym_exec.decisions)
          (List.length r.Interp.full_path);
        checkb "same decisions" true (r.Interp.full_path = p.Sym_exec.decisions))
    report.Sym_exec.paths

let test_parser_crash_found_symbolically () =
  let report = Sym_exec.explore Corpus.parser Consistency.Strict in
  let crashes =
    List.filter
      (fun (p : Sym_exec.path) ->
        match (p.Sym_exec.outcome, p.Sym_exec.solver_verdict) with
        | Sym_exec.Crashed { kind = Outcome.Assertion_failure; _ }, `Sat -> true
        | _ -> false)
      report.Sym_exec.paths
  in
  checki "exactly one feasible crash path" 1 (List.length crashes);
  (* The model must concretely trigger the crash. *)
  match (List.hd crashes).Sym_exec.model with
  | None -> Alcotest.fail "no model"
  | Some model ->
    let tc =
      Testgen.of_model ~n_inputs:Corpus.parser.Ir.n_inputs ~model
        ~origins:(List.hd crashes).Sym_exec.origins
    in
    let env = Env.make ~fault_plan:tc.Testgen.fault_plan ~seed:1 ~inputs:tc.Testgen.inputs () in
    let r = Interp.run ~program:Corpus.parser ~env ~sched:Sched.Round_robin () in
    (match r.Interp.outcome with
    | Outcome.Crash { kind = Outcome.Assertion_failure; _ } -> ()
    | o -> Alcotest.failf "model did not crash: %a" Outcome.pp o)

let test_syscall_fault_path_found () =
  (* file_copy's planted bug: an unchecked dst-open fault.  Symbolic
     execution must find a crash path whose model requires a syscall
     fault, and testgen must produce a fault plan triggering it. *)
  let report = Sym_exec.explore Corpus.file_copy Consistency.Strict in
  let crash_with_fault =
    List.filter_map
      (fun (p : Sym_exec.path) ->
        match (p.Sym_exec.outcome, p.Sym_exec.model) with
        | Sym_exec.Crashed { kind = Outcome.Division_by_zero; _ }, Some model ->
          let tc =
            Testgen.of_model ~n_inputs:Corpus.file_copy.Ir.n_inputs ~model
              ~origins:p.Sym_exec.origins
          in
          (match tc.Testgen.fault_plan with Env.Targeted _ -> Some tc | _ -> None)
        | _ -> None)
      report.Sym_exec.paths
  in
  checkb "found fault-triggered crash" true (crash_with_fault <> []);
  let tc = List.hd crash_with_fault in
  let env = Env.make ~fault_plan:tc.Testgen.fault_plan ~seed:1 ~inputs:tc.Testgen.inputs () in
  let r = Interp.run ~program:Corpus.file_copy ~env ~sched:Sched.Round_robin () in
  match r.Interp.outcome with
  | Outcome.Crash { kind = Outcome.Division_by_zero; _ } -> ()
  | o -> Alcotest.failf "fault plan did not reproduce the crash: %a" Outcome.pp o

(* ---- Consistency levels -------------------------------------------------- *)

let test_local_consistency_overapproximates () =
  let open Build in
  let open Build.Infix in
  (* Thread 1's branch depends on a global only thread 0 writes; under
     strict consistency only one direction is feasible, under local
     consistency (havoced global) both are. *)
  let prog =
    program ~name:"overapprox" ~globals:[ "flag" ]
      [
        [ assign (gvar "flag") (const 1) ];
        [ if_ (glob "flag" ==: const 2) [ assign (lvar "x") (const 1) ] [ assign (lvar "x") (const 2) ] ];
      ]
  in
  let strict = Sym_exec.explore prog Consistency.Strict in
  let local = Sym_exec.explore prog (Consistency.Local { thread = 1 }) in
  checki "strict: single path" 1 (List.length strict.Sym_exec.paths);
  checki "local: both directions" 2 (List.length local.Sym_exec.paths)

let test_local_cheaper_on_multithreaded () =
  let strict = Sym_exec.explore Corpus.worker_pool Consistency.Strict in
  let local = Sym_exec.explore Corpus.worker_pool (Consistency.Local { thread = 1 }) in
  checkb "local explores fewer total steps" true
    (local.Sym_exec.total_steps < strict.Sym_exec.total_steps)

(* ---- Directed search / testgen -------------------------------------------- *)

let parser_crash_site () =
  match Ir.assert_sites Corpus.parser with
  | [ site ] -> site
  | sites -> Alcotest.failf "expected one assert site, got %d" (List.length sites)

let test_direction_feasible_finds_rare_path () =
  ignore (parser_crash_site ());
  (* Target the guard of the parser's crash: the last decision of the
     known crashing execution (the way the hive would target an
     observed gap's sibling direction). *)
  let env = Env.make ~seed:1 ~inputs:Corpus.parser_trigger () in
  let r = Interp.run ~program:Corpus.parser ~env ~sched:Sched.Round_robin () in
  let site, direction =
    match List.rev r.Interp.full_path with
    | last :: _ -> last
    | [] -> Alcotest.fail "trigger run has no decisions"
  in
  match Testgen.for_direction Corpus.parser ~site ~direction with
  | `Test tc ->
    let env = Env.make ~fault_plan:tc.Testgen.fault_plan ~seed:1 ~inputs:tc.Testgen.inputs () in
    let r = Interp.run ~program:Corpus.parser ~env ~sched:Sched.Round_robin () in
    checkb "guided input reaches the crash" true (Outcome.is_failure r.Interp.outcome)
  | `Infeasible -> Alcotest.fail "rare path wrongly infeasible"
  | `Unknown -> Alcotest.fail "rare path unknown"

let test_direction_infeasible_detected () =
  (* fig2's dead direction: under p>=100, p>3 cannot be false. *)
  let sites = Ir.branch_sites Corpus.fig2_write in
  (* The p>3 site is the branch reached only when p<100 fails; find it
     by asking symexec for each site's false direction and expecting
     exactly one Infeasible among them. *)
  let verdicts =
    List.map
      (fun site -> Sym_exec.direction_feasible Corpus.fig2_write ~site ~direction:false)
      sites
  in
  let infeasible =
    List.filter (fun v -> v = Sym_exec.Infeasible) verdicts
  in
  checki "one infeasible direction" 1 (List.length infeasible)

let test_direction_unknown_for_multithreaded () =
  let sites = Ir.branch_sites Corpus.worker_pool in
  let site = List.hd sites in
  match Sym_exec.direction_feasible Corpus.worker_pool ~site ~direction:true with
  | Sym_exec.Feasible _ | Sym_exec.Unknown -> ()
  | Sym_exec.Infeasible -> Alcotest.fail "must not claim Infeasible for multithreaded programs"

let prop_symexec_models_replay =
  QCheck.Test.make ~name:"symbolic models replay concretely (random programs)" ~count:40
    QCheck.small_nat (fun seed ->
      (* Single-threaded programs only: symexec schedules round-robin. *)
      let prog, _ =
        Generator.generate (Rng.create (seed + 1))
          {
            Generator.default_params with
            Generator.bugs = (if seed mod 2 = 0 then [ Generator.Rare_assert ] else []);
            block_depth = 2;
            stmts_per_block = 3;
          }
      in
      let config = { Sym_exec.default_config with Sym_exec.max_paths = 64 } in
      let report = Sym_exec.explore ~config prog Consistency.Strict in
      List.for_all
        (fun (p : Sym_exec.path) ->
          match p.Sym_exec.model with
          | None -> true
          | Some model ->
            let tc = Testgen.of_model ~n_inputs:prog.Ir.n_inputs ~model ~origins:p.Sym_exec.origins in
            let env =
              Env.make ~fault_plan:tc.Testgen.fault_plan ~seed:1 ~inputs:tc.Testgen.inputs ()
            in
            let r = Interp.run ~max_steps:5000 ~program:prog ~env ~sched:Sched.Round_robin () in
            (* The concrete run must follow the symbolic decision
               sequence as a prefix (symbolic paths can be cut short by
               step limits). *)
            let rec is_prefix xs ys =
              match (xs, ys) with
              | [], _ -> true
              | x :: xs, y :: ys -> x = y && is_prefix xs ys
              | _ :: _, [] -> false
            in
            is_prefix p.Sym_exec.decisions r.Interp.full_path
            || is_prefix r.Interp.full_path p.Sym_exec.decisions)
        report.Sym_exec.paths)

(* The strongest check in the suite: over a small finite input domain,
   the set of decision sequences found by symbolic exploration (SAT
   paths) must equal the set produced by exhaustively running every
   input vector concretely.  Soundness and completeness in one. *)
let prop_symexec_equals_enumeration =
  QCheck.Test.make ~name:"symexec path set = exhaustive concrete enumeration" ~count:25
    QCheck.small_nat (fun seed ->
      (* Syscall-free single-threaded programs only: syscall results
         range outside the tiny enumeration domain. *)
      let rec gen_program attempt =
        if attempt > 50 then None
        else
          let prog, _ =
            Generator.generate
              (Rng.create ((seed * 57) + attempt))
              {
                Generator.default_params with
                Generator.bugs = [];
                block_depth = 2;
                stmts_per_block = 3;
                n_inputs = 2;
              }
          in
          let has_syscall =
            Array.exists
              (fun body ->
                Array.exists (function Ir.Syscall _ -> true | _ -> false) body)
              prog.Ir.threads
          in
          if has_syscall then gen_program (attempt + 1) else Some prog
      in
      match gen_program 0 with
      | None -> true  (* no syscall-free program found; skip *)
      | Some prog ->
        let lo, hi = (0, 7) in
        let concrete_paths = Hashtbl.create 64 in
        for a = lo to hi do
          for b = lo to hi do
            let env = Env.make ~seed:1 ~inputs:[| a; b |] () in
            let r = Interp.run ~max_steps:5000 ~program:prog ~env ~sched:Sched.Round_robin () in
            Hashtbl.replace concrete_paths r.Interp.full_path ()
          done
        done;
        let config =
          {
            Sym_exec.default_config with
            Sym_exec.domain = (lo, hi);
            max_paths = 2048;
            max_steps_per_path = 5000;
            solver_budget = 500_000;
          }
        in
        let report = Sym_exec.explore ~config prog Consistency.Strict in
        if report.Sym_exec.truncated then true  (* inconclusive; don't fail *)
        else begin
          try
          let symbolic_paths = Hashtbl.create 64 in
          List.iter
            (fun (p : Sym_exec.path) ->
              match p.Sym_exec.solver_verdict with
              | `Sat -> Hashtbl.replace symbolic_paths p.Sym_exec.decisions ()
              | `Unsat -> ()
              | `Timeout | `Unsolved -> raise Exit)
            report.Sym_exec.paths;
          let subset a b =
            Hashtbl.fold (fun path () acc -> acc && Hashtbl.mem b path) a true
          in
          let complete = subset concrete_paths symbolic_paths in
          let sound = subset symbolic_paths concrete_paths in
          if not complete then
            QCheck.Test.fail_report "a concrete path is missing from symbolic exploration";
          if not sound then
            QCheck.Test.fail_report "a SAT symbolic path has no concrete witness in domain";
          true
          with Exit -> true  (* solver timeout: inconclusive *)
        end)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_symexec"
    [
      ( "sym_state",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "symbolic guard" `Quick test_symbolic_guard;
          Alcotest.test_case "simplification" `Quick test_simplification;
        ] );
      ( "explore",
        [
          Alcotest.test_case "fig2 all paths" `Quick test_fig2_enumerates_all_feasible_paths;
          Alcotest.test_case "fig2 models replay" `Quick test_fig2_models_replay_concretely;
          Alcotest.test_case "parser crash found" `Quick test_parser_crash_found_symbolically;
          Alcotest.test_case "syscall fault path" `Quick test_syscall_fault_path_found;
          q prop_symexec_models_replay;
          q prop_symexec_equals_enumeration;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "local overapproximates" `Quick test_local_consistency_overapproximates;
          Alcotest.test_case "local cheaper" `Quick test_local_cheaper_on_multithreaded;
        ] );
      ( "directed",
        [
          Alcotest.test_case "finds rare path" `Quick test_direction_feasible_finds_rare_path;
          Alcotest.test_case "detects infeasible" `Quick test_direction_infeasible_detected;
          Alcotest.test_case "unknown for multithreaded" `Quick
            test_direction_unknown_for_multithreaded;
        ] );
    ]
