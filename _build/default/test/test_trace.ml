(* Tests for trace records, the wire codec, compression, sampling, and
   anonymization. *)

module Ir = Softborg_prog.Ir
module Corpus = Softborg_prog.Corpus
module Generator = Softborg_prog.Generator
module Env = Softborg_exec.Env
module Sched = Softborg_exec.Sched
module Interp = Softborg_exec.Interp
module Outcome = Softborg_exec.Outcome
module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Compress = Softborg_trace.Compress
module Sampling = Softborg_trace.Sampling
module Anonymize = Softborg_trace.Anonymize
module Bitvec = Softborg_util.Bitvec
module Rng = Softborg_util.Rng

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let trace_of ?(sched = Sched.Round_robin) ?(fault_plan = Env.No_faults) prog inputs =
  let env = Env.make ~fault_plan ~seed:7 ~inputs () in
  let r = Interp.run ~program:prog ~env ~sched () in
  (Trace.of_result ~program_digest:(Ir.digest prog) ~pod:1 ~fix_epoch:0 r, r)

(* ---- Trace -------------------------------------------------------- *)

let test_trace_of_result () =
  let trace, r = trace_of Corpus.fig2_write [| 5 |] in
  checki "decision count" (List.length r.Interp.full_path) trace.Trace.n_decisions;
  checkb "outcome preserved" true (Outcome.equal r.Interp.outcome trace.Trace.outcome);
  checkb "fraction in [0,1]" true
    (Trace.recorded_fraction trace >= 0.0 && Trace.recorded_fraction trace <= 1.0)

let test_trace_ids_fresh () =
  let t1, _ = trace_of Corpus.fig2_write [| 5 |] in
  let t2, _ = trace_of Corpus.fig2_write [| 5 |] in
  checkb "distinct trace ids" false
    (Softborg_util.Ids.Trace_id.equal t1.Trace.trace_id t2.Trace.trace_id);
  checkb "same content" true (Trace.equal t1 t2)

(* ---- Wire --------------------------------------------------------- *)

let roundtrip trace =
  match Wire.decode (Wire.encode trace) with
  | Ok t -> t
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_wire_roundtrip_simple () =
  let trace, _ = trace_of Corpus.fig2_write [| 42 |] in
  checkb "roundtrip equal" true (Trace.equal trace (roundtrip trace))

let test_wire_roundtrip_crash () =
  let trace, _ = trace_of Corpus.parser Corpus.parser_trigger in
  checkb "crash trace roundtrips" true (Trace.equal trace (roundtrip trace))

let test_wire_roundtrip_deadlock () =
  let rec find seed =
    if seed > 300 then Alcotest.fail "no deadlock found"
    else
      let trace, _ =
        trace_of ~sched:(Sched.Random_sched (Rng.create seed)) Corpus.worker_pool [| 0 |]
      in
      match trace.Trace.outcome with Outcome.Deadlock _ -> trace | _ -> find (seed + 1)
  in
  let trace = find 0 in
  checkb "deadlock trace roundtrips" true (Trace.equal trace (roundtrip trace))

let test_wire_roundtrip_with_faults () =
  let trace, _ = trace_of ~fault_plan:(Env.Random_faults 0.5) Corpus.file_copy [| 6; 1 |] in
  checkb "faulty trace roundtrips" true (Trace.equal trace (roundtrip trace))

let test_wire_rejects_truncation () =
  let trace, _ = trace_of Corpus.fig2_write [| 5 |] in
  let encoded = Wire.encode trace in
  let truncated = String.sub encoded 0 (String.length encoded / 2) in
  match Wire.decode truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded a truncated trace"

let test_wire_rejects_garbage () =
  match Wire.decode "\xff\xff\xff\xff\xff\xff\xff\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded garbage"

let prop_wire_roundtrip_random =
  QCheck.Test.make ~name:"wire roundtrip (random programs)" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (pseed, iseed) ->
      let bugs = if pseed mod 2 = 0 then [ Generator.Deadlock_pair ] else [ Generator.Rare_assert ] in
      let prog, _ =
        Generator.generate (Rng.create (pseed + 1)) { Generator.default_params with Generator.bugs }
      in
      let irng = Rng.create (iseed + 1) in
      let inputs = Array.init prog.Ir.n_inputs (fun _ -> Rng.int_in irng (-100) 300) in
      let env = Env.make ~fault_plan:(Env.Random_faults 0.1) ~seed:iseed ~inputs () in
      let r =
        Interp.run ~max_steps:3000 ~program:prog ~env
          ~sched:(Sched.Random_sched (Rng.create (pseed + iseed)))
          ()
      in
      let trace = Trace.of_result ~program_digest:(Ir.digest prog) ~pod:2 ~fix_epoch:1 r in
      match Wire.decode (Wire.encode trace) with
      | Ok t -> Trace.equal trace t
      | Error _ -> false)

(* ---- Compress ------------------------------------------------------ *)

let test_bit_runs () =
  let v = Bitvec.of_string "0001111011" in
  Alcotest.(check (list (pair bool int)))
    "runs" [ (false, 3); (true, 4); (false, 1); (true, 2) ] (Compress.bit_runs v)

let test_runs_roundtrip () =
  let v = Bitvec.of_string "110000001111111100101" in
  let back = Compress.runs_to_bits (Compress.bit_runs v) in
  checkb "roundtrip" true (Bitvec.equal v back)

let test_encode_runs_roundtrip () =
  let v = Bitvec.of_string "00000000001111111111" in
  let decoded = Compress.decode_runs (Compress.encode_runs (Compress.bit_runs v)) in
  checkb "encoded roundtrip" true (Bitvec.equal v (Compress.runs_to_bits decoded))

let test_empty_runs () =
  Alcotest.(check (list (pair bool int))) "empty" [] (Compress.bit_runs (Bitvec.create ()));
  let decoded = Compress.decode_runs (Compress.encode_runs []) in
  Alcotest.(check (list (pair bool int))) "empty roundtrip" [] decoded

let test_int_runs () =
  Alcotest.(check (list (pair int int)))
    "runs" [ (1, 3); (2, 1); (1, 2) ] (Compress.int_runs [ 1; 1; 1; 2; 1; 1 ]);
  Alcotest.(check (list int))
    "expand" [ 1; 1; 1; 2; 1; 1 ]
    (Compress.expand_int_runs [ (1, 3); (2, 1); (1, 2) ])

let test_compression_wins_on_uniform () =
  let v = Compress.runs_to_bits [ (false, 4000) ] in
  checkb "RLE wins" true (Compress.compression_ratio v > 10.0)

let prop_bit_runs_roundtrip =
  QCheck.Test.make ~name:"bit_runs roundtrip" ~count:300
    QCheck.(list bool)
    (fun bools ->
      let v = Bitvec.of_bools bools in
      Bitvec.equal v (Compress.runs_to_bits (Compress.bit_runs v)))

let prop_encode_runs_roundtrip =
  QCheck.Test.make ~name:"encode_runs roundtrip" ~count:300
    QCheck.(list bool)
    (fun bools ->
      let v = Bitvec.of_bools bools in
      let decoded = Compress.decode_runs (Compress.encode_runs (Compress.bit_runs v)) in
      Bitvec.equal v (Compress.runs_to_bits decoded))

let prop_int_runs_roundtrip =
  QCheck.Test.make ~name:"int_runs roundtrip" ~count:300
    QCheck.(list small_nat)
    (fun xs -> Compress.expand_int_runs (Compress.int_runs xs) = xs)

(* ---- Sampling ------------------------------------------------------ *)

let full_path_of prog inputs =
  let env = Env.make ~seed:3 ~inputs () in
  let r = Interp.run ~program:prog ~env ~sched:Sched.Round_robin () in
  (r.Interp.full_path, r.Interp.outcome)

let test_sampling_rate_one_records_all () =
  let path, outcome = full_path_of Corpus.parser [| 7; 13; 4 |] in
  let s = Sampling.sample (Rng.create 1) ~rate:1 ~full_path:path ~outcome in
  checki "all observed" (List.length path) s.Sampling.observed;
  checki "total" (List.length path) s.Sampling.total;
  Alcotest.(check (float 1e-9)) "overhead is 1" 1.0 (Sampling.modeled_overhead s);
  Alcotest.(check (float 1e-9)) "family width 0" 0.0 (Sampling.family_width_log2 s)

let test_sampling_counts_sum_to_observed () =
  let path, outcome = full_path_of Corpus.parser [| 7; 13; 4 |] in
  let s = Sampling.sample (Rng.create 2) ~rate:2 ~full_path:path ~outcome in
  let sum = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Sampling.counts in
  checki "counts sum" s.Sampling.observed sum

let test_sampling_sparser_with_rate () =
  (* A long synthetic path over a small site alphabet. *)
  let path =
    List.init 400 (fun i -> ({ Ir.thread = 0; pc = i mod 5 }, i mod 3 = 0))
  in
  let obs rate =
    (Sampling.sample (Rng.create 5) ~rate ~full_path:path ~outcome:Outcome.Success)
      .Sampling.observed
  in
  checkb "rate 10 observes less than rate 1" true (obs 10 < obs 1);
  checkb "rate 100 observes less than rate 10" true (obs 100 < obs 10)

let test_sampling_rejects_bad_rate () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Sampling.sample: rate must be positive")
    (fun () ->
      ignore (Sampling.sample (Rng.create 1) ~rate:0 ~full_path:[] ~outcome:Outcome.Success))

let prop_sampling_observed_bounded =
  QCheck.Test.make ~name:"observed <= total" ~count:200
    QCheck.(pair small_nat (int_range 1 100))
    (fun (seed, rate) ->
      let path, outcome = full_path_of Corpus.parser [| seed; seed * 3; seed * 7 |] in
      let s = Sampling.sample (Rng.create seed) ~rate ~full_path:path ~outcome in
      s.Sampling.observed <= s.Sampling.total
      && Sampling.family_width_log2 s = float_of_int (s.Sampling.total - s.Sampling.observed))

(* ---- Anonymize ------------------------------------------------------ *)

let test_anonymize_full_identity () =
  let trace, _ = trace_of Corpus.file_copy [| 5; 0 |] in
  checkb "full is identity" true (Trace.equal trace (Anonymize.apply Anonymize.Full trace))

let test_anonymize_coarse_signs () =
  let trace, _ = trace_of ~fault_plan:(Env.Random_faults 0.4) Corpus.file_copy [| 6; 0 |] in
  let coarse = Anonymize.apply Anonymize.Coarse_syscalls trace in
  List.iter
    (fun (_, result) -> checkb "coarse value is ±1" true (result = 1 || result = -1))
    coarse.Trace.syscalls;
  checki "same count" (List.length trace.Trace.syscalls) (List.length coarse.Trace.syscalls)

let test_anonymize_outcome_only_strips_everything () =
  let trace, _ = trace_of Corpus.file_copy [| 5; 0 |] in
  let bare = Anonymize.apply Anonymize.Outcome_only trace in
  checki "no bits" 0 (Bitvec.length bare.Trace.bits);
  checki "no syscalls" 0 (List.length bare.Trace.syscalls);
  checki "no schedule" 0 (List.length bare.Trace.schedule);
  checkb "outcome preserved" true (Outcome.equal trace.Trace.outcome bare.Trace.outcome)

let test_anonymize_monotone_residual () =
  let trace, _ = trace_of ~fault_plan:(Env.Random_faults 0.3) Corpus.file_copy [| 7; 2 |] in
  let bits_at level = Anonymize.residual_bits (Anonymize.apply level trace) in
  let ladder = List.map bits_at Anonymize.all_levels in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  checkb "residual bits non-increasing down the ladder" true (non_increasing ladder)

let prop_anonymize_idempotent =
  QCheck.Test.make ~name:"anonymize idempotent" ~count:60 QCheck.small_nat (fun seed ->
      let prog, _ = Generator.generate (Rng.create (seed + 1)) Generator.default_params in
      let irng = Rng.create seed in
      let inputs = Array.init prog.Ir.n_inputs (fun _ -> Rng.int irng 100) in
      let env = Env.make ~seed ~inputs () in
      let r = Interp.run ~max_steps:2000 ~program:prog ~env ~sched:Sched.Round_robin () in
      let trace = Trace.of_result ~program_digest:(Ir.digest prog) ~pod:0 ~fix_epoch:0 r in
      List.for_all
        (fun level ->
          let once = Anonymize.apply level trace in
          Trace.equal once (Anonymize.apply level once))
        Anonymize.all_levels)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "softborg_trace"
    [
      ( "trace",
        [
          Alcotest.test_case "of_result" `Quick test_trace_of_result;
          Alcotest.test_case "fresh ids" `Quick test_trace_ids_fresh;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_wire_roundtrip_simple;
          Alcotest.test_case "roundtrip crash" `Quick test_wire_roundtrip_crash;
          Alcotest.test_case "roundtrip deadlock" `Quick test_wire_roundtrip_deadlock;
          Alcotest.test_case "roundtrip faults" `Quick test_wire_roundtrip_with_faults;
          Alcotest.test_case "rejects truncation" `Quick test_wire_rejects_truncation;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          q prop_wire_roundtrip_random;
        ] );
      ( "compress",
        [
          Alcotest.test_case "bit runs" `Quick test_bit_runs;
          Alcotest.test_case "runs roundtrip" `Quick test_runs_roundtrip;
          Alcotest.test_case "encoded roundtrip" `Quick test_encode_runs_roundtrip;
          Alcotest.test_case "empty" `Quick test_empty_runs;
          Alcotest.test_case "int runs" `Quick test_int_runs;
          Alcotest.test_case "uniform compresses" `Quick test_compression_wins_on_uniform;
          q prop_bit_runs_roundtrip;
          q prop_encode_runs_roundtrip;
          q prop_int_runs_roundtrip;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "rate 1 records all" `Quick test_sampling_rate_one_records_all;
          Alcotest.test_case "counts sum" `Quick test_sampling_counts_sum_to_observed;
          Alcotest.test_case "sparser with rate" `Quick test_sampling_sparser_with_rate;
          Alcotest.test_case "rejects bad rate" `Quick test_sampling_rejects_bad_rate;
          q prop_sampling_observed_bounded;
        ] );
      ( "anonymize",
        [
          Alcotest.test_case "full identity" `Quick test_anonymize_full_identity;
          Alcotest.test_case "coarse signs" `Quick test_anonymize_coarse_signs;
          Alcotest.test_case "outcome only" `Quick test_anonymize_outcome_only_strips_everything;
          Alcotest.test_case "monotone residual" `Quick test_anonymize_monotone_residual;
          q prop_anonymize_idempotent;
        ] );
    ]
