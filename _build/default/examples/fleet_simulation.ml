(* The §5 comparison as a runnable scenario: the same fleet and bug
   population under three quality-feedback loops —

   - softborg: full by-product recycling, automatic fixes, guidance;
   - wer:      WER-style crash buckets, human fixes after a threshold
               and development delay;
   - cbi:      sampled predicates + statistical isolation; the human
               is faster because the bug arrives localized.

   Run with: dune exec examples/fleet_simulation.exe *)

module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics
module Tabular = Softborg_util.Tabular

let () =
  print_endline "Fleet simulation: SoftBorg vs WER vs CBI on one buggy population";
  let runs =
    List.map
      (fun (name, config) ->
        let config = { config with Platform.duration = 1500.0; sample_interval = 300.0 } in
        (name, Platform.run config))
      (Scenario.three_way_comparison ())
  in
  (* Failure-rate trajectory per platform. *)
  let windows = List.map (fun (name, r) -> (name, Metrics.windows r.Platform.snapshots)) runs in
  let n_windows =
    List.fold_left (fun acc (_, ws) -> min acc (List.length ws)) max_int windows
  in
  let rows =
    List.init n_windows (fun i ->
        let w0 = List.nth (snd (List.hd windows)) i in
        Printf.sprintf "%.0f-%.0f" w0.Metrics.t_start w0.Metrics.t_end
        :: List.map
             (fun (_, ws) ->
               let w = List.nth ws i in
               Tabular.fmt_float ~decimals:4 w.Metrics.w_failure_rate)
             windows)
  in
  Tabular.print ~title:"User-visible failure rate per window"
    (Tabular.column "window"
    :: List.map (fun (name, _) -> Tabular.column ~align:Tabular.Right name) windows)
    rows;
  print_newline ();
  let final_rows =
    List.map
      (fun (name, r) ->
        let f = r.Platform.final in
        [
          name;
          string_of_int f.Metrics.sessions;
          string_of_int f.Metrics.user_failures;
          Tabular.fmt_float ~decimals:5 (Metrics.failure_rate f);
          string_of_int f.Metrics.averted_crashes;
          string_of_int f.Metrics.fixes_deployed;
          string_of_int f.Metrics.proofs_valid;
        ])
      runs
  in
  Tabular.print ~title:"Final totals"
    [
      Tabular.column "platform";
      Tabular.column ~align:Tabular.Right "sessions";
      Tabular.column ~align:Tabular.Right "failures";
      Tabular.column ~align:Tabular.Right "fail rate";
      Tabular.column ~align:Tabular.Right "averted";
      Tabular.column ~align:Tabular.Right "fixes";
      Tabular.column ~align:Tabular.Right "proofs";
    ]
    final_rows
