examples/deadlock_immunity.mli:
