examples/fleet_simulation.mli:
