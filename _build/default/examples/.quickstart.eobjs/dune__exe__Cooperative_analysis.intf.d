examples/cooperative_analysis.mli:
