examples/quickstart.ml: Format List Printf Softborg Softborg_hive Softborg_pod Softborg_prog Softborg_tree Softborg_util
