examples/fleet_simulation.ml: List Printf Softborg Softborg_util
