examples/quickstart.mli:
