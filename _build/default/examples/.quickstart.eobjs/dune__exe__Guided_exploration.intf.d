examples/guided_exploration.mli:
