(* Execution guidance: accelerated learning (paper §3.3, experiment E4).

   Under a realistic Zipf-skewed workload, the parser's crash inputs
   (7 / 13 / 5-mod-32) essentially never occur naturally: common paths
   saturate the execution tree early and the rare corner stays dark.
   With guidance, the hive notices the unexplored directions, asks the
   symbolic engine for inputs that reach them, steers a pod there, and
   finds (and fixes) the bug before any real user hits it.

   Run with: dune exec examples/guided_exploration.exe *)

module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics
module Corpus = Softborg_prog.Corpus
module Hive = Softborg_hive.Hive
module Knowledge = Softborg_hive.Knowledge
module Fixgen = Softborg_hive.Fixgen
module Exec_tree = Softborg_tree.Exec_tree
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload
module Tabular = Softborg_util.Tabular

let run ~guidance =
  let config = Scenario.single_program Corpus.parser in
  let hive_config =
    { config.Platform.hive_config with Hive.guidance_max = (if guidance then 8 else 0) }
  in
  let config =
    {
      config with
      Platform.duration = 600.0;
      sample_interval = 100.0;
      hive_config;
      pod_config =
        {
          config.Platform.pod_config with
          Pod.workload = Workload.Zipf_inputs { lo = 0; hi = 191; exponent = 1.3 };
          arrival_rate = 2.0;
        };
    }
  in
  Platform.run config

let describe name report =
  let final = report.Platform.final in
  let k = List.hd report.Platform.knowledge in
  let fixes = List.filter Fixgen.is_deployable (Knowledge.fixes k) in
  [
    name;
    string_of_int final.Metrics.sessions;
    string_of_int final.Metrics.guided_runs;
    string_of_int (Exec_tree.n_distinct_paths (Knowledge.tree k));
    Tabular.fmt_pct (Exec_tree.completeness (Knowledge.tree k));
    string_of_int (List.length fixes);
    string_of_int final.Metrics.user_failures;
  ]

let () =
  print_endline "Guided exploration: finding the rare-path bug before users do";
  let natural = run ~guidance:false in
  let guided = run ~guidance:true in
  Tabular.print ~title:"Natural Zipf workload vs hive-guided exploration (600s, 6 pods)"
    [
      Tabular.column "mode";
      Tabular.column ~align:Tabular.Right "sessions";
      Tabular.column ~align:Tabular.Right "guided runs";
      Tabular.column ~align:Tabular.Right "tree paths";
      Tabular.column ~align:Tabular.Right "completeness";
      Tabular.column ~align:Tabular.Right "fixes";
      Tabular.column ~align:Tabular.Right "user failures";
    ]
    [ describe "natural" natural; describe "guided" guided ];
  print_newline ();
  let k = List.hd guided.Platform.knowledge in
  List.iter (fun fix -> Format.printf "guided run found: %a@." Fixgen.pp fix) (Knowledge.fixes k);
  if guided.Platform.final.Metrics.user_failures = 0 then
    print_endline "\nWith guidance, the bug was found and fixed before any user-visible failure."
