(* Quickstart: the whole SoftBorg loop on one buggy program.

   A small fleet of pods runs the `parser` corpus program (which
   crashes on a rare input combination).  Pods capture execution
   by-products, the hive merges them into a collective execution tree,
   synthesizes a fix once the crash is observed, pushes it back, and
   the failure stops reaching users.

   Run with: dune exec examples/quickstart.exe *)

module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics
module Corpus = Softborg_prog.Corpus
module Knowledge = Softborg_hive.Knowledge
module Fixgen = Softborg_hive.Fixgen
module Exec_tree = Softborg_tree.Exec_tree
module Tabular = Softborg_util.Tabular

let () =
  print_endline "SoftBorg quickstart: collective information recycling on `parser`";
  print_endline "";
  (* Uniform workload so the rare crash (inputs 7/13/5-mod-32) is hit
     within the demo's time budget even without guidance. *)
  let config = Scenario.single_program Corpus.parser in
  let config =
    {
      config with
      Platform.duration = 900.0;
      sample_interval = 100.0;
      pod_config =
        {
          config.Platform.pod_config with
          Softborg_pod.Pod.workload = Softborg_pod.Workload.Uniform_inputs { lo = 0; hi = 40 };
          arrival_rate = 2.0;
        };
    }
  in
  let report = Platform.run config in
  let rows =
    List.map
      (fun (w : Metrics.window) ->
        [
          Printf.sprintf "%.0f-%.0f" w.Metrics.t_start w.Metrics.t_end;
          string_of_int w.Metrics.w_sessions;
          string_of_int w.Metrics.w_failures;
          string_of_int w.Metrics.w_averted;
          Tabular.fmt_float ~decimals:4 w.Metrics.w_failure_rate;
        ])
      (Metrics.windows report.Platform.snapshots)
  in
  Tabular.print ~title:"Fleet health over time (failures stop reaching users after the fix)"
    [
      Tabular.column "window";
      Tabular.column ~align:Tabular.Right "sessions";
      Tabular.column ~align:Tabular.Right "failures";
      Tabular.column ~align:Tabular.Right "averted";
      Tabular.column ~align:Tabular.Right "fail rate";
    ]
    rows;
  print_newline ();
  List.iter
    (fun k ->
      Printf.printf "hive knowledge for %s:\n" (Knowledge.program k).Softborg_prog.Ir.name;
      Printf.printf "  traces ingested:  %d\n" (Knowledge.traces_ingested k);
      Printf.printf "  failures seen:    %d\n" (Knowledge.failures_observed k);
      Printf.printf "  tree: %d nodes, %d distinct paths, completeness %.2f\n"
        (Exec_tree.n_nodes (Knowledge.tree k))
        (Exec_tree.n_distinct_paths (Knowledge.tree k))
        (Exec_tree.completeness (Knowledge.tree k));
      List.iter
        (fun fix -> Format.printf "  fix: %a@." Fixgen.pp fix)
        (Knowledge.fixes k);
      List.iter
        (fun proof -> Format.printf "  %a@." Softborg_hive.Prover.pp proof)
        (Knowledge.proofs k))
    report.Platform.knowledge;
  let final = report.Platform.final in
  Printf.printf "\nfinal: %d sessions, %d user-visible failures, %d averted by fixes\n"
    final.Metrics.sessions final.Metrics.user_failures final.Metrics.averted_crashes;
  (* The hive "publishes" its per-program reliability report (paper §3). *)
  print_newline ();
  List.iter
    (fun k -> print_string (Softborg_hive.Report.render k))
    report.Platform.knowledge
