(* Deadlock immunity end to end (paper §3.3, after Jula et al. [16]).

   Phase 1: systematic schedule exploration shows the worker-pool
   corpus program deadlocks under some interleavings (a latent lock
   inversion).

   Phase 1b: the same schedules under immunity instrumentation stop
   deadlocking.

   Phase 2: a fleet runs the program in the wild; the hive mines the
   lock-order cycle from by-products, synthesizes deadlock-immunity
   instrumentation, pushes it to the pods, and the deadlock rate drops
   to zero — at the cost of a few deferred lock acquisitions.

   Run with: dune exec examples/deadlock_immunity.exe *)

module Corpus = Softborg_prog.Corpus
module Env = Softborg_exec.Env
module Outcome = Softborg_exec.Outcome
module Schedule_explore = Softborg_conc.Schedule_explore
module Immunity = Softborg_conc.Immunity
module Platform = Softborg.Platform
module Scenario = Softborg.Scenario
module Metrics = Softborg.Metrics
module Knowledge = Softborg_hive.Knowledge
module Fixgen = Softborg_hive.Fixgen
module Pod = Softborg_pod.Pod
module Workload = Softborg_pod.Workload
module Tabular = Softborg_util.Tabular

let make_env () = Env.make ~seed:3 ~inputs:[| 2 |] ()

let count_outcomes result =
  List.fold_left
    (fun (deadlocks, ok) (outcome, _) ->
      match outcome with
      | Outcome.Deadlock _ -> (deadlocks + 1, ok)
      | _ -> (deadlocks, ok + 1))
    (0, 0) result.Schedule_explore.outcomes

let () =
  print_endline "Phase 1: schedule exploration exposes the latent deadlock";
  let unprotected =
    Schedule_explore.explore ~max_runs:150 ~program:Corpus.worker_pool ~make_env ()
  in
  let deadlocks, clean = count_outcomes unprotected in
  Printf.printf "  %d distinct schedules explored: %d deadlock, %d complete\n"
    unprotected.Schedule_explore.distinct_schedules deadlocks clean;

  print_endline "\nPhase 1b: the same schedules under immunity instrumentation";
  let immunizer = Immunity.create ~patterns:[ [ 0; 1 ] ] in
  let protected_ =
    Schedule_explore.explore ~max_runs:150 ~hooks:(Immunity.hooks immunizer)
      ~program:Corpus.worker_pool ~make_env ()
  in
  let deadlocks_after, clean_after = count_outcomes protected_ in
  Printf.printf "  %d distinct schedules explored: %d deadlock, %d complete\n"
    protected_.Schedule_explore.distinct_schedules deadlocks_after clean_after;

  print_endline "\nPhase 2: the fleet learns immunity from collective by-products";
  let config = Scenario.single_program Corpus.worker_pool in
  let config =
    {
      config with
      Platform.duration = 1200.0;
      sample_interval = 150.0;
      n_pods = 8;
      pod_config =
        {
          config.Platform.pod_config with
          (* Even inputs arm the inversion; keep them common. *)
          Pod.workload = Workload.Uniform_inputs { lo = 0; hi = 7 };
          arrival_rate = 1.0;
          fault_probability = 0.0;
        };
    }
  in
  let report = Platform.run config in
  let rows =
    List.map
      (fun (w : Metrics.window) ->
        [
          Printf.sprintf "%.0f-%.0f" w.Metrics.t_start w.Metrics.t_end;
          string_of_int w.Metrics.w_sessions;
          string_of_int w.Metrics.w_failures;
        ])
      (Metrics.windows report.Platform.snapshots)
  in
  Tabular.print ~title:"Deadlocks experienced by users over time"
    [
      Tabular.column "window";
      Tabular.column ~align:Tabular.Right "sessions";
      Tabular.column ~align:Tabular.Right "deadlocks";
    ]
    rows;
  List.iter
    (fun k ->
      List.iter (fun fix -> Format.printf "  deployed: %a@." Fixgen.pp fix) (Knowledge.fixes k))
    report.Platform.knowledge;
  let final = report.Platform.final in
  Printf.printf
    "\nfinal: %d sessions, %d deadlocks reached users, %d lock acquisitions deferred (avoidance overhead %.4f/session)\n"
    final.Metrics.sessions final.Metrics.user_failures final.Metrics.deferred_acquisitions
    (float_of_int final.Metrics.deferred_acquisitions /. float_of_int (max 1 final.Metrics.sessions))
