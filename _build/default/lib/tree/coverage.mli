(** Coverage growth tracking.

    Experiments E2 and E4 plot how the collective execution tree grows
    as executions accumulate — naturally versus under hive guidance.
    This recorder takes periodic snapshots of tree statistics against
    the execution count. *)

type snapshot = {
  executions : int;
  distinct_paths : int;
  nodes : int;
  frontier_size : int;
  completeness : float;
}

type t

val create : unit -> t

val observe : t -> Exec_tree.t -> unit
(** Take a snapshot of the tree now. *)

val snapshots : t -> snapshot list
(** All snapshots, oldest first. *)

val executions_to_reach : t -> paths:int -> int option
(** First execution count at which [distinct_paths >= paths], if
    reached. *)

val pp_series : Format.formatter -> t -> unit
