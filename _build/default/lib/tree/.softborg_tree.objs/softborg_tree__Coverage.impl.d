lib/tree/coverage.ml: Exec_tree Format List Option
