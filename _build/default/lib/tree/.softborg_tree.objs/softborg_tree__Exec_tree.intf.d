lib/tree/exec_tree.mli: Softborg_exec Softborg_prog
