lib/tree/coverage.mli: Exec_tree Format
