lib/tree/exec_tree.ml: Bool Hashtbl Int List Map Option Set Softborg_exec Softborg_prog String
