module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome

(* Edge keys: (site, direction). *)
module Edge_key = struct
  type t = Ir.site * bool

  let compare (s1, d1) (s2, d2) =
    match Ir.site_compare s1 s2 with 0 -> Bool.compare d1 d2 | c -> c
end

module Edge_map = Map.Make (Edge_key)

module Site_key = struct
  type t = Ir.site

  let compare = Ir.site_compare
end

module Site_set = Set.Make (Site_key)
module Site_map = Map.Make (Site_key)

type node = {
  mutable edges : (node * int ref) Edge_map.t;  (* child, traversal count *)
  mutable infeasible : Edge_map.key list;  (* directions proven infeasible *)
  mutable hits : int;
  mutable terminal : (string * int) list;  (* outcome bucket -> count *)
}

type t = {
  root : node;
  mutable nodes : int;
  mutable executions : int;
  mutable distinct_paths : int;
}

let new_node () = { edges = Edge_map.empty; infeasible = []; hits = 0; terminal = [] }

let create () = { root = new_node (); nodes = 1; executions = 0; distinct_paths = 0 }

let bump_bucket assoc key =
  let rec loop = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest when String.equal k key -> (k, n + 1) :: rest
    | pair :: rest -> pair :: loop rest
  in
  loop assoc

type merge_stats = {
  shared_depth : int;
  new_nodes : int;
  new_path : bool;
}

let add_path t path outcome =
  t.executions <- t.executions + 1;
  let rec walk node remaining shared created =
    node.hits <- node.hits + 1;
    match remaining with
    | [] ->
      let bucket = Outcome.bucket_key outcome in
      let fresh_terminal = not (List.mem_assoc bucket node.terminal) in
      node.terminal <- bump_bucket node.terminal bucket;
      let new_path = created > 0 || fresh_terminal in
      if new_path then t.distinct_paths <- t.distinct_paths + 1;
      { shared_depth = shared; new_nodes = created; new_path }
    | decision :: rest -> (
      match Edge_map.find_opt decision node.edges with
      | Some (child, count) ->
        incr count;
        walk child rest (if created = 0 then shared + 1 else shared) created
      | None ->
        let child = new_node () in
        t.nodes <- t.nodes + 1;
        node.edges <- Edge_map.add decision (child, ref 1) node.edges;
        walk child rest shared (created + 1))
  in
  walk t.root path 0 0

let n_nodes t = t.nodes
let n_executions t = t.executions
let n_distinct_paths t = t.distinct_paths

let rec fold_nodes f acc node =
  let acc = f acc node in
  Edge_map.fold (fun _ (child, _) acc -> fold_nodes f acc child) node.edges acc

let n_edges t = fold_nodes (fun acc node -> acc + Edge_map.cardinal node.edges) 0 t.root

let outcome_buckets t =
  let table = Hashtbl.create 16 in
  ignore
    (fold_nodes
       (fun () node ->
         List.iter
           (fun (bucket, count) ->
             let prev = Option.value ~default:0 (Hashtbl.find_opt table bucket) in
             Hashtbl.replace table bucket (prev + count))
           node.terminal)
       () t.root);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

type gap = {
  prefix : (Ir.site * bool) list;
  site : Ir.site;
  missing : bool;
  hits : int;
}

(* The branch sites observed at a node, from its outgoing edges. *)
let sites_at node =
  Edge_map.fold (fun (site, _) _ acc -> Site_set.add site acc) node.edges Site_set.empty

let has_edge node site direction = Edge_map.mem (site, direction) node.edges

let marked_infeasible node site direction =
  List.exists (fun (s, d) -> Ir.site_equal s site && d = direction) node.infeasible

let gaps_at node prefix =
  Site_set.fold
    (fun site acc ->
      let missing direction =
        (not (has_edge node site direction)) && not (marked_infeasible node site direction)
      in
      let acc = if missing true then { prefix; site; missing = true; hits = node.hits } :: acc else acc in
      if missing false then { prefix; site; missing = false; hits = node.hits } :: acc else acc)
    (sites_at node) []

let frontier t =
  let rec collect node prefix_rev acc =
    let acc = gaps_at node (List.rev prefix_rev) @ acc in
    Edge_map.fold
      (fun decision (child, _) acc -> collect child (decision :: prefix_rev) acc)
      node.edges acc
  in
  collect t.root [] [] |> List.sort (fun a b -> Int.compare b.hits a.hits)

let find_node t prefix =
  let rec walk node = function
    | [] -> Some node
    | decision :: rest -> (
      match Edge_map.find_opt decision node.edges with
      | Some (child, _) -> walk child rest
      | None -> None)
  in
  walk t.root prefix

let mark_infeasible t ~prefix ~site ~direction =
  match find_node t prefix with
  | None -> false
  | Some node ->
    if not (marked_infeasible node site direction) then
      node.infeasible <- (site, direction) :: node.infeasible;
    true

(* Direction-pair accounting: for every (node, observed site), each of
   the two directions is "closed" if explored or proven infeasible. *)
let direction_pairs t =
  fold_nodes
    (fun (closed, total) node ->
      Site_set.fold
        (fun site (closed, total) ->
          let closed_dir direction =
            has_edge node site direction || marked_infeasible node site direction
          in
          let closed = closed + (if closed_dir true then 1 else 0) + if closed_dir false then 1 else 0 in
          (closed, total + 2))
        (sites_at node) (closed, total))
    (0, 0) t.root

let completeness t =
  let closed, total = direction_pairs t in
  if total = 0 then 1.0 else float_of_int closed /. float_of_int total

let is_complete t =
  let closed, total = direction_pairs t in
  closed = total

let path_outcomes t =
  let rec collect node prefix_rev acc =
    let acc =
      List.fold_left
        (fun acc (bucket, count) -> (List.rev prefix_rev, bucket, count) :: acc)
        acc node.terminal
    in
    Edge_map.fold
      (fun decision (child, _) acc -> collect child (decision :: prefix_rev) acc)
      node.edges acc
  in
  List.rev (collect t.root [] [])

let depth t =
  let rec go node =
    Edge_map.fold (fun _ (child, _) acc -> max acc (1 + go child)) node.edges 0
  in
  go t.root
