module Rng = Softborg_util.Rng

type verdict =
  | V_sat
  | V_unsat
  | V_unknown

type run = {
  solver : string;
  verdict : verdict;
  steps : int;
}

type solver = {
  name : string;
  execute : Cnf.formula -> run;
}

let dpll_solver ?heuristic ~budget name =
  {
    name;
    execute =
      (fun formula ->
        let outcome = Dpll.solve ?heuristic ~budget formula in
        let verdict =
          match outcome.Dpll.verdict with
          | Dpll.Sat _ -> V_sat
          | Dpll.Unsat -> V_unsat
          | Dpll.Timeout -> V_unknown
        in
        { solver = name; verdict; steps = outcome.Dpll.steps });
  }

let walksat_solver ~budget ~seed name =
  {
    name;
    execute =
      (fun formula ->
        (* A fresh generator per instance keeps runs independent. *)
        let outcome = Walksat.solve ~budget ~rng:(Rng.create seed) formula in
        let verdict =
          match outcome.Walksat.verdict with
          | Walksat.Sat _ -> V_sat
          | Walksat.Timeout -> V_unknown
        in
        { solver = name; verdict; steps = outcome.Walksat.steps });
  }

let standard_three ~budget ~seed =
  [
    dpll_solver ~heuristic:Dpll.Max_occurrence ~budget "dpll-maxocc";
    (* Random branching is a genuinely different systematic profile:
       on uniform 3-SAT, Jeroslow–Wang degenerates to max-occurrence. *)
    dpll_solver ~heuristic:(Dpll.Random_branch (Rng.create (seed + 1))) ~budget "dpll-rand";
    walksat_solver ~budget ~seed "walksat";
  ]

type race_result = {
  verdict : verdict;
  winner : string option;
  wall_steps : int;
  resource_steps : int;
  runs : run list;
}

let race members formula =
  if members = [] then invalid_arg "Portfolio.race: empty portfolio";
  let runs = List.map (fun solver -> solver.execute formula) members in
  let deciders = List.filter (fun (r : run) -> r.verdict <> V_unknown) runs in
  match List.sort (fun (a : run) (b : run) -> Int.compare a.steps b.steps) deciders with
  | [] ->
    (* Nobody decided: the race runs until every member gives up. *)
    let wall = List.fold_left (fun acc r -> max acc r.steps) 0 runs in
    let resources = List.fold_left (fun acc r -> acc + r.steps) 0 runs in
    { verdict = V_unknown; winner = None; wall_steps = wall; resource_steps = resources; runs }
  | best :: _ ->
    let wall = best.steps in
    let resources = List.fold_left (fun acc r -> acc + min r.steps wall) 0 runs in
    { verdict = best.verdict; winner = Some best.solver; wall_steps = wall; resource_steps = resources; runs }

let speedup ~single_steps ~portfolio_steps =
  if portfolio_steps <= 0.0 then Float.nan else single_steps /. portfolio_steps
