(** Solver portfolios (paper §4).

    "Choosing the equities with the highest return is undecidable, so
    one invests in several in parallel."  A portfolio runs k
    heterogeneous SAT solvers on the same instance; the race ends when
    the first solver reaches a verdict.  The paper's preliminary
    result — a portfolio of three SAT solvers giving a 10× speedup in
    solving time for a 3× increase in resources — is reproduced by
    experiment E3 on top of this module.

    Costs are in solver {e steps} (clause examinations), the shared
    machine-independent unit: wall-clock of a parallel race is the
    winner's steps; resources consumed are the sum over members of
    the steps each had spent when the race ended. *)

module Rng := Softborg_util.Rng

type verdict =
  | V_sat
  | V_unsat
  | V_unknown  (** Budget exhausted with no decision. *)

type run = {
  solver : string;
  verdict : verdict;
  steps : int;
}

type solver = {
  name : string;
  execute : Cnf.formula -> run;
}

val dpll_solver : ?heuristic:Dpll.heuristic -> budget:int -> string -> solver
val walksat_solver : budget:int -> seed:int -> string -> solver

val standard_three : budget:int -> seed:int -> solver list
(** The paper's "three different SAT solvers": DPLL/max-occurrence,
    DPLL/random-branching, and WalkSAT — three genuinely different
    performance profiles. *)

type race_result = {
  verdict : verdict;
  winner : string option;  (** First solver to decide, if any. *)
  wall_steps : int;  (** Steps until the race ended. *)
  resource_steps : int;  (** Total steps spent across all members. *)
  runs : run list;
}

val race : solver list -> Cnf.formula -> race_result
(** Simulated parallel race: all members run on the instance; the
    winner is the decider with the fewest steps, and every member is
    charged [min(own steps, wall_steps)].
    @raise Invalid_argument on an empty portfolio. *)

val speedup : single_steps:float -> portfolio_steps:float -> float
(** Ratio, guarding against zero. *)
