(** A DPLL SAT solver: systematic backtracking search with unit
    propagation.

    One member of the cooperative prover's solver portfolio (paper §4).
    Two branching heuristics give two genuinely different performance
    profiles — part of the diversity the portfolio exploits.  Cost is
    counted in {e steps} (clause examinations), a machine-independent
    unit shared by every solver in the portfolio so that speedup and
    resource ratios are well-defined. *)

module Rng := Softborg_util.Rng

type heuristic =
  | Max_occurrence  (** Branch on the variable occurring most among open clauses. *)
  | Jeroslow_wang  (** Weight occurrences by 2^-|clause| (short clauses first). *)
  | Random_branch of Rng.t  (** Uniform over unassigned variables. *)

type verdict =
  | Sat of Cnf.assignment
  | Unsat
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;  (** Clause examinations performed. *)
}

val solve : ?heuristic:heuristic -> ?budget:int -> Cnf.formula -> outcome
(** Decide satisfiability within [budget] steps (default 10_000_000).
    A [Sat] assignment always satisfies the formula (checked by the
    test suite against brute force). *)
