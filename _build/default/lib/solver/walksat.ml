module Rng = Softborg_util.Rng

type verdict =
  | Sat of Cnf.assignment
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;
}

(* Incremental WalkSAT: per-clause true-literal counts maintained via
   occurrence lists, O(1) unsatisfied-clause sampling, and break counts
   computed from the counts — each clause touch costs one step, the
   same unit as DPLL's clause examinations. *)

type state = {
  clauses : int array array;
  occurrences : (int * int) list array;  (* var -> (clause idx, literal) *)
  assignment : bool array;
  n_true : int array;  (* clause -> currently-true literal count *)
  unsat : int array;  (* dense set of unsatisfied clause indices *)
  mutable unsat_size : int;
  position : int array;  (* clause -> index in [unsat], or -1 *)
  mutable steps : int;
}

let lit_true st lit = if lit > 0 then st.assignment.(lit) else not st.assignment.(-lit)

let unsat_add st c =
  if st.position.(c) < 0 then begin
    st.unsat.(st.unsat_size) <- c;
    st.position.(c) <- st.unsat_size;
    st.unsat_size <- st.unsat_size + 1
  end

let unsat_remove st c =
  let pos = st.position.(c) in
  if pos >= 0 then begin
    let last = st.unsat.(st.unsat_size - 1) in
    st.unsat.(pos) <- last;
    st.position.(last) <- pos;
    st.unsat_size <- st.unsat_size - 1;
    st.position.(c) <- -1
  end

let recount st =
  st.unsat_size <- 0;
  Array.fill st.position 0 (Array.length st.position) (-1);
  Array.iteri
    (fun c clause ->
      st.steps <- st.steps + 1;
      let trues = Array.fold_left (fun acc lit -> if lit_true st lit then acc + 1 else acc) 0 clause in
      st.n_true.(c) <- trues;
      if trues = 0 then unsat_add st c)
    st.clauses

let flip st v =
  st.assignment.(v) <- not st.assignment.(v);
  List.iter
    (fun (c, lit) ->
      st.steps <- st.steps + 1;
      if lit_true st lit then begin
        st.n_true.(c) <- st.n_true.(c) + 1;
        if st.n_true.(c) = 1 then unsat_remove st c
      end
      else begin
        st.n_true.(c) <- st.n_true.(c) - 1;
        if st.n_true.(c) = 0 then unsat_add st c
      end)
    st.occurrences.(v)

(* Clauses this variable would break: those where its literal is the
   only true one. *)
let break_count st v =
  List.fold_left
    (fun acc (c, lit) ->
      st.steps <- st.steps + 1;
      if lit_true st lit && st.n_true.(c) = 1 then acc + 1 else acc)
    0 st.occurrences.(v)

let solve ?(noise = 0.5) ?(budget = 10_000_000) ~rng formula =
  let clauses = Array.of_list (List.map Array.of_list formula.Cnf.clauses) in
  let n = formula.Cnf.n_vars in
  let m = Array.length clauses in
  if m = 0 then { verdict = Sat (Array.make (n + 1) false); steps = 0 }
  else begin
    let occurrences = Array.make (n + 1) [] in
    Array.iteri
      (fun c clause ->
        Array.iter
          (fun lit ->
            let v = abs lit in
            occurrences.(v) <- (c, lit) :: occurrences.(v))
          clause)
      clauses;
    let st =
      {
        clauses;
        occurrences;
        assignment = Array.make (n + 1) false;
        n_true = Array.make m 0;
        unsat = Array.make m 0;
        unsat_size = 0;
        position = Array.make m (-1);
        steps = 0;
      }
    in
    let randomize () =
      for v = 1 to n do
        st.assignment.(v) <- Rng.bool rng
      done;
      recount st
    in
    randomize ();
    let restart_period = max 10_000 (100 * n) in
    let rec loop flips =
      if st.unsat_size = 0 then { verdict = Sat (Array.copy st.assignment); steps = st.steps }
      else if st.steps > budget then { verdict = Timeout; steps = st.steps }
      else begin
        if flips > 0 && flips mod restart_period = 0 then randomize ();
        if st.unsat_size > 0 then begin
          let clause = st.clauses.(st.unsat.(Rng.int rng st.unsat_size)) in
          let v =
            if Rng.bernoulli rng noise then abs clause.(Rng.int rng (Array.length clause))
            else begin
              (* Greedy: flip the variable breaking the fewest clauses. *)
              let best = ref (abs clause.(0)) and best_break = ref max_int in
              Array.iter
                (fun lit ->
                  let b = break_count st (abs lit) in
                  if b < !best_break then begin
                    best := abs lit;
                    best_break := b
                  end)
                clause;
              !best
            end
          in
          flip st v
        end;
        loop (flips + 1)
      end
    in
    loop 0
  end
