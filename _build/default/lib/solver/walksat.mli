(** WalkSAT: stochastic local search for SAT.

    The portfolio's incomplete member (paper §4): it cannot prove
    unsatisfiability, but on loosely-constrained satisfiable instances
    it typically finds a model orders of magnitude faster than
    systematic search — exactly the performance diversity portfolio
    theory wants ("each solver is fast on some path constraints but
    slow on others"). *)

module Rng := Softborg_util.Rng

type verdict =
  | Sat of Cnf.assignment
  | Timeout  (** No model found within budget (says nothing about UNSAT). *)

type outcome = {
  verdict : verdict;
  steps : int;  (** Clause examinations performed. *)
}

val solve :
  ?noise:float -> ?budget:int -> rng:Rng.t -> Cnf.formula -> outcome
(** Local search with random-walk probability [noise] (default 0.5)
    until a model is found or [budget] steps (default 10_000_000) are
    spent.  Restarts from a fresh random assignment periodically. *)
