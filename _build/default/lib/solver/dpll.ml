module Rng = Softborg_util.Rng

type heuristic =
  | Max_occurrence
  | Jeroslow_wang
  | Random_branch of Rng.t

type verdict =
  | Sat of Cnf.assignment
  | Unsat
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;
}

type assign_state =
  | Unset
  | True_at of int  (* decision level *)
  | False_at of int

exception Out_of_budget

let solve ?(heuristic = Max_occurrence) ?(budget = 10_000_000) formula =
  let clauses = Array.of_list (List.map Array.of_list formula.Cnf.clauses) in
  let n = formula.Cnf.n_vars in
  let state = Array.make (n + 1) Unset in
  let steps = ref 0 in
  let spend cost =
    steps := !steps + cost;
    if !steps > budget then raise Out_of_budget
  in
  let value lit =
    match state.(abs lit) with
    | Unset -> None
    | True_at _ -> Some (lit > 0)
    | False_at _ -> Some (lit < 0)
  in
  let assign lit level = state.(abs lit) <- (if lit > 0 then True_at level else False_at level) in
  let unassign_level level =
    for v = 1 to n do
      match state.(v) with
      | True_at l | False_at l -> if l >= level then state.(v) <- Unset
      | Unset -> ()
    done
  in
  (* Scan all clauses once: detect conflicts and collect unit literals.
     Returns `Conflict, `Units of literals, or `Stable. *)
  let scan () =
    let units = ref [] in
    let conflict = ref false in
    Array.iter
      (fun clause ->
        if not !conflict then begin
          spend 1;
          let satisfied = ref false in
          let unassigned = ref [] in
          Array.iter
            (fun lit ->
              match value lit with
              | Some true -> satisfied := true
              | Some false -> ()
              | None -> unassigned := lit :: !unassigned)
            clause;
          if not !satisfied then
            match !unassigned with
            | [] -> conflict := true
            | [ lit ] -> units := lit :: !units
            | _ -> ()
        end)
      clauses;
    if !conflict then `Conflict else match !units with [] -> `Stable | lits -> `Units lits
  in
  (* Unit propagation at [level] until fixpoint. *)
  let rec propagate level =
    match scan () with
    | `Conflict -> false
    | `Stable -> true
    | `Units lits ->
      let progressed = ref false in
      let ok = ref true in
      List.iter
        (fun lit ->
          match value lit with
          | None ->
            assign lit level;
            progressed := true
          | Some true -> ()
          | Some false -> ok := false)
        lits;
      if not !ok then false
      else if !progressed then propagate level
      else true
  in
  let pick_branch_variable () =
    match heuristic with
    | Random_branch rng ->
      let candidates = ref [] in
      for v = 1 to n do
        if state.(v) = Unset then candidates := v :: !candidates
      done;
      (match !candidates with
      | [] -> None
      | vs -> Some (Rng.choice rng (Array.of_list vs)))
    | Max_occurrence | Jeroslow_wang ->
      let score = Array.make (n + 1) 0.0 in
      Array.iter
        (fun clause ->
          spend 1;
          let satisfied = Array.exists (fun lit -> value lit = Some true) clause in
          if not satisfied then begin
            let weight =
              match heuristic with
              | Jeroslow_wang -> Float.pow 2.0 (-.float_of_int (Array.length clause))
              | Max_occurrence | Random_branch _ -> 1.0
            in
            Array.iter
              (fun lit -> if value lit = None then score.(abs lit) <- score.(abs lit) +. weight)
              clause
          end)
        clauses;
      let best = ref 0 and best_score = ref (-1.0) in
      for v = 1 to n do
        if state.(v) = Unset && score.(v) > !best_score then begin
          best := v;
          best_score := score.(v)
        end
      done;
      if !best = 0 then None else Some !best
  in
  let all_satisfied () =
    Array.for_all
      (fun clause ->
        spend 1;
        Array.exists (fun lit -> value lit = Some true) clause)
      clauses
  in
  let rec search level =
    if not (propagate level) then false
    else if all_satisfied () then true
    else
      match pick_branch_variable () with
      | None -> all_satisfied ()
      | Some v ->
        let try_phase phase =
          assign (if phase then v else -v) (level + 1);
          if search (level + 1) then true
          else begin
            unassign_level (level + 1);
            false
          end
        in
        try_phase true || try_phase false
  in
  match search 0 with
  | true ->
    let assignment = Array.make (n + 1) false in
    for v = 1 to n do
      assignment.(v) <- (match state.(v) with True_at _ -> true | False_at _ | Unset -> false)
    done;
    { verdict = Sat assignment; steps = !steps }
  | false -> { verdict = Unsat; steps = !steps }
  | exception Out_of_budget -> { verdict = Timeout; steps = !steps }
