type verdict =
  | Sat of Cnf.assignment
  | Unsat

let check_size formula =
  if formula.Cnf.n_vars > 22 then
    invalid_arg (Printf.sprintf "Brute: %d variables is too many" formula.Cnf.n_vars)

let assignment_of_mask n mask =
  let a = Array.make (n + 1) false in
  for v = 1 to n do
    a.(v) <- mask land (1 lsl (v - 1)) <> 0
  done;
  a

let solve formula =
  check_size formula;
  let n = formula.Cnf.n_vars in
  let rec loop mask =
    if mask >= 1 lsl n then Unsat
    else
      let a = assignment_of_mask n mask in
      if Cnf.eval a formula then Sat a else loop (mask + 1)
  in
  loop 0

let count_models formula =
  check_size formula;
  let n = formula.Cnf.n_vars in
  let count = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    if Cnf.eval (assignment_of_mask n mask) formula then incr count
  done;
  !count
