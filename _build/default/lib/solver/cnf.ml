type literal = int
type clause = literal list

type formula = {
  n_vars : int;
  clauses : clause list;
}

let make ~n_vars clauses =
  List.iter
    (fun clause ->
      List.iter
        (fun lit ->
          if lit = 0 || abs lit > n_vars then
            invalid_arg (Printf.sprintf "Cnf.make: literal %d out of range (n_vars=%d)" lit n_vars))
        clause)
    clauses;
  { n_vars; clauses }

type assignment = bool array

let eval_literal assignment lit = if lit > 0 then assignment.(lit) else not assignment.(-lit)
let eval_clause assignment clause = List.exists (eval_literal assignment) clause
let eval assignment formula = List.for_all (eval_clause assignment) formula.clauses
let n_clauses formula = List.length formula.clauses

let unsatisfied assignment formula =
  List.filter (fun clause -> not (eval_clause assignment clause)) formula.clauses

type bexpr =
  | Var of int
  | Const of bool
  | Not of bexpr
  | And of bexpr list
  | Or of bexpr list

let tseitin ~n_vars expr =
  let next = ref n_vars in
  let fresh () =
    incr next;
    !next
  in
  let clauses = ref [] in
  let emit clause = clauses := clause :: !clauses in
  (* Returns a literal equivalent to the subexpression. *)
  let rec encode = function
    | Var v ->
      if v < 1 || v > n_vars then invalid_arg (Printf.sprintf "Cnf.tseitin: variable %d" v);
      v
    | Const b ->
      let v = fresh () in
      emit [ (if b then v else -v) ];
      v
    | Not e -> -encode e
    | And es ->
      let lits = List.map encode es in
      let v = fresh () in
      (* v -> each lit; (all lits) -> v *)
      List.iter (fun lit -> emit [ -v; lit ]) lits;
      emit (v :: List.map (fun lit -> -lit) lits);
      v
    | Or es ->
      let lits = List.map encode es in
      let v = fresh () in
      (* lit -> v for each; v -> some lit *)
      List.iter (fun lit -> emit [ v; -lit ]) lits;
      emit (-v :: lits);
      v
  in
  let root = encode expr in
  emit [ root ];
  { n_vars = !next; clauses = List.rev !clauses }

let pp fmt formula =
  Format.fprintf fmt "cnf(vars=%d, clauses=%d)" formula.n_vars (n_clauses formula)
