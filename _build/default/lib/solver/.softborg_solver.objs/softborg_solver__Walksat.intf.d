lib/solver/walksat.mli: Cnf Softborg_util
