lib/solver/path_cond.mli: Format Softborg_prog
