lib/solver/interval.ml: Array Int List Path_cond Softborg_prog
