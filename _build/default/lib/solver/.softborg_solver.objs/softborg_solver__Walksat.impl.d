lib/solver/walksat.ml: Array Cnf List Softborg_util
