lib/solver/dpll.ml: Array Cnf Float List Softborg_util
