lib/solver/interval.mli: Path_cond
