lib/solver/cnf.mli: Format
