lib/solver/path_cond.ml: Array Format Int List Softborg_prog
