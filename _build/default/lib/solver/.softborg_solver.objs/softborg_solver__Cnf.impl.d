lib/solver/cnf.ml: Array Format List Printf
