lib/solver/brute.mli: Cnf
