lib/solver/dpll.mli: Cnf Softborg_util
