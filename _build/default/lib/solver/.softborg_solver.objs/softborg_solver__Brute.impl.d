lib/solver/brute.ml: Array Cnf Printf
