lib/solver/portfolio.mli: Cnf Dpll Softborg_util
