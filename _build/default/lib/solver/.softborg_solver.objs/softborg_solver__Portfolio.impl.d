lib/solver/portfolio.ml: Cnf Dpll Float Int List Softborg_util Walksat
