(** Propositional formulas in conjunctive normal form.

    The hive's symbolic analyses bottom out in satisfiability queries
    (paper §3.2: deciding branch feasibility "amounts to deciding
    propositional satisfiability").  This module is the shared
    representation for the SAT-solver portfolio of §4: variables are
    positive integers, literals are non-zero integers (negative =
    negated), clauses are literal lists. *)

type literal = int
(** Non-zero; [-v] is the negation of [v]. *)

type clause = literal list

type formula = {
  n_vars : int;  (** Variables are numbered 1..n_vars. *)
  clauses : clause list;
}

val make : n_vars:int -> clause list -> formula
(** @raise Invalid_argument on a literal of 0 or out of range. *)

type assignment = bool array
(** Index v holds the value of variable v; index 0 is unused. *)

val eval_clause : assignment -> clause -> bool
val eval : assignment -> formula -> bool

val n_clauses : formula -> int

val unsatisfied : assignment -> formula -> clause list
(** Clauses the assignment falsifies. *)

(** Boolean expressions, converted to CNF via the Tseitin transform. *)
type bexpr =
  | Var of int
  | Const of bool
  | Not of bexpr
  | And of bexpr list
  | Or of bexpr list

val tseitin : n_vars:int -> bexpr -> formula
(** [tseitin ~n_vars e] is an equisatisfiable CNF over variables
    [1..n_vars] plus fresh auxiliaries; a model of the CNF restricted
    to [1..n_vars] satisfies [e].
    @raise Invalid_argument if [e] mentions a variable above
    [n_vars] or below 1. *)

val pp : Format.formatter -> formula -> unit
