(** Interval-propagation solver for path conditions.

    The portfolio's third profile (paper §4): an incomplete-but-fast
    bound propagator strengthened to a complete decision procedure over
    a finite input domain by backtracking enumeration with interval
    pruning and constraint-derived value ordering.  This is also the
    model generator behind execution guidance and frontier-feasibility
    checks: a [Sat] verdict carries concrete inputs that drive a pod
    down the wanted path (paper §3.3). *)

type verdict =
  | Sat of int array  (** A model: one value per input slot. *)
  | Unsat  (** No model within the given domain. *)
  | Timeout

type outcome = {
  verdict : verdict;
  steps : int;  (** Constraint evaluations performed. *)
}

val solve :
  ?budget:int ->
  domain:int * int ->
  n_inputs:int ->
  Path_cond.t ->
  outcome
(** Decide whether some input vector in [domain]^n_inputs satisfies
    the path condition (default budget 2_000_000 steps).  Complete
    relative to the domain: [Unsat] means no model exists with every
    input inside [domain].
    @raise Invalid_argument on an empty domain, negative [n_inputs],
    or a path condition mentioning program variables. *)

val check_interval_only : domain:int * int -> n_inputs:int -> Path_cond.t -> [ `Feasible | `Infeasible | `Unknown ]
(** Pure bound propagation, no search: cheap and sound ([`Infeasible]
    is definitive) but incomplete ([`Feasible] here means "not
    refuted"). *)
