(** Brute-force SAT by truth-table enumeration.

    Reference oracle for the test suite only: DPLL and WalkSAT verdicts
    are checked against it on small formulas. *)

type verdict =
  | Sat of Cnf.assignment
  | Unsat

val solve : Cnf.formula -> verdict
(** @raise Invalid_argument if the formula has more than 22 variables
    (enumeration would be unreasonable). *)

val count_models : Cnf.formula -> int
(** Number of satisfying assignments (same variable bound). *)
