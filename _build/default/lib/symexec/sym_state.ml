module Ir = Softborg_prog.Ir

type value =
  | Concrete of int
  | Symbolic of Ir.expr

let const n = Concrete n
let symbol i = Symbolic (Ir.Input i)
let is_concrete = function Concrete _ -> true | Symbolic _ -> false
let to_expr = function Concrete n -> Ir.Const n | Symbolic e -> e

type crash =
  | Sym_div_by_zero
  | Sym_assert_failure of string

type eval_result =
  | Value of value
  | Trap of crash
  | Guarded of { guard : Ir.expr; on_zero : crash; value : value }

let of_bool b = if b then 1 else 0
let truthy n = n <> 0

let eval_unop op v =
  match (op, v) with
  | Ir.Neg, Concrete n -> Concrete (-n)
  | Ir.Not, Concrete n -> Concrete (of_bool (not (truthy n)))
  | (Ir.Neg | Ir.Not), Symbolic e -> Symbolic (Ir.Unop (op, e))

(* Light algebraic simplification: constant folding plus arithmetic
   identities that keep path-condition expressions small. *)
let simplify_binop op a b =
  match (op, a, b) with
  | Ir.Add, e, Ir.Const 0 | Ir.Add, Ir.Const 0, e -> e
  | Ir.Sub, e, Ir.Const 0 -> e
  | Ir.Mul, _, Ir.Const 0 | Ir.Mul, Ir.Const 0, _ -> Ir.Const 0
  | Ir.Mul, e, Ir.Const 1 | Ir.Mul, Ir.Const 1, e -> e
  | Ir.And, e, Ir.Const 1 | Ir.And, Ir.Const 1, e -> e
  | Ir.And, _, Ir.Const 0 | Ir.And, Ir.Const 0, _ -> Ir.Const 0
  | Ir.Or, e, Ir.Const 0 | Ir.Or, Ir.Const 0, e -> e
  | _ -> Ir.Binop (op, a, b)

let concrete_binop op x y =
  match op with
  | Ir.Add -> Some (x + y)
  | Ir.Sub -> Some (x - y)
  | Ir.Mul -> Some (x * y)
  | Ir.Div -> if y = 0 then None else Some (x / y)
  | Ir.Mod -> if y = 0 then None else Some (x mod y)
  | Ir.Eq -> Some (of_bool (x = y))
  | Ir.Ne -> Some (of_bool (x <> y))
  | Ir.Lt -> Some (of_bool (x < y))
  | Ir.Le -> Some (of_bool (x <= y))
  | Ir.Gt -> Some (of_bool (x > y))
  | Ir.Ge -> Some (of_bool (x >= y))
  | Ir.And -> Some (of_bool (truthy x && truthy y))
  | Ir.Or -> Some (of_bool (truthy x || truthy y))

let eval_binop op a b =
  match (a, b) with
  | Concrete x, Concrete y -> (
    match concrete_binop op x y with
    | Some v -> Value (Concrete v)
    | None -> Trap Sym_div_by_zero)
  | _ -> (
    let ea = to_expr a and eb = to_expr b in
    match op with
    | Ir.Div | Ir.Mod -> (
      match b with
      | Concrete 0 -> Trap Sym_div_by_zero
      | Concrete _ -> Value (Symbolic (simplify_binop op ea eb))
      | Symbolic guard ->
        Guarded { guard; on_zero = Sym_div_by_zero; value = Symbolic (simplify_binop op ea eb) })
    | Ir.Add | Ir.Sub | Ir.Mul | Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.And | Ir.Or
      ->
      Value (Symbolic (simplify_binop op ea eb)))

let truth = function
  | Concrete n -> Some (truthy n)
  | Symbolic _ -> None

let pp fmt = function
  | Concrete n -> Format.pp_print_int fmt n
  | Symbolic e -> Format.fprintf fmt "sym(%a)" Ir.pp_expr e
