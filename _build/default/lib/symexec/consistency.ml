type level =
  | Strict
  | Local of { thread : int }

let level_name = function
  | Strict -> "strict"
  | Local { thread } -> Printf.sprintf "local(t%d)" thread

let pp fmt level = Format.pp_print_string fmt (level_name level)
