(** Symbolic values and their evaluation.

    The hive's symbolic analyses (paper §3.3–§4) run the same IR as the
    concrete interpreter but over values that are either concrete
    integers or expressions over {e symbols}.  Symbols are numbered
    like extra input slots: real program inputs keep their indices, and
    fresh symbols (system-call results; havoced globals under relaxed
    consistency) are allocated above [n_inputs], so a path condition
    over symbols is directly a {!Softborg_solver.Path_cond.t}. *)

module Ir := Softborg_prog.Ir

type value =
  | Concrete of int
  | Symbolic of Ir.expr  (** Over [Input]/[Const]/operators only. *)

val const : int -> value
val symbol : int -> value
(** [symbol i] is the i-th symbol (an [Input i] expression). *)

val is_concrete : value -> bool

val to_expr : value -> Ir.expr

type crash =
  | Sym_div_by_zero
  | Sym_assert_failure of string

(** Evaluating an operator can succeed, trap concretely, or
    {e conditionally} trap: dividing by a symbolic value yields the
    quotient plus the zero-divisor condition the explorer must fork
    on. *)
type eval_result =
  | Value of value
  | Trap of crash
  | Guarded of { guard : Ir.expr; on_zero : crash; value : value }
      (** [guard] is the divisor expression: if it evaluates to zero
          the operation traps with [on_zero]; otherwise the result is
          [value]. *)

val eval_unop : Ir.unop -> value -> value

val eval_binop : Ir.binop -> value -> value -> eval_result
(** Constant-folds when both operands are concrete (including the
    trap on a concrete zero divisor); otherwise builds a simplified
    symbolic expression. *)

val truth : value -> bool option
(** [Some b] when the value's truthiness is decided (concrete), [None]
    when symbolic. *)

val pp : Format.formatter -> value -> unit
