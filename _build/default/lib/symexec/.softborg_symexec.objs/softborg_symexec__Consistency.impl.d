lib/symexec/consistency.ml: Format Printf
