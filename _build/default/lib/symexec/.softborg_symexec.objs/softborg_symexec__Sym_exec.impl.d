lib/symexec/sym_exec.ml: Array Consistency List Map Softborg_exec Softborg_prog Softborg_solver String Sym_state
