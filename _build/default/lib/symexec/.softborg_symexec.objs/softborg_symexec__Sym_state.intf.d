lib/symexec/sym_state.mli: Format Softborg_prog
