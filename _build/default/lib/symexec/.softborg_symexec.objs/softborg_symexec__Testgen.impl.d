lib/symexec/testgen.ml: Array Int List Softborg_exec Softborg_prog Sym_exec
