lib/symexec/sym_exec.mli: Consistency Softborg_exec Softborg_prog Softborg_solver
