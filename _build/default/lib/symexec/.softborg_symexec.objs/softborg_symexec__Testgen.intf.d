lib/symexec/testgen.mli: Softborg_exec Softborg_prog Sym_exec
