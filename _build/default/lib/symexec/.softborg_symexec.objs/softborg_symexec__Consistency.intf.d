lib/symexec/consistency.mli: Format
