lib/symexec/sym_state.ml: Format Softborg_prog
