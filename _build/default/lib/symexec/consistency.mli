(** Execution-consistency levels (paper §4, after S2E).

    Strict consistency analyzes the whole program from its true initial
    state: every reported path is feasible in a real system-level
    execution.  Local consistency analyzes one thread (a "unit") in
    isolation with its shared environment {e havoced} — globals start
    as fresh symbols, over-approximating anything other threads could
    have done.  That over-approximation admits paths no real execution
    produces, but it is sound for universal properties: if the unit is
    correct for the superset of paths, it is correct for the feasible
    subset — and it is far cheaper, because the other threads'
    interleavings vanish from the search space. *)

type level =
  | Strict
  | Local of { thread : int }
      (** Analyze only [thread], havocing the globals it reads. *)

val level_name : level -> string

val pp : Format.formatter -> level -> unit
