type stmt =
  | S_assign of Ir.var * Ir.expr
  | S_if of Ir.expr * stmt list * stmt list
  | S_while of Ir.expr * stmt list
  | S_syscall of Ir.syscall_kind * Ir.var
  | S_lock of int
  | S_unlock of int
  | S_assert of Ir.expr * string
  | S_yield
  | S_halt

let assign v e = S_assign (v, e)
let if_ cond then_ else_ = S_if (cond, then_, else_)
let while_ cond body = S_while (cond, body)
let syscall kind dst = S_syscall (kind, dst)
let lock l = S_lock l
let unlock l = S_unlock l
let assert_ cond message = S_assert (cond, message)
let yield = S_yield
let halt = S_halt

let glob name = Ir.Var (Ir.Global name)
let local name = Ir.Var (Ir.Local name)
let const c = Ir.Const c
let input i = Ir.Input i
let gvar name = Ir.Global name
let lvar name = Ir.Local name

module Infix = struct
  let bin op a b = Ir.Binop (op, a, b)
  let ( +: ) = bin Ir.Add
  let ( -: ) = bin Ir.Sub
  let ( *: ) = bin Ir.Mul
  let ( /: ) = bin Ir.Div
  let ( %: ) = bin Ir.Mod
  let ( ==: ) = bin Ir.Eq
  let ( <>: ) = bin Ir.Ne
  let ( <: ) = bin Ir.Lt
  let ( <=: ) = bin Ir.Le
  let ( >: ) = bin Ir.Gt
  let ( >=: ) = bin Ir.Ge
  let ( &&: ) = bin Ir.And
  let ( ||: ) = bin Ir.Or
  let not_ e = Ir.Unop (Ir.Not, e)
end

(* Compilation emits into a growable buffer of instructions; forward
   targets are emitted as placeholders and patched once known. *)
type emitter = { mutable instrs : Ir.instr array; mutable len : int }

let emitter () = { instrs = Array.make 16 Ir.Halt; len = 0 }

let emit em instr =
  if em.len = Array.length em.instrs then begin
    let grown = Array.make (2 * em.len) Ir.Halt in
    Array.blit em.instrs 0 grown 0 em.len;
    em.instrs <- grown
  end;
  em.instrs.(em.len) <- instr;
  em.len <- em.len + 1;
  em.len - 1

let patch em at instr = em.instrs.(at) <- instr

let rec compile_stmt em = function
  | S_assign (v, e) -> ignore (emit em (Ir.Assign (v, e)))
  | S_syscall (kind, dst) -> ignore (emit em (Ir.Syscall { kind; dst }))
  | S_lock l -> ignore (emit em (Ir.Lock l))
  | S_unlock l -> ignore (emit em (Ir.Unlock l))
  | S_assert (cond, message) -> ignore (emit em (Ir.Assert { cond; message }))
  | S_yield -> ignore (emit em Ir.Yield)
  | S_halt -> ignore (emit em Ir.Halt)
  | S_if (cond, then_, else_) ->
    let branch_at = emit em Ir.Halt in
    List.iter (compile_stmt em) then_;
    let jump_at = emit em Ir.Halt in
    let else_start = em.len in
    List.iter (compile_stmt em) else_;
    let end_pc = em.len in
    patch em branch_at (Ir.Branch { cond; if_true = branch_at + 1; if_false = else_start });
    patch em jump_at (Ir.Jump end_pc)
  | S_while (cond, body) ->
    let top = em.len in
    let branch_at = emit em Ir.Halt in
    List.iter (compile_stmt em) body;
    ignore (emit em (Ir.Jump top));
    let end_pc = em.len in
    patch em branch_at (Ir.Branch { cond; if_true = branch_at + 1; if_false = end_pc })

let compile_thread stmts =
  let em = emitter () in
  List.iter (compile_stmt em) stmts;
  ignore (emit em Ir.Halt);
  Array.sub em.instrs 0 em.len

let program ~name ?(globals = []) ?(n_inputs = 0) ?(n_locks = 0) bodies =
  let prog =
    {
      Ir.name;
      globals;
      n_inputs;
      n_locks;
      threads = Array.of_list (List.map compile_thread bodies);
    }
  in
  match Ir.validate prog with
  | Ok () -> prog
  | Error msg -> invalid_arg (Printf.sprintf "Build.program %s: %s" name msg)
