open Build
open Build.Infix

(* Figure 2 of the paper:

     void write(int p) {
       if (p < MAX) {
         if (p > 0) ... else { ... }
       } else {
         if (p > 3) close(p); else { ... }
       }
     }

   Input 0 is p; MAX = 100.  The "..." bodies are given distinct
   observable effects so paths are distinguishable. *)
let fig2_write =
  program ~name:"fig2-write" ~n_inputs:1
    [
      [
        assign (lvar "p") (input 0);
        if_
          (local "p" <: const 100)
          [
            if_
              (local "p" >: const 0)
              [ assign (lvar "work") (local "p" *: const 2) ]
              [ assign (lvar "work") (const 0 -: local "p") ];
          ]
          [
            if_
              (local "p" >: const 3)
              [ syscall Ir.Sys_write (lvar "closed") ]
              [ assign (lvar "work") (const 3) ];
          ];
      ];
    ]

let file_copy =
  program ~name:"file-copy" ~n_inputs:2
    [
      [
        (* Source open is checked... *)
        syscall Ir.Sys_open (lvar "src");
        if_
          (local "src" >=: const 0)
          [
            (* ...but the destination open is not: a fault here makes
               dst = -1 and dst + 1 = 0, crashing the progress
               computation below (division by zero). *)
            syscall Ir.Sys_open (lvar "dst");
            assign (lvar "chunks") (input 0 %: const 8);
            while_
              (local "chunks" >: const 0)
              [
                syscall Ir.Sys_read (lvar "buf");
                if_
                  (local "buf" >=: const 0)
                  [
                    syscall Ir.Sys_write (lvar "written");
                    assign (lvar "progress") (local "written" /: (local "dst" +: const 1));
                  ]
                  [ assign (lvar "chunks") (const 1) ];
                assign (lvar "chunks") (local "chunks" -: const 1);
              ];
          ]
          [ assign (lvar "status") (const 0 -: const 1) ];
      ];
    ]

let worker_pool =
  program ~name:"worker-pool" ~globals:[ "jobs"; "results" ] ~n_inputs:1 ~n_locks:2
    [
      [
        (* Main thread seeds the job queue. *)
        assign (gvar "jobs") (input 0 %: const 4 +: const 1);
      ];
      [
        (* Worker A: jobs lock then results lock. *)
        if_
          (input 0 %: const 2 ==: const 0)
          [
            lock 0;
            yield;
            lock 1;
            assign (gvar "results") (glob "results" +: glob "jobs");
            unlock 1;
            unlock 0;
          ]
          [];
      ];
      [
        (* Worker B: results lock then jobs lock — the inversion. *)
        if_
          (input 0 %: const 2 ==: const 0)
          [
            lock 1;
            yield;
            lock 0;
            assign (gvar "jobs") (glob "jobs" -: const 1);
            unlock 0;
            unlock 1;
          ]
          [];
      ];
    ]

let racy_counter =
  let increment done_flag =
    [
      assign (lvar "tmp") (glob "counter");
      yield;
      assign (lvar "tmp") (local "tmp" +: const 1);
      assign (gvar "counter") (local "tmp");
      assign (gvar done_flag) (const 1);
    ]
  in
  program ~name:"racy-counter" ~globals:[ "counter"; "done_a"; "done_b" ]
    [
      [ assign (gvar "counter") (const 0) ];
      increment "done_a";
      increment "done_b";
      [
        yield;
        yield;
        yield;
        yield;
        assert_
          (glob "done_a" ==: const 0 ||: (glob "done_b" ==: const 0) ||: (glob "counter" ==: const 2))
          "lost update on shared counter";
      ];
    ]

let parser =
  program ~name:"parser" ~n_inputs:3
    [
      [
        assign (lvar "tok") (input 0 %: const 16);
        if_
          (local "tok" ==: const 7)
          [
            assign (lvar "arg") (input 1 %: const 16);
            if_
              (local "arg" ==: const 13)
              [
                assign (lvar "len") (input 2 %: const 32);
                if_
                  (local "len" ==: const 5)
                  [ assert_ (const 0) "parser chokes on token 7 / arg 13 / len 5" ]
                  [ assign (lvar "consumed") (local "len") ];
              ]
              [ assign (lvar "consumed") (local "arg") ];
          ]
          [
            if_
              (local "tok" <: const 4)
              [ assign (lvar "consumed") (local "tok" *: const 3) ]
              [ assign (lvar "consumed") (local "tok" +: const 1) ];
          ];
      ];
    ]

let parser_trigger = [| 7; 13; 5 |]

(* Realistic control-flow mix: most branches are deterministic (fixed
   32-round mixing loop with a constant schedule), only three depend on
   inputs.  This is the program shape that makes paper §3.1's
   "record only input-dependent branches" saving large. *)
let checksum =
  program ~name:"checksum" ~n_inputs:2
    [
      [
        assign (lvar "acc") (input 0);
        assign (lvar "round") (const 32);
        while_
          (local "round" >: const 0)
          [
            (* Deterministic schedule: odd rounds mix, even rounds add
               the round counter; every fourth round decrements. *)
            if_
              (local "round" %: const 2 ==: const 1)
              [ assign (lvar "acc") ((local "acc" *: const 3) +: const 7) ]
              [ assign (lvar "acc") (local "acc" +: local "round") ];
            if_
              (local "round" %: const 4 ==: const 0)
              [ assign (lvar "acc") (local "acc" -: const 1) ]
              [];
            assign (lvar "round") (local "round" -: const 1);
          ];
        (* Only these depend on inputs. *)
        if_
          (local "acc" %: const 2 ==: const 0)
          [ assign (lvar "parity") (const 0) ]
          [ assign (lvar "parity") (const 1) ];
        if_
          (input 1 >: const 100)
          [ assign (lvar "mode") (const 2) ]
          [ assign (lvar "mode") (const 1) ];
      ];
    ]

(* A three-party transfer system with a three-lock deadlock cycle:
   each teller locks its source account then the destination, and the
   transfer ring 0→1→2→0 closes the cycle.  Exercises cycle detection
   and immunity beyond the two-lock case. *)
let bank_transfer =
  let teller ~src ~dst ~amount =
    [
      lock src;
      yield;
      lock dst;
      assign (gvar "total_moved") (glob "total_moved" +: const amount);
      unlock dst;
      unlock src;
    ]
  in
  program ~name:"bank-transfer" ~globals:[ "total_moved" ] ~n_inputs:1 ~n_locks:3
    [
      [ assign (gvar "total_moved") (const 0) ];
      teller ~src:0 ~dst:1 ~amount:10;
      teller ~src:1 ~dst:2 ~amount:20;
      teller ~src:2 ~dst:0 ~amount:30;
    ]

let all =
  [
    ("fig2-write", fig2_write);
    ("file-copy", file_copy);
    ("worker-pool", worker_pool);
    ("racy-counter", racy_counter);
    ("parser", parser);
    ("checksum", checksum);
    ("bank-transfer", bank_transfer);
  ]
