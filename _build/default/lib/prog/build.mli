(** Structured program construction.

    The IR is flat (absolute branch targets), which is hostile to
    hand-writing corpus programs and to the random generator.  This
    module provides structured statements ([if_]/[while_]/[seq]) that
    compile down to well-formed flat thread bodies with patched jump
    targets. *)

type stmt

val assign : Ir.var -> Ir.expr -> stmt
val if_ : Ir.expr -> stmt list -> stmt list -> stmt
val while_ : Ir.expr -> stmt list -> stmt
val syscall : Ir.syscall_kind -> Ir.var -> stmt
val lock : int -> stmt
val unlock : int -> stmt
val assert_ : Ir.expr -> string -> stmt
val yield : stmt
val halt : stmt

val glob : string -> Ir.expr
(** [glob "g"] reads global [g]. *)

val local : string -> Ir.expr
(** [local "x"] reads thread-local [x]. *)

val const : int -> Ir.expr
val input : int -> Ir.expr

val gvar : string -> Ir.var
val lvar : string -> Ir.var

(** Infix expression operators; open locally when building programs. *)
module Infix : sig
  val ( +: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( -: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( *: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( /: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( %: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( ==: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <>: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <=: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >=: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( &&: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( ||: ) : Ir.expr -> Ir.expr -> Ir.expr
  val not_ : Ir.expr -> Ir.expr
end

val compile_thread : stmt list -> Ir.instr array
(** Flatten one thread body; a trailing [Halt] is always appended. *)

val program :
  name:string ->
  ?globals:string list ->
  ?n_inputs:int ->
  ?n_locks:int ->
  stmt list list ->
  Ir.t
(** [program ~name bodies] compiles one structured body per thread.
    @raise Invalid_argument if the result fails {!Ir.validate}. *)
