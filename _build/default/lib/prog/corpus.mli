(** Hand-written corpus programs.

    Each mirrors a workload the paper uses to motivate SoftBorg:
    {!fig2_write} is the literal `write(int p)` example of Figure 2;
    the others exercise the bug classes the platform must learn to fix
    (environment-failure crashes, lock-order deadlocks, atomicity
    races, deep rare-path assertions). *)

val fig2_write : Ir.t
(** The paper's Figure 2 program: nested branches on [p < MAX],
    [p > 0], [p > 3], with a [close(p)] syscall on one path.  Input 0
    plays the role of [p]; MAX is 100.  Bug-free; used for execution-
    tree construction and proof experiments (E2, E11). *)

val file_copy : Ir.t
(** A file-copy utility: open source and destination, loop
    read→write.  The destination-open result is used unchecked, so an
    injected open fault crashes it — the paper's "short read /
    syscall fault" guidance target (E4). *)

val worker_pool : Ir.t
(** Two worker threads acquiring locks 0 and 1 in opposite orders
    under a shared guard — the deadlock-immunity workload (E6). *)

val racy_counter : Ir.t
(** Two increment threads doing unlocked read-modify-write on a shared
    counter plus a checker thread; fails under unlucky schedules. *)

val parser : Ir.t
(** Input-dependent token dispatch with a deeply-nested rare assertion
    failure (input 0 = 7 and input 1 = 13 and input 2 mod 32 = 5):
    the "rare corner case" guidance is meant to reach quickly. *)

val checksum : Ir.t
(** A 32-round mixing loop with a constant schedule: dozens of
    deterministic branches per run but only two input-dependent ones —
    the control-flow shape that makes recording only input-dependent
    branches cheap (paper §3.1; E2's ablation). *)

val bank_transfer : Ir.t
(** Three teller threads moving funds around a ring of three accounts,
    each locking source-then-destination: a three-lock deadlock cycle
    (0→1→2→0).  Exercises cycle mining and immunity beyond the
    two-lock inversion of {!worker_pool}. *)

val all : (string * Ir.t) list
(** Every corpus program, keyed by name. *)

val parser_trigger : int array
(** An input vector that triggers {!parser}'s planted assertion
    (ground truth for guidance experiments). *)
