(** Random program generation with seeded bug patterns.

    The paper's hypothesis is statistical — bug density across a
    population of programs drops as executions are recycled — so the
    evaluation needs a {e population} of distinct buggy programs.  The
    generator emits structurally random programs (nested branches over
    inputs, loops, syscalls, locks, threads) and plants bugs from the
    classic defect classes the paper discusses: rare-path assertion
    violations, crashes on unchecked environment failures, lock-order
    deadlocks, schedule-dependent atomicity violations, and rare-path
    hangs. *)

module Rng := Softborg_util.Rng

(** Bug classes that can be planted. *)
type bug_kind =
  | Rare_assert  (** Assertion that fails on a rare input predicate. *)
  | Unchecked_syscall  (** Crash when a syscall fault goes unchecked. *)
  | Deadlock_pair  (** Two threads acquiring two locks in opposite order. *)
  | Atomicity_race  (** Unlocked read-modify-write on a shared counter. *)
  | Div_by_zero  (** Division whose divisor is zero for rare inputs. *)
  | Hang_loop  (** Infinite loop entered on a rare input predicate. *)

val bug_kind_name : bug_kind -> string
val all_bug_kinds : bug_kind list

type params = {
  block_depth : int;  (** Max nesting depth of generated blocks. *)
  stmts_per_block : int;  (** Statements per block (upper bound). *)
  n_inputs : int;
  rare_modulus : int;
      (** Rare-path predicates have the form [in\[k\] mod rare_modulus = r];
          larger ⇒ rarer ⇒ harder to hit naturally (motivates guidance). *)
  bugs : bug_kind list;  (** Bugs to plant, in order. *)
}

val default_params : params

type planted = {
  kind : bug_kind;
  description : string;
  trigger_input : int option;
      (** Input slot involved in the trigger predicate, when the bug is
          input-triggered (None for purely schedule-triggered bugs). *)
  trigger_residue : int option;
      (** Residue [r] such that [in\[slot\] mod rare_modulus = r]
          triggers the bug. *)
}

val generate : Rng.t -> params -> Ir.t * planted list
(** [generate rng params] is a validated random program plus the ground
    truth of every planted bug (used by experiments to score detection
    and fixing, never shown to the hive). *)
