module Rng = Softborg_util.Rng
open Build
open Build.Infix

type bug_kind =
  | Rare_assert
  | Unchecked_syscall
  | Deadlock_pair
  | Atomicity_race
  | Div_by_zero
  | Hang_loop

let bug_kind_name = function
  | Rare_assert -> "rare-assert"
  | Unchecked_syscall -> "unchecked-syscall"
  | Deadlock_pair -> "deadlock"
  | Atomicity_race -> "atomicity-race"
  | Div_by_zero -> "div-by-zero"
  | Hang_loop -> "hang-loop"

let all_bug_kinds =
  [ Rare_assert; Unchecked_syscall; Deadlock_pair; Atomicity_race; Div_by_zero; Hang_loop ]

type params = {
  block_depth : int;
  stmts_per_block : int;
  n_inputs : int;
  rare_modulus : int;
  bugs : bug_kind list;
}

let default_params =
  { block_depth = 3; stmts_per_block = 4; n_inputs = 4; rare_modulus = 64; bugs = [ Rare_assert ] }

type planted = {
  kind : bug_kind;
  description : string;
  trigger_input : int option;
  trigger_residue : int option;
}

(* Fresh-name supply local to one generation run. *)
type gen_state = { rng : Rng.t; params : params; mutable next_var : int; mutable globals : string list }

let fresh_local g =
  g.next_var <- g.next_var + 1;
  Printf.sprintf "v%d" g.next_var

let declare_global g name = if not (List.mem name g.globals) then g.globals <- name :: g.globals

let random_input g = Rng.int g.rng g.params.n_inputs

(* Random side-effect-free expression over inputs, a given local, and
   constants.  Depth-bounded; division-safe (only by non-zero consts). *)
let rec random_expr g ~depth ~locals =
  if depth = 0 || Rng.bool g.rng then
    match Rng.int g.rng 3 with
    | 0 -> const (Rng.int_in g.rng (-8) 8)
    | 1 -> input (random_input g)
    | _ -> (
      match locals with
      | [] -> input (random_input g)
      | _ -> local (Rng.choice g.rng (Array.of_list locals)))
  else
    let a = random_expr g ~depth:(depth - 1) ~locals in
    let b = random_expr g ~depth:(depth - 1) ~locals in
    match Rng.int g.rng 5 with
    | 0 -> a +: b
    | 1 -> a -: b
    | 2 -> a *: const (Rng.int_in g.rng (-3) 3)
    | 3 -> a %: const (Rng.int_in g.rng 2 9)
    | _ -> a +: (b *: const 2)

let random_cond g ~locals =
  let a = random_expr g ~depth:1 ~locals in
  let threshold = const (Rng.int_in g.rng (-4) 12) in
  match Rng.int g.rng 4 with
  | 0 -> a <: threshold
  | 1 -> a >: threshold
  | 2 -> a %: const (Rng.int_in g.rng 2 5) ==: const 0
  | _ -> a <=: threshold

(* A bounded counting loop: always terminates, exercises repeated
   branch sites (loops make the execution tree deep, paper Fig. 2). *)
let counting_loop g ~locals ~body_of =
  let counter = fresh_local g in
  let bound = Rng.int_in g.rng 1 4 in
  [
    assign (lvar counter) (input (random_input g) %: const (bound + 1));
    while_
      (local counter >: const 0)
      (body_of (counter :: locals) @ [ assign (lvar counter) (local counter -: const 1) ]);
  ]

let rec random_block g ~depth ~locals =
  let n = 1 + Rng.int g.rng g.params.stmts_per_block in
  List.concat
    (List.init n (fun _ ->
         match Rng.int g.rng (if depth > 0 then 6 else 3) with
         | 0 | 1 ->
           let v = fresh_local g in
           [ assign (lvar v) (random_expr g ~depth:2 ~locals) ]
         | 2 ->
           let v = fresh_local g in
           let kind =
             Rng.choice g.rng [| Ir.Sys_read; Ir.Sys_open; Ir.Sys_write; Ir.Sys_net; Ir.Sys_time |]
           in
           (* Well-behaved code checks the result before use. *)
           [
             syscall kind (lvar v);
             if_ (local v >=: const 0) [ assign (lvar v) (local v +: const 1) ] [ assign (lvar v) (const 0) ];
           ]
         | 3 ->
           [
             if_ (random_cond g ~locals)
               (random_block g ~depth:(depth - 1) ~locals)
               (random_block g ~depth:(depth - 1) ~locals);
           ]
         | 4 -> counting_loop g ~locals ~body_of:(fun locals -> random_block g ~depth:(depth - 1) ~locals)
         | _ ->
           let v = fresh_local g in
           [ assign (lvar v) (random_expr g ~depth:2 ~locals) ]))

(* ---- Bug payloads ------------------------------------------------- *)

(* Wrap a payload under a rare input predicate in[slot] mod m = r. *)
let rare_guard g payload =
  let slot = random_input g in
  let m = g.params.rare_modulus in
  let residue = Rng.int g.rng m in
  let stmts = [ if_ (input slot %: const m ==: const residue) payload [] ] in
  (stmts, slot, residue)

let plant_main_thread_bug g kind =
  match kind with
  | Rare_assert ->
    let stmts, slot, residue =
      rare_guard g [ assert_ (const 0) "planted rare-path assertion" ]
    in
    ( stmts,
      {
        kind;
        description = Printf.sprintf "assert fails when in[%d] %% %d = %d" slot g.params.rare_modulus residue;
        trigger_input = Some slot;
        trigger_residue = Some residue;
      } )
  | Div_by_zero ->
    let slot = random_input g in
    let m = g.params.rare_modulus in
    let residue = Rng.int g.rng m in
    let v = fresh_local g in
    (* Divisor is zero exactly when in[slot] mod m = residue. *)
    let stmts = [ assign (lvar v) (const 100 /: ((input slot %: const m) -: const residue)) ] in
    ( stmts,
      {
        kind;
        description = Printf.sprintf "division by zero when in[%d] %% %d = %d" slot m residue;
        trigger_input = Some slot;
        trigger_residue = Some residue;
      } )
  | Hang_loop ->
    let payload = [ while_ (const 1) [ yield ] ] in
    let stmts, slot, residue = rare_guard g payload in
    ( stmts,
      {
        kind;
        description = Printf.sprintf "infinite loop when in[%d] %% %d = %d" slot g.params.rare_modulus residue;
        trigger_input = Some slot;
        trigger_residue = Some residue;
      } )
  | Unchecked_syscall ->
    let v = fresh_local g in
    let sink = fresh_local g in
    (* The missing error check: a faulted syscall returns -1 and the
       result is used as a divisor offset, crashing on the fault path. *)
    let stmts =
      [ syscall Ir.Sys_open (lvar v); assign (lvar sink) (const 100 /: (local v +: const 1)) ]
    in
    ( stmts,
      {
        kind;
        description = "crash when open() fault goes unchecked";
        trigger_input = None;
        trigger_residue = None;
      } )
  | Deadlock_pair | Atomicity_race ->
    invalid_arg "plant_main_thread_bug: thread-level bug"

(* Splice payload statements into a block at a random position. *)
let splice g block payload =
  let arr = Array.of_list block in
  let cut = Rng.int g.rng (Array.length arr + 1) in
  let before = Array.to_list (Array.sub arr 0 cut) in
  let after = Array.to_list (Array.sub arr cut (Array.length arr - cut)) in
  before @ payload @ after

let deadlock_threads g =
  (* Classic lock inversion: both threads guarded by a moderately rare
     input condition so the deadlock needs input *and* schedule luck. *)
  let slot = random_input g in
  let thread_a =
    [
      if_
        (input slot %: const 4 ==: const 0)
        [ lock 0; yield; lock 1; assign (gvar "shared") (glob "shared" +: const 1); unlock 1; unlock 0 ]
        [];
    ]
  in
  let thread_b =
    [
      if_
        (input slot %: const 4 ==: const 0)
        [ lock 1; yield; lock 0; assign (gvar "shared") (glob "shared" +: const 2); unlock 0; unlock 1 ]
        [];
    ]
  in
  (thread_a, thread_b, slot)

let race_threads () =
  (* Unlocked read-modify-write; under an unlucky interleaving one
     increment is lost and the final assertion fails. *)
  let body =
    [
      assign (lvar "tmp") (glob "counter");
      yield;
      assign (lvar "tmp") (local "tmp" +: const 1);
      assign (gvar "counter") (local "tmp");
    ]
  in
  let checker =
    [
      yield;
      yield;
      yield;
      assert_ (glob "done_a" ==: const 0 ||: (glob "done_b" ==: const 0) ||: (glob "counter" ==: const 2))
        "lost update on shared counter";
    ]
  in
  let mark flag = [ assign (gvar flag) (const 1) ] in
  (body @ mark "done_a", body @ mark "done_b", checker)

let generate rng params =
  let g = { rng; params; next_var = 0; globals = [] } in
  let main_bugs, thread_bugs =
    List.partition (function Deadlock_pair | Atomicity_race -> false | _ -> true) params.bugs
  in
  (* Base main-thread logic. *)
  let block = random_block g ~depth:params.block_depth ~locals:[] in
  (* Splice input-triggered bugs into the main thread. *)
  let block, planted_main =
    List.fold_left
      (fun (block, planted) kind ->
        let payload, info = plant_main_thread_bug g kind in
        (splice g block payload, info :: planted))
      (block, []) main_bugs
  in
  (* Thread-level bugs add extra threads. *)
  let extra_threads, planted_threads, n_locks =
    List.fold_left
      (fun (threads, planted, n_locks) kind ->
        match kind with
        | Deadlock_pair ->
          declare_global g "shared";
          let a, b, slot = deadlock_threads g in
          ( threads @ [ a; b ],
            {
              kind;
              description = Printf.sprintf "lock inversion armed when in[%d] %% 4 = 0" slot;
              trigger_input = Some slot;
              trigger_residue = Some 0;
            }
            :: planted,
            max n_locks 2 )
        | Atomicity_race ->
          declare_global g "counter";
          declare_global g "done_a";
          declare_global g "done_b";
          let a, b, checker = race_threads () in
          ( threads @ [ a; b; checker ],
            {
              kind;
              description = "unlocked read-modify-write on shared counter";
              trigger_input = None;
              trigger_residue = None;
            }
            :: planted,
            n_locks )
        | Rare_assert | Unchecked_syscall | Div_by_zero | Hang_loop ->
          (threads, planted, n_locks))
      ([], [], 0) thread_bugs
  in
  let name = Printf.sprintf "gen-%d" (abs (Int64.to_int (Rng.bits64 rng)) mod 1_000_000) in
  let prog =
    Build.program ~name ~globals:g.globals ~n_inputs:params.n_inputs ~n_locks
      (block :: extra_threads)
  in
  (prog, List.rev planted_main @ List.rev planted_threads)
