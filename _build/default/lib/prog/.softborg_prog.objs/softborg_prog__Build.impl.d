lib/prog/build.ml: Array Ir List Printf
