lib/prog/ir.mli: Format
