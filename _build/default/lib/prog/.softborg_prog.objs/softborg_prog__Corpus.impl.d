lib/prog/corpus.ml: Build Ir
