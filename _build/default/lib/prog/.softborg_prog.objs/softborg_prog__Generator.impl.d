lib/prog/generator.ml: Array Build Int64 Ir List Printf Softborg_util
