lib/prog/generator.mli: Ir Softborg_util
