lib/prog/ir_codec.mli: Ir Softborg_util
