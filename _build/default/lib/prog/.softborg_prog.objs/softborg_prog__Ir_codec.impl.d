lib/prog/ir_codec.ml: Ir Printf Softborg_util
