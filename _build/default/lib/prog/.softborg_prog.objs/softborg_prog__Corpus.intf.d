lib/prog/corpus.mli: Ir
