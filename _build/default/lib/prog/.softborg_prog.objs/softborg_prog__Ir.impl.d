lib/prog/ir.ml: Array Digest Format Int List Marshal
