lib/prog/build.mli: Ir
