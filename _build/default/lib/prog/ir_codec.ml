module Codec = Softborg_util.Codec

let unop_tag = function Ir.Neg -> 0 | Ir.Not -> 1

let unop_of_tag = function
  | 0 -> Ir.Neg
  | 1 -> Ir.Not
  | n -> raise (Codec.Malformed (Printf.sprintf "unop tag %d" n))

let binop_tag = function
  | Ir.Add -> 0
  | Ir.Sub -> 1
  | Ir.Mul -> 2
  | Ir.Div -> 3
  | Ir.Mod -> 4
  | Ir.Eq -> 5
  | Ir.Ne -> 6
  | Ir.Lt -> 7
  | Ir.Le -> 8
  | Ir.Gt -> 9
  | Ir.Ge -> 10
  | Ir.And -> 11
  | Ir.Or -> 12

let binop_of_tag = function
  | 0 -> Ir.Add
  | 1 -> Ir.Sub
  | 2 -> Ir.Mul
  | 3 -> Ir.Div
  | 4 -> Ir.Mod
  | 5 -> Ir.Eq
  | 6 -> Ir.Ne
  | 7 -> Ir.Lt
  | 8 -> Ir.Le
  | 9 -> Ir.Gt
  | 10 -> Ir.Ge
  | 11 -> Ir.And
  | 12 -> Ir.Or
  | n -> raise (Codec.Malformed (Printf.sprintf "binop tag %d" n))

let rec write_expr w = function
  | Ir.Const c ->
    Codec.Writer.byte w 0;
    Codec.Writer.zigzag w c
  | Ir.Input i ->
    Codec.Writer.byte w 1;
    Codec.Writer.varint w i
  | Ir.Var (Ir.Global name) ->
    Codec.Writer.byte w 2;
    Codec.Writer.bytes w name
  | Ir.Var (Ir.Local name) ->
    Codec.Writer.byte w 3;
    Codec.Writer.bytes w name
  | Ir.Unop (op, e) ->
    Codec.Writer.byte w 4;
    Codec.Writer.byte w (unop_tag op);
    write_expr w e
  | Ir.Binop (op, a, b) ->
    Codec.Writer.byte w 5;
    Codec.Writer.byte w (binop_tag op);
    write_expr w a;
    write_expr w b

let rec read_expr r =
  match Codec.Reader.byte r with
  | 0 -> Ir.Const (Codec.Reader.zigzag r)
  | 1 -> Ir.Input (Codec.Reader.varint r)
  | 2 -> Ir.Var (Ir.Global (Codec.Reader.bytes r))
  | 3 -> Ir.Var (Ir.Local (Codec.Reader.bytes r))
  | 4 ->
    let op = unop_of_tag (Codec.Reader.byte r) in
    Ir.Unop (op, read_expr r)
  | 5 ->
    let op = binop_of_tag (Codec.Reader.byte r) in
    let a = read_expr r in
    let b = read_expr r in
    Ir.Binop (op, a, b)
  | n -> raise (Codec.Malformed (Printf.sprintf "expr tag %d" n))
