lib/net/transport.ml: Hashtbl Link Printf Sim Softborg_util
