lib/net/link.ml: Sim Softborg_util String
