lib/net/sim.ml: Float Int Map
