lib/net/link.mli: Sim Softborg_util
