lib/net/transport.mli: Link Sim Softborg_util
