lib/net/sim.mli:
