(** Discrete-event simulator.

    SoftBorg's pods relay by-products "over the Internet to the hive"
    (paper §3); the hive may itself be distributed over end-user
    machines on a potentially unreliable network (§4).  The whole
    platform simulation therefore runs on one logical clock: every
    component schedules callbacks, and the simulator fires them in
    timestamp order.  Determinism: ties break by insertion order. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time (seconds, starts at 0). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the callback [delay] seconds from now.  Negative delays clamp
    to zero (fire on the next step). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run the callback at an absolute time (clamped to [now]). *)

val step : t -> bool
(** Fire the earliest pending event; false if none are pending. *)

val run : ?until:float -> t -> unit
(** Fire events in order until none remain or the clock would pass
    [until]. *)

val pending : t -> int
(** Events waiting to fire. *)

val fired : t -> int
(** Events fired so far. *)
