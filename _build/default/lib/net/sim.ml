(* Event queue as a map keyed by (time, sequence): O(log n) insert and
   pop-min, deterministic tie-breaking by insertion order. *)

module Key = struct
  type t = float * int

  let compare (t1, s1) (t2, s2) =
    match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
end

module Queue_map = Map.Make (Key)

type t = {
  mutable clock : float;
  mutable queue : (unit -> unit) Queue_map.t;
  mutable next_seq : int;
  mutable fired : int;
}

let create () = { clock = 0.0; queue = Queue_map.empty; next_seq = 0; fired = 0 }

let now t = t.clock

let schedule_at t ~time callback =
  let time = if time < t.clock then t.clock else time in
  t.queue <- Queue_map.add (time, t.next_seq) callback t.queue;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay callback =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) callback

let step t =
  match Queue_map.min_binding_opt t.queue with
  | None -> false
  | Some (((time, _) as key), callback) ->
    t.queue <- Queue_map.remove key t.queue;
    t.clock <- time;
    t.fired <- t.fired + 1;
    callback ();
    true

let run ?until t =
  let continue () =
    match Queue_map.min_binding_opt t.queue with
    | None -> false
    | Some ((time, _), _) -> (
      match until with None -> true | Some limit -> time <= limit)
  in
  while continue () do
    ignore (step t)
  done

let pending t = Queue_map.cardinal t.queue
let fired t = t.fired
