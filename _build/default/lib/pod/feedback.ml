module Outcome = Softborg_exec.Outcome

type signal =
  | Normal_exit
  | Crash_report
  | Forceful_termination
  | Jerky_mouse

let signal_name = function
  | Normal_exit -> "normal-exit"
  | Crash_report -> "crash-report"
  | Forceful_termination -> "forceful-termination"
  | Jerky_mouse -> "jerky-mouse"

let signal_of_run ~outcome ~steps ~slow_threshold =
  match outcome with
  | Outcome.Crash _ -> Crash_report
  | Outcome.Deadlock _ | Outcome.Hang -> Forceful_termination
  | Outcome.Success -> if steps > slow_threshold then Jerky_mouse else Normal_exit

let label_of_signal signal ~outcome =
  match signal with
  | Normal_exit | Jerky_mouse | Crash_report -> outcome
  | Forceful_termination -> (
    (* The pod detects a manifest deadlock via its own watchdog, but a
       user-killed hang is just "hang". *)
    match outcome with Outcome.Deadlock _ -> outcome | _ -> Outcome.Hang)
