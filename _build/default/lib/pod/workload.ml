module Rng = Softborg_util.Rng

type profile =
  | Uniform_inputs of { lo : int; hi : int }
  | Zipf_inputs of { lo : int; hi : int; exponent : float }

let default = Zipf_inputs { lo = 0; hi = 191; exponent = 1.1 }

let profile_name = function
  | Uniform_inputs _ -> "uniform"
  | Zipf_inputs _ -> "zipf"

let draw rng profile ~n_inputs =
  Array.init n_inputs (fun _ ->
      match profile with
      | Uniform_inputs { lo; hi } -> Rng.int_in rng lo hi
      | Zipf_inputs { lo; hi; exponent } ->
        lo + Rng.zipf rng ~n:(hi - lo + 1) ~s:exponent)
