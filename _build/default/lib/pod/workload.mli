(** End-user workload models.

    The aggregate user population is SoftBorg's test generator
    (paper §2), and its shape matters: real input distributions are
    heavily skewed, so common paths saturate early while rare paths —
    where the bugs hide — straggle.  That skew is what makes execution
    guidance valuable (E4). *)

module Rng := Softborg_util.Rng

type profile =
  | Uniform_inputs of { lo : int; hi : int }
  | Zipf_inputs of { lo : int; hi : int; exponent : float }
      (** Values near [lo] dominate with Zipf weight; the tail toward
          [hi] is rarely exercised. *)

val default : profile
(** Zipf over [0, 191] with exponent 1.1 — matches the solver's
    default symbol domain. *)

val profile_name : profile -> string

val draw : Rng.t -> profile -> n_inputs:int -> int array
(** One session's input vector. *)
