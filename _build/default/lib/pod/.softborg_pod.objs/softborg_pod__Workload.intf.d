lib/pod/workload.mli: Softborg_util
