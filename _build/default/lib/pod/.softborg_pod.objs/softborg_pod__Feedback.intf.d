lib/pod/feedback.mli: Softborg_exec
