lib/pod/pod.mli: Feedback Softborg_net Softborg_prog Softborg_trace Softborg_util Workload
