lib/pod/workload.ml: Array Softborg_util
