lib/pod/pod.ml: Feedback List Softborg_exec Softborg_hive Softborg_net Softborg_prog Softborg_solver Softborg_symexec Softborg_trace Softborg_util String Workload
