lib/pod/feedback.ml: Softborg_exec
