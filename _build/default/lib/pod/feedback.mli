(** User-feedback inference.

    "The outcome of an execution is either determined by the pod
    explicitly (e.g., for crashes or deadlocks), or can reflect
    feedback provided by the end-user directly (e.g., via forceful
    program termination) or indirectly (e.g., an erratically jerked
    mouse suggests a program is being unusually slow)" — paper §3.1.

    The interpreter reports ground truth; this module models the
    pod-side inference channel: which user signal reveals each
    outcome, and the label the pod attaches based on it. *)

module Outcome := Softborg_exec.Outcome

type signal =
  | Normal_exit
  | Crash_report  (** The process died; the pod sees it directly. *)
  | Forceful_termination  (** User killed a wedged program. *)
  | Jerky_mouse  (** User frustration with a slow-but-alive program. *)

val signal_name : signal -> string

val signal_of_run : outcome:Outcome.t -> steps:int -> slow_threshold:int -> signal
(** What the pod observes for a run: failures surface as crash reports
    or forceful termination; successful-but-slow runs (steps beyond
    [slow_threshold]) surface as jerky-mouse frustration. *)

val label_of_signal : signal -> outcome:Outcome.t -> Outcome.t
(** The outcome label the pod attaches to the trace.  Explicit
    failures keep the precise outcome; [Forceful_termination] of a
    live program is labelled [Hang] (the pod cannot distinguish a
    livelock from a deadlock it did not detect). *)
