lib/exec/env.mli: Softborg_prog Softborg_util
