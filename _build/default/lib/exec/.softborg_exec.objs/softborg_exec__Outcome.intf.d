lib/exec/outcome.mli: Format Softborg_prog
