lib/exec/interp.ml: Array Env Hashtbl List Outcome Printf Sched Softborg_prog Softborg_util
