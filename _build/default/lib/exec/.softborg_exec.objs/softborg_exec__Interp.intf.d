lib/exec/interp.mli: Env Outcome Sched Softborg_prog Softborg_util Stdlib
