lib/exec/sched.mli: Softborg_util
