lib/exec/env.ml: Array List Printf Softborg_prog Softborg_util
