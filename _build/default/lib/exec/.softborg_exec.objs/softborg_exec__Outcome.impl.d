lib/exec/outcome.ml: Format Int List Printf Softborg_prog String
