lib/exec/sched.ml: Array List Softborg_util
