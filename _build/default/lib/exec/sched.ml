module Rng = Softborg_util.Rng

type policy =
  | Round_robin
  | Random_sched of Rng.t
  | Replay of int list
  | Guided of { prefix : int list; fallback : Rng.t }

type t = {
  policy : policy;
  mutable pending : int list;  (* remaining replay/guided choices *)
  mutable last : int;  (* last chosen thread, for round-robin *)
  mutable chosen : int list;  (* reverse-order record of contended choices *)
}

let create policy =
  let pending =
    match policy with Replay l -> l | Guided { prefix; _ } -> prefix | Round_robin | Random_sched _ -> []
  in
  { policy; pending; last = -1; chosen = [] }

let round_robin t runnable =
  (* First runnable thread strictly greater than the last choice,
     wrapping around. *)
  match List.find_opt (fun id -> id > t.last) runnable with
  | Some id -> id
  | None -> List.hd runnable

let default_choice t runnable =
  match t.policy with
  | Random_sched rng | Guided { fallback = rng; _ } -> Rng.choice rng (Array.of_list runnable)
  | Round_robin | Replay _ -> round_robin t runnable

let choose t ~runnable =
  match runnable with
  | [] -> invalid_arg "Sched.choose: no runnable threads"
  | [ only ] ->
    t.last <- only;
    only
  | _ ->
    let chosen =
      match t.pending with
      | wanted :: rest when List.mem wanted runnable ->
        t.pending <- rest;
        wanted
      | wanted :: rest when not (List.mem wanted runnable) ->
        (* Skip stale choices (the wanted thread finished or blocked). *)
        t.pending <- rest;
        default_choice t runnable
      | _ -> default_choice t runnable
    in
    t.last <- chosen;
    t.chosen <- chosen :: t.chosen;
    chosen

let record t = List.rev t.chosen
