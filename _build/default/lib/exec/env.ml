module Rng = Softborg_util.Rng
module Ir = Softborg_prog.Ir

type fault_plan =
  | No_faults
  | Random_faults of float
  | Targeted of int list

type t = {
  input_values : int array;
  plan : fault_plan;
  rng : Rng.t;
  mutable calls : int;
  mutable clock : int;
}

let make ?(fault_plan = No_faults) ~seed ~inputs () =
  { input_values = inputs; plan = fault_plan; rng = Rng.create seed; calls = 0; clock = 0 }

let inputs t = t.input_values
let fault_plan t = t.plan

let input t i =
  if i < 0 || i >= Array.length t.input_values then
    invalid_arg (Printf.sprintf "Env.input: slot %d out of range" i);
  t.input_values.(i)

let faulted t index =
  match t.plan with
  | No_faults -> false
  | Random_faults p -> Rng.bernoulli t.rng p
  | Targeted indices -> List.mem index indices

let syscall t kind =
  let index = t.calls in
  t.calls <- t.calls + 1;
  if faulted t index then -1
  else
    match kind with
    | Ir.Sys_read -> Rng.int t.rng 256
    | Ir.Sys_open -> 3 + Rng.int t.rng 8
    | Ir.Sys_write -> Rng.int t.rng 4096
    | Ir.Sys_net -> Rng.int t.rng 1400
    | Ir.Sys_time ->
      t.clock <- t.clock + 1 + Rng.int t.rng 10;
      t.clock

let syscall_count t = t.calls
