(** Execution outcomes.

    Every end-user execution is a test run (paper §2); its verdict is
    the outcome label attached to the trace.  The pod determines some
    outcomes explicitly (crash, deadlock) and infers others from user
    feedback (hang via forceful termination, §3.1). *)

module Ir := Softborg_prog.Ir

type crash_kind =
  | Assertion_failure
  | Division_by_zero

type t =
  | Success
  | Crash of { site : Ir.site; kind : crash_kind; message : string }
  | Deadlock of { waiting : (int * int) list }
      (** The wait-for cycle: each [(thread, lock)] pair is a thread
          blocked on a lock held by another member of the cycle. *)
  | Hang
      (** Step budget exhausted; in the field this is the execution the
          user forcefully terminates. *)

val is_failure : t -> bool
(** Everything except [Success]. *)

val crash_kind_name : crash_kind -> string

val bucket_key : t -> string
(** WER-style bucketing key: failures with the same key are the same
    "bucket" (same crash site and kind, or same deadlock lock set).
    [Success] buckets to ["ok"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
