module Ir = Softborg_prog.Ir

type crash_kind =
  | Assertion_failure
  | Division_by_zero

type t =
  | Success
  | Crash of { site : Ir.site; kind : crash_kind; message : string }
  | Deadlock of { waiting : (int * int) list }
  | Hang

let is_failure = function Success -> false | Crash _ | Deadlock _ | Hang -> true

let crash_kind_name = function
  | Assertion_failure -> "assert"
  | Division_by_zero -> "div0"

let bucket_key = function
  | Success -> "ok"
  | Crash { site; kind; _ } ->
    Printf.sprintf "crash:%s:t%d:%d" (crash_kind_name kind) site.Ir.thread site.Ir.pc
  | Deadlock { waiting } ->
    let locks = List.map snd waiting |> List.sort_uniq Int.compare in
    Printf.sprintf "deadlock:%s" (String.concat "," (List.map string_of_int locks))
  | Hang -> "hang"

let equal a b =
  match (a, b) with
  | Success, Success -> true
  | Hang, Hang -> true
  | Crash c1, Crash c2 ->
    Ir.site_equal c1.site c2.site && c1.kind = c2.kind && String.equal c1.message c2.message
  | Deadlock d1, Deadlock d2 -> d1.waiting = d2.waiting
  | (Success | Hang | Crash _ | Deadlock _), _ -> false

let pp fmt = function
  | Success -> Format.pp_print_string fmt "success"
  | Crash { site; kind; message } ->
    Format.fprintf fmt "crash(%s@%a: %s)" (crash_kind_name kind) Ir.pp_site site message
  | Deadlock { waiting } ->
    Format.fprintf fmt "deadlock(%s)"
      (String.concat "," (List.map (fun (t, l) -> Printf.sprintf "t%d->l%d" t l) waiting))
  | Hang -> Format.pp_print_string fmt "hang"
