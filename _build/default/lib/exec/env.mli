(** The environment model: the source of all program-external values.

    Inputs and system-call results are the only non-deterministic value
    sources in the IR; fixing them (plus the schedule) makes the rest
    of an execution deterministic — the property the paper exploits to
    record only input-dependent branches (§3.1).  The environment also
    implements {e fault injection}: guidance can ask a pod to make the
    [n]-th syscall of a run fail (the paper's "short socket read",
    §3.3). *)

module Rng := Softborg_util.Rng
module Ir := Softborg_prog.Ir

type fault_plan =
  | No_faults
  | Random_faults of float  (** Each syscall fails with this probability. *)
  | Targeted of int list  (** Zero-based indices of syscalls (in execution order) that fail. *)

type t

val make : ?fault_plan:fault_plan -> seed:int -> inputs:int array -> unit -> t
(** Fresh environment.  [seed] determines syscall return values, so a
    run is replayable from [(inputs, seed, fault_plan, schedule)]. *)

val inputs : t -> int array
val fault_plan : t -> fault_plan

val input : t -> int -> int
(** [input t i] reads input slot [i].
    @raise Invalid_argument if out of range. *)

val syscall : t -> Ir.syscall_kind -> int
(** Next syscall result: a kind-appropriate non-negative value, or -1
    when the fault plan says this call fails.  Advances the syscall
    counter. *)

val syscall_count : t -> int
(** Syscalls performed so far. *)
