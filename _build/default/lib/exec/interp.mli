(** The interpreter: SoftBorg's stand-in for an instrumented binary.

    One machine runs in two modes sharing every transition rule:

    - {e record} mode executes concretely against an {!Env.t} and emits
      the by-products of paper §3.1 — one bit per {e input-dependent}
      branch (a branch whose condition value is tainted by an input or
      syscall result), the contended-point thread schedule, the syscall
      return-value summary, lock events, and the outcome;
    - {e replay} mode reconstructs the {e full} branch-decision
      sequence from just the recorded bits and schedule: external
      values are unknown, deterministic branches are re-computed, and
      tainted branches consume recorded bits (paper §3.2, Fig. 3).

    Sharing the machine makes "replay reconstructs exactly the recorded
    path" a structural property rather than a hope; the test suite
    checks it with property tests over random programs. *)

module Bitvec := Softborg_util.Bitvec
module Ir := Softborg_prog.Ir

(** Lock by-product events, in execution order. *)
type lock_event =
  | Acquired of { thread : int; lock : int; step : int }
  | Released of { thread : int; lock : int; step : int }

(** Runtime hooks, the mechanism by which synthesized fixes are applied
    to a running instance (paper §3.3: "runtime-based mechanism or
    minor instrumentation").  [on_lock_request] may defer an
    acquisition to keep the program out of a known deadlock pattern;
    the deferred thread spins and retries.  [on_crash] may suppress a
    crash at a known bug site (Perkins-style deployed patching): the
    failing instruction is skipped, an [Assign] target takes 0, and
    execution continues.  Suppression applies to [Assign] and [Assert]
    instructions only; a crash while evaluating a branch condition
    always propagates. *)
type hooks = {
  on_lock_request :
    thread:int -> lock:int -> holding:int list -> owner:(int -> int option) ->
    [ `Proceed | `Defer ];
  on_crash : site:Ir.site -> kind:Outcome.crash_kind -> [ `Suppress | `Propagate ];
}

val no_hooks : hooks

type result = {
  outcome : Outcome.t;
  bits : Bitvec.t;  (** Input-dependent branch decisions, execution order. *)
  full_path : (Ir.site * bool) list;
      (** Every branch decision, including deterministic ones — the
          ground-truth path (what replay must reconstruct). *)
  schedule : int list;  (** Thread chosen at each contended scheduling point. *)
  syscalls : (Ir.syscall_kind * int) list;  (** Return-value summary. *)
  lock_events : lock_event list;
  steps : int;  (** Instructions executed (cost proxy). *)
  deferred_acquisitions : int;  (** Lock requests the hooks deferred (fix overhead). *)
  suppressed_crashes : int;  (** Crashes the hooks suppressed (averted failures). *)
}

val run :
  ?max_steps:int ->
  ?hooks:hooks ->
  program:Ir.t ->
  env:Env.t ->
  sched:Sched.policy ->
  unit ->
  result
(** Execute to completion (default [max_steps] 20000; exceeding it
    yields [Hang]). *)

type reconstruction = {
  decisions : (Ir.site * bool) list;  (** The full decision sequence. *)
  locks : lock_event list;
      (** Lock events along the replayed path — the raw material for
          deadlock-pattern mining at the hive. *)
}

val reconstruct :
  ?hooks:hooks ->
  program:Ir.t ->
  bits:Bitvec.t ->
  schedule:int list ->
  total_decisions:int ->
  total_steps:int ->
  unit ->
  (reconstruction, string) Stdlib.result
(** Rebuild the full decision sequence (and lock events) from recorded
    by-products.  Replays exactly [total_steps] interpreter steps (the
    recorded execution length — record and replay count steps
    identically), so paths truncated by a crash or hang reconstruct
    exactly, including lock events after the last branch decision.
    Errors if the reconstruction disagrees with [total_decisions] or
    the bits/schedule are inconsistent with the program. *)
