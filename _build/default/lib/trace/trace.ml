module Bitvec = Softborg_util.Bitvec
module Ids = Softborg_util.Ids
module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome
module Interp = Softborg_exec.Interp

type t = {
  trace_id : Ids.Trace_id.t;
  program_digest : string;
  pod : int;
  bits : Bitvec.t;
  n_decisions : int;
  schedule : int list;
  syscalls : (Ir.syscall_kind * int) list;
  outcome : Outcome.t;
  steps : int;
  fix_epoch : int;
}

let of_result ~program_digest ~pod ~fix_epoch (r : Interp.result) =
  {
    trace_id = Ids.Trace_id.fresh ();
    program_digest;
    pod;
    bits = Bitvec.copy r.bits;
    n_decisions = List.length r.full_path;
    schedule = r.schedule;
    syscalls = r.syscalls;
    outcome = r.outcome;
    steps = r.steps;
    fix_epoch;
  }

let recorded_fraction t =
  if t.n_decisions = 0 then 0.0
  else float_of_int (Bitvec.length t.bits) /. float_of_int t.n_decisions

let equal a b =
  String.equal a.program_digest b.program_digest
  && a.pod = b.pod
  && Bitvec.equal a.bits b.bits
  && a.n_decisions = b.n_decisions
  && a.schedule = b.schedule
  && a.syscalls = b.syscalls
  && Outcome.equal a.outcome b.outcome
  && a.steps = b.steps
  && a.fix_epoch = b.fix_epoch

let pp fmt t =
  Format.fprintf fmt "trace{pod=%d bits=%d/%d sched=%d sys=%d outcome=%a}" t.pod
    (Bitvec.length t.bits) t.n_decisions (List.length t.schedule) (List.length t.syscalls)
    Outcome.pp t.outcome
