module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec

let bit_runs v =
  let n = Bitvec.length v in
  if n = 0 then []
  else begin
    let runs = ref [] in
    let current = ref (Bitvec.get v 0) in
    let run = ref 1 in
    for i = 1 to n - 1 do
      let b = Bitvec.get v i in
      if b = !current then incr run
      else begin
        runs := (!current, !run) :: !runs;
        current := b;
        run := 1
      end
    done;
    runs := (!current, !run) :: !runs;
    List.rev !runs
  end

let runs_to_bits runs =
  let v = Bitvec.create () in
  List.iter
    (fun (b, n) ->
      for _ = 1 to n do
        Bitvec.push v b
      done)
    runs;
  v

let encode_runs runs =
  let w = Codec.Writer.create () in
  (match runs with
  | [] -> Codec.Writer.byte w 2  (* sentinel: empty *)
  | (first, _) :: _ ->
    Codec.Writer.byte w (if first then 1 else 0);
    List.iter (fun (_, n) -> Codec.Writer.varint w n) runs);
  Codec.Writer.contents w

let decode_runs s =
  let r = Codec.Reader.of_string s in
  match Codec.Reader.byte r with
  | 2 -> []
  | (0 | 1) as first ->
    let rec loop value acc =
      if Codec.Reader.remaining r = 0 then List.rev acc
      else
        let n = Codec.Reader.varint r in
        if n = 0 then raise (Codec.Malformed "zero-length run");
        loop (not value) ((value, n) :: acc)
    in
    loop (first = 1) []
  | n -> raise (Codec.Malformed (Printf.sprintf "run encoding head %d" n))

let int_runs xs =
  let rec loop acc = function
    | [] -> List.rev acc
    | x :: rest -> (
      match acc with
      | (y, n) :: tail when y = x -> loop ((y, n + 1) :: tail) rest
      | _ -> loop ((x, 1) :: acc) rest)
  in
  loop [] xs

let expand_int_runs runs =
  List.concat_map (fun (x, n) -> List.init n (fun _ -> x)) runs

let compression_ratio v =
  let packed = max 1 (String.length (Bitvec.to_bytes v)) in
  let rle = max 1 (String.length (encode_runs (bit_runs v))) in
  float_of_int packed /. float_of_int rle
