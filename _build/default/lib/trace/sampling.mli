(** Coordinated sparse sampling of branch predicates, after Cooperative
    Bug Isolation (Liblit et al., paper §3.1 and §5).

    Instead of recording every input-dependent branch, a pod may record
    each branch observation with probability 1/rate.  A sampled trace
    no longer pins down one path — it denotes a {e family} of paths —
    but aggregation across the user community still localizes bugs:
    the hive correlates predicate observations with failure labels
    ({!Softborg_hive.Isolate}). *)

module Rng := Softborg_util.Rng
module Ir := Softborg_prog.Ir
module Outcome := Softborg_exec.Outcome

(** A branch predicate: "execution went [direction] at [site]". *)
type predicate = { site : Ir.site; direction : bool }

val predicate_equal : predicate -> predicate -> bool
val predicate_compare : predicate -> predicate -> int
val pp_predicate : Format.formatter -> predicate -> unit

type t = {
  rate : int;  (** Sampling rate denominator (1 = record everything). *)
  counts : (predicate * int) list;  (** Observation counts, deduplicated. *)
  observed : int;  (** Observations recorded. *)
  total : int;  (** Branch decisions that occurred. *)
  outcome : Outcome.t;
}

val sample :
  Rng.t -> rate:int -> full_path:(Ir.site * bool) list -> outcome:Outcome.t -> t
(** Sample one run's decisions at 1/rate.  [rate = 1] records all. *)

val observed_fraction : t -> float
(** observed / total (0 when the path was empty). *)

val modeled_overhead : t -> float
(** Runtime-overhead model: a 1% always-on countdown fast path plus
    full instrumentation cost on the observed fraction.  Full
    recording ([rate=1]) costs 1.0 by definition. *)

val family_width_log2 : t -> float
(** log2 of the number of paths compatible with the sampled
    observations: each unobserved binary decision doubles the family
    (paper §3.1: "a recorded trace specifies a family of paths"). *)
