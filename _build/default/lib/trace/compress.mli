(** Run-length compression for by-product streams.

    Branch bit-vectors from loop-heavy code and thread schedules from
    run-to-completion schedulers are highly repetitive; run-length
    encoding routinely shrinks them severalfold, directly reducing the
    pod→hive upload volume the paper worries about (§3.1). *)

module Bitvec := Softborg_util.Bitvec

val bit_runs : Bitvec.t -> (bool * int) list
(** Maximal runs of equal bits, in order.  [runs_to_bits (bit_runs v)]
    equals [v]. *)

val runs_to_bits : (bool * int) list -> Bitvec.t

val encode_runs : (bool * int) list -> string
(** Varint stream: first byte is the value of the first run; then run
    lengths, alternating values. *)

val decode_runs : string -> (bool * int) list
(** @raise Softborg_util.Codec.Malformed on invalid input. *)

val int_runs : int list -> (int * int) list
(** Maximal runs of equal integers: [[1;1;1;2]] becomes
    [[(1,3);(2,1)]]. *)

val expand_int_runs : (int * int) list -> int list

val compression_ratio : Bitvec.t -> float
(** Packed size / RLE size for this vector (>1 means RLE wins). *)
