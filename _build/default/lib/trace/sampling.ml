module Rng = Softborg_util.Rng
module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome

type predicate = { site : Ir.site; direction : bool }

let predicate_equal a b = Ir.site_equal a.site b.site && a.direction = b.direction

let predicate_compare a b =
  match Ir.site_compare a.site b.site with
  | 0 -> Bool.compare a.direction b.direction
  | c -> c

let pp_predicate fmt p =
  Format.fprintf fmt "%a=%c" Ir.pp_site p.site (if p.direction then 'T' else 'F')

type t = {
  rate : int;
  counts : (predicate * int) list;
  observed : int;
  total : int;
  outcome : Outcome.t;
}

module Pred_map = Map.Make (struct
  type t = predicate

  let compare = predicate_compare
end)

let sample rng ~rate ~full_path ~outcome =
  if rate <= 0 then invalid_arg "Sampling.sample: rate must be positive";
  (* Geometric countdown (Liblit's trick): draw the gap to the next
     observation instead of a coin per decision. *)
  let gap = ref (if rate = 1 then 0 else Rng.geometric rng (1.0 /. float_of_int rate)) in
  let observed = ref 0 in
  let total = ref 0 in
  let counts =
    List.fold_left
      (fun acc (site, direction) ->
        incr total;
        if !gap = 0 then begin
          incr observed;
          gap := (if rate = 1 then 0 else Rng.geometric rng (1.0 /. float_of_int rate));
          let p = { site; direction } in
          Pred_map.update p (function None -> Some 1 | Some n -> Some (n + 1)) acc
        end
        else begin
          decr gap;
          acc
        end)
      Pred_map.empty full_path
  in
  {
    rate;
    counts = Pred_map.bindings counts;
    observed = !observed;
    total = !total;
    outcome;
  }

let observed_fraction t =
  if t.total = 0 then 0.0 else float_of_int t.observed /. float_of_int t.total

let modeled_overhead t = if t.rate = 1 then 1.0 else 0.01 +. observed_fraction t

let family_width_log2 t = float_of_int (t.total - t.observed)
