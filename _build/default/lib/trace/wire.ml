module Bitvec = Softborg_util.Bitvec
module Codec = Softborg_util.Codec
module Ids = Softborg_util.Ids
module Ir = Softborg_prog.Ir
module Outcome = Softborg_exec.Outcome

type decode_error =
  | Truncated
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated"
  | Malformed msg -> Format.fprintf fmt "malformed: %s" msg

let syscall_tag = function
  | Ir.Sys_read -> 0
  | Ir.Sys_open -> 1
  | Ir.Sys_write -> 2
  | Ir.Sys_net -> 3
  | Ir.Sys_time -> 4

let syscall_of_tag = function
  | 0 -> Ir.Sys_read
  | 1 -> Ir.Sys_open
  | 2 -> Ir.Sys_write
  | 3 -> Ir.Sys_net
  | 4 -> Ir.Sys_time
  | n -> raise (Codec.Malformed (Printf.sprintf "syscall tag %d" n))

let crash_tag = function
  | Outcome.Assertion_failure -> 0
  | Outcome.Division_by_zero -> 1

let crash_of_tag = function
  | 0 -> Outcome.Assertion_failure
  | 1 -> Outcome.Division_by_zero
  | n -> raise (Codec.Malformed (Printf.sprintf "crash tag %d" n))

let encode_outcome w = function
  | Outcome.Success -> Codec.Writer.byte w 0
  | Outcome.Crash { site; kind; message } ->
    Codec.Writer.byte w 1;
    Codec.Writer.varint w site.Ir.thread;
    Codec.Writer.varint w site.Ir.pc;
    Codec.Writer.byte w (crash_tag kind);
    Codec.Writer.bytes w message
  | Outcome.Deadlock { waiting } ->
    Codec.Writer.byte w 2;
    Codec.Writer.list w
      (fun (thread, lock) ->
        Codec.Writer.varint w thread;
        Codec.Writer.varint w lock)
      waiting
  | Outcome.Hang -> Codec.Writer.byte w 3

let decode_outcome r =
  match Codec.Reader.byte r with
  | 0 -> Outcome.Success
  | 1 ->
    let thread = Codec.Reader.varint r in
    let pc = Codec.Reader.varint r in
    let kind = crash_of_tag (Codec.Reader.byte r) in
    let message = Codec.Reader.bytes r in
    Outcome.Crash { site = { Ir.thread; pc }; kind; message }
  | 2 ->
    let waiting =
      Codec.Reader.list r (fun r ->
          let thread = Codec.Reader.varint r in
          let lock = Codec.Reader.varint r in
          (thread, lock))
    in
    Outcome.Deadlock { waiting }
  | 3 -> Outcome.Hang
  | n -> raise (Codec.Malformed (Printf.sprintf "outcome tag %d" n))

let encode (t : Trace.t) =
  let w = Codec.Writer.create () in
  Codec.Writer.bytes w t.program_digest;
  Codec.Writer.varint w t.pod;
  Codec.Writer.varint w t.fix_epoch;
  Codec.Writer.varint w t.steps;
  Codec.Writer.varint w t.n_decisions;
  (* Branch bits: packed or RLE, whichever is smaller. *)
  let n_bits = Bitvec.length t.bits in
  Codec.Writer.varint w n_bits;
  let packed = Bitvec.to_bytes t.bits in
  let runs = Compress.bit_runs t.bits in
  let rle = Compress.encode_runs runs in
  if String.length rle < String.length packed then begin
    Codec.Writer.byte w 1;
    Codec.Writer.bytes w rle
  end
  else begin
    Codec.Writer.byte w 0;
    Codec.Writer.bytes w packed
  end;
  (* Schedule: RLE of thread runs. *)
  Codec.Writer.list w
    (fun (thread, run) ->
      Codec.Writer.varint w thread;
      Codec.Writer.varint w run)
    (Compress.int_runs t.schedule);
  Codec.Writer.list w
    (fun (kind, result) ->
      Codec.Writer.byte w (syscall_tag kind);
      Codec.Writer.zigzag w result)
    t.syscalls;
  encode_outcome w t.outcome;
  Codec.Writer.contents w

let decode s =
  match
    let r = Codec.Reader.of_string s in
    let program_digest = Codec.Reader.bytes r in
    let pod = Codec.Reader.varint r in
    let fix_epoch = Codec.Reader.varint r in
    let steps = Codec.Reader.varint r in
    let n_decisions = Codec.Reader.varint r in
    let n_bits = Codec.Reader.varint r in
    let bits =
      match Codec.Reader.byte r with
      | 0 -> Bitvec.of_bytes (Codec.Reader.bytes r) n_bits
      | 1 ->
        let bits = Compress.runs_to_bits (Compress.decode_runs (Codec.Reader.bytes r)) in
        if Bitvec.length bits <> n_bits then raise (Codec.Malformed "RLE bit count mismatch");
        bits
      | n -> raise (Codec.Malformed (Printf.sprintf "bits encoding tag %d" n))
    in
    let schedule_runs =
      Codec.Reader.list r (fun r ->
          let thread = Codec.Reader.varint r in
          let run = Codec.Reader.varint r in
          (thread, run))
    in
    let schedule = Compress.expand_int_runs schedule_runs in
    let syscalls =
      Codec.Reader.list r (fun r ->
          let kind = syscall_of_tag (Codec.Reader.byte r) in
          let result = Codec.Reader.zigzag r in
          (kind, result))
    in
    let outcome = decode_outcome r in
    {
      Trace.trace_id = Ids.Trace_id.fresh ();
      program_digest;
      pod;
      bits;
      n_decisions;
      schedule;
      syscalls;
      outcome;
      steps;
      fix_epoch;
    }
  with
  | trace -> Ok trace
  | exception Codec.Truncated -> Error Truncated
  | exception Codec.Malformed msg -> Error (Malformed msg)
  | exception Invalid_argument msg -> Error (Malformed msg)
