(** Trace anonymization and information-content accounting.

    Traces might disclose private end-user information (paper §3.1,
    citing Castro et al.); the paper calls for a principled framework
    for trading control-flow detail against privacy.  This module
    implements a ladder of scrubbing levels and an entropy-based
    estimate of the residual information a trace carries, which
    experiment E9 sweeps against hive diagnosis quality. *)

(** Scrubbing levels, strictly decreasing in disclosed information. *)
type level =
  | Full  (** Everything the pod captured. *)
  | Coarse_syscalls
      (** Syscall return values reduced to success (1) / fault (-1):
          keeps failure correlation, hides payload sizes and fds. *)
  | Drop_syscalls  (** No syscall summary at all. *)
  | Bits_only
      (** Branch bits and decision count only — no schedule, no
          syscalls.  Multi-threaded traces stop being replayable. *)
  | Outcome_only  (** Only the outcome label (WER-grade disclosure). *)

val all_levels : level list
val level_name : level -> string

val apply : level -> Trace.t -> Trace.t
(** Scrub a trace down to [level].  Idempotent; [Full] is identity. *)

val residual_bits : Trace.t -> float
(** Estimated information content of a trace in bits: 1 bit per branch
    decision recorded, 8 per raw syscall value (1 if coarsened),
    log2(#distinct threads) per schedule entry, ~4 for the outcome.
    Monotonically non-increasing down the {!level} ladder (property-
    tested). *)
