(** Wire format for traces.

    Capture and upload cost is a first-order concern (paper §3.1), so
    traces travel in a compact binary form: varint-framed fields, the
    branch bit-vector packed 8-per-byte or run-length encoded
    (whichever is smaller), and the schedule run-length encoded
    (threads run in long bursts under realistic schedulers). *)

type decode_error =
  | Truncated
  | Malformed of string

val encode : Trace.t -> string
val decode : string -> (Trace.t, decode_error) result
(** [decode (encode t)] re-creates [t] up to {!Trace.equal} (a fresh
    trace id is assigned). *)

val pp_error : Format.formatter -> decode_error -> unit

module Codec := Softborg_util.Codec
module Outcome := Softborg_exec.Outcome

val encode_outcome : Codec.Writer.t -> Outcome.t -> unit
val decode_outcome : Codec.Reader.t -> Outcome.t
(** Outcome sub-codec, shared with the hive↔pod message protocol.
    @raise Softborg_util.Codec.Malformed on invalid input. *)
