lib/trace/wire.mli: Format Softborg_exec Softborg_util Trace
