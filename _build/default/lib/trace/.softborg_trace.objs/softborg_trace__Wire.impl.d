lib/trace/wire.ml: Compress Format Printf Softborg_exec Softborg_prog Softborg_util String Trace
