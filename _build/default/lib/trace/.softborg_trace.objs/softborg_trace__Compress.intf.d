lib/trace/compress.mli: Softborg_util
