lib/trace/trace.mli: Format Softborg_exec Softborg_prog Softborg_util
