lib/trace/anonymize.ml: Int List Softborg_util Trace
