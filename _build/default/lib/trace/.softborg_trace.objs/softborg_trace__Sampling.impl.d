lib/trace/sampling.ml: Bool Format List Map Softborg_exec Softborg_prog Softborg_util
