lib/trace/compress.ml: List Printf Softborg_util String
