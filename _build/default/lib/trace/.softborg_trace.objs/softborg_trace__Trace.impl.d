lib/trace/trace.ml: Format List Softborg_exec Softborg_prog Softborg_util String
