module Bitvec = Softborg_util.Bitvec

type level =
  | Full
  | Coarse_syscalls
  | Drop_syscalls
  | Bits_only
  | Outcome_only

let all_levels = [ Full; Coarse_syscalls; Drop_syscalls; Bits_only; Outcome_only ]

let level_name = function
  | Full -> "full"
  | Coarse_syscalls -> "coarse-syscalls"
  | Drop_syscalls -> "drop-syscalls"
  | Bits_only -> "bits-only"
  | Outcome_only -> "outcome-only"

let coarsen_syscall (kind, result) = (kind, if result >= 0 then 1 else -1)

let apply level (t : Trace.t) =
  match level with
  | Full -> t
  | Coarse_syscalls -> { t with syscalls = List.map coarsen_syscall t.syscalls }
  | Drop_syscalls -> { t with syscalls = [] }
  | Bits_only -> { t with syscalls = []; schedule = [] }
  | Outcome_only ->
    {
      t with
      syscalls = [];
      schedule = [];
      bits = Bitvec.create ();
      n_decisions = 0;
      steps = 0;
    }

let is_coarse result = result = 1 || result = -1

let residual_bits (t : Trace.t) =
  let branch_bits = float_of_int (Bitvec.length t.bits) in
  let syscall_bits =
    List.fold_left (fun acc (_, result) -> acc +. if is_coarse result then 1.0 else 8.0) 0.0 t.syscalls
  in
  let schedule_bits =
    match t.schedule with
    | [] -> 0.0
    | entries ->
      let distinct = List.sort_uniq Int.compare entries |> List.length in
      let per_entry = if distinct <= 1 then 0.0 else log (float_of_int distinct) /. log 2.0 in
      per_entry *. float_of_int (List.length entries)
  in
  branch_bits +. syscall_bits +. schedule_bits +. 4.0
