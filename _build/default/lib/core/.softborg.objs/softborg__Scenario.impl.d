lib/core/scenario.ml: List Platform Softborg_hive Softborg_net Softborg_prog Softborg_util
