lib/core/platform.ml: Format List Metrics Softborg_hive Softborg_net Softborg_pod Softborg_prog Softborg_tree Softborg_util
