lib/core/metrics.ml: Format List
