lib/core/scenario.mli: Platform Softborg_hive Softborg_prog
