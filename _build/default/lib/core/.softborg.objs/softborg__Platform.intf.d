lib/core/platform.mli: Format Metrics Softborg_hive Softborg_net Softborg_pod Softborg_prog
