(** The pod↔hive message protocol (paper Figure 1).

    Pods send by-products up; the hive sends fixes and guidance down.
    All messages are length-delimited binary strings carried by the
    reliable transport ({!Softborg_net.Transport}). *)

module Sampling := Softborg_trace.Sampling

type message =
  | Trace_upload of string
      (** A {!Softborg_trace.Wire}-encoded trace (possibly anonymized
          by the pod before encoding). *)
  | Sampled_report of { program_digest : string; report : Sampling.t }
      (** CBI-mode upload: sparse predicate counts plus outcome. *)
  | Fix_update of { program_digest : string; epoch : int; fixes : Fixgen.fix list }
      (** The hive's current deployable fix set for a program. *)
  | Guidance_update of { program_digest : string; directives : Guidance.directive list }
      (** Execution-steering directives for this pod. *)

val encode : message -> string
val decode : string -> (message, string) result

val message_name : message -> string
