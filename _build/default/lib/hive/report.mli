(** Published per-program reliability reports.

    "For correct behaviors, SoftBorg's hive produces and publishes
    proofs of P's properties" (paper §3).  The report is the hive's
    public artifact for one program build: what was observed, what was
    fixed, what is proven, and how complete the collective picture is.
    Rendered as plain text so it can be published anywhere. *)

val render : Knowledge.t -> string
(** The full report. *)

val summary_line : Knowledge.t -> string
(** One line: name, traces, failures, fixes, proofs. *)
