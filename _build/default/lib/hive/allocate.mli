(** Portfolio-theoretic allocation of hive nodes to analysis tasks
    (paper §4).

    Exploring a subtree of the execution tree has an unknown payoff:
    "the contents and shape of the execution tree remain unknown until
    the tree is actually explored, and thus finding an appropriate
    partition is undecidable."  SoftBorg treats subtrees as equities
    and hive nodes as capital, and allocates by modern portfolio theory
    (Markowitz): weight tasks by expected reward, discounted by reward
    variance — diversification over uncertain bets rather than going
    all-in on the current best estimate. *)

module Stats := Softborg_util.Stats

type task = {
  task_id : int;
  reward : Stats.Online.t;  (** Observed per-node-hour reward samples. *)
}

val task : int -> task

val observe_reward : task -> float -> unit

type policy =
  | Uniform  (** Equal split regardless of evidence. *)
  | Greedy  (** Everything on the highest-mean task. *)
  | Mean_variance of { risk_aversion : float }
      (** Markowitz-style: weight ∝ mean / (1 + λ·variance), with an
          exploration floor so no task starves. *)

val policy_name : policy -> string

val allocate : policy -> nodes:int -> task list -> (int * int) list
(** Distribute [nodes] whole workers over the tasks; returns
    [(task_id, node_count)] covering every task, summing to [nodes].
    Tasks with no reward observations get the prior mean 1.0 and a
    large variance (maximum uncertainty).
    @raise Invalid_argument on an empty task list or negative nodes. *)
