module Ir = Softborg_prog.Ir
module Codec = Softborg_util.Codec
module Env = Softborg_exec.Env
module Exec_tree = Softborg_tree.Exec_tree
module Sym_exec = Softborg_symexec.Sym_exec
module Testgen = Softborg_symexec.Testgen

type directive =
  | Cover_direction of {
      site : Ir.site;
      direction : bool;
      test : Testgen.test_case;
    }
  | Probe_schedules of {
      inputs : int array;
      seeds : int list;
    }

let pp_directive fmt = function
  | Cover_direction { site; direction; test } ->
    Format.fprintf fmt "cover %a=%c inputs=[%s]%s" Ir.pp_site site
      (if direction then 'T' else 'F')
      (String.concat ";" (Array.to_list (Array.map string_of_int test.Testgen.inputs)))
      (match test.Testgen.fault_plan with
      | Env.Targeted faults ->
        Printf.sprintf " faults=[%s]" (String.concat ";" (List.map string_of_int faults))
      | Env.No_faults | Env.Random_faults _ -> "")
  | Probe_schedules { inputs; seeds } ->
    Format.fprintf fmt "probe-schedules inputs=[%s] seeds=%d"
      (String.concat ";" (Array.to_list (Array.map string_of_int inputs)))
      (List.length seeds)

type plan_result = {
  directives : directive list;
  gaps_considered : int;
  gaps_closed_infeasible : int;
  gaps_unknown : int;
}

let plan ?config ?(max_directives = 8) ?(schedule_probe_seeds = [ 101; 202; 303; 404 ])
    ?(exclude = []) program tree =
  let multi_threaded = Array.length program.Ir.threads > 1 in
  let directives = ref [] in
  let considered = ref 0 in
  let closed = ref 0 in
  let unknown = ref 0 in
  let excluded (gap : Exec_tree.gap) =
    List.exists
      (fun (site, direction) ->
        Ir.site_equal site gap.Exec_tree.site && direction = gap.Exec_tree.missing)
      exclude
  in
  let gaps = List.filter (fun gap -> not (excluded gap)) (Exec_tree.frontier tree) in
  (* Each gap costs a directed symbolic exploration; bound the total
     work per planning call, not just the directives handed out. *)
  let max_considered = 3 * max_directives in
  List.iter
    (fun (gap : Exec_tree.gap) ->
      if List.length !directives < max_directives && !considered < max_considered then begin
        incr considered;
        match
          Testgen.for_direction ?config program ~site:gap.Exec_tree.site
            ~direction:gap.Exec_tree.missing
        with
        | `Test test ->
          directives :=
            Cover_direction
              { site = gap.Exec_tree.site; direction = gap.Exec_tree.missing; test }
            :: !directives
        | `Infeasible ->
          if
            Exec_tree.mark_infeasible tree ~prefix:gap.Exec_tree.prefix
              ~site:gap.Exec_tree.site ~direction:gap.Exec_tree.missing
          then incr closed
        | `Unknown -> incr unknown
      end)
    gaps;
  (* Rare interleavings "might be hiding bugs": steer some pods toward
     unexplored schedules (paper §3.3). *)
  if multi_threaded && !unknown > 0 && List.length !directives < max_directives then
    directives :=
      Probe_schedules
        { inputs = Array.make program.Ir.n_inputs 0; seeds = schedule_probe_seeds }
      :: !directives;
  {
    directives = List.rev !directives;
    gaps_considered = !considered;
    gaps_closed_infeasible = !closed;
    gaps_unknown = !unknown;
  }

(* ---- Wire format ------------------------------------------------------ *)

let write_fault_plan w = function
  | Env.No_faults -> Codec.Writer.byte w 0
  | Env.Random_faults p ->
    Codec.Writer.byte w 1;
    Codec.Writer.float w p
  | Env.Targeted indices ->
    Codec.Writer.byte w 2;
    Codec.Writer.list w (Codec.Writer.varint w) indices

let read_fault_plan r =
  match Codec.Reader.byte r with
  | 0 -> Env.No_faults
  | 1 -> Env.Random_faults (Codec.Reader.float r)
  | 2 -> Env.Targeted (Codec.Reader.list r Codec.Reader.varint)
  | n -> raise (Codec.Malformed (Printf.sprintf "fault plan tag %d" n))

let write_inputs w inputs =
  Codec.Writer.list w (Codec.Writer.zigzag w) (Array.to_list inputs)

let read_inputs r = Array.of_list (Codec.Reader.list r Codec.Reader.zigzag)

let write_directive w = function
  | Cover_direction { site; direction; test } ->
    Codec.Writer.byte w 0;
    Codec.Writer.varint w site.Ir.thread;
    Codec.Writer.varint w site.Ir.pc;
    Codec.Writer.bool w direction;
    write_inputs w test.Testgen.inputs;
    write_fault_plan w test.Testgen.fault_plan
  | Probe_schedules { inputs; seeds } ->
    Codec.Writer.byte w 1;
    write_inputs w inputs;
    Codec.Writer.list w (Codec.Writer.varint w) seeds

let read_directive r =
  match Codec.Reader.byte r with
  | 0 ->
    let thread = Codec.Reader.varint r in
    let pc = Codec.Reader.varint r in
    let direction = Codec.Reader.bool r in
    let inputs = read_inputs r in
    let fault_plan = read_fault_plan r in
    Cover_direction
      { site = { Ir.thread; pc }; direction; test = { Testgen.inputs; fault_plan } }
  | 1 ->
    let inputs = read_inputs r in
    let seeds = Codec.Reader.list r Codec.Reader.varint in
    Probe_schedules { inputs; seeds }
  | n -> raise (Codec.Malformed (Printf.sprintf "directive tag %d" n))
