(** Content-addressed trace storage with deduplication.

    "Users execute software billions of times around the world" (paper
    §2): the overwhelming majority of those executions repeat paths the
    hive has already seen, so storing every upload verbatim would be
    absurd.  The store keys each trace by a digest of its {e content}
    (path bits, schedule, syscall summary, outcome) and keeps one copy
    plus a multiplicity counter; the accounting exposes how much the
    popularity skew saves. *)

module Trace := Softborg_trace.Trace

type t

val create : unit -> t

type admission =
  | Novel  (** First time this exact execution content was seen. *)
  | Duplicate of int  (** Seen before; the new multiplicity. *)

val admit : t -> Trace.t -> admission
(** Record one uploaded trace. *)

val distinct : t -> int
(** Distinct execution contents stored. *)

val received : t -> int
(** Total uploads admitted (with multiplicity). *)

val bytes_received : t -> int
(** Wire bytes across all uploads. *)

val bytes_stored : t -> int
(** Wire bytes actually kept (one copy per distinct content). *)

val dedup_ratio : t -> float
(** bytes_received / bytes_stored (1.0 when everything is novel). *)

val multiplicity : t -> Trace.t -> int
(** How often this exact content has been seen (0 if never). *)

val heaviest : t -> n:int -> (string * int) list
(** The [n] most frequent content digests with their counts — the
    "hot paths" of the user population. *)
