lib/hive/hive.ml: Array Fixgen Guidance Hashtbl Knowledge List Logs Option Protocol Prover Softborg_exec Softborg_net Softborg_prog Softborg_symexec Softborg_trace Softborg_tree
