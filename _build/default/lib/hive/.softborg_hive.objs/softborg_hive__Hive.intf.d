lib/hive/hive.mli: Knowledge Softborg_net Softborg_prog Softborg_symexec
