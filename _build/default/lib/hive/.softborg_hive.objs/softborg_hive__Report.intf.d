lib/hive/report.mli: Knowledge
