lib/hive/coop_symexec.ml: Allocate Array Hashtbl List Option Printf Softborg_exec Softborg_net Softborg_prog Softborg_symexec Softborg_tree Softborg_util
