lib/hive/trace_store.mli: Softborg_trace
