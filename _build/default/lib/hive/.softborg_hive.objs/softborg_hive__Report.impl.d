lib/hive/report.ml: Buffer Fixgen Format Isolate Knowledge List Printf Prover Softborg_prog Softborg_trace Softborg_tree String Trace_store
