lib/hive/knowledge.mli: Fixgen Isolate Prover Softborg_exec Softborg_prog Softborg_solver Softborg_symexec Softborg_trace Softborg_tree Trace_store
