lib/hive/fixgen.mli: Format Softborg_exec Softborg_prog Softborg_solver Softborg_symexec Softborg_util
