lib/hive/protocol.ml: Fixgen Guidance Printf Softborg_prog Softborg_trace Softborg_util
