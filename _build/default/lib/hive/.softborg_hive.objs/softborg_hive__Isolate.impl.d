lib/hive/isolate.ml: Float Hashtbl Int List Map Softborg_exec Softborg_prog Softborg_trace
