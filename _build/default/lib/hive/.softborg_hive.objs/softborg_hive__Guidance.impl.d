lib/hive/guidance.ml: Array Format List Printf Softborg_exec Softborg_prog Softborg_symexec Softborg_tree Softborg_util String
