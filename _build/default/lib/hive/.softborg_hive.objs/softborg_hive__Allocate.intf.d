lib/hive/allocate.mli: Softborg_util
