lib/hive/prover.mli: Format Softborg_exec Softborg_prog Softborg_symexec Softborg_tree
