lib/hive/fixgen.ml: Array Format Int List Printf Softborg_conc Softborg_exec Softborg_prog Softborg_solver Softborg_symexec Softborg_util String
