lib/hive/coop_symexec.mli: Allocate Softborg_net Softborg_prog Softborg_symexec Softborg_tree
