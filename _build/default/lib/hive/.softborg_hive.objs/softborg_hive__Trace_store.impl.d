lib/hive/trace_store.ml: Digest Hashtbl Int List Softborg_trace Softborg_util String
