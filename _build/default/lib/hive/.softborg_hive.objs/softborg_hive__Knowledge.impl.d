lib/hive/knowledge.ml: Fixgen Hashtbl Int Isolate List Prover Softborg_conc Softborg_exec Softborg_prog Softborg_solver Softborg_symexec Softborg_trace Softborg_tree Trace_store
