lib/hive/allocate.ml: Float List Softborg_util
