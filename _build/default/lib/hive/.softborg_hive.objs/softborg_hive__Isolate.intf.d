lib/hive/isolate.mli: Softborg_exec Softborg_prog Softborg_trace
