lib/hive/protocol.mli: Fixgen Guidance Softborg_trace
