lib/hive/guidance.mli: Format Softborg_prog Softborg_symexec Softborg_tree Softborg_util
