lib/hive/prover.ml: Array Format List Option Softborg_conc Softborg_exec Softborg_prog Softborg_symexec Softborg_tree
