module Trace = Softborg_trace.Trace
module Wire = Softborg_trace.Wire
module Bitvec = Softborg_util.Bitvec

type entry = {
  mutable count : int;
  size : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable received : int;
  mutable bytes_received : int;
  mutable bytes_stored : int;
}

let create () =
  { entries = Hashtbl.create 64; received = 0; bytes_received = 0; bytes_stored = 0 }

(* Content digest: everything except the per-upload identifiers (trace
   id and reporting pod) — two pods reporting the same execution
   content deduplicate. *)
let content_key (trace : Trace.t) =
  let canonical =
    { trace with Trace.trace_id = Softborg_util.Ids.Trace_id.of_int 0; pod = 0 }
  in
  Digest.to_hex (Digest.string (Wire.encode canonical))

type admission =
  | Novel
  | Duplicate of int

let admit t trace =
  let key = content_key trace in
  let size = String.length (Wire.encode trace) in
  t.received <- t.received + 1;
  t.bytes_received <- t.bytes_received + size;
  match Hashtbl.find_opt t.entries key with
  | Some entry ->
    entry.count <- entry.count + 1;
    Duplicate entry.count
  | None ->
    Hashtbl.replace t.entries key { count = 1; size };
    t.bytes_stored <- t.bytes_stored + size;
    Novel

let distinct t = Hashtbl.length t.entries
let received t = t.received
let bytes_received t = t.bytes_received
let bytes_stored t = t.bytes_stored

let dedup_ratio t =
  if t.bytes_stored = 0 then 1.0
  else float_of_int t.bytes_received /. float_of_int t.bytes_stored

let multiplicity t trace =
  match Hashtbl.find_opt t.entries (content_key trace) with
  | Some entry -> entry.count
  | None -> 0

let heaviest t ~n =
  Hashtbl.fold (fun key entry acc -> (key, entry.count) :: acc) t.entries []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  |> List.filteri (fun i _ -> i < n)
