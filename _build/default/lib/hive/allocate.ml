module Stats = Softborg_util.Stats

type task = {
  task_id : int;
  reward : Stats.Online.t;
}

let task task_id = { task_id; reward = Stats.Online.create () }

let observe_reward t x = Stats.Online.add t.reward x

type policy =
  | Uniform
  | Greedy
  | Mean_variance of { risk_aversion : float }

let policy_name = function
  | Uniform -> "uniform"
  | Greedy -> "greedy"
  | Mean_variance _ -> "mean-variance"

(* Priors for unobserved tasks: optimistic mean, maximal uncertainty. *)
let task_mean t =
  if Stats.Online.count t.reward = 0 then 1.0 else Stats.Online.mean t.reward

let task_variance t =
  if Stats.Online.count t.reward < 2 then 4.0 else Stats.Online.variance t.reward

(* Largest-remainder apportionment of [nodes] by weight. *)
let apportion ~nodes weighted =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  let weighted =
    if total <= 0.0 then List.map (fun (id, _) -> (id, 1.0)) weighted else weighted
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  let quotas = List.map (fun (id, w) -> (id, float_of_int nodes *. w /. total)) weighted in
  let floors = List.map (fun (id, q) -> (id, int_of_float (floor q), q -. floor q)) quotas in
  let used = List.fold_left (fun acc (_, f, _) -> acc + f) 0 floors in
  let remainder = nodes - used in
  let by_fraction =
    List.sort (fun (_, _, f1) (_, _, f2) -> Float.compare f2 f1) floors
  in
  let with_extra =
    List.mapi (fun i (id, f, _) -> (id, if i < remainder then f + 1 else f)) by_fraction
  in
  (* Restore the input order. *)
  List.map (fun (id, _) -> (id, List.assoc id with_extra)) weighted

let allocate policy ~nodes tasks =
  if tasks = [] then invalid_arg "Allocate.allocate: no tasks";
  if nodes < 0 then invalid_arg "Allocate.allocate: negative nodes";
  match policy with
  | Uniform -> apportion ~nodes (List.map (fun t -> (t.task_id, 1.0)) tasks)
  | Greedy ->
    let best =
      List.fold_left
        (fun acc t -> match acc with None -> Some t | Some b -> if task_mean t > task_mean b then Some t else acc)
        None tasks
    in
    let best_id = match best with Some t -> t.task_id | None -> assert false in
    List.map (fun t -> (t.task_id, if t.task_id = best_id then nodes else 0)) tasks
  | Mean_variance { risk_aversion } ->
    let weight t =
      let w = task_mean t /. (1.0 +. (risk_aversion *. task_variance t)) in
      (* Exploration floor: never fully starve a task. *)
      max w 0.05
    in
    apportion ~nodes (List.map (fun t -> (t.task_id, weight t)) tasks)
