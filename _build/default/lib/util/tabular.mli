(** Fixed-width text tables for experiment output.

    Every experiment in the benchmark harness prints its results as an
    aligned table (the reproduction's analogue of the paper's tables),
    so the formatting lives in one place. *)

type align = Left | Right

type column = { title : string; align : align }

val column : ?align:align -> string -> column
(** [column name] is a left-aligned column by default. *)

val render : column list -> string list list -> string
(** [render cols rows] lays out [rows] under [cols] with a separator
    rule.  Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val print : ?title:string -> column list -> string list list -> unit
(** [print ~title cols rows] writes an optional underlined title and
    the rendered table to stdout. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-decimal rendering (default 2), with ["-"] for NaN. *)

val fmt_pct : float -> string
(** [fmt_pct 0.123] is ["12.3%"]. *)

val fmt_ratio : float -> string
(** [fmt_ratio 9.8] is ["9.8x"]. *)
