type align = Left | Right
type column = { title : string; align : align }

let column ?(align = Left) title = { title; align }

let pad align width s =
  let deficit = width - String.length s in
  if deficit <= 0 then s
  else
    match align with
    | Left -> s ^ String.make deficit ' '
    | Right -> String.make deficit ' ' ^ s

let render cols rows =
  let ncols = List.length cols in
  let rows =
    List.map
      (fun row ->
        let n = List.length row in
        if n > ncols then invalid_arg "Tabular.render: row wider than header"
        else row @ List.init (ncols - n) (fun _ -> ""))
      rows
  in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) (String.length col.title) rows)
      cols
  in
  let render_row cells =
    let parts = List.map2 (fun (col, width) cell -> pad col.align width cell) (List.combine cols widths) cells in
    String.concat "  " parts
  in
  let header = render_row (List.map (fun c -> c.title) cols) in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map render_row rows)

let print ?title cols rows =
  (match title with
  | Some t ->
    print_newline ();
    print_endline t;
    print_endline (String.make (String.length t) '=')
  | None -> ());
  print_endline (render cols rows)

let fmt_float ?(decimals = 2) f =
  if Float.is_nan f then "-" else Printf.sprintf "%.*f" decimals f

let fmt_pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
let fmt_ratio f = Printf.sprintf "%.1fx" f
