module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val fresh : unit -> t
end

module Make (Tag : sig
  val name : string
end) : S = struct
  type t = int

  let of_int i = i
  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash i = i
  let pp fmt i = Format.fprintf fmt "%s#%d" Tag.name i

  let counter = ref 0

  let fresh () =
    incr counter;
    !counter
end

module Pod_id = Make (struct let name = "pod" end)
module Trace_id = Make (struct let name = "trace" end)
module Program_id = Make (struct let name = "prog" end)
module Bug_id = Make (struct let name = "bug" end)
module Fix_id = Make (struct let name = "fix" end)
module Proof_id = Make (struct let name = "proof" end)
module Node_id = Make (struct let name = "node" end)
