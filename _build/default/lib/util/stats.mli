(** Statistics used by experiment harnesses and by the hive's
    portfolio-theoretic allocator (mean/variance of subtree reward). *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** Population variance. *)
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a sample; an empty sample yields zeros. *)

(** Online mean/variance accumulation (Welford's algorithm), used where
    streaming values must not be buffered — e.g. the hive tracking
    per-subtree reward across thousands of exploration reports. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], with linear interpolation.
    @raise Invalid_argument on an empty list or [p] out of range. *)

val median : float list -> float
(** [median xs = percentile xs 50.]. *)

val geometric_mean : float list -> float
(** Geometric mean of strictly positive values; used for aggregate
    speedup factors.  @raise Invalid_argument on empty or non-positive
    input. *)

val histogram : buckets:int -> float list -> (float * float * int) list
(** [histogram ~buckets xs] partitions [\[min,max\]] into equal-width
    buckets and returns [(lo, hi, count)] per bucket. *)

val entropy_bits : float list -> float
(** Shannon entropy (base 2) of a discrete distribution given as
    non-negative weights (normalized internally).  Used by the trace
    anonymizer to account residual information content (paper §3.1). *)

val pearson : float list -> float list -> float
(** Pearson correlation of two equal-length samples; 0 when either
    sample is constant.  @raise Invalid_argument on length mismatch. *)
