lib/util/ids.ml: Format Int
