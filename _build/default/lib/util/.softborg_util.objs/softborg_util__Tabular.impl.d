lib/util/tabular.ml: Float List Printf String
