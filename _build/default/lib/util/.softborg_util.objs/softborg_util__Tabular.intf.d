lib/util/tabular.mli:
