lib/util/codec.mli:
