lib/util/bitvec.ml: Bytes Char Format List Printf String
