lib/util/stats.mli:
