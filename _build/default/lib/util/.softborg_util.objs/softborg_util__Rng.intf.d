lib/util/rng.mli:
