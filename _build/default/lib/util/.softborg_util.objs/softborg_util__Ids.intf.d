lib/util/ids.mli: Format
