(** Typed identifiers for the entities that flow between pods and the
    hive.  Keeping them abstract prevents, e.g., a pod id from being
    used where a trace id is expected. *)

module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  val fresh : unit -> t
  (** Process-wide fresh id (monotonic).  Deterministic given call
      order, which the simulator guarantees. *)
end

module Pod_id : S
module Trace_id : S
module Program_id : S
module Bug_id : S
module Fix_id : S
module Proof_id : S
module Node_id : S
