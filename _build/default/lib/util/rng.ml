type t = { mutable state : int64; mutable zipf_cache : (int * float * float array) option }

(* SplitMix64 (Steele, Lea, Flood 2014): tiny state, excellent
   statistical quality for simulation purposes, and trivially
   splittable. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed; zipf_cache = None }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let child_seed = bits64 t in
  { state = mix64 child_seed; zipf_cache = None }

let copy t = { state = t.state; zipf_cache = t.zipf_cache }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* [land max_int] clears the sign bit of the truncated 63-bit value,
     keeping the result in OCaml's non-negative int range. *)
  let mask = Int64.to_int (bits64 t) land max_int in
  mask mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 uniform mantissa bits in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let float t x = unit_float t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  unit_float t < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. unit_float t in
  -.log u /. rate

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1. then 0
  else
    let u = 1.0 -. unit_float t in
    int_of_float (floor (log u /. log (1. -. p)))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let cdf =
    match t.zipf_cache with
    | Some (cached_n, cached_s, cdf) when cached_n = n && cached_s = s -> cdf
    | _ ->
      let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let acc = ref 0.0 in
      let cdf =
        Array.map
          (fun w ->
            acc := !acc +. (w /. total);
            !acc)
          weights
      in
      t.zipf_cache <- Some (n, s, cdf);
      cdf
  in
  let u = unit_float t in
  (* Binary search for the first index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let weighted_choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.weighted_choice: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. max 0.0 w) 0.0 arr in
  if total <= 0. then invalid_arg "Rng.weighted_choice: zero total weight";
  let target = float t total in
  let rec pick i acc =
    if i = Array.length arr - 1 then fst arr.(i)
    else
      let acc = acc +. max 0.0 (snd arr.(i)) in
      if target < acc then fst arr.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  if k > Array.length arr then invalid_arg "Rng.sample_without_replacement: k too large";
  let pool = Array.copy arr in
  shuffle t pool;
  Array.sub pool 0 k
