type summary = {
  count : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
}

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n = 0 then 0.0 else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
end

let summarize xs =
  match xs with
  | [] -> { count = 0; mean = 0.0; variance = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
  | first :: _ ->
    let online = Online.create () in
    let mn = ref first and mx = ref first in
    List.iter
      (fun x ->
        Online.add online x;
        if x < !mn then mn := x;
        if x > !mx then mx := x)
      xs;
    {
      count = Online.count online;
      mean = Online.mean online;
      variance = Online.variance online;
      stddev = Online.stddev online;
      min = !mn;
      max = !mx;
    }

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let median xs = percentile xs 50.0

let geometric_mean xs =
  if xs = [] then invalid_arg "Stats.geometric_mean: empty sample";
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value";
        acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (List.length xs))

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  match xs with
  | [] -> []
  | _ ->
    let s = summarize xs in
    let width =
      let raw = (s.max -. s.min) /. float_of_int buckets in
      if raw <= 0.0 then 1.0 else raw
    in
    let counts = Array.make buckets 0 in
    List.iter
      (fun x ->
        let idx = int_of_float ((x -. s.min) /. width) in
        let idx = if idx >= buckets then buckets - 1 else max 0 idx in
        counts.(idx) <- counts.(idx) + 1)
      xs;
    List.init buckets (fun i ->
        let lo = s.min +. (float_of_int i *. width) in
        (lo, lo +. width, counts.(i)))

let entropy_bits weights =
  let total = List.fold_left (fun acc w -> acc +. max 0.0 w) 0.0 weights in
  if total <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc w ->
        let p = max 0.0 w /. total in
        if p <= 0.0 then acc else acc -. (p *. (log p /. log 2.0)))
      0.0 weights

let pearson xs ys =
  if List.length xs <> List.length ys then invalid_arg "Stats.pearson: length mismatch";
  let sx = summarize xs and sy = summarize ys in
  if sx.stddev = 0.0 || sy.stddev = 0.0 || sx.count = 0 then 0.0
  else
    let cov =
      List.fold_left2 (fun acc x y -> acc +. ((x -. sx.mean) *. (y -. sy.mean))) 0.0 xs ys
      /. float_of_int sx.count
    in
    cov /. (sx.stddev *. sy.stddev)
