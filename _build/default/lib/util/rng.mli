(** Deterministic, splittable pseudo-random number generation.

    Every stochastic component of the reproduction — workload models,
    program generation, lossy links, sampling, schedulers — draws from
    an explicit [Rng.t] so that whole-fleet simulations replay bit-for-
    bit from a seed.  The generator is SplitMix64, which supports cheap
    {!split}ting into statistically independent streams, one per pod or
    per simulated component. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator derived from [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns an independent child generator.
    Used to hand each pod / link / workload its own stream. *)

val copy : t -> t
(** Snapshot of the current state (for replay). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p] (clamped to [0,1]). *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); used for arrival processes
    and link latencies.  @raise Invalid_argument if [rate <= 0.]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success
    of a Bernoulli(p); used for 1/n trace sampling countdowns.
    @raise Invalid_argument unless [0 < p <= 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples from a Zipf distribution over [\[0, n)] with
    exponent [s]: the skewed popularity law that makes common execution
    paths saturate early while rare paths straggle (motivating the
    paper's execution guidance).  @raise Invalid_argument if [n <= 0]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val weighted_choice : t -> ('a * float) array -> 'a
(** Element sampled proportionally to its (non-negative) weight.
    @raise Invalid_argument if the array is empty or all weights are
    zero. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] is [k] distinct elements of
    [arr] in random order.  @raise Invalid_argument if
    [k > Array.length arr]. *)
