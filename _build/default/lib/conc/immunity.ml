module Interp = Softborg_exec.Interp

type t = { mutable sets : int list list }

let normalize locks = List.sort_uniq Int.compare locks

let create ~patterns = { sets = List.map normalize patterns }

let patterns t = t.sets

let add_pattern t locks =
  let key = normalize locks in
  if not (List.mem key t.sets) then t.sets <- key :: t.sets

let hooks t =
  {
    Interp.on_lock_request =
      (fun ~thread ~lock ~holding ~owner ->
        let dangerous pattern =
          List.mem lock pattern
          (* Entering the pattern (holding none of its locks)... *)
          && (not (List.exists (fun l -> List.mem l pattern) holding))
          (* ...while another thread is inside it. *)
          && List.exists
               (fun l ->
                 match owner l with Some other -> other <> thread | None -> false)
               pattern
        in
        if List.exists dangerous t.sets then `Defer else `Proceed);
    Interp.on_crash = (fun ~site:_ ~kind:_ -> `Propagate);
  }

let empty_hooks = Interp.no_hooks
