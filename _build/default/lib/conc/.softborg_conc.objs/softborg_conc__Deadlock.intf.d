lib/conc/deadlock.mli: Format Softborg_exec
