lib/conc/schedule_explore.mli: Softborg_exec Softborg_prog
