lib/conc/lock_graph.ml: Format Hashtbl Int List Map Option Set Softborg_exec
