lib/conc/lock_graph.mli: Format Softborg_exec
