lib/conc/deadlock.ml: Format Int List Lock_graph Option Softborg_exec String
