lib/conc/immunity.ml: Int List Softborg_exec
