lib/conc/immunity.mli: Softborg_exec
