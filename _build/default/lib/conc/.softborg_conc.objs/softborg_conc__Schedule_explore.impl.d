lib/conc/schedule_explore.ml: Array Hashtbl List Queue Softborg_exec Softborg_prog
