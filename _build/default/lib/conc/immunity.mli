(** Deadlock immunity: the synthesized fix for deadlock bugs.

    Once the hive knows a deadlock pattern, it "synthesizes
    instrumentation that protects P from thread schedules that trigger
    that deadlock, avoiding future occurrences" (paper §3, after Jula
    et al.'s deadlock immunity).  The instrumentation serializes entry
    into each known pattern: a thread about to take its {e first} lock
    of a pattern defers while any other thread holds any lock of that
    pattern.  A thread already inside a pattern always proceeds, so the
    program cannot livelock on the avoidance itself; the cost is
    deferred acquisitions, which the interpreter counts. *)

module Interp := Softborg_exec.Interp

type t

val create : patterns:int list list -> t
(** [create ~patterns] builds an immunizer for the given deadlock
    patterns (each a lock set). *)

val patterns : t -> int list list

val add_pattern : t -> int list -> unit
(** Learn an additional pattern (idempotent). *)

val hooks : t -> Interp.hooks
(** The runtime hooks to pass to {!Softborg_exec.Interp.run}. *)

val empty_hooks : Interp.hooks
(** Convenience: hooks that never defer (unprotected execution). *)
